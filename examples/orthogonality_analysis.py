#!/usr/bin/env python
"""Why compressed bases cost iterations: orthogonality decay.

CB-GMRES orthogonalizes each new direction against the *stored* (lossy)
basis, so every compression error perturbs the Arnoldi recurrence.  This
script instruments real solves and shows that the worst observed
orthogonality loss of the stored basis orders the storage formats
exactly like their iteration counts in the paper's Fig. 8 — the
mechanism behind the whole evaluation.

Run:  python examples/orthogonality_analysis.py   (REPRO_SCALE=smoke ok)
"""

import numpy as np

from repro.bench import format_table
from repro.solvers import basis_perturbation, make_problem, trace_orthogonality


def main() -> None:
    p = make_problem("atmosmodd")
    print(f"atmosmodd analog: n={p.a.n}, target RRN {p.target_rrn:.0e}\n")
    rng = np.random.default_rng(0)
    v = rng.standard_normal(p.a.n)
    v /= np.linalg.norm(v)

    rows = []
    for fmt in ("float64", "frsz2_32", "float32", "float16"):
        trace = trace_orthogonality(p.a, p.b, fmt, p.target_rrn, sample_every=5)
        rows.append(
            (
                fmt,
                f"{basis_perturbation(fmt, v):.2e}",
                f"{trace.worst_orthogonality:.2e}",
                f"{trace.worst_norm_drift:.2e}",
                trace.result.iterations,
            )
        )
    print(
        format_table(
            "basis perturbation -> orthogonality loss -> iterations",
            [
                "storage",
                "per-write error",
                "worst max|v_i.v_j|",
                "worst norm drift",
                "iterations",
            ],
            rows,
        )
    )
    print()
    print("Each column orders identically: the compression error injected at")
    print("each basis write bounds the orthogonality the Arnoldi process can")
    print("maintain, and that determines the extra iterations each format")
    print("pays (the paper's Fig. 8).  frsz2_32's externalized block exponent")
    print("buys ~2 decades of orthogonality over float32 at ~same storage.")


if __name__ == "__main__":
    main()
