#!/usr/bin/env python
"""Solve CFD problems with every Krylov-basis storage format.

Reproduces the core experiment of the paper on a selection of the
Table I matrix analogs: for each matrix, CB-GMRES runs with the basis in
float64 / float32 / float16 / frsz2_32, and the script reports
iterations, convergence, and the modeled H100 speedup over float64.

Run:  python examples/cfd_solver_comparison.py [matrix ...]
      (defaults to atmosmodd, cfd2 and PR02R; set REPRO_SCALE=smoke for
      a fast run)
"""

import sys

from repro.bench import FIG7_FORMATS, format_table
from repro.gpu import GmresTimingModel, H100_PCIE
from repro.solvers import CbGmres, make_problem
from repro.sparse import suite_names


def compare(matrix: str) -> None:
    problem = make_problem(matrix)
    print(f"\n{matrix}: n={problem.a.n}, nnz={problem.a.nnz}, "
          f"target RRN {problem.target_rrn:.0e}")
    model = GmresTimingModel(H100_PCIE)
    results = {}
    for storage in FIG7_FORMATS:
        solver = CbGmres(problem.a, storage=storage, stall_restarts=10)
        results[storage] = solver.solve(problem.b, problem.target_rrn)
    base = model.time_result(results["float64"]).total_seconds
    rows = []
    for storage, r in results.items():
        speedup = base / model.time_result(r).total_seconds if r.converged else float("nan")
        rows.append(
            (
                storage,
                r.iterations,
                f"{r.final_rrn:.2e}",
                "yes" if r.converged else ("stalled" if r.stalled else "no"),
                f"{r.stats.bits_per_value:.1f}",
                f"{speedup:.2f}" if r.converged else "-",
            )
        )
    print(
        format_table(
            f"{matrix} — storage-format comparison",
            ["storage", "iterations", "final RRN", "converged", "bits/value", "H100 speedup"],
            rows,
        )
    )


def main() -> None:
    matrices = sys.argv[1:] or ["atmosmodd", "cfd2", "PR02R"]
    unknown = [m for m in matrices if m not in suite_names()]
    if unknown:
        raise SystemExit(f"unknown matrices {unknown}; choose from {suite_names()}")
    for matrix in matrices:
        compare(matrix)
    print("\nExpected shapes (paper Figs. 8/11): on atmosmod* the frsz2_32")
    print("basis needs the fewest extra iterations of all compressed formats")
    print("and wins the modeled speedup; on PR02R its shared block exponents")
    print("destroy small Krylov entries and float16 fails outright.")


if __name__ == "__main__":
    main()
