#!/usr/bin/env python
"""H100 roofline study of the storage formats (paper Fig. 4).

Prints the modeled performance of each storage format across arithmetic
intensities, the bandwidth-efficiency headline (99.6% for frsz2_32), and
the cuSZp2 comparison, plus the instruction budget the design must fit
(Section I's 46-operation calculation).

Run:  python examples/roofline_h100.py
"""

from repro.bench import format_series, format_table
from repro.gpu import (
    H100_PCIE,
    bandwidth_efficiency,
    format_cost,
    frsz2_vs_cuszp2_speedup,
    roofline_series,
)
from repro.gpu.warp import measured_instruction_counts


def main() -> None:
    print(f"device: {H100_PCIE.name} — {H100_PCIE.mem_bandwidth/1e12:.1f} TB/s, "
          f"{H100_PCIE.fp64_flops/1e12:.1f} FP64 TFLOP/s")
    print(f"flops per double read: {H100_PCIE.flops_per_double_read:.0f} "
          f"(the paper's ~100:1 headline)")
    print(f"spare ops at 32 stored bits: "
          f"{H100_PCIE.spare_ops_budget(32):.0f} (the paper's ~46)")
    comp, dec = measured_instruction_counts(32)
    print(f"measured on the SIMT warp executor: compress {comp} ops/value, "
          f"decompress {dec} ops/value -> fits the budget\n")

    series = roofline_series()
    table = {
        name: [(p.arithmetic_intensity, round(p.gflops, 1)) for p in pts]
        for name, pts in series.items()
    }
    print(
        format_series(
            "Fig. 4 — modeled H100 performance (GFLOP/s) vs arithmetic intensity",
            "flops/value",
            table,
            max_points=14,
        )
    )

    rows = []
    for name in ("float64", "Acc<float32>", "Acc<frsz2_16>", "Acc<frsz2_21>", "Acc<frsz2_32>"):
        fmt = format_cost(name)
        rows.append(
            (
                name,
                f"{fmt.stored_bits:.2f}",
                fmt.decompress_ops,
                "aligned" if fmt.aligned else "straddling",
                f"{bandwidth_efficiency(name):.1%}",
            )
        )
    print()
    print(
        format_table(
            "storage-format cost profiles",
            ["format", "bits/value", "decode ops", "layout", "bandwidth eff."],
            rows,
        )
    )
    lo, hi = frsz2_vs_cuszp2_speedup()
    print(f"\nfrsz2_32 vs cuSZp2 at the roofline: {lo:.2f}x - {hi:.2f}x "
          f"(paper claim: 1.2x - 3.1x)")


if __name__ == "__main__":
    main()
