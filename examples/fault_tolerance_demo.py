#!/usr/bin/env python
"""Fault tolerance: bit flips, breakdown recovery and precision fallback.

The paper treats the compressed Krylov basis as a numerical trade-off;
this demo stresses it as a *reliability* trade-off instead.  A seeded
injector flips bits in the stored FRSZ2 streams and poisons SpMV
outputs while CB-GMRES runs:

1. the unhardened solver (recovery disabled) crashes or diverges;
2. the hardened solver detects the poisoned Arnoldi cycles, salvages
   the clean columns and restarts from the explicit residual;
3. ``RobustCbGmres`` escalates the storage format along a fallback
   chain (``frsz2_16 -> frsz2_32 -> float64``) whenever an attempt
   stalls or exhausts its recovery budget;
4. the full campaign sweeps fault kind x storage format x rate and
   prints the survival-rate table.

Run:  python examples/fault_tolerance_demo.py
"""

import os

import numpy as np

from repro.robust import (
    FallbackPolicy,
    FaultInjector,
    FaultySpmvMatrix,
    RobustCbGmres,
    run_campaign,
)
from repro.solvers import CbGmres, make_problem

SCALE = os.environ.get("REPRO_SCALE", "smoke")
SEED = 7
RATE = 0.05  # per-SpMV probability of one poisoned output element


def _injector() -> FaultInjector:
    """A fresh injector with the demo's seed (replayable fault stream)."""
    return FaultInjector(RATE, SEED)


def demo_unhardened_vs_hardened() -> None:
    print("=" * 64)
    print("NaN-poisoned SpMV: unhardened crash vs. breakdown recovery")
    print("=" * 64)
    p = make_problem("atmosmodd", SCALE)

    faulty = FaultySpmvMatrix(p.a, _injector(), "spmv_nan")
    try:
        res = CbGmres(faulty, "frsz2_32", m=50, max_iter=2000,
                      recovery=False).solve(p.b, p.target_rrn)
        status = "diverged" if not res.converged else "converged (lucky seed)"
        print(f"unhardened frsz2_32: {status}, final rrn {res.final_rrn:.3e}")
    except Exception as exc:
        print(f"unhardened frsz2_32: CRASHED — {type(exc).__name__}: {exc}")

    faulty = FaultySpmvMatrix(p.a, _injector(), "spmv_nan")
    res = CbGmres(faulty, "frsz2_32", m=50, max_iter=2000).solve(p.b, p.target_rrn)
    kinds = sorted({e.kind for e in res.breakdown_events})
    print(f"hardened   frsz2_32: converged={res.converged} after "
          f"{res.iterations} iterations, {res.recoveries} recoveries")
    print(f"  breakdown events: {kinds}")
    print(f"  final rrn {res.final_rrn:.3e} (target {p.target_rrn:.1e}); "
          f"x finite: {bool(np.all(np.isfinite(res.x)))}")
    print()


def demo_fallback_chain() -> None:
    print("=" * 64)
    print("Automatic precision fallback (frsz2_16 -> frsz2_32 -> float64)")
    print("=" * 64)
    # PR02R is the paper's hard case: lossy formats struggle, float64 wins
    p = make_problem("PR02R", SCALE)
    solver = RobustCbGmres(p.a, FallbackPolicy(), m=50, max_iter=2000)
    rr = solver.solve(p.b, p.target_rrn * 1e-4)  # tighten to force escalation
    for i, att in enumerate(rr.attempts):
        status = ("converged" if att.converged
                  else "stalled" if att.stalled else "gave up")
        print(f"  attempt {i + 1}: {att.storage:10s} {status:10s} "
              f"after {att.iterations} iterations (rrn {att.final_rrn:.3e})")
    print(f"outcome: {rr.outcome} — solved with {rr.storage_used} "
          f"({rr.total_iterations} total iterations)")
    print()


def demo_campaign() -> None:
    print("=" * 64)
    print("Survival campaign: fault kind x storage format x rate")
    print("=" * 64)
    camp = run_campaign(matrix="atmosmodd", scale=SCALE, seed=SEED)
    print(camp.table())
    print()
    print(camp.summary())
    assert camp.survival_rate == 1.0, "hardened campaign must survive every cell"
    print()
    print(f"all {len(camp.cells)} cells survived "
          f"(survival rate {camp.survival_rate:.0%})")


def main() -> None:
    demo_unhardened_vs_hardened()
    demo_fallback_chain()
    demo_campaign()


if __name__ == "__main__":
    main()
