#!/usr/bin/env python
"""Storage-format prediction — the paper's future-work feature (§VIII).

For each Table I matrix analog, the predictor inspects the initial
residual's exponent distribution (static screening) and speculatively
probes the surviving candidates for convergence-per-modeled-second,
"just before the first restart".  The script then verifies each
recommendation against a full solve of every candidate.

Run:  python examples/format_prediction.py   (REPRO_SCALE=smoke for speed)
"""

from repro.bench import format_table
from repro.gpu import GmresTimingModel
from repro.solvers import CbGmres, make_problem, predict_format


def main() -> None:
    matrices = ["atmosmodd", "cfd2", "lung2", "PR02R", "StocF-1465"]
    model = GmresTimingModel()
    rows = []
    for name in matrices:
        p = make_problem(name)
        rec = predict_format(p.a, p.b)
        # ground truth: modeled time of a full solve per candidate
        best, best_t = None, float("inf")
        for fmt in ("float64", "float32", "float16", "frsz2_32"):
            r = CbGmres(p.a, fmt, stall_restarts=8).solve(p.b, p.target_rrn)
            if r.converged:
                t = model.time_result(r).total_seconds
                if t < best_t:
                    best, best_t = fmt, t
        rejected = "; ".join(f"{k}: {v}" for k, v in rec.rejected.items()) or "-"
        rows.append((name, rec.storage, best, rejected))
        print(f"{name}: predicted {rec.storage}, actual best {best}")
        if rec.rejected:
            for fmt, reason in rec.rejected.items():
                print(f"    screened out {fmt}: {reason}")
    print()
    print(
        format_table(
            "format prediction vs. ground truth",
            ["matrix", "predicted", "actual best (modeled)", "static rejections"],
            rows,
        )
    )
    hits = sum(1 for r in rows if r[1] == r[2])
    print(f"\n{hits}/{len(rows)} exact hits.")
    print("The important wins are the rejections: PR02R screens out both")
    print("frsz2_32 (mixed block exponents) and float16 (range) before")
    print("spending a single full solve on them — the mechanism the paper")
    print("proposes for choosing a format ahead of the first restart.")


if __name__ == "__main__":
    main()
