#!/usr/bin/env python
"""Step-by-step FRSZ2 compression walkthrough (paper Fig. 3).

Traces every one of the six compression steps of Section IV-A on a tiny
block (BS = 2, like the paper's illustration), printing the bit-level
intermediates, then shows the four decompression steps recovering the
values.

Run:  python examples/compression_walkthrough.py
"""

from repro.core import reference


def walkthrough(values, bit_length):
    print(f"block = {values}, l = {bit_length}\n")
    trace = reference.trace_block_compression(values, bit_length)
    print(trace.format_steps(bit_length))
    print()
    print("decompression (Section IV-B):")
    for c, out in zip(trace.compressed, trace.decompressed):
        l = bit_length
        s = (c >> (l - 1)) & 1
        sig = c & ((1 << (l - 1)) - 1)
        k = (l - 2) - sig.bit_length() + 1 if sig else l - 1
        print(f"  c = {c:0{l}b}")
        print(f"    step 2: sign={s}, significand field={sig:0{l-1}b}, "
              f"leading zeros k={k}")
        print(f"    step 3: exponent e = e_max - k = {trace.e_max} - {k} "
              f"= {trace.e_max - k}")
        print(f"    step 4: merged back -> {out!r}")
    print()


def main() -> None:
    print("=" * 70)
    print("FRSZ2 walkthrough, paper Fig. 3 setting: BS = 2")
    print("=" * 70)
    walkthrough([0.8, -0.3], 16)

    print("=" * 70)
    print("same block at l = 32 (the advocated setting): note the extra")
    print("significand bits that survive the cut")
    print("=" * 70)
    walkthrough([0.8, -0.3], 32)

    print("=" * 70)
    print("a block mixing magnitudes: the smaller value donates k leading")
    print("zeros to align with e_max and loses that much precision —")
    print("FRSZ2's PR02R failure mode in miniature")
    print("=" * 70)
    walkthrough([1.0, 1.0e-7], 16)


if __name__ == "__main__":
    main()
