#!/usr/bin/env python
"""Study every Table II compressor on real Krylov-vector data.

Captures actual Krylov basis vectors from an atmosmodd solve (the data
of the paper's Fig. 2) and evaluates every registered compressor on
them: bits/value, compression ratio, error bounds, PSNR.  Demonstrates
the paper's Section III point — generic decorrelation buys nothing on
uncorrelated Krylov data, while FRSZ2's exponent-only scheme does.

Run:  python examples/compression_study.py
"""

import numpy as np

from repro.bench import format_table, krylov_vectors
from repro.compressors import evaluate, list_compressors, make_compressor


def main() -> None:
    print("capturing Krylov vectors from an atmosmodd solve ...")
    vectors = krylov_vectors("atmosmodd", iterations=(0, 10), scale="default")
    for j, v in sorted(vectors.items()):
        print(f"\nKrylov vector v_{j} (n={v.size}, ||v||={np.linalg.norm(v):.3f})")
        rows = []
        for name in list_compressors():
            r = evaluate(make_compressor(name), v)
            rows.append(
                (
                    name,
                    f"{r.bits_per_value:.2f}",
                    f"{r.compression_ratio:.2f}",
                    f"{r.max_abs_error:.1e}",
                    f"{r.psnr_db:.1f}",
                    "yes" if r.bound_satisfied else "NO",
                )
            )
        print(
            format_table(
                f"compressors on v_{j}",
                ["compressor", "bits/value", "ratio", "max abs err", "PSNR dB", "bound ok"],
                rows,
            )
        )
    print("\nReading the table: the SZ-like configurations often *exceed* 64")
    print("bits/value on this data (compression is counterproductive, paper")
    print("Section III-A), ZFP's transform pays bits for nothing, while the")
    print("FRSZ2 formats sit exactly at their fixed rate with the best")
    print("error-per-bit — the design premise of the paper.")


if __name__ == "__main__":
    main()
