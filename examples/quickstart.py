#!/usr/bin/env python
"""Quickstart: compress data with FRSZ2 and solve a system with CB-GMRES.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FRSZ2
from repro.solvers import CbGmres, make_problem


def demo_compression() -> None:
    print("=" * 64)
    print("FRSZ2 compression (BS=32, l=32 — the paper's recommendation)")
    print("=" * 64)
    rng = np.random.default_rng(0)
    # a Krylov-like vector: normalized, values in [-1, 1]
    x = rng.standard_normal(100_000)
    x /= np.linalg.norm(x)

    codec = FRSZ2(bit_length=32, block_size=32)
    compressed = codec.compress(x)
    decompressed = codec.decompress(compressed)

    print(f"input:             {x.size} float64 values ({x.nbytes} bytes)")
    print(f"compressed:        {compressed.nbytes} bytes "
          f"({compressed.bits_per_value:.2f} bits/value)")
    print(f"compression ratio: {x.nbytes / compressed.nbytes:.2f}x")
    print(f"max abs error:     {np.abs(x - decompressed).max():.3e}")
    err32 = np.abs(x - x.astype(np.float32).astype(np.float64))
    print(f"float32 cast err:  {err32.max():.3e}  "
          f"(FRSZ2 keeps ~7 more significand bits at the same storage)")

    # random access: decompress three values without touching the rest
    idx = np.array([5, 31_337, 99_999])
    print(f"random access [{idx}]: {codec.get(compressed, idx)}")
    print()


def demo_solver() -> None:
    print("=" * 64)
    print("CB-GMRES with a compressed Krylov basis")
    print("=" * 64)
    problem = make_problem("atmosmodd", scale="smoke")
    print(f"matrix: atmosmodd analog, n={problem.a.n}, nnz={problem.a.nnz}, "
          f"target RRN {problem.target_rrn:.0e}")
    for storage in ("float64", "float32", "frsz2_32"):
        solver = CbGmres(problem.a, storage=storage)
        result = solver.solve(problem.b, problem.target_rrn)
        err = np.linalg.norm(result.x - problem.x_sol)
        print(
            f"  {storage:9s}: {result.iterations:4d} iterations, "
            f"final RRN {result.final_rrn:.2e}, "
            f"basis at {result.stats.bits_per_value:.1f} bits/value, "
            f"|x - x_sol| = {err:.2e}"
        )
    print()
    print("The compressed formats converge to the same accuracy — the basis")
    print("compression costs iterations, not final solution quality.")


if __name__ == "__main__":
    demo_compression()
    demo_solver()
