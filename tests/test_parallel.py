"""Tests for the deterministic parallel grid runner (`repro.parallel`).

The contract under test: any ``jobs`` value yields results identical to
the serial path on every deterministic field, in submission order, and
a broken worker surfaces as a named :class:`WorkerCrashError` — never a
hang, never a scrambled result list.
"""

import os
import time

import pytest

from repro.bench.perf import run_bench
from repro.parallel import WorkerCrashError, resolve_jobs, run_grid
from repro.robust.campaign import run_campaign

# -- module-level workers (must be picklable for the process pool) -----


def _square(x):
    return x * x


def _sleep_inverse(i, total):
    """Finish in reverse submission order to stress result ordering."""
    time.sleep(0.02 * (total - i))
    return i


def _boom(x):
    raise ValueError(f"boom on {x}")


def _die(x):
    os._exit(13)  # simulate a segfault / OOM-killed worker


class TestRunGrid:
    def test_serial_results(self):
        assert run_grid(_square, [dict(x=i) for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial(self):
        tasks = [dict(x=i) for i in range(6)]
        assert run_grid(_square, tasks, jobs=3) == run_grid(_square, tasks, jobs=1)

    def test_submission_order_beats_completion_order(self):
        tasks = [dict(i=i, total=4) for i in range(4)]
        assert run_grid(_sleep_inverse, tasks, jobs=4) == [0, 1, 2, 3]

    def test_empty_grid(self):
        assert run_grid(_square, [], jobs=4) == []

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            run_grid(_square, [dict(x=1)], labels=["a", "b"])

    def test_worker_exception_is_named(self):
        tasks = [dict(x=1), dict(x=2)]
        with pytest.raises(WorkerCrashError) as exc:
            run_grid(_boom, tasks, jobs=2, labels=["cell[1]", "cell[2]"])
        assert exc.value.label == "cell[1]"
        assert isinstance(exc.value.cause, ValueError)
        assert "cell[1]" in str(exc.value)

    def test_worker_death_is_named_not_a_hang(self):
        tasks = [dict(x=1), dict(x=2)]
        start = time.monotonic()
        with pytest.raises(WorkerCrashError) as exc:
            run_grid(_die, tasks, jobs=2, labels=["cell[1]", "cell[2]"])
        assert time.monotonic() - start < 60
        assert exc.value.label == "cell[1]"
        assert exc.value.cause is None
        assert "died" in str(exc.value)

    def test_serial_mode_propagates_raw_exception(self):
        with pytest.raises(ValueError):
            run_grid(_boom, [dict(x=1)], jobs=1)

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1


def _strip_nondeterministic(doc):
    """Drop the host-time fields a parallel run is allowed to change."""
    doc = dict(doc)
    doc.pop("created", None)
    entries = []
    for entry in doc["entries"]:
        entry = dict(entry)
        entry.pop("wall_seconds", None)
        entry["spmv"] = {
            k: v
            for k, v in entry["spmv"].items()
            if k not in ("wall_seconds", "csr_wall_seconds", "speedup_vs_csr")
        }
        basis = dict(entry["basis"])
        basis["modes"] = {
            mode: {k: v for k, v in parts.items() if k != "wall_seconds"}
            for mode, parts in basis["modes"].items()
        }
        entry["basis"] = basis
        entry["phases"] = {
            phase: {"modeled_seconds": parts["modeled_seconds"]}
            for phase, parts in entry["phases"].items()
        }
        entries.append(entry)
    doc["entries"] = entries
    return doc


class TestParallelBench:
    def test_jobs2_bench_matches_serial_field_for_field(self):
        kwargs = dict(
            matrices=["lung2"],
            storages=["float64", "frsz2_32"],
            scale="smoke",
            m=30,
            max_iter=400,
        )
        serial = run_bench(jobs=1, **kwargs)
        fanned = run_bench(jobs=2, **kwargs)
        assert _strip_nondeterministic(serial) == _strip_nondeterministic(fanned)


class TestParallelCampaign:
    def test_jobs2_campaign_matches_serial(self):
        kwargs = dict(
            matrix="lung2",
            scale="smoke",
            faults=("payload_bitflip", "readout_nan"),
            storages=("frsz2_32",),
            rates=(0.02,),
            seed=7,
            m=30,
            max_iter=300,
        )
        serial = run_campaign(jobs=1, **kwargs)
        fanned = run_campaign(jobs=2, **kwargs)
        assert serial.cells == fanned.cells
        assert serial.matrix == fanned.matrix
        assert serial.seed == fanned.seed
