"""Tests for the deterministic parallel grid runner (`repro.parallel`).

The contract under test: any ``jobs`` value yields results identical to
the serial path on every deterministic field, in submission order, and
a broken worker surfaces as a named :class:`WorkerCrashError` — never a
hang, never a scrambled result list.
"""

import os
import time

import pytest

from repro.bench.perf import run_bench
from repro.parallel import WorkerCrashError, resolve_jobs, run_grid
from repro.robust.campaign import run_campaign

# -- module-level workers (must be picklable for the process pool) -----


def _square(x):
    return x * x


def _sleep_inverse(i, total):
    """Finish in reverse submission order to stress result ordering."""
    time.sleep(0.02 * (total - i))
    return i


def _boom(x):
    raise ValueError(f"boom on {x}")


def _die(x):
    os._exit(13)  # simulate a segfault / OOM-killed worker


def _boom_on_even(x):
    if x % 2 == 0:
        raise ValueError(f"boom on {x}")
    return x * 10


def _sleep_for(seconds):
    time.sleep(seconds)
    return seconds


class TestRunGrid:
    def test_serial_results(self):
        assert run_grid(_square, [dict(x=i) for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial(self):
        tasks = [dict(x=i) for i in range(6)]
        assert run_grid(_square, tasks, jobs=3) == run_grid(_square, tasks, jobs=1)

    def test_submission_order_beats_completion_order(self):
        tasks = [dict(i=i, total=4) for i in range(4)]
        assert run_grid(_sleep_inverse, tasks, jobs=4) == [0, 1, 2, 3]

    def test_empty_grid(self):
        assert run_grid(_square, [], jobs=4) == []

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            run_grid(_square, [dict(x=1)], labels=["a", "b"])

    def test_worker_exception_is_named(self):
        tasks = [dict(x=1), dict(x=2)]
        with pytest.raises(WorkerCrashError) as exc:
            run_grid(_boom, tasks, jobs=2, labels=["cell[1]", "cell[2]"])
        assert exc.value.label == "cell[1]"
        assert isinstance(exc.value.cause, ValueError)
        assert "cell[1]" in str(exc.value)

    def test_worker_death_is_named_not_a_hang(self):
        tasks = [dict(x=1), dict(x=2)]
        start = time.monotonic()
        with pytest.raises(WorkerCrashError) as exc:
            run_grid(_die, tasks, jobs=2, labels=["cell[1]", "cell[2]"])
        assert time.monotonic() - start < 60
        assert exc.value.label == "cell[1]"
        assert exc.value.cause is None
        assert "died" in str(exc.value)

    def test_serial_mode_propagates_raw_exception(self):
        with pytest.raises(ValueError):
            run_grid(_boom, [dict(x=1)], jobs=1)

    def test_unknown_on_error_mode_rejected(self):
        with pytest.raises(ValueError):
            run_grid(_square, [dict(x=1)], on_error="explode")

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1


class TestCollectMode:
    """on_error="collect": partial results with per-task error records."""

    def test_serial_collect_keeps_partial_results(self):
        tasks = [dict(x=i) for i in range(4)]
        results = run_grid(_boom_on_even, tasks, jobs=1, on_error="collect",
                           labels=[f"t{i}" for i in range(4)])
        assert results[1] == 10 and results[3] == 30
        for index in (0, 2):
            error = results[index]
            assert isinstance(error, WorkerCrashError)
            assert error.label == f"t{index}"
            assert error.kind == "error"
            assert isinstance(error.cause, ValueError)

    def test_parallel_collect_matches_serial_shape(self):
        tasks = [dict(x=i) for i in range(4)]
        serial = run_grid(_boom_on_even, tasks, jobs=1, on_error="collect")
        fanned = run_grid(_boom_on_even, tasks, jobs=2, on_error="collect")
        assert [type(r) for r in serial] == [type(r) for r in fanned]
        assert [r for r in serial if not isinstance(r, WorkerCrashError)] == \
               [r for r in fanned if not isinstance(r, WorkerCrashError)]

    def test_collect_survives_worker_death(self):
        tasks = [dict(x=1), dict(x=2), dict(x=3)]
        results = run_grid(_die, tasks[:1], jobs=2, on_error="collect") + \
            run_grid(_square, tasks[1:], jobs=2, on_error="collect")
        assert isinstance(results[0], WorkerCrashError)
        assert results[0].kind == "crash"
        assert results[1:] == [4, 9]

    def test_mixed_deaths_and_results_one_grid(self):
        tasks = [dict(x=0), dict(x=1), dict(x=2), dict(x=3)]
        outcomes = run_grid(_boom_on_even, tasks, jobs=3, on_error="collect")
        kinds = ["err" if isinstance(o, WorkerCrashError) else o
                 for o in outcomes]
        assert kinds == ["err", 10, "err", 30]


class TestPerTaskTimeout:
    """timeout= is a per-task wall deadline measured from task start."""

    def test_timed_out_task_collected_others_survive(self):
        tasks = [dict(seconds=5.0), dict(seconds=0.01)]
        start = time.monotonic()
        results = run_grid(_sleep_for, tasks, jobs=2, timeout=0.5,
                           on_error="collect", labels=["slow", "fast"])
        assert time.monotonic() - start < 5.0
        assert isinstance(results[0], WorkerCrashError)
        assert results[0].kind == "timeout"
        assert isinstance(results[0].cause, TimeoutError)
        assert results[1] == 0.01

    def test_timeout_counts_from_task_start_not_submission(self):
        # 6 tasks on 2 workers: each takes 0.3s, timeout 0.5s per task.
        # The last pair starts ~0.6s after submission, so a wall-clock
        # measured from *submission* would kill it; a true per-task
        # deadline lets every task finish.
        tasks = [dict(seconds=0.3)] * 6
        results = run_grid(_sleep_for, tasks, jobs=2, timeout=0.5,
                           on_error="collect")
        assert results == [0.3] * 6

    def test_timeout_raises_in_raise_mode(self):
        with pytest.raises(WorkerCrashError) as exc:
            run_grid(_sleep_for, [dict(seconds=5.0)], jobs=2, timeout=0.4)
        assert exc.value.kind == "timeout"


def _strip_nondeterministic(doc):
    """Drop the host-time fields a parallel run is allowed to change."""
    doc = dict(doc)
    doc.pop("created", None)
    doc["backend"] = {
        k: v
        for k, v in doc["backend"].items()
        if k != "codec_speedup_geomean"
    }
    entries = []
    for entry in doc["entries"]:
        entry = dict(entry)
        entry.pop("wall_seconds", None)
        entry["backend"] = {
            k: v
            for k, v in entry["backend"].items()
            if k not in ("codec_wall_seconds", "numpy_codec_wall_seconds",
                         "speedup_vs_numpy")
        }
        entry["spmv"] = {
            k: v
            for k, v in entry["spmv"].items()
            if k not in ("wall_seconds", "csr_wall_seconds", "speedup_vs_csr")
        }
        basis = dict(entry["basis"])
        basis["modes"] = {
            mode: {k: v for k, v in parts.items() if k != "wall_seconds"}
            for mode, parts in basis["modes"].items()
        }
        entry["basis"] = basis
        entry["phases"] = {
            phase: {"modeled_seconds": parts["modeled_seconds"]}
            for phase, parts in entry["phases"].items()
        }
        entries.append(entry)
    doc["entries"] = entries
    return doc


class TestParallelBench:
    def test_jobs2_bench_matches_serial_field_for_field(self):
        kwargs = dict(
            matrices=["lung2"],
            storages=["float64", "frsz2_32"],
            scale="smoke",
            m=30,
            max_iter=400,
        )
        serial = run_bench(jobs=1, **kwargs)
        fanned = run_bench(jobs=2, **kwargs)
        assert _strip_nondeterministic(serial) == _strip_nondeterministic(fanned)


class TestParallelCampaign:
    def test_jobs2_campaign_matches_serial(self):
        kwargs = dict(
            matrix="lung2",
            scale="smoke",
            faults=("payload_bitflip", "readout_nan"),
            storages=("frsz2_32",),
            rates=(0.02,),
            seed=7,
            m=30,
            max_iter=300,
        )
        serial = run_campaign(jobs=1, **kwargs)
        fanned = run_campaign(jobs=2, **kwargs)
        assert serial.cells == fanned.cells
        assert serial.matrix == fanned.matrix
        assert serial.seed == fanned.seed
