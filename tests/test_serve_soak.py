"""The serve soak: ≥200 mixed jobs with seeded chaos, invariants asserted.

This is the acceptance test of the service layer's robustness contract:
every admitted job reaches a terminal state, seeded worker crashes /
hangs / solve errors are retried with backoff and succeed without
aborting unrelated jobs, the bounded queue pushes back, no cross-job
state leaks, and a sample of non-faulted jobs is bit-identical to
direct in-process solves.  `run_soak(check=True)` raises on any
violation, so the assertions here are mostly about the report shape.
"""

import json

from repro.serve import run_soak, validate_serve_health


def test_soak_200_jobs_with_chaos(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    report = run_soak(jobs=200, workers=4, seed=0, out=str(out), check=True)
    soak = report["soak"]
    serve = report["serve"]

    assert soak["invariant_failures"] == []
    assert soak["jobs"] == serve["jobs"]["accepted"] == 200
    # seeded chaos actually ran: crashes and retries happened
    assert soak["process_chaos_jobs"] >= 10
    assert serve["incidents"]["worker_crashes"] >= 10
    assert serve["jobs"]["retried"] >= soak["process_chaos_jobs"] - soak["cancel_requests"]
    assert serve["jobs"]["degraded"] > 0
    # the bounded queue pushed back while 200 jobs raced 32 slots
    assert soak["backpressure_rejections"] > 0
    # bit-identity was checked on a real sample
    assert soak["bit_identity_checked"] >= 10
    assert soak["bit_identity_mismatches"] == 0
    # every accepted job is accounted for by a terminal state
    jobs = serve["jobs"]
    assert (jobs["done"] + jobs["failed"] + jobs["cancelled"]
            + jobs["timed_out"]) == 200
    assert jobs["failed"] == 0 and jobs["timed_out"] == 0

    # the written report round-trips and validates
    doc = json.loads(out.read_text())
    validate_serve_health(doc["serve"])
    assert doc["soak"]["jobs"] == 200
