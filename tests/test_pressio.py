"""Tests for the compressor registry (Table II) and metrics."""

import math

import numpy as np
import pytest

from repro.compressors import (
    FRSZ2_CONFIGS,
    TABLE_II,
    ErrorBoundMode,
    evaluate,
    list_compressors,
    make_compressor,
)
from repro.compressors.metrics import (
    compression_ratio,
    max_abs_error,
    max_pointwise_relative_error,
    psnr,
)


def krylov_vector(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


class TestRegistry:
    def test_table_ii_is_complete(self):
        """Exactly the nine configurations of the paper's Table II."""
        assert set(TABLE_II) == {
            "sz3_06",
            "sz3_07",
            "sz3_08",
            "zfp_06",
            "zfp_10",
            "sz_pwrel_04",
            "sz3_pwrel_04",
            "zfp_fr_16",
            "zfp_fr_32",
        }

    def test_table_ii_bound_types(self):
        assert TABLE_II["sz3_06"].error_bound_type == "absolute"
        assert TABLE_II["sz_pwrel_04"].error_bound_type == "relative"
        assert TABLE_II["zfp_fr_16"].error_bound_type == "fixed rate"

    def test_frsz2_configs(self):
        assert set(FRSZ2_CONFIGS) == {"frsz2_16", "frsz2_21", "frsz2_32"}

    def test_list_compressors_contains_everything(self):
        names = list_compressors()
        assert "sz3_08" in names and "frsz2_32" in names

    def test_make_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="sz3_06"):
            make_compressor("nope")

    def test_specs_build_fresh_instances(self):
        a = make_compressor("sz3_06")
        b = make_compressor("sz3_06")
        assert a is not b

    @pytest.mark.parametrize("name", sorted(TABLE_II) + sorted(FRSZ2_CONFIGS))
    def test_every_config_roundtrips(self, name):
        x = krylov_vector(2048, seed=1)
        comp = make_compressor(name)
        y = comp.roundtrip(x)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("name", sorted(TABLE_II) + sorted(FRSZ2_CONFIGS))
    def test_every_config_satisfies_declared_bound(self, name):
        report = evaluate(make_compressor(name), krylov_vector(4096, seed=2))
        assert report.bound_satisfied


class TestFrsz2Adapter:
    def test_size_matches_eq3(self):
        comp = make_compressor("frsz2_32")
        buf = comp.compress(np.ones(32 * 100))
        assert buf.bits_per_value == pytest.approx(33.0)

    def test_matches_codec_output(self):
        from repro.core import FRSZ2

        x = krylov_vector(1000, seed=3)
        adapter_out = make_compressor("frsz2_21").roundtrip(x)
        codec_out = FRSZ2(21).roundtrip(x)
        assert np.array_equal(adapter_out, codec_out)

    def test_mode_is_fixed_rate(self):
        assert make_compressor("frsz2_16").mode is ErrorBoundMode.FIXED_RATE


class TestMetrics:
    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5

    def test_max_abs_error_empty(self):
        assert max_abs_error(np.zeros(0), np.zeros(0)) == 0.0

    def test_pw_rel_error_basic(self):
        x = np.array([2.0, -4.0])
        y = np.array([2.2, -4.0])
        assert max_pointwise_relative_error(x, y) == pytest.approx(0.1)

    def test_pw_rel_error_zero_mismatch_is_inf(self):
        assert max_pointwise_relative_error(np.array([0.0]), np.array([1e-30])) == math.inf

    def test_pw_rel_error_all_zero(self):
        assert max_pointwise_relative_error(np.zeros(3), np.zeros(3)) == 0.0

    def test_psnr_exact_is_inf(self):
        x = np.array([1.0, 2.0])
        assert psnr(x, x) == math.inf

    def test_psnr_decreases_with_noise(self):
        x = krylov_vector(1000)
        small = psnr(x, x + 1e-9)
        large = psnr(x, x + 1e-5)
        assert small > large

    def test_compression_ratio(self):
        comp = make_compressor("frsz2_16")
        buf = comp.compress(np.ones(32 * 100))
        assert compression_ratio(buf) == pytest.approx(64 / 17.0)

    def test_evaluate_report_fields(self):
        report = evaluate(make_compressor("zfp_fr_32"), krylov_vector(512))
        assert report.n == 512
        assert report.bits_per_value > 0
        assert report.compression_ratio > 1.0
        assert report.psnr_db > 50


class TestPaperOrderings:
    """Quality orderings the paper's Fig. 5/6 discussion relies on."""

    def test_frsz2_32_more_accurate_than_float32_cast(self):
        x = krylov_vector(32 * 512, seed=4)
        frsz2 = make_compressor("frsz2_32").roundtrip(x)
        f32 = x.astype(np.float32).astype(np.float64)
        assert np.median(np.abs(frsz2 - x)) < np.median(np.abs(f32 - x))

    def test_zfp_fr_32_less_accurate_than_frsz2_32(self):
        x = krylov_vector(32 * 512, seed=5)
        zfp = make_compressor("zfp_fr_32").roundtrip(x)
        frsz2 = make_compressor("frsz2_32").roundtrip(x)
        assert np.median(np.abs(frsz2 - x)) < np.median(np.abs(zfp - x))

    def test_pointwise_relative_preserves_magnitudes_better_than_absolute(self):
        """Paper Section VI-A: pw-rel bounds beat abs bounds for small
        values because the relative information is kept."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal(4000) * 10.0 ** rng.integers(-9, 0, 4000)
        abs_rec = make_compressor("sz3_06").roundtrip(x)
        rel_rec = make_compressor("sz3_pwrel_04").roundtrip(x)
        small = np.abs(x) < 1e-5
        assert np.any(small)
        rel_err_abs = np.abs(abs_rec[small] - x[small]) / np.abs(x[small])
        rel_err_rel = np.abs(rel_rec[small] - x[small]) / np.abs(x[small])
        assert np.median(rel_err_rel) < np.median(rel_err_abs)
