"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "atmosmodd"])
        assert args.storage == "frsz2_32"
        assert args.max_iter == 20_000

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "atmosmodd" in out
        assert "frsz2_32" in out
        assert "sz3_08" in out

    def test_solve_converges(self, capsys):
        assert main(["solve", "lung2", "--storage", "frsz2_32"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "modeled H100 time" in out

    def test_solve_exit_code_on_failure(self, capsys):
        # absurdly tight target cannot be met within 20 iterations
        rc = main(["solve", "lung2", "--target", "1e-300", "--max-iter", "20"])
        assert rc == 1

    def test_solve_with_jacobi(self, capsys):
        assert main(["solve", "lung2", "--jacobi"]) == 0

    def test_jacobi_flag_is_alias_for_preconditioner_choice(self, capsys):
        assert main(["solve", "lung2", "--jacobi"]) == 0
        out = capsys.readouterr().out
        assert "preconditioner: jacobi" in out

    def test_solve_with_ilu0(self, capsys):
        assert main(["solve", "lung2", "--preconditioner", "ilu0"]) == 0
        out = capsys.readouterr().out
        assert "preconditioner: ilu0" in out
        assert "converged" in out

    def test_solve_with_compressed_block_jacobi(self, capsys):
        rc = main([
            "solve", "lung2",
            "--preconditioner", "block_jacobi",
            "--prec-storage", "frsz2_16",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "frsz2_16" in out

    def test_preconditioner_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "lung2", "--preconditioner", "amg"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "lung2", "--prec-storage", "int8"])

    def test_preconditioner_defaults(self):
        args = build_parser().parse_args(["solve", "atmosmodd"])
        assert args.preconditioner == "none"
        assert args.prec_storage == "float64"

    def test_compress_random(self, capsys):
        assert main(["compress", "--format", "frsz2_16", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "bits/value" in out

    def test_compress_npy_input(self, tmp_path, capsys):
        path = tmp_path / "x.npy"
        np.save(path, np.linspace(-1, 1, 500))
        assert main(["compress", "--input", str(path), "--format", "zfp_fr_32"]) == 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0

    def test_experiment_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        assert "PR02R" in capsys.readouterr().out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "frsz2_32" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_predict(self, capsys):
        assert main(["predict", "PR02R"]) == 0
        out = capsys.readouterr().out
        assert "recommended storage" in out
        assert "screened out" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--max-iter", "60"]) == 0
        out = capsys.readouterr().out
        assert "calibration" in out
        assert "atmosmodd" in out


class TestBenchCommand:
    def _run_bench(self, tmp_path, name="base.json"):
        out = tmp_path / name
        rc = main([
            "bench", "--matrices", "lung2", "--storages", "frsz2_32",
            "--restart", "30", "--max-iter", "500", "--out", str(out),
        ])
        return rc, out

    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == "BENCH_gmres.json"
        # smoke-scale matrices are too small for meaningful SpMV
        # wall-clock ratios, so the CLI benches at "default" scale
        assert args.scale == "default"
        assert args.tolerance == 0.05

    def test_bench_writes_valid_json(self, tmp_path, capsys):
        rc, out = self._run_bench(tmp_path)
        assert rc == 0
        assert out.exists()
        assert "lung2" in capsys.readouterr().out
        assert main(["bench", "--check", str(out)]) == 0

    def test_bench_check_rejects_corrupt_file(self, tmp_path, capsys):
        rc, out = self._run_bench(tmp_path)
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        doc["schema_version"] = 999
        out.write_text(json.dumps(doc))
        assert main(["bench", "--check", str(out)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_bench_compare_identical_clean(self, tmp_path, capsys):
        rc, out = self._run_bench(tmp_path)
        assert rc == 0
        assert main(["bench", "--compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_flags_injected_regression(self, tmp_path, capsys):
        rc, out = self._run_bench(tmp_path)
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        doc["entries"][0]["iterations"] *= 3
        doc["entries"][0]["modeled_seconds"] *= 3.0
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(doc))
        rc = main(["bench", "--compare", str(out), str(worse)])
        assert rc == 1
        out_text = capsys.readouterr().out
        assert "iterations" in out_text
        assert "modeled_seconds" in out_text

    def test_bench_compare_missing_file(self, tmp_path, capsys):
        rc, out = self._run_bench(tmp_path)
        assert rc == 0
        missing = tmp_path / "nope.json"
        assert main(["bench", "--compare", str(out), str(missing)]) == 2

    def test_bench_unknown_matrix(self, capsys):
        assert main(["bench", "--matrices", "not_a_matrix"]) == 2
        assert "unknown matrices" in capsys.readouterr().err


class TestThroughputCommand:
    def _run_throughput(self, tmp_path, name="tp.json", batch="2"):
        out = tmp_path / name
        rc = main([
            "throughput", "--matrices", "lung2", "--storages", "frsz2_32",
            "--batch", batch, "--rounds", "1", "--out", str(out),
        ])
        return rc, out

    def test_throughput_parser_defaults(self):
        args = build_parser().parse_args(["throughput"])
        assert args.out == "BENCH_throughput.json"
        assert args.scale == "smoke"
        assert args.batch == 8
        assert args.spmv_format == "csr"
        assert args.min_speedup is None

    def test_throughput_writes_valid_json(self, tmp_path, capsys):
        rc, out = self._run_throughput(tmp_path)
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "lung2" in text and "aggregate" in text
        assert main(["throughput", "--check", str(out)]) == 0

    def test_throughput_check_rejects_corrupt_file(self, tmp_path, capsys):
        rc, out = self._run_throughput(tmp_path)
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        doc["schema_version"] = 999
        out.write_text(json.dumps(doc))
        assert main(["throughput", "--check", str(out)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_throughput_check_rejects_identity_tampering(self, tmp_path, capsys):
        rc, out = self._run_throughput(tmp_path)
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        doc["entries"][0]["bit_identical_b1"] = False
        out.write_text(json.dumps(doc))
        assert main(["throughput", "--check", str(out)]) == 2
        assert "bit_identical" in capsys.readouterr().err

    def test_throughput_min_speedup_gate(self, tmp_path, capsys):
        rc, out = self._run_throughput(tmp_path)
        assert rc == 0
        assert main([
            "throughput", "--check", str(out), "--min-speedup", "1000",
        ]) == 1
        assert "below" in capsys.readouterr().err

    def test_throughput_unknown_matrix(self, capsys):
        assert main(["throughput", "--matrices", "not_a_matrix"]) == 2


class TestSharedOptionRegistry:
    """The shared-option registry is the single source of truth: every
    declared flag must be registered on its subcommand, and every
    epilog row must come from the same table (no drift possible)."""

    def _subparsers(self):
        import argparse

        parser = build_parser()
        (action,) = [
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        ]
        return action.choices

    def test_every_declared_flag_is_registered(self):
        from repro.__main__ import SHARED_BY_COMMAND

        subs = self._subparsers()
        for command, options in SHARED_BY_COMMAND.items():
            flags = subs[command].format_help()
            for name in options:
                assert f"--{name}" in flags, (command, name)

    def test_epilog_lists_exactly_the_shared_flags(self):
        from repro.__main__ import SHARED_BY_COMMAND, shared_epilog

        for command, options in SHARED_BY_COMMAND.items():
            epilog = shared_epilog(command)
            for name in options:
                assert f"--{name}" in epilog, (command, name)

    def test_no_subcommand_drifts_on_core_grid_flags(self):
        """The drift this registry exists to prevent: every solver-grid
        subcommand must take --spmv-format AND --basis-mode (the faults
        subcommand historically lacked --basis-mode)."""
        subs = self._subparsers()
        for command in ("solve", "faults", "bench", "serve", "throughput"):
            helptext = subs[command].format_help()
            assert "--spmv-format" in helptext, command
            assert "--basis-mode" in helptext, command

    def test_overrides_only_touch_default_and_help(self):
        from repro.__main__ import SHARED_BY_COMMAND

        for command, options in SHARED_BY_COMMAND.items():
            for name, overrides in options.items():
                assert set(overrides) <= {"default", "help", "choices"}, (
                    command, name,
                )

    def test_defaults_survive_refactor(self):
        p = build_parser()
        args = p.parse_args(["faults"])
        assert args.basis_mode == "cached"
        assert args.spmv_format == "csr"
        assert args.restart == 50
        args = p.parse_args(["serve", "lung2"])
        assert args.storage == "frsz2_32"
        assert args.scale == "smoke"

    def test_adaptive_storage_accepted(self):
        p = build_parser()
        assert p.parse_args(["solve", "lung2", "--storage", "adaptive"]).storage == "adaptive"
        assert p.parse_args(["bench", "--storages", "adaptive"]).storages == ["adaptive"]
        assert p.parse_args(["faults", "--storages", "adaptive"]).storages == ["adaptive"]
        assert p.parse_args(["serve", "lung2", "--storage", "adaptive"]).storage == "adaptive"
