"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "atmosmodd"])
        assert args.storage == "frsz2_32"
        assert args.max_iter == 20_000

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "atmosmodd" in out
        assert "frsz2_32" in out
        assert "sz3_08" in out

    def test_solve_converges(self, capsys):
        assert main(["solve", "lung2", "--storage", "frsz2_32"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "modeled H100 time" in out

    def test_solve_exit_code_on_failure(self, capsys):
        # absurdly tight target cannot be met within 20 iterations
        rc = main(["solve", "lung2", "--target", "1e-300", "--max-iter", "20"])
        assert rc == 1

    def test_solve_with_jacobi(self, capsys):
        assert main(["solve", "lung2", "--jacobi"]) == 0

    def test_compress_random(self, capsys):
        assert main(["compress", "--format", "frsz2_16", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "bits/value" in out

    def test_compress_npy_input(self, tmp_path, capsys):
        path = tmp_path / "x.npy"
        np.save(path, np.linspace(-1, 1, 500))
        assert main(["compress", "--input", str(path), "--format", "zfp_fr_32"]) == 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0

    def test_experiment_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        assert "PR02R" in capsys.readouterr().out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "frsz2_32" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_predict(self, capsys):
        assert main(["predict", "PR02R"]) == 0
        out = capsys.readouterr().out
        assert "recommended storage" in out
        assert "screened out" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--max-iter", "60"]) == 0
        out = capsys.readouterr().out
        assert "calibration" in out
        assert "atmosmodd" in out
