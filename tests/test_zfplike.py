"""Tests for the ZFP-like block-transform comparator compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import ErrorBoundMode, ZFPLike
from repro.compressors.metrics import max_abs_error
from repro.compressors.zfplike import forward_transform, inverse_transform


def krylov_vector(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


class TestTransform:
    def test_inverse_exact_small(self):
        y = np.array([[1, 2, 3, 4], [-5, 7, 0, -1]], dtype=np.int64)
        assert np.array_equal(inverse_transform(forward_transform(y)), y)

    def test_inverse_exact_random(self):
        rng = np.random.default_rng(0)
        y = rng.integers(-(1 << 60), 1 << 60, (1000, 4)).astype(np.int64)
        assert np.array_equal(inverse_transform(forward_transform(y)), y)

    def test_constant_block_concentrates_energy(self):
        """Decorrelation works when values correlate: details vanish."""
        y = np.full((1, 4), 12345, dtype=np.int64)
        t = forward_transform(y)
        assert t[0, 0] == 12345
        assert np.array_equal(t[0, 1:], [0, 0, 0])

    def test_linear_ramp_small_details(self):
        y = np.arange(4, dtype=np.int64).reshape(1, 4) * 1000
        t = forward_transform(y)
        assert abs(t[0, 2]) <= 1000 and abs(t[0, 3]) <= 1000

    @given(st.lists(st.integers(min_value=-(1 << 61), max_value=1 << 61), min_size=4, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_inverse_property(self, vals):
        y = np.array([vals], dtype=np.int64)
        assert np.array_equal(inverse_transform(forward_transform(y)), y)


class TestConstruction:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ZFPLike(ErrorBoundMode.FIXED_RATE, rate=2)
        with pytest.raises(ValueError):
            ZFPLike(ErrorBoundMode.FIXED_RATE, rate=100)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=0.0)

    def test_rejects_pwrel_mode(self):
        with pytest.raises(ValueError):
            ZFPLike(ErrorBoundMode.POINTWISE_RELATIVE)


class TestFixedRate:
    @pytest.mark.parametrize("rate", [16, 32, 48])
    def test_bits_per_value_matches_rate(self, rate):
        x = krylov_vector(4096)
        buf = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=rate).compress(x)
        # budget is rate*4 bits per block incl. 16-bit exponent; integer
        # division can only make it smaller, header is 16 bytes
        assert buf.bits_per_value <= rate + 0.5

    def test_higher_rate_lower_error(self):
        x = krylov_vector(4096, seed=1)
        errs = [
            max_abs_error(x, ZFPLike(ErrorBoundMode.FIXED_RATE, rate=r).roundtrip(x))
            for r in (8, 16, 32, 64)
        ]
        assert all(a > b for a, b in zip(errs, errs[1:]))

    def test_roundtrip_zero_vector(self):
        x = np.zeros(100)
        y = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=16).roundtrip(x)
        assert np.array_equal(y, x)

    def test_partial_block(self):
        x = krylov_vector(10, seed=2)  # 2.5 blocks
        y = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=32).roundtrip(x)
        assert y.shape == (10,)
        assert max_abs_error(x, y) < 1e-6

    def test_empty_input(self):
        comp = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=16)
        assert comp.decompress(comp.compress(np.zeros(0))).size == 0

    def test_fr32_worse_than_frsz2_32_on_krylov_data(self):
        """Fig. 6's punchline: at the same storage, the transform-based
        fixed-rate scheme retains less information than FRSZ2."""
        from repro.core import FRSZ2

        x = krylov_vector(32 * 512, seed=3)
        zfp_err = np.median(
            np.abs(ZFPLike(ErrorBoundMode.FIXED_RATE, rate=32).roundtrip(x) - x)
        )
        frsz2_err = np.median(np.abs(FRSZ2(32).roundtrip(x) - x))
        assert frsz2_err < zfp_err


class TestFixedAccuracy:
    @pytest.mark.parametrize("tol", [1.4e-6, 4.0e-10, 1e-3])
    def test_bound_on_krylov_data(self, tol):
        x = krylov_vector(8192, seed=4)
        y = ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=tol).roundtrip(x)
        assert max_abs_error(x, y) <= tol

    def test_bound_on_mixed_magnitudes(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(4000) * 10.0 ** rng.integers(-6, 3, 4000)
        tol = 1e-7
        y = ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=tol).roundtrip(x)
        assert max_abs_error(x, y) <= tol

    def test_tighter_tolerance_costs_more_bits(self):
        x = krylov_vector(8192, seed=6)
        loose = ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=1e-4).compress(x)
        tight = ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=1e-12).compress(x)
        assert tight.bits_per_value > loose.bits_per_value

    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        st.sampled_from([1e-2, 1e-6, 1e-10]),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bound(self, vals, tol):
        x = np.array(vals)
        y = ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=tol).roundtrip(x)
        assert max_abs_error(x, y) <= tol


class TestStrictDecode:
    @pytest.mark.parametrize(
        "comp",
        [
            ZFPLike(ErrorBoundMode.FIXED_RATE, rate=16),
            ZFPLike(ErrorBoundMode.FIXED_RATE, rate=32),
            ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=1e-8),
        ],
        ids=["fr16", "fr32", "abs8"],
    )
    def test_strict_equals_fast_path(self, comp):
        x = krylov_vector(1001, seed=7)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))

    def test_strict_with_negative_values(self):
        x = -np.abs(krylov_vector(100, seed=8))
        comp = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=24)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))


class TestBias:
    def test_truncation_bias_exists_on_uncorrelated_data(self):
        """The systematic reconstruction bias the paper blames for the
        slower convergence of transform-based compressors (Section VI-A)."""
        x = krylov_vector(50_000, seed=9)
        y = ZFPLike(ErrorBoundMode.FIXED_RATE, rate=16).roundtrip(x)
        errors = y - x
        # floor-truncation in the transform domain biases errors downward
        assert abs(np.mean(errors)) > 1e-9

    def test_frsz2_error_is_sign_symmetric(self):
        """FRSZ2 truncates toward zero: its error has no one-sided bias."""
        from repro.core import FRSZ2

        x = krylov_vector(50_000, seed=9)
        errors = FRSZ2(16).roundtrip(x) - x
        # positive values truncate down, negative truncate up: mean ~ 0
        assert abs(np.mean(errors)) < np.abs(errors).max() / 10
