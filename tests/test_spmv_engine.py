"""Tests for the multi-format SpMV engine (ELL, SELL-C-σ, autotuner).

The contract under test: every format is a lossless re-layout of the
same CSR matrix, and — because the padded kernels accumulate each row's
entries in CSR order — their matvec results are *bit-identical* to the
CSR kernel, which is what lets ``--spmv-format auto`` change runtime
without changing a single solver iterate.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import spmv_kernel_cost, spmv_roofline
from repro.solvers import CbGmres, make_problem
from repro.sparse import (
    CSRMatrix,
    DEFAULT_SLICE_SIZE,
    ELLMatrix,
    SELLMatrix,
    SPMV_FORMATS,
    SpmvEngine,
    build_matrix,
    choose_format,
    row_stats,
    suite_names,
)
from repro.sparse.sell import sell_padded_entries


def random_csr(m, n, seed=0, max_row=9, empty_every=0, long_rows=()):
    """Duplicate-free random pattern with optional empty/ultra-long rows."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(m):
        k = int(rng.integers(0, min(max_row, n) + 1))
        if i in long_rows:
            k = n
        if empty_every and i % empty_every == 0:
            k = 0
        rows.append(np.sort(rng.choice(n, size=k, replace=False)))
    indptr = np.zeros(m + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(r) for r in rows])
    nnz = int(indptr[-1])
    indices = (
        np.concatenate([r for r in rows if len(r)])
        if nnz
        else np.empty(0, dtype=np.int64)
    )
    data = rng.standard_normal(nnz)
    return CSRMatrix((m, n), indptr, indices, data)


EDGE_CASES = [
    pytest.param(dict(m=50, n=40, seed=1, empty_every=7), id="empty-rows"),
    pytest.param(dict(m=70, n=50, seed=2, long_rows=(3, 44)), id="ultra-long-rows"),
    pytest.param(dict(m=97, n=83, seed=3), id="random"),
    pytest.param(dict(m=33, n=33, seed=4, max_row=1), id="near-diagonal"),
    pytest.param(dict(m=5, n=64, seed=5), id="fewer-rows-than-slice"),
    pytest.param(dict(m=64, n=64, seed=6, empty_every=1), id="all-empty"),
]


def _formats_of(a):
    return {
        "ell": ELLMatrix.from_csr(a),
        "sell": SELLMatrix.from_csr(a),
        "sell-unsorted": SELLMatrix.from_csr(a, sigma=1),
        "engine-auto": SpmvEngine(a, "auto"),
        "engine-ell": SpmvEngine(a, "ell"),
        "engine-sell": SpmvEngine(a, "sell"),
    }


class TestKernelEquivalence:
    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_matvec_bit_identical_to_csr(self, kw):
        a = random_csr(**kw)
        rng = np.random.default_rng(99)
        x = rng.standard_normal(a.shape[1])
        y0 = a.matvec(x)
        for name, op in _formats_of(a).items():
            y = op.matvec(x)
            assert np.array_equal(y, y0), name

    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_matvec_out_buffer_bit_identical(self, kw):
        a = random_csr(**kw)
        x = np.random.default_rng(7).standard_normal(a.shape[1])
        y0 = a.matvec(x)
        for name, op in _formats_of(a).items():
            buf = np.full(a.shape[0], np.nan)
            y = op.matvec(x, out=buf)
            assert y is buf, name
            assert np.array_equal(buf, y0), name

    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_slotwise_kernel_bit_identical(self, kw, monkeypatch):
        # the large-matrix slot-wise ELL strategy must match the fused
        # reduce strategy bit-for-bit; force it on at every size
        import repro.sparse.ell as ell_mod

        monkeypatch.setattr(ell_mod, "_SLOTWISE_MIN_ROWS", 1)
        a = random_csr(**kw)
        x = np.random.default_rng(13).standard_normal(a.shape[1])
        y0 = a.matvec(x)
        ell = ELLMatrix.from_csr(a)
        assert np.array_equal(ell.matvec(x), y0)
        buf = np.full(a.shape[0], np.nan)
        assert np.array_equal(ell.matvec(x, out=buf), y0)

    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_rmatvec_close_to_csr(self, kw):
        # transpose products scatter in a different order per format, so
        # agreement is up to floating-point associativity
        a = random_csr(**kw)
        y = np.random.default_rng(11).standard_normal(a.shape[0])
        x0 = a.rmatvec(y)
        for name, op in _formats_of(a).items():
            if "engine" in name:
                continue  # engine delegates to one of the tested kernels
            assert np.allclose(op.rmatvec(y), x0, rtol=1e-13, atol=1e-300), name

    def test_every_suite_matrix_bit_identical(self):
        for name in suite_names():
            a = build_matrix(name, "smoke")
            x = np.random.default_rng(5).standard_normal(a.shape[1])
            y0 = a.matvec(x)
            for fmt in ("ell", "sell", "auto"):
                y = SpmvEngine(a, fmt).matvec(x)
                assert np.array_equal(y, y0), (name, fmt)

    def test_nonfinite_inputs_are_never_silently_lost(self):
        # the bit-identity contract holds for finite x (the only inputs
        # the solver produces); for non-finite x the padded formats must
        # at minimum flag every row the CSR kernel flags — a padded lane
        # computing 0*inf = NaN may *add* poisoned rows, never hide one
        a = random_csr(m=40, n=40, seed=8, empty_every=5)
        x = np.random.default_rng(3).standard_normal(40)
        x[7] = np.nan
        x[21] = np.inf
        bad0 = ~np.isfinite(a.matvec(x))
        assert bad0.any()
        for name, op in _formats_of(a).items():
            bad = ~np.isfinite(op.matvec(x))
            assert np.all(bad[bad0]), name


class TestRoundTrip:
    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_exact_csr_round_trip(self, kw):
        a = random_csr(**kw)
        for conv in (
            ELLMatrix.from_csr(a),
            SELLMatrix.from_csr(a),
            SELLMatrix.from_csr(a, slice_size=8, sigma=16),
            SELLMatrix.from_csr(a, sigma=1),
        ):
            b = conv.to_csr()
            assert b.shape == a.shape
            assert np.array_equal(b.indptr, a.indptr)
            assert np.array_equal(b.indices, a.indices)
            assert np.array_equal(b.data, a.data)

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 80),
        n=st.integers(1, 60),
        seed=st.integers(0, 2**31),
        slice_size=st.integers(1, 48),
        sigma=st.integers(0, 96),
    )
    def test_round_trip_property(self, m, n, seed, slice_size, sigma):
        a = random_csr(m, n, seed=seed, max_row=min(n, 7), empty_every=11)
        for conv in (
            ELLMatrix.from_csr(a),
            SELLMatrix.from_csr(a, slice_size=slice_size, sigma=sigma),
        ):
            b = conv.to_csr()
            assert np.array_equal(b.indptr, a.indptr)
            assert np.array_equal(b.indices, a.indices)
            assert np.array_equal(b.data, a.data)

    def test_sell_permutation_is_consistent(self):
        a = random_csr(m=90, n=70, seed=13, long_rows=(60,))
        s = SELLMatrix.from_csr(a)
        assert np.array_equal(s.inv_perm[s.perm], np.arange(90))
        # sigma<=1 keeps the natural order
        assert not SELLMatrix.from_csr(a, sigma=1).permuted


class TestAutotuner:
    def test_choice_is_deterministic(self):
        for name in ("atmosmodd", "cfd2", "PR02R"):
            a = build_matrix(name, "smoke")
            picks = {choose_format(a) for _ in range(3)}
            assert len(picks) == 1
            # rebuilt matrix -> same structure -> same pick
            assert choose_format(build_matrix(name, "smoke")) in picks

    def test_stencils_pick_ell(self):
        # banded/stencil suite matrices have near-uniform rows
        assert choose_format(build_matrix("atmosmodd", "smoke")) == "ell"
        assert choose_format(build_matrix("lung2", "smoke")) == "ell"

    def test_long_tail_rows_pick_csr(self):
        a = random_csr(m=128, n=128, seed=17, max_row=2, long_rows=(5,))
        s = row_stats(a)
        assert s.ell_padding > 10
        assert choose_format(a) == "csr"

    def test_small_or_empty_matrices_pick_csr(self):
        assert choose_format(random_csr(m=8, n=8, seed=1)) == "csr"
        empty = random_csr(m=64, n=64, seed=1, empty_every=1)
        assert empty.nnz == 0
        assert choose_format(empty) == "csr"

    def test_row_stats_fields(self):
        a = random_csr(m=64, n=64, seed=19, empty_every=9)
        s = row_stats(a)
        assert s.rows == 64 and s.cols == 64
        assert s.nnz == a.nnz
        assert s.min_len == 0 and s.empty_rows >= 7
        assert s.ell_padding == pytest.approx(64 * s.max_len / s.nnz)
        lengths = np.diff(a.indptr)
        assert s.sell_padding == pytest.approx(
            sell_padded_entries(lengths) / s.nnz
        )

    def test_engine_validates_inputs(self):
        a = random_csr(m=40, n=40, seed=2)
        with pytest.raises(ValueError):
            SpmvEngine(a, "blocked")
        with pytest.raises(TypeError):
            SpmvEngine(ELLMatrix.from_csr(a))
        assert "auto" in SPMV_FORMATS and "sell" in SPMV_FORMATS


class TestSolverIntegration:
    def test_auto_solve_identical_to_csr(self):
        p = make_problem("atmosmodd", "smoke")
        base = CbGmres(p.a, "frsz2_32", m=30, max_iter=400).solve(
            p.b, p.target_rrn
        )
        for fmt in ("auto", "ell", "sell"):
            res = CbGmres(
                p.a, "frsz2_32", m=30, max_iter=400, spmv_format=fmt
            ).solve(p.b, p.target_rrn)
            assert res.iterations == base.iterations
            assert res.final_rrn == base.final_rrn
            assert np.array_equal(
                res.x.view(np.uint64), base.x.view(np.uint64)
            )

    def test_stats_record_resolved_format_and_padding(self):
        p = make_problem("atmosmodd", "smoke")
        res = CbGmres(
            p.a, "float64", m=30, max_iter=400, spmv_format="auto"
        ).solve(p.b, p.target_rrn)
        assert res.stats.spmv_format == "ell"
        assert res.stats.spmv_padded_entries >= p.a.nnz
        base = CbGmres(p.a, "float64", m=30, max_iter=400).solve(
            p.b, p.target_rrn
        )
        assert base.stats.spmv_format == "csr"
        assert base.stats.spmv_padded_entries == p.a.nnz

    def test_csr_format_keeps_the_plain_matrix(self):
        p = make_problem("lung2", "smoke")
        solver = CbGmres(p.a, "float64", spmv_format="csr")
        assert solver.a is p.a  # bit-identical pre-engine path

    def test_engine_requires_csr_matrix(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError, match="CSRMatrix"):
            CbGmres(
                ELLMatrix.from_csr(p.a), "float64", spmv_format="auto"
            )


class TestAccounting:
    def test_counters_charge_padding(self):
        a = build_matrix("atmosmodd", "smoke")
        ell = ELLMatrix.from_csr(a)
        x = np.zeros(a.shape[1])
        ell.matvec(x)
        assert ell.counter.format == "ell"
        assert ell.counter.flops == 2 * ell.padded_entries
        assert ell.counter.flops >= 2 * a.nnz
        sell = SELLMatrix.from_csr(a)
        sell.matvec(x)
        assert sell.counter.format == "sell"
        assert sell.counter.flops == 2 * sell.padded_entries

    def test_spmv_kernel_cost_orders_formats_by_padding(self):
        # same matrix: the padded formats charge >= the CSR traffic
        n, nnz = 1000, 7000
        csr = spmv_kernel_cost(n, nnz, "csr")
        ell = spmv_kernel_cost(n, nnz, "ell", padded_entries=9000)
        assert ell.bytes_moved > csr.bytes_moved - (n + 1) * 4
        assert ell.fp64_flops == 2 * 9000
        with pytest.raises(KeyError):
            spmv_kernel_cost(n, nnz, "blocked")

    def test_spmv_roofline_matches_engine_padding(self):
        a = build_matrix("cfd2", "smoke")
        points = spmv_roofline(a)
        assert set(points) == {"csr", "ell", "sell", "auto"}
        assert points["csr"].padding_ratio == 1.0
        eng = SpmvEngine(a, "ell")
        assert points["ell"].padded_entries == eng.padded_entries
        assert points["auto"] == points[choose_format(a)]
        for p in points.values():
            assert p.seconds > 0 and p.bytes_moved > 0

    def test_default_slice_size_is_warp_sized(self):
        assert DEFAULT_SLICE_SIZE == 32


class TestNonFiniteWarnings:
    """Satellite: padded-lane 0*inf products must not leak warnings.

    The ELL/SELL kernels gather with ``mode="clip"`` and multiply the
    padding slots by 0.0; a non-finite x therefore evaluates ``0 * inf``
    inside the kernel.  The NaN result is the intended propagation
    semantics — but before the ``errstate`` scoping it also emitted a
    ``RuntimeWarning: invalid value encountered in multiply``, turning
    every poisoned solve (e.g. under fault injection) into warning spam.
    """

    def _nonfinite_x(self, n):
        x = np.random.default_rng(3).standard_normal(n)
        x[n // 3] = np.nan
        x[(2 * n) // 3] = np.inf
        return x

    def test_matvec_emits_no_warnings(self):
        a = random_csr(m=48, n=48, seed=8, empty_every=5)
        x = self._nonfinite_x(48)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for name, op in _formats_of(a).items():
                y = op.matvec(x)
                assert not np.all(np.isfinite(y)), name

    def test_slotwise_matvec_emits_no_warnings(self, monkeypatch):
        import repro.sparse.ell as ell_mod

        monkeypatch.setattr(ell_mod, "_SLOTWISE_MIN_ROWS", 1)
        a = random_csr(m=48, n=48, seed=8, empty_every=5)
        x = self._nonfinite_x(48)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ELLMatrix.from_csr(a).matvec(x)

    def test_matmat_emits_no_warnings(self):
        a = random_csr(m=48, n=48, seed=8, empty_every=5)
        X = np.asfortranarray(
            np.stack([self._nonfinite_x(48)] * 3, axis=1)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            a.matmat(X)
            ELLMatrix.from_csr(a).matmat(X)
            SELLMatrix.from_csr(a).matmat(X)


class TestMatmat:
    """Multi-vector SpMV: per-column bit-identity with matvec."""

    @pytest.mark.parametrize("kw", EDGE_CASES)
    def test_bit_identical_per_column(self, kw):
        a = random_csr(**kw)
        rng = np.random.default_rng(42)
        X = np.asfortranarray(rng.standard_normal((a.shape[1], 5)))
        expected = np.stack([a.matvec(X[:, c]) for c in range(5)], axis=1)
        for name, op in {
            "csr": a,
            "ell": ELLMatrix.from_csr(a),
            "sell": SELLMatrix.from_csr(a),
            "engine-auto": SpmvEngine(a, "auto"),
        }.items():
            Y = op.matmat(X)
            assert np.array_equal(Y, expected), name

    def test_c_order_input_matches(self):
        # callers may pass a C-ordered block; the contiguous-copy
        # staging must not change the bits
        a = random_csr(m=60, n=50, seed=9)
        rng = np.random.default_rng(5)
        Xc = np.ascontiguousarray(rng.standard_normal((50, 4)))
        Xf = np.asfortranarray(Xc)
        for op in (a, ELLMatrix.from_csr(a), SELLMatrix.from_csr(a)):
            assert np.array_equal(op.matmat(Xc), op.matmat(Xf))

    def test_out_buffer(self):
        a = random_csr(m=40, n=40, seed=4)
        X = np.asfortranarray(
            np.random.default_rng(2).standard_normal((40, 3))
        )
        for op in (a, ELLMatrix.from_csr(a), SELLMatrix.from_csr(a)):
            expected = op.matmat(X)
            buf = np.full((40, 3), np.nan, order="F")
            got = op.matmat(X, out=buf)
            assert got is buf
            assert np.array_equal(buf, expected)

    def test_shape_validation(self):
        a = random_csr(m=40, n=40, seed=4)
        with pytest.raises(ValueError):
            a.matmat(np.zeros((39, 3)))
        with pytest.raises(ValueError):
            a.matmat(np.zeros((40, 3)), out=np.zeros((40, 2)))

    def test_bills_one_spmv_per_column(self):
        a = random_csr(m=40, n=40, seed=4)
        X = np.zeros((40, 6), order="F")
        for op in (a, ELLMatrix.from_csr(a), SELLMatrix.from_csr(a)):
            before = op.counter.calls
            op.matmat(X)
            assert op.counter.calls == before + 6
