"""Tests for the storage-format predictor (the paper's §VIII future work)."""

import numpy as np
import pytest

from repro.solvers import (
    exponent_spread_features,
    make_problem,
    predict_format,
)


class TestFeatures:
    def test_uniform_magnitudes_have_no_kill_risk(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(1024)
        v /= np.linalg.norm(v)
        f = exponent_spread_features(v)
        assert f.frsz2_kill_fraction == 0.0
        assert f.float16_loss_fraction < 0.05

    def test_mixed_blocks_detected(self):
        # one huge value per 32-block destroys its neighbours
        v = np.full(1024, 1e-12)
        v[::32] = 1.0
        f = exponent_spread_features(v)
        assert f.frsz2_kill_fraction == 1.0

    def test_float16_range_loss_detected(self):
        v = np.full(1000, 1e-10)
        v[0] = 1.0  # scale anchor; everything else below 2^-24 relative
        f = exponent_spread_features(v)
        assert f.float16_loss_fraction > 0.9

    def test_exponent_concentration_few_for_normalized_noise(self):
        rng = np.random.default_rng(1)
        v = rng.standard_normal(32 * 512)
        v /= np.linalg.norm(v)
        f = exponent_spread_features(v)
        # Fig. 2's observation: a handful of exponents covers 90%
        assert f.exponent_concentration <= 6

    def test_empty_vector(self):
        f = exponent_spread_features(np.zeros(0))
        assert f.frsz2_kill_fraction == 0.0

    def test_all_zero_vector(self):
        f = exponent_spread_features(np.zeros(64))
        assert f.frsz2_kill_fraction == 0.0
        assert f.float16_loss_fraction == 0.0

    def test_zeros_do_not_count_as_killed(self):
        v = np.zeros(64)
        v[0] = 1.0
        f = exponent_spread_features(v)
        assert f.frsz2_kill_fraction == 0.0


class TestPrediction:
    def test_pr02r_rejects_frsz2_and_float16(self):
        p = make_problem("PR02R", "smoke")
        rec = predict_format(p.a, p.b, probe_iterations=10)
        assert "frsz2_32" in rec.rejected
        assert "float16" in rec.rejected
        assert rec.storage in ("float32", "float64")

    def test_atmosmod_keeps_all_candidates(self):
        p = make_problem("atmosmodd", "smoke")
        rec = predict_format(p.a, p.b, probe_iterations=10)
        assert rec.rejected == {}
        assert set(rec.probe_scores) == {"frsz2_32", "float32", "float16", "float64"}

    def test_recommendation_is_a_probed_candidate(self):
        p = make_problem("lung2", "smoke")
        rec = predict_format(p.a, p.b, probe_iterations=10)
        assert rec.storage in rec.probe_scores
        assert rec.probe_scores[rec.storage] == max(rec.probe_scores.values())

    def test_zero_rhs_defaults_to_float64(self):
        p = make_problem("lung2", "smoke")
        rec = predict_format(p.a, np.zeros(p.a.n))
        assert rec.storage == "float64"

    def test_custom_candidates(self):
        p = make_problem("lung2", "smoke")
        rec = predict_format(p.a, p.b, candidates=("float64",), probe_iterations=5)
        assert rec.storage == "float64"

    def test_all_rejected_falls_back_to_float64(self):
        p = make_problem("PR02R", "smoke")
        rec = predict_format(
            p.a, p.b, candidates=("frsz2_32", "float16"), probe_iterations=5
        )
        assert rec.storage == "float64"
