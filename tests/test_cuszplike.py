"""Tests for the cuSZp2-like block-parallel comparator compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import CuSZpLike, make_compressor
from repro.compressors.cuszplike import _bit_width, _unzigzag, _zigzag
from repro.compressors.metrics import max_abs_error


def krylov_vector(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


class TestZigZag:
    def test_known_values(self):
        v = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert _zigzag(v).tolist() == [0, 1, 2, 3, 4]

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        v = rng.integers(-(1 << 50), 1 << 50, 1000)
        assert np.array_equal(_unzigzag(_zigzag(v)), v)

    @given(st.integers(min_value=-(1 << 52), max_value=1 << 52))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, v):
        arr = np.array([v], dtype=np.int64)
        assert _unzigzag(_zigzag(arr))[0] == v

    def test_bit_width(self):
        u = np.array([0, 1, 2, 3, 255, 256], dtype=np.uint64)
        assert _bit_width(u).tolist() == [0, 1, 2, 2, 8, 9]


class TestBound:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CuSZpLike(0.0)

    @pytest.mark.parametrize("eb", [1e-3, 1e-6, 1e-9])
    def test_absolute_bound_holds(self, eb):
        x = krylov_vector()
        y = CuSZpLike(eb).roundtrip(x)
        assert max_abs_error(x, y) <= eb * (1 + 1e-9)

    def test_outliers_exact(self):
        x = np.array([1e200, 0.5, -1e190, 0.25])
        y = CuSZpLike(1e-8).roundtrip(x)
        assert y[0] == 1e200 and y[2] == -1e190

    def test_zeros_exact(self):
        assert np.array_equal(CuSZpLike(1e-6).roundtrip(np.zeros(100)), np.zeros(100))

    def test_empty(self):
        comp = CuSZpLike(1e-6)
        assert comp.decompress(comp.compress(np.zeros(0))).size == 0

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bound(self, vals):
        x = np.array(vals)
        y = CuSZpLike(1e-5).roundtrip(x)
        assert max_abs_error(x, y) <= 1e-5 * (1 + 1e-9)


class TestSize:
    def test_smooth_data_compresses_well(self):
        t = np.linspace(0, 8 * np.pi, 32 * 256)
        buf = CuSZpLike(1e-6).compress(np.sin(t))
        assert buf.bits_per_value < 16

    def test_per_block_widths_adapt(self):
        # half the blocks constant (width ~0), half noisy
        x = np.zeros(32 * 100)
        x[32 * 50 :] = krylov_vector(32 * 50, seed=2)
        buf = CuSZpLike(1e-6).compress(x)
        w = buf.meta["widths"]
        assert w[:50].max() <= 1
        assert w[50:].min() > 5

    def test_size_accounts_all_streams(self):
        x = krylov_vector(1000, seed=3)
        buf = CuSZpLike(1e-7).compress(x)
        total = sum(len(v) for v in buf.streams.values()) + buf.header_nbytes
        assert buf.nbytes == total


class TestStrictDecode:
    def test_strict_equals_fast(self):
        x = krylov_vector(777, seed=4)
        comp = CuSZpLike(1e-7)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))

    def test_strict_with_outliers(self):
        x = krylov_vector(100, seed=5)
        x[17] = -1e250
        comp = CuSZpLike(1e-9)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))

    def test_partial_block(self):
        x = krylov_vector(33, seed=6)  # one full + one 1-value block
        comp = CuSZpLike(1e-8)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))


class TestRegistryIntegration:
    def test_registered(self):
        comp = make_compressor("cuszp_06")
        assert isinstance(comp, CuSZpLike)

    def test_usable_as_basis_storage(self):
        from repro.solvers import CbGmres, make_problem

        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, "cuszp_08").solve(p.b, p.target_rrn)
        assert res.converged

    def test_variable_rate_unlike_frsz2(self):
        """The structural difference the paper designs around: cuSZp's
        rate depends on the data, FRSZ2's does not."""
        smooth = np.sin(np.linspace(0, 10, 32 * 64))
        noisy = np.random.default_rng(7).standard_normal(32 * 64)
        comp = CuSZpLike(1e-6)
        assert comp.compress(smooth).nbytes < comp.compress(noisy).nbytes / 1.5
        frsz2 = make_compressor("frsz2_32")
        assert frsz2.compress(smooth).nbytes == frsz2.compress(noisy).nbytes
