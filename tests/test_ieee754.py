"""Unit tests for the IEEE 754 field-manipulation substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ieee754


class TestBitViews:
    def test_to_bits_roundtrip(self):
        x = np.array([1.0, -2.5, 0.0, 1e-300, -1e300])
        assert np.array_equal(ieee754.from_bits(ieee754.to_bits(x)), x)

    def test_to_bits_is_view(self):
        x = np.array([1.0, 2.0])
        b = ieee754.to_bits(x)
        b[0] = np.uint64(0)
        assert x[0] == 0.0

    def test_to_bits_rejects_other_dtypes(self):
        with pytest.raises(TypeError):
            ieee754.to_bits(np.array([1.0], dtype=np.float32))

    def test_from_bits_rejects_other_dtypes(self):
        with pytest.raises(TypeError):
            ieee754.from_bits(np.array([1], dtype=np.int64))

    def test_known_bit_pattern_of_one(self):
        bits = ieee754.to_bits(np.array([1.0]))
        assert bits[0] == np.uint64(0x3FF0000000000000)


class TestFieldExtraction:
    def test_sign_bit(self):
        x = np.array([1.0, -1.0, 0.0, -0.0])
        assert ieee754.sign_bit(ieee754.to_bits(x)).tolist() == [0, 1, 0, 1]

    def test_biased_exponent_of_powers_of_two(self):
        x = np.array([1.0, 2.0, 0.5, 4.0])
        e = ieee754.biased_exponent(ieee754.to_bits(x))
        assert e.tolist() == [1023, 1024, 1022, 1025]

    def test_mantissa_of_one_and_half(self):
        x = np.array([1.5])
        m = ieee754.mantissa(ieee754.to_bits(x))
        assert m[0] == np.uint64(1) << np.uint64(51)

    def test_significand53_has_implicit_bit_for_normals(self):
        x = np.array([1.0])
        s = ieee754.significand53(ieee754.to_bits(x))
        assert s[0] == ieee754.IMPLICIT_BIT

    def test_significand53_subnormal_without_implicit_bit(self):
        sub = np.array([5e-324])  # smallest subnormal: mantissa == 1
        s = ieee754.significand53(ieee754.to_bits(sub))
        assert s[0] == np.uint64(1)

    def test_effective_exponent_maps_subnormals_to_one(self):
        x = np.array([5e-324, 0.0, 1.0])
        e = ieee754.effective_biased_exponent(ieee754.to_bits(x))
        assert e.tolist() == [1, 1, 1023]

    def test_uniform_value_formula(self):
        # value == sig53 * 2^(e_eff - 1075) for normals and subnormals alike
        x = np.array([3.75, -1e-310, 2.0 ** -1040, 123456.789])
        bits = ieee754.to_bits(np.abs(x))
        sig = ieee754.significand53(bits).astype(np.float64)
        e = ieee754.effective_biased_exponent(bits).astype(np.int64)
        rebuilt = np.ldexp(sig, e - 1075)
        assert np.array_equal(rebuilt, np.abs(x))


class TestAssemble:
    def test_assemble_one(self):
        v = ieee754.assemble(np.array([0]), np.array([1023]), np.array([0]))
        assert v[0] == 1.0

    def test_assemble_negative(self):
        v = ieee754.assemble(np.array([1]), np.array([1023]), np.array([0]))
        assert v[0] == -1.0

    def test_assemble_masks_overflowing_fields(self):
        v = ieee754.assemble(np.array([2]), np.array([1023]), np.array([0]))
        assert v[0] == 1.0  # sign taken mod 2

    def test_assemble_inverts_extraction(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(257) * 10.0 ** rng.integers(-30, 30, 257)
        bits = ieee754.to_bits(x)
        y = ieee754.assemble(
            ieee754.sign_bit(bits),
            ieee754.biased_exponent(bits),
            ieee754.mantissa(bits),
        )
        assert np.array_equal(x, y)


class TestNonFinite:
    def test_detects_nan_and_inf(self):
        x = np.array([1.0, np.nan, np.inf, -np.inf, 0.0])
        assert ieee754.is_nonfinite(x).tolist() == [False, True, True, True, False]

    def test_largest_finite_is_finite(self):
        assert not ieee754.is_nonfinite(np.array([np.finfo(np.float64).max]))[0]


class TestHighestSetBit:
    def test_zero_returns_minus_one(self):
        assert ieee754.highest_set_bit(np.array([0], dtype=np.uint64))[0] == -1

    def test_powers_of_two(self):
        v = np.uint64(1) << np.arange(64, dtype=np.uint64)
        assert np.array_equal(ieee754.highest_set_bit(v), np.arange(64))

    def test_all_ones_patterns(self):
        # 2^k - 1 has highest bit k-1; exercises the float-rounding hazard
        vals = [(1 << k) - 1 for k in range(1, 65)]
        v = np.array(vals, dtype=np.uint64)
        assert np.array_equal(ieee754.highest_set_bit(v), np.arange(64))

    def test_near_2_53_boundary(self):
        # values where naive float64 conversion would round up
        v = np.array([(1 << 54) - 1, (1 << 53) - 1, (1 << 53) + 1], dtype=np.uint64)
        assert ieee754.highest_set_bit(v).tolist() == [53, 52, 53]

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1))
    @settings(max_examples=300, deadline=None)
    def test_matches_python_bit_length(self, v):
        got = ieee754.highest_set_bit(np.array([v], dtype=np.uint64))[0]
        assert got == v.bit_length() - 1


class TestCountLeadingZeros:
    def test_full_width_zero(self):
        assert ieee754.count_leading_zeros(np.array([0], dtype=np.uint64))[0] == 64

    def test_width_parameter(self):
        v = np.array([1], dtype=np.uint64)
        assert ieee754.count_leading_zeros(v, width=31)[0] == 30

    def test_value_exceeding_width_raises(self):
        with pytest.raises(ValueError):
            ieee754.count_leading_zeros(np.array([256], dtype=np.uint64), width=8)

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            ieee754.count_leading_zeros(np.array([1], dtype=np.uint64), width=0)
        with pytest.raises(ValueError):
            ieee754.count_leading_zeros(np.array([1], dtype=np.uint64), width=65)

    @given(st.integers(min_value=0, max_value=(1 << 31) - 1))
    @settings(max_examples=200, deadline=None)
    def test_clz31_matches_reference(self, v):
        # 31-bit fields are what frsz2_32 decompression uses
        got = ieee754.count_leading_zeros(np.array([v], dtype=np.uint64), width=31)[0]
        expected = 31 - v.bit_length()
        assert got == expected
