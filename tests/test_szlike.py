"""Tests for the SZ-like prediction-based comparator compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import ErrorBoundMode, SZLike
from repro.compressors.metrics import max_abs_error, max_pointwise_relative_error


def krylov_vector(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


class TestConstruction:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SZLike(0.0)
        with pytest.raises(ValueError):
            SZLike(-1e-6)

    def test_rejects_fixed_rate_mode(self):
        with pytest.raises(ValueError):
            SZLike(1e-6, ErrorBoundMode.FIXED_RATE)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            SZLike(1e-6, variant="sz4")

    def test_rejects_nonfinite_input(self):
        with pytest.raises(ValueError):
            SZLike(1e-6).compress(np.array([1.0, np.inf]))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            SZLike(1e-6).compress(np.ones((3, 3)))


class TestAbsoluteBound:
    @pytest.mark.parametrize("eb", [1e-3, 1e-6, 1e-8])
    @pytest.mark.parametrize("variant", ["sz", "sz3"])
    def test_bound_on_krylov_data(self, eb, variant):
        x = krylov_vector()
        comp = SZLike(eb, ErrorBoundMode.ABSOLUTE, variant=variant)
        y = comp.roundtrip(x)
        assert max_abs_error(x, y) <= eb * (1 + 1e-9)

    def test_bound_on_smooth_data(self):
        t = np.linspace(0, 8 * np.pi, 10_000)
        x = np.sin(t) * np.exp(-t / 20)
        comp = SZLike(1e-5)
        assert max_abs_error(x, comp.roundtrip(x)) <= 1e-5 * (1 + 1e-9)

    def test_smooth_data_compresses_much_better_than_noise(self):
        """The decorrelation premise: predictors win on smooth data only."""
        t = np.linspace(0, 8 * np.pi, 10_000)
        smooth = np.sin(t)
        noise = krylov_vector(10_000)
        comp = SZLike(1e-6)
        smooth_bits = comp.compress(smooth).bits_per_value
        noise_bits = comp.compress(noise).bits_per_value
        assert smooth_bits < noise_bits / 2

    def test_uncorrelated_data_is_counterproductive(self):
        """Paper Section III-A: on Krylov vectors SZ can exceed 64 bits."""
        x = krylov_vector(20_000)
        comp = SZLike(1e-8)
        assert comp.compress(x).bits_per_value > 32.0

    def test_large_values_stored_as_outliers(self):
        x = np.array([1e200, 1.0, -1e180, 0.5])
        comp = SZLike(1e-8)
        y = comp.roundtrip(x)
        assert y[0] == 1e200 and y[2] == -1e180
        assert abs(y[1] - 1.0) <= 1e-8 and abs(y[3] - 0.5) <= 1e-8

    def test_zeros_reconstruct_exactly(self):
        x = np.zeros(100)
        assert np.array_equal(SZLike(1e-6).roundtrip(x), x)

    def test_empty_input(self):
        comp = SZLike(1e-6)
        buf = comp.compress(np.zeros(0))
        assert comp.decompress(buf).size == 0

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from([1e-2, 1e-5, 1e-9]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bound(self, vals, eb):
        x = np.array(vals)
        y = SZLike(eb).roundtrip(x)
        assert max_abs_error(x, y) <= eb * (1 + 1e-9)


class TestPointwiseRelativeBound:
    @pytest.mark.parametrize("variant", ["sz", "sz3"])
    def test_bound_on_krylov_data(self, variant):
        x = krylov_vector()
        comp = SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE, variant=variant)
        y = comp.roundtrip(x)
        assert max_pointwise_relative_error(x, y) <= 1e-4 * (1 + 1e-9)

    def test_magnitudes_spanning_many_decades(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(2000) * 10.0 ** rng.integers(-150, 150, 2000)
        comp = SZLike(1e-3, ErrorBoundMode.POINTWISE_RELATIVE)
        y = comp.roundtrip(x)
        assert max_pointwise_relative_error(x, y) <= 1e-3 * (1 + 1e-9)

    def test_signs_preserved(self):
        x = np.array([-1.0, 2.0, -3.0, 4.0, -5e-30])
        y = SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE).roundtrip(x)
        assert np.array_equal(np.sign(y), np.sign(x))

    def test_zeros_exact(self):
        x = np.array([0.0, 1.0, 0.0, -2.0])
        y = SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE).roundtrip(x)
        assert y[0] == 0.0 and y[2] == 0.0

    @given(
        st.lists(
            st.floats(
                min_value=-1e10,
                max_value=1e10,
                allow_nan=False,
                allow_subnormal=False,
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bound(self, vals):
        x = np.array(vals)
        y = SZLike(1e-3, ErrorBoundMode.POINTWISE_RELATIVE).roundtrip(x)
        assert max_pointwise_relative_error(x, y) <= 1e-3 * (1 + 1e-9)


class TestStrictDecode:
    """The streams must be self-describing: bitstream decode == cache."""

    @pytest.mark.parametrize("variant", ["sz", "sz3"])
    def test_strict_equals_fast_path_absolute(self, variant):
        x = krylov_vector(800, seed=7)
        comp = SZLike(1e-6, variant=variant)
        buf = comp.compress(x)
        fast = comp.decompress(buf)
        strict = comp.decompress(buf, strict=True)
        assert np.array_equal(fast, strict)

    def test_strict_equals_fast_path_relative(self):
        x = krylov_vector(500, seed=8)
        comp = SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE)
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))

    def test_strict_with_escapes_and_outliers(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(300)
        x[10] = 1e250  # lattice outlier
        comp = SZLike(1e-9, variant="sz3")
        buf = comp.compress(x)
        assert np.array_equal(comp.decompress(buf), comp.decompress(buf, strict=True))


class TestPredictorSelection:
    def test_sz3_picks_regression_on_noisy_linear_data(self):
        """Lorenzo-1 doubles the noise variance on trend data; the block
        regression predictor avoids that, so SZ3 should select it."""
        rng = np.random.default_rng(3)
        x = np.linspace(0, 1, 8192) + rng.normal(0, 3e-7, 8192)
        buf = SZLike(1e-7, variant="sz3").compress(x)
        choices = buf.meta["choices"]
        assert np.all(choices == 2)  # regression everywhere

    def test_sz3_beats_sz_on_piecewise_ramps(self):
        rng = np.random.default_rng(3)
        x = np.concatenate(
            [np.linspace(0, 1, 2048), np.linspace(1, -1, 2048)]
        ) + rng.normal(0, 3e-7, 4096)
        sz = SZLike(1e-7, variant="sz").compress(x).nbytes
        sz3 = SZLike(1e-7, variant="sz3").compress(x).nbytes
        assert sz3 < sz

    def test_idempotent_roundtrip(self):
        x = krylov_vector(1000, seed=11)
        comp = SZLike(1e-6)
        once = comp.roundtrip(x)
        assert np.array_equal(once, comp.roundtrip(once))

    def test_deterministic(self):
        x = krylov_vector(1000, seed=12)
        comp = SZLike(1e-6)
        a = comp.compress(x)
        b = comp.compress(x)
        assert a.streams["huffman"] == b.streams["huffman"]
        assert a.nbytes == b.nbytes
