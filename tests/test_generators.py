"""Tests for the synthetic SuiteSparse analogs and the suite registry."""

import numpy as np
import pytest

from repro.sparse import SUITE, build_matrix, resolve_scale, suite_names
from repro.sparse import generators as gen
from repro.core.ieee754 import biased_exponent, to_bits


class TestStencils:
    def test_stencil_3d_laplacian_rowsums(self):
        a = gen.poisson_3d(4, 4, 4)
        # interior rows of -lap + shift*I sum to the shift (0 here... 6 - 6)
        dense = a.to_dense()
        interior = dense[21]  # an interior grid point of the 4x4x4 grid
        assert interior.sum() == pytest.approx(0.0, abs=1e-12)

    def test_poisson_is_symmetric(self):
        a = gen.poisson_3d(5, 4, 3, shift=0.1)
        d = a.to_dense()
        assert np.allclose(d, d.T)

    def test_poisson_is_positive_definite(self):
        a = gen.poisson_3d(4, 4, 4, shift=0.05).to_dense()
        eigs = np.linalg.eigvalsh(a)
        assert eigs.min() > 0

    def test_convection_diffusion_is_nonsymmetric(self):
        a = gen.convection_diffusion_3d(4, 4, 4, name="t").to_dense()
        assert not np.allclose(a, a.T)

    def test_convection_diffusion_nnz_is_7_point(self):
        nx = ny = nz = 6
        a = gen.convection_diffusion_3d(nx, ny, nz, name="t")
        n = nx * ny * nz
        # 7 points minus boundary-dropped neighbours
        assert a.nnz == 7 * n - 2 * (nx * ny + ny * nz + nx * nz)

    def test_stencil_2d_five_point(self):
        a = gen.stencil_2d(4, 4, 4.0, -1.0)
        assert a.shape == (16, 16)
        assert a.to_dense()[0, 0] == 4.0

    def test_deterministic_by_name(self):
        a = gen.convection_diffusion_3d(4, 4, 4, name="atmosmodd")
        b = gen.convection_diffusion_3d(4, 4, 4, name="atmosmodd")
        c = gen.convection_diffusion_3d(4, 4, 4, name="atmosmodj")
        assert np.array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)


class TestTransportChain:
    def test_shape_and_diagonal_dominance(self):
        a = gen.coupled_transport_1d(500)
        d = np.abs(a.diagonal())
        off = a.row_norms(1) - d
        assert np.all(d > off)  # strictly diagonally dominant


class TestParabolicFem:
    def test_identity_plus_tau_laplacian(self):
        a = gen.parabolic_fem_2d(5, 5, tau=0.1)
        lap = gen.stencil_2d(5, 5, 4.0, -1.0)
        assert np.allclose(a.to_dense(), np.eye(25) + 0.1 * lap.to_dense())


class TestReactiveFlow:
    def test_rough_has_wide_exponent_range(self):
        """Fig. 10: PR02R non-zeros span a huge base-2 exponent range."""
        a = build_matrix("PR02R", "default")
        e = biased_exponent(to_bits(np.abs(a.data))).astype(np.int64) - 1023
        # the analog spans ~60 binades (the paper's PR02R spans 214; we
        # keep the range float64-solvable at this scale, see DESIGN.md)
        assert e.max() - e.min() > 55

    def test_rough_and_smooth_have_similar_value_histograms(self):
        """The paper's HV15R-vs-PR02R point: similar values, different
        ordering."""
        rough = build_matrix("PR02R", "smoke")
        smooth = gen.scaled_reactive_flow(
            9, 9, 9, spike1=1e9, spike2=1e8, roughness="smooth", name="PR02R-s"
        )
        lo = np.log10(np.abs(rough.data[rough.data != 0]))
        ls = np.log10(np.abs(smooth.data[smooth.data != 0]))
        assert abs(lo.max() - ls.max()) < 2.0
        assert abs(lo.min() - ls.min()) < 2.0

    def test_smooth_scaling_is_clustered(self):
        rng = gen.rng_for("x")
        m1, m2 = gen.spike_scaling_masks(10_000, 1 / 16, clustered=True, rng=rng)
        # clustered: number of runs is far below the number of marked rows
        runs = int(np.sum(np.diff(m1.astype(int)) == 1) + m1[0])
        assert m1.sum() > 500
        assert runs < m1.sum() / 50

    def test_scattered_masks_disjoint(self):
        rng = gen.rng_for("y")
        m1, m2 = gen.spike_scaling_masks(10_000, 1 / 16, clustered=False, rng=rng)
        assert not np.any(m1 & m2)
        assert 400 < m1.sum() < 900  # ~ n/16

    def test_invalid_roughness_raises(self):
        with pytest.raises(ValueError):
            gen.scaled_reactive_flow(4, 4, 4, roughness="bogus")

    def test_medium_spikes_are_softer(self):
        med = gen.scaled_reactive_flow(8, 8, 8, roughness="medium", name="m")
        rough = gen.scaled_reactive_flow(8, 8, 8, roughness="rough", name="m")
        assert np.abs(med.data).max() < np.abs(rough.data).max() / 100


class TestPorousMedia:
    def test_core_is_symmetric(self):
        a = gen.porous_media_3d(5, 5, 5, spike=0.0, name="t").to_dense()
        assert np.allclose(a, a.T)

    def test_core_is_positive_definite(self):
        a = gen.porous_media_3d(4, 4, 4, spike=0.0, name="t").to_dense()
        assert np.linalg.eigvalsh(a).min() > 0

    def test_spikes_break_symmetry_but_keep_solvability(self):
        a = gen.porous_media_3d(5, 5, 5, spike=1e6, name="t").to_dense()
        assert not np.allclose(a, a.T)
        assert np.linalg.cond(a) < 1e14  # still float64-solvable


class TestPrecScenarios:
    """The preconditioning-tier generators: hard but solvable."""

    def test_aniso_jump_is_deterministic_and_nonsingular(self):
        a = gen.aniso_jump_3d(6, 6, 6, name="t")
        b = gen.aniso_jump_3d(6, 6, 6, name="t")
        assert np.array_equal(a.data, b.data)
        dense = a.to_dense()
        assert np.isfinite(np.linalg.cond(dense))
        assert np.linalg.cond(dense) > 1e3  # genuinely ill-conditioned

    def test_aniso_jump_contrast_raises_conditioning(self):
        lo = gen.aniso_jump_3d(6, 6, 6, contrast=1e1, name="t").to_dense()
        hi = gen.aniso_jump_3d(6, 6, 6, contrast=1e4, name="t").to_dense()
        assert np.linalg.cond(hi) > np.linalg.cond(lo)

    def test_convection_dominated_is_nonsymmetric(self):
        a = gen.convection_dominated_3d(6, 6, 6).to_dense()
        assert not np.allclose(a, a.T)
        assert np.isfinite(np.linalg.cond(a))

    def test_bem_dense_blocks_structure(self):
        a = gen.bem_dense_blocks(128, block=16)
        # every row holds its full near-field panel plus far couplings
        row_nnz = np.diff(a.indptr)
        assert row_nnz.min() >= 16
        assert np.isfinite(np.linalg.cond(a.to_dense()))


class TestSuite:
    def test_suite_has_table1_plus_prec_scenarios(self):
        # 11 Table I analogs + 3 preconditioning-tier scenarios
        assert len(suite_names()) == 14
        assert set(suite_names()) == set(SUITE)
        assert {"aniso_jump", "conv_dom", "bem_dense"} <= set(SUITE)

    def test_paper_metadata_matches_table1(self):
        assert SUITE["atmosmodd"].paper_size == 1_270_432
        assert SUITE["HV15R"].paper_nnz == 283_073_458
        assert SUITE["PR02R"].paper_target_rrn == 4.0e-3
        assert SUITE["StocF-1465"].paper_target_rrn == 4.0e-6

    @pytest.mark.parametrize("name", suite_names())
    def test_smoke_builds_are_square_and_finite(self, name):
        a = build_matrix(name, "smoke")
        assert a.shape[0] == a.shape[1]
        assert np.all(np.isfinite(a.data))
        assert a.nnz > a.shape[0]  # more than a diagonal

    def test_scales_are_ordered(self):
        small = build_matrix("atmosmodd", "smoke")
        mid = build_matrix("atmosmodd", "default")
        assert small.n < mid.n

    def test_unknown_matrix_raises(self):
        with pytest.raises(KeyError):
            build_matrix("nonexistent")

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale() == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            resolve_scale()

    def test_explicit_scale_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale("smoke") == "smoke"

    def test_builds_are_deterministic(self):
        a = build_matrix("StocF-1465", "smoke")
        b = build_matrix("StocF-1465", "smoke")
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.indices, b.indices)

    def test_target_for_uses_calibrated_values(self):
        assert SUITE["PR02R"].target_for("default") == 1e-6
        assert SUITE["atmosmodd"].target_for("default") == 4.0e-16
