"""Tests for block layout and Eq. (3) storage accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import DEFAULT_BLOCK_SIZE, BlockLayout


class TestValidation:
    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            BlockLayout(-1)

    def test_zero_block_size_raises(self):
        with pytest.raises(ValueError):
            BlockLayout(10, block_size=0)

    @pytest.mark.parametrize("l", [0, 1, 65])
    def test_bad_bit_length_raises(self, l):
        with pytest.raises(ValueError):
            BlockLayout(10, bit_length=l)


class TestGeometry:
    def test_default_block_size_is_warp(self):
        assert DEFAULT_BLOCK_SIZE == 32
        assert BlockLayout(100).block_size == 32

    def test_num_blocks_rounds_up(self):
        assert BlockLayout(33, block_size=32).num_blocks == 2
        assert BlockLayout(32, block_size=32).num_blocks == 1
        assert BlockLayout(0, block_size=32).num_blocks == 0

    def test_words_per_block_aligned(self):
        assert BlockLayout(32, 32, 32).words_per_block == 32
        assert BlockLayout(32, 32, 16).words_per_block == 16

    def test_words_per_block_straddling(self):
        # 32 values * 21 bits = 672 bits = 21 words exactly
        assert BlockLayout(32, 32, 21).words_per_block == 21
        # 32 values * 13 bits = 416 bits = 13 words
        assert BlockLayout(32, 32, 13).words_per_block == 13

    def test_is_aligned(self):
        assert BlockLayout(1, 32, 16).is_aligned
        assert BlockLayout(1, 32, 32).is_aligned
        assert not BlockLayout(1, 32, 21).is_aligned
        assert not BlockLayout(1, 32, 2).is_aligned  # 2 < 8: packed path

    def test_block_range_last_block_short(self):
        layout = BlockLayout(70, block_size=32)
        assert list(layout.block_range(2)) == list(range(64, 70))


class TestStorageEquation3:
    def test_paper_example_33_bits_per_value(self):
        """BS=32, l=32 -> (32*32 + 32)/32 = 33 bits/value (Section IV-C)."""
        layout = BlockLayout(32 * 1000, 32, 32)
        assert layout.bits_per_value == pytest.approx(33.0)

    def test_frsz2_16_bits_per_value(self):
        layout = BlockLayout(32 * 1000, 32, 16)
        assert layout.bits_per_value == pytest.approx(17.0)

    def test_frsz2_21_bits_per_value(self):
        # 21 words/block * 32 bits + 32 exponent bits over 32 values
        layout = BlockLayout(32 * 1000, 32, 21)
        assert layout.bits_per_value == pytest.approx((21 * 32 + 32) / 32)

    def test_total_bytes_matches_eq3(self):
        n, bs, l = 1000, 32, 21
        layout = BlockLayout(n, bs, l)
        nb = -(-n // bs)
        expected = nb * (-(-(bs * l) // 32)) * 4 + nb * 4
        assert layout.total_nbytes == expected

    def test_empty_layout(self):
        layout = BlockLayout(0)
        assert layout.total_nbytes == 0
        assert layout.bits_per_value == 0.0

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_storage_bounds(self, n, bs, l):
        layout = BlockLayout(n, bs, l)
        # payload always fits; overhead is bounded by last-block padding
        # (up to bs-1 unused slots) plus word alignment (< 32 bits/block)
        payload_bits = n * l
        nb = layout.num_blocks
        assert layout.value_nbytes * 8 >= payload_bits
        assert layout.value_nbytes * 8 < nb * bs * l + nb * 32
        assert layout.exponent_nbytes == 4 * nb


class TestBitPositions:
    def test_value_bit_position(self):
        layout = BlockLayout(100, 32, 21)
        block, pos = layout.value_bit_position(33)
        assert block == 1
        assert pos == layout.words_per_block * 32 + 21

    def test_positions_monotonic_within_block(self):
        layout = BlockLayout(64, 32, 21)
        pos = [layout.value_bit_position(i)[1] for i in range(64)]
        assert pos == sorted(pos)
        assert len(set(pos)) == 64

    def test_blocks_word_aligned(self):
        layout = BlockLayout(96, 32, 21)
        for b in range(3):
            assert layout.block_bit_start(b) % 32 == 0
