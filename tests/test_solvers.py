"""Tests for the CB-GMRES solver stack."""

import numpy as np
import pytest

from repro.accessor import Frsz2Accessor
from repro.sparse import COOMatrix, build_matrix
from repro.solvers import (
    CbGmres,
    GivensLeastSquares,
    KrylovBasis,
    calibrate_target,
    cgs_orthogonalize,
    make_expected_solution,
    make_problem,
    make_rhs,
    mgs_orthogonalize,
)


def small_system(n=60, seed=0):
    rng = np.random.default_rng(seed)
    dense = np.eye(n) * 4 + rng.standard_normal((n, n)) * 0.2
    rows, cols = np.nonzero(dense)
    a = COOMatrix((n, n), rows, cols, dense[rows, cols]).to_csr()
    x = rng.standard_normal(n)
    return a, a.matvec(x), x


class TestKrylovBasis:
    def test_write_read_roundtrip_float64(self):
        basis = KrylovBasis(10, 3, "float64")
        v = np.linspace(0, 1, 10)
        basis.write_vector(0, v)
        assert np.array_equal(basis.vector(0), v)

    def test_cache_matches_accessor_decompression(self):
        basis = KrylovBasis(64, 2, "frsz2_32")
        rng = np.random.default_rng(1)
        v = rng.standard_normal(64)
        basis.write_vector(0, v)
        acc = Frsz2Accessor(64, 32)
        acc.write(v)
        assert np.array_equal(basis.vector(0), acc.read())

    def test_dot_basis_and_combine(self):
        basis = KrylovBasis(20, 4, "float64")
        rng = np.random.default_rng(2)
        vs = [rng.standard_normal(20) for _ in range(3)]
        for j, v in enumerate(vs):
            basis.write_vector(j, v)
        w = rng.standard_normal(20)
        h = basis.dot_basis(3, w)
        assert np.allclose(h, [v @ w for v in vs])
        y = np.array([1.0, -2.0, 0.5])
        assert np.allclose(basis.combine(3, y), sum(c * v for c, v in zip(y, vs)))

    def test_unwritten_slot_raises(self):
        basis = KrylovBasis(5, 2)
        with pytest.raises(IndexError):
            basis.vector(0)

    def test_out_of_range_slot_raises(self):
        basis = KrylovBasis(5, 2)
        with pytest.raises(IndexError):
            basis.write_vector(3, np.zeros(5))

    def test_reset_forgets(self):
        basis = KrylovBasis(5, 2)
        basis.write_vector(0, np.ones(5))
        basis.reset()
        with pytest.raises(IndexError):
            basis.vector(0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            KrylovBasis(5, 0)

    def test_bits_per_value(self):
        assert KrylovBasis(32, 2, "float32").bits_per_value == 32.0
        assert KrylovBasis(320, 2, "frsz2_32").bits_per_value == pytest.approx(33.0)


class TestOrthogonalization:
    def _basis_with_orthonormal_vectors(self, n=50, k=4, seed=3):
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.standard_normal((n, k)))
        basis = KrylovBasis(n, k + 1, "float64")
        for j in range(k):
            basis.write_vector(j, q[:, j])
        return basis, q

    def test_cgs_produces_orthogonal_vector(self):
        basis, q = self._basis_with_orthonormal_vectors()
        w = np.random.default_rng(4).standard_normal(50)
        res = cgs_orthogonalize(basis, 4, w)
        assert np.abs(q.T @ res.w).max() < 1e-12
        assert res.h_next == pytest.approx(np.linalg.norm(res.w))

    def test_cgs_coefficients_reconstruct_w(self):
        basis, q = self._basis_with_orthonormal_vectors()
        w = np.random.default_rng(5).standard_normal(50)
        res = cgs_orthogonalize(basis, 4, w)
        assert np.allclose(q @ res.h + res.w, w, atol=1e-12)

    def test_reorthogonalization_triggers_for_nearly_dependent_vector(self):
        basis, q = self._basis_with_orthonormal_vectors()
        # w almost inside span(q): first CGS pass leaves a tiny remainder
        w = q @ np.ones(4) + 1e-9 * np.random.default_rng(6).standard_normal(50)
        res = cgs_orthogonalize(basis, 4, w)
        assert res.reorthogonalized
        assert np.abs(q.T @ res.w).max() < 1e-14

    def test_breakdown_detected_for_dependent_vector(self):
        basis, q = self._basis_with_orthonormal_vectors()
        res = cgs_orthogonalize(basis, 4, q @ np.array([1.0, 2.0, 3.0, 4.0]))
        assert res.breakdown

    def test_mgs_agrees_with_cgs_on_well_conditioned_input(self):
        basis, q = self._basis_with_orthonormal_vectors()
        w = np.random.default_rng(7).standard_normal(50)
        res_c = cgs_orthogonalize(basis, 4, w)
        res_m = mgs_orthogonalize(basis, 4, w)
        assert np.allclose(res_c.h, res_m.h, atol=1e-10)
        assert res_c.h_next == pytest.approx(res_m.h_next, rel=1e-10)


class TestGivensLeastSquares:
    def test_matches_dense_lstsq(self):
        rng = np.random.default_rng(8)
        m = 6
        beta = 2.5
        lsq = GivensLeastSquares(m, beta)
        h_full = np.zeros((m + 1, m))
        for j in range(m):
            h = rng.standard_normal(j + 1)
            h_next = abs(rng.standard_normal()) + 0.5
            h_full[: j + 1, j] = h
            h_full[j + 1, j] = h_next
            lsq.append_column(h, h_next)
        rhs = np.zeros(m + 1)
        rhs[0] = beta
        y_ref, res, *_ = np.linalg.lstsq(h_full, rhs, rcond=None)
        y = lsq.solve()
        assert np.allclose(y, y_ref, atol=1e-10)
        assert lsq.residual_norm == pytest.approx(
            np.linalg.norm(rhs - h_full @ y_ref), abs=1e-10
        )

    def test_residual_norm_monotonically_decreases(self):
        rng = np.random.default_rng(9)
        lsq = GivensLeastSquares(10, 1.0)
        prev = 1.0
        for j in range(10):
            r = lsq.append_column(rng.standard_normal(j + 1), 1.0)
            assert r <= prev + 1e-14
            prev = r

    def test_full_system_raises(self):
        lsq = GivensLeastSquares(1, 1.0)
        lsq.append_column(np.array([1.0]), 0.5)
        with pytest.raises(RuntimeError):
            lsq.append_column(np.array([1.0]), 0.5)

    def test_empty_solve(self):
        assert GivensLeastSquares(3, 1.0).solve().size == 0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GivensLeastSquares(0, 1.0)


class TestCbGmresBasics:
    def test_solves_small_system_exactly(self):
        a, b, x_true = small_system()
        res = CbGmres(a, "float64", m=30).solve(b, 1e-12)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-9

    def test_final_rrn_is_honest(self):
        a, b, _ = small_system(seed=1)
        res = CbGmres(a, "float64", m=30).solve(b, 1e-10)
        check = np.linalg.norm(b - a.matvec(res.x)) / np.linalg.norm(b)
        assert res.final_rrn == pytest.approx(check, rel=1e-12)
        assert res.final_rrn <= 1e-10

    def test_zero_rhs(self):
        a, _, _ = small_system(seed=2)
        res = CbGmres(a).solve(np.zeros(a.n), 1e-10)
        assert res.converged
        assert np.array_equal(res.x, np.zeros(a.n))

    def test_initial_guess_honored(self):
        a, b, x_true = small_system(seed=3)
        res = CbGmres(a, m=30).solve(b, 1e-12, x0=x_true.copy())
        assert res.converged
        assert res.iterations == 0  # already converged at the first check

    def test_nonsquare_matrix_rejected(self):
        coo = COOMatrix((3, 4), [0], [0], [1.0])
        with pytest.raises(ValueError):
            CbGmres(coo.to_csr())

    def test_wrong_rhs_shape_rejected(self):
        a, _, _ = small_system(seed=4)
        with pytest.raises(ValueError):
            CbGmres(a).solve(np.ones(a.n + 1), 1e-8)

    def test_negative_target_rejected(self):
        a, b, _ = small_system(seed=5)
        with pytest.raises(ValueError):
            CbGmres(a).solve(b, -1.0)

    def test_max_iter_cap(self):
        p = make_problem("atmosmodd", "smoke")
        res = CbGmres(p.a, "float64", max_iter=10, stall_restarts=None).solve(
            p.b, 1e-30
        )
        assert not res.converged
        assert res.iterations <= 10 + res.stats.restarts  # cap respected per cycle

    def test_history_kinds(self):
        p = make_problem("atmosmodd", "smoke")
        res = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        kinds = {s.kind for s in res.history}
        assert kinds == {"implicit", "explicit"}
        its, rrns = res.history_arrays("explicit")
        assert rrns[0] == pytest.approx(1.0)  # x0 = 0 -> rrn = 1

    def test_record_history_off(self):
        p = make_problem("atmosmodd", "smoke")
        res = CbGmres(p.a).solve(p.b, p.target_rrn, record_history=False)
        assert res.history == []
        assert res.converged


class TestCbGmresRestart:
    def test_restart_happens_and_recovers(self):
        p = make_problem("atmosmodd", "default")
        res = CbGmres(p.a, "float64", m=100).solve(p.b, p.target_rrn)
        assert res.converged
        assert res.stats.restarts >= 2  # needs > 100 iterations
        # explicit samples exist at each restart boundary
        its, _ = res.history_arrays("explicit")
        assert its.size == res.stats.restarts + 1

    def test_explicit_jump_visible_for_compressed_storage(self):
        """Fig. 9a: the implicit estimate is optimistic for compressed
        bases; the explicit residual at restart jumps back up."""
        p = make_problem("atmosmodd", "default")
        res = CbGmres(p.a, "float16", m=100).solve(p.b, p.target_rrn)
        hist = res.history
        jumps = 0
        for i in range(1, len(hist)):
            if hist[i].kind == "explicit" and hist[i - 1].kind == "implicit":
                if hist[i].rrn > hist[i - 1].rrn * 1.5:
                    jumps += 1
        assert jumps >= 1

    def test_small_restart_converges_slower(self):
        p = make_problem("atmosmodd", "smoke")
        full = CbGmres(p.a, m=100).solve(p.b, p.target_rrn)
        short = CbGmres(p.a, m=10).solve(p.b, p.target_rrn)
        assert short.iterations >= full.iterations


class TestCbGmresStorageFormats:
    @pytest.mark.parametrize(
        "fmt", ["float64", "float32", "float16", "frsz2_32", "frsz2_16"]
    )
    def test_converges_on_easy_problem(self, fmt):
        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, fmt).solve(p.b, p.target_rrn)
        assert res.converged, f"{fmt} failed: rrn={res.final_rrn}"

    def test_paper_format_ordering_on_atmosmod(self):
        """Fig. 8's atmosmod ordering: f64 < frsz2_32 < f32 < f16."""
        p = make_problem("atmosmodd", "default")
        iters = {}
        for fmt in ("float64", "frsz2_32", "float32", "float16"):
            iters[fmt] = CbGmres(p.a, fmt).solve(p.b, p.target_rrn).iterations
        assert iters["float64"] < iters["frsz2_32"] < iters["float32"] < iters["float16"]

    def test_roundtrip_compressor_storage(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, "zfp_fr_32").solve(p.b, p.target_rrn)
        assert res.converged
        assert res.stats.bits_per_value < 34

    def test_custom_accessor_factory(self):
        from repro.accessor import accessor_factory

        p = make_problem("lung2", "smoke")
        solver = CbGmres(
            p.a, "frsz2_32", accessor_factory=accessor_factory("frsz2_32", block_size=8)
        )
        res = solver.solve(p.b, p.target_rrn)
        assert res.converged

    def test_pr02r_discriminates_formats(self):
        """The PR02R pattern (Fig. 7/9b): frsz2_32 much slower than
        float64; float32 matches float64; float16 never converges."""
        p = make_problem("PR02R", "default")
        r64 = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        r32 = CbGmres(p.a, "float32").solve(p.b, p.target_rrn)
        rf = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        r16 = CbGmres(p.a, "float16", max_iter=3000).solve(p.b, p.target_rrn)
        assert r64.converged and r32.converged and rf.converged
        assert r32.iterations <= r64.iterations * 1.2
        assert rf.iterations > 3 * r64.iterations
        assert not r16.converged


class TestStallDetection:
    def test_stall_fires_on_hopeless_combination(self):
        p = make_problem("PR02R", "default")
        res = CbGmres(p.a, "float16", max_iter=5000, stall_restarts=5).solve(
            p.b, p.target_rrn
        )
        assert res.stalled
        assert res.iterations < 5000

    def test_stall_disabled_runs_to_cap(self):
        p = make_problem("PR02R", "smoke")
        res = CbGmres(p.a, "float16", max_iter=600, stall_restarts=None).solve(
            p.b, p.target_rrn
        )
        assert not res.stalled


class TestCalibration:
    def test_calibration_matches_paper_procedure(self):
        a, b, _ = small_system(seed=10)
        cal = calibrate_target(a, b, max_iter=200, wiggle=2.0)
        assert cal.target_rrn == pytest.approx(cal.achieved_rrn * 2.0)
        assert cal.achieved_rrn < 1e-12  # easy system: machine-level

    def test_calibrated_target_is_achievable(self):
        p = make_problem("atmosmodd", "smoke")
        cal = calibrate_target(p.a, p.b, max_iter=500, name="atmosmodd")
        res = CbGmres(p.a, "float64").solve(p.b, cal.target_rrn)
        assert res.converged


class TestProblems:
    def test_expected_solution_is_normalized_sin(self):
        x = make_expected_solution(100)
        assert np.linalg.norm(x) == pytest.approx(1.0)
        s = np.sin(np.arange(100))
        assert np.allclose(x, s / np.linalg.norm(s))

    def test_rhs_consistent(self):
        p = make_problem("lung2", "smoke")
        assert np.allclose(p.b, p.a.matvec(p.x_sol))

    def test_make_problem_target_override(self):
        p = make_problem("lung2", "smoke", target_rrn=1e-3)
        assert p.target_rrn == 1e-3


class TestSolveStats:
    def test_stats_are_consistent(self):
        p = make_problem("atmosmodd", "smoke")
        res = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        s = res.stats
        assert s.iterations == res.iterations
        assert s.n == p.a.n
        assert s.nnz == p.a.nnz
        # 33 bits/value plus last-block padding (n not divisible by 32)
        assert s.bits_per_value == pytest.approx(33.0, abs=1.0)
        # one SpMV per iteration plus one per restart check plus final
        assert s.spmv_calls == s.iterations + s.restarts + 2
        # each iteration writes at most one basis vector (+1 per cycle)
        assert s.basis_writes <= s.iterations + s.restarts + 1
        assert s.basis_reads > 0
