"""Smoke tests: every bundled example must run end-to-end.

Examples are user-facing deliverables; these tests execute each one in a
subprocess at smoke scale and check for a clean exit and the expected
headline output.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

CASES = {
    "quickstart.py": "compression ratio",
    "compression_walkthrough.py": "e_max",
    "cfd_solver_comparison.py": "storage-format comparison",
    "compression_study.py": "compressors on v_0",
    "roofline_h100.py": "bandwidth eff",
    "format_prediction.py": "predicted",
    "orthogonality_analysis.py": "iterations",
    "fault_tolerance_demo.py": "survival",
}


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    # propagate src/ so examples import repro from a clean checkout
    # without requiring `pip install -e .`
    pythonpath = str(SRC_DIR)
    if os.environ.get("PYTHONPATH"):
        pythonpath += os.pathsep + os.environ["PYTHONPATH"]
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env={"REPRO_SCALE": "smoke", "PATH": "/usr/bin:/bin", "PYTHONPATH": pythonpath},
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert CASES[name].lower() in proc.stdout.lower()


def test_examples_directory_is_covered():
    """Every example script has a smoke test (no orphan examples)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES)


def test_cfd_comparison_accepts_matrix_arguments():
    proc = run_example("cfd_solver_comparison.py", "lung2")
    assert proc.returncode == 0
    assert "lung2" in proc.stdout


def test_cfd_comparison_rejects_unknown_matrix():
    proc = run_example("cfd_solver_comparison.py", "not-a-matrix")
    assert proc.returncode != 0
