"""Tests for the preconditioners (the M^-1 of the paper's Fig. 1)."""

import numpy as np
import pytest

from repro.solvers import (
    BlockJacobiPreconditioner,
    CbGmres,
    IdentityPreconditioner,
    JacobiPreconditioner,
    make_problem,
)
from repro.sparse import COOMatrix


def spd_system(n=40, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * 0.1
    dense = dense @ dense.T + np.diag(1.0 + rng.random(n) * 5)
    rows, cols = np.nonzero(dense)
    a = COOMatrix((n, n), rows, cols, dense[rows, cols]).to_csr()
    x = rng.standard_normal(n)
    return a, a.matvec(x), x


class TestIdentity:
    def test_apply_is_noop(self):
        p = IdentityPreconditioner()
        v = np.linspace(0, 1, 10)
        assert np.array_equal(p.apply(v), v)

    def test_is_identity_flag(self):
        assert IdentityPreconditioner().is_identity
        a, _, _ = spd_system()
        assert not JacobiPreconditioner(a).is_identity


class TestJacobi:
    def test_apply_divides_by_diagonal(self):
        a, _, _ = spd_system(seed=1)
        p = JacobiPreconditioner(a)
        v = np.ones(a.n)
        assert np.allclose(p.apply(v), 1.0 / a.diagonal())

    def test_zero_diagonal_falls_back_to_identity_row(self):
        a = COOMatrix((2, 2), [0, 0, 1], [0, 1, 0], [2.0, 1.0, 3.0]).to_csr()
        p = JacobiPreconditioner(a)
        out = p.apply(np.array([4.0, 5.0]))
        assert out[0] == 2.0  # divided by 2
        assert out[1] == 5.0  # diagonal zero -> untouched

    def test_nonsquare_rejected(self):
        a = COOMatrix((2, 3), [0], [0], [1.0]).to_csr()
        with pytest.raises(ValueError):
            JacobiPreconditioner(a)


class TestBlockJacobi:
    def test_exact_inverse_for_block_diagonal_matrix(self):
        # a truly block-diagonal matrix: M^-1 A = I, GMRES in 1 iteration
        rng = np.random.default_rng(2)
        blocks = [rng.standard_normal((4, 4)) + 4 * np.eye(4) for _ in range(5)]
        rows, cols, data = [], [], []
        for b, blk in enumerate(blocks):
            r, c = np.meshgrid(range(4), range(4), indexing="ij")
            rows.append((r + 4 * b).ravel())
            cols.append((c + 4 * b).ravel())
            data.append(blk.ravel())
        a = COOMatrix(
            (20, 20), np.concatenate(rows), np.concatenate(cols), np.concatenate(data)
        ).to_csr()
        p = BlockJacobiPreconditioner(a, block_size=4)
        x_true = rng.standard_normal(20)
        b_vec = a.matvec(x_true)
        res = CbGmres(a, preconditioner=p).solve(b_vec, 1e-12)
        assert res.converged
        assert res.iterations <= 2

    def test_apply_matches_dense_inverse(self):
        a, _, _ = spd_system(n=12, seed=3)
        p = BlockJacobiPreconditioner(a, block_size=6)
        dense = a.to_dense()
        m = np.zeros_like(dense)
        m[:6, :6] = np.linalg.inv(dense[:6, :6])
        m[6:, 6:] = np.linalg.inv(dense[6:, 6:])
        v = np.random.default_rng(4).standard_normal(12)
        assert np.allclose(p.apply(v), m @ v)

    def test_partial_last_block(self):
        a, b, _ = spd_system(n=10, seed=5)
        p = BlockJacobiPreconditioner(a, block_size=4)  # blocks 4,4,2
        assert p.apply(b).shape == (10,)

    def test_reduced_precision_storage(self):
        a, _, _ = spd_system(n=16, seed=6)
        p64 = BlockJacobiPreconditioner(a, 4, np.float64)
        p32 = BlockJacobiPreconditioner(a, 4, np.float32)
        p16 = BlockJacobiPreconditioner(a, 4, np.float16)
        assert p32.stored_nbytes == p64.stored_nbytes // 2
        assert p16.stored_nbytes == p64.stored_nbytes // 4
        v = np.random.default_rng(7).standard_normal(16)
        # reduced precision perturbs but approximates the float64 apply
        assert np.allclose(p32.apply(v), p64.apply(v), rtol=1e-5)
        assert np.allclose(p16.apply(v), p64.apply(v), rtol=2e-2)
        assert not np.array_equal(p32.apply(v), p64.apply(v))

    def test_invalid_dtype_rejected(self):
        a, _, _ = spd_system(n=8, seed=8)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(a, 4, np.int32)

    def test_invalid_block_size(self):
        a, _, _ = spd_system(n=8, seed=9)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(a, 0)

    def test_singular_block_falls_back(self):
        a = COOMatrix((4, 4), [0, 1, 2, 3], [1, 0, 2, 3], [1.0, 1.0, 1.0, 1.0]).to_csr()
        # block [2x2] of rows 0-1 has zero diagonal but is invertible;
        # make a genuinely singular block instead
        a2 = COOMatrix((4, 4), [2, 3], [2, 3], [1.0, 1.0]).to_csr()
        p = BlockJacobiPreconditioner(a2, block_size=2)
        out = p.apply(np.ones(4))
        assert np.all(np.isfinite(out))

    def test_wrong_vector_shape(self):
        a, _, _ = spd_system(n=8, seed=10)
        p = BlockJacobiPreconditioner(a, 4)
        with pytest.raises(ValueError):
            p.apply(np.ones(9))


class TestPreconditionedSolver:
    def test_preconditioning_reduces_iterations(self):
        p = make_problem("StocF-1465", "smoke")
        plain = CbGmres(p.a).solve(p.b, p.target_rrn)
        prec = CbGmres(p.a, preconditioner=JacobiPreconditioner(p.a)).solve(
            p.b, p.target_rrn
        )
        assert prec.converged
        assert prec.iterations <= plain.iterations

    def test_preconditioner_applies_counted(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, preconditioner=JacobiPreconditioner(p.a)).solve(
            p.b, p.target_rrn
        )
        # one apply per iteration plus one per restart's solution update
        assert res.stats.preconditioner_applies == res.iterations + res.stats.restarts

    def test_identity_preconditioner_matches_unpreconditioned(self):
        p = make_problem("lung2", "smoke")
        a_res = CbGmres(p.a).solve(p.b, p.target_rrn)
        b_res = CbGmres(p.a, preconditioner=IdentityPreconditioner()).solve(
            p.b, p.target_rrn
        )
        assert a_res.iterations == b_res.iterations
        assert np.array_equal(a_res.x, b_res.x)

    def test_compressed_basis_with_preconditioner(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(
            p.a, "frsz2_32", preconditioner=JacobiPreconditioner(p.a)
        ).solve(p.b, p.target_rrn)
        assert res.converged

    def test_solution_correctness_with_preconditioner(self):
        a, b, x_true = spd_system(n=60, seed=11)
        res = CbGmres(a, preconditioner=BlockJacobiPreconditioner(a, 10)).solve(
            b, 1e-12
        )
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-9


class TestMgsOption:
    def test_mgs_converges_like_cgs(self):
        p = make_problem("atmosmodd", "smoke")
        cgs = CbGmres(p.a, orthogonalization="cgs").solve(p.b, p.target_rrn)
        mgs = CbGmres(p.a, orthogonalization="mgs").solve(p.b, p.target_rrn)
        assert cgs.converged and mgs.converged
        assert abs(cgs.iterations - mgs.iterations) <= max(3, cgs.iterations // 10)

    def test_invalid_orthogonalization_rejected(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError):
            CbGmres(p.a, orthogonalization="householder")
