"""Tests for the preconditioners (the M^-1 of the paper's Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe import Tracer
from repro.solvers import (
    PREC_STORAGES,
    PRECONDITIONERS,
    BlockJacobiPreconditioner,
    CbGmres,
    IdentityPreconditioner,
    ILU0Preconditioner,
    JacobiPreconditioner,
    PreconditionerError,
    ZeroPivotError,
    make_preconditioner,
    make_problem,
)
from repro.sparse import COOMatrix


def spd_system(n=40, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * 0.1
    dense = dense @ dense.T + np.diag(1.0 + rng.random(n) * 5)
    rows, cols = np.nonzero(dense)
    a = COOMatrix((n, n), rows, cols, dense[rows, cols]).to_csr()
    x = rng.standard_normal(n)
    return a, a.matvec(x), x


class TestIdentity:
    def test_apply_is_noop(self):
        p = IdentityPreconditioner()
        v = np.linspace(0, 1, 10)
        assert np.array_equal(p.apply(v), v)

    def test_is_identity_flag(self):
        assert IdentityPreconditioner().is_identity
        a, _, _ = spd_system()
        assert not JacobiPreconditioner(a).is_identity


class TestJacobi:
    def test_apply_divides_by_diagonal(self):
        a, _, _ = spd_system(seed=1)
        p = JacobiPreconditioner(a)
        v = np.ones(a.n)
        assert np.allclose(p.apply(v), 1.0 / a.diagonal())

    def test_zero_diagonal_falls_back_to_identity_row(self):
        a = COOMatrix((2, 2), [0, 0, 1], [0, 1, 0], [2.0, 1.0, 3.0]).to_csr()
        p = JacobiPreconditioner(a)
        out = p.apply(np.array([4.0, 5.0]))
        assert out[0] == 2.0  # divided by 2
        assert out[1] == 5.0  # diagonal zero -> untouched

    def test_nonsquare_rejected(self):
        a = COOMatrix((2, 3), [0], [0], [1.0]).to_csr()
        with pytest.raises(ValueError):
            JacobiPreconditioner(a)


class TestBlockJacobi:
    def test_exact_inverse_for_block_diagonal_matrix(self):
        # a truly block-diagonal matrix: M^-1 A = I, GMRES in 1 iteration
        rng = np.random.default_rng(2)
        blocks = [rng.standard_normal((4, 4)) + 4 * np.eye(4) for _ in range(5)]
        rows, cols, data = [], [], []
        for b, blk in enumerate(blocks):
            r, c = np.meshgrid(range(4), range(4), indexing="ij")
            rows.append((r + 4 * b).ravel())
            cols.append((c + 4 * b).ravel())
            data.append(blk.ravel())
        a = COOMatrix(
            (20, 20), np.concatenate(rows), np.concatenate(cols), np.concatenate(data)
        ).to_csr()
        p = BlockJacobiPreconditioner(a, block_size=4)
        x_true = rng.standard_normal(20)
        b_vec = a.matvec(x_true)
        res = CbGmres(a, preconditioner=p).solve(b_vec, 1e-12)
        assert res.converged
        assert res.iterations <= 2

    def test_apply_matches_dense_inverse(self):
        a, _, _ = spd_system(n=12, seed=3)
        p = BlockJacobiPreconditioner(a, block_size=6)
        dense = a.to_dense()
        m = np.zeros_like(dense)
        m[:6, :6] = np.linalg.inv(dense[:6, :6])
        m[6:, 6:] = np.linalg.inv(dense[6:, 6:])
        v = np.random.default_rng(4).standard_normal(12)
        assert np.allclose(p.apply(v), m @ v)

    def test_partial_last_block(self):
        a, b, _ = spd_system(n=10, seed=5)
        p = BlockJacobiPreconditioner(a, block_size=4)  # blocks 4,4,2
        assert p.apply(b).shape == (10,)

    def test_reduced_precision_storage(self):
        a, _, _ = spd_system(n=16, seed=6)
        p64 = BlockJacobiPreconditioner(a, 4, np.float64)
        p32 = BlockJacobiPreconditioner(a, 4, np.float32)
        p16 = BlockJacobiPreconditioner(a, 4, np.float16)
        assert p32.stored_nbytes == p64.stored_nbytes // 2
        assert p16.stored_nbytes == p64.stored_nbytes // 4
        v = np.random.default_rng(7).standard_normal(16)
        # reduced precision perturbs but approximates the float64 apply
        assert np.allclose(p32.apply(v), p64.apply(v), rtol=1e-5)
        assert np.allclose(p16.apply(v), p64.apply(v), rtol=2e-2)
        assert not np.array_equal(p32.apply(v), p64.apply(v))

    def test_invalid_dtype_rejected(self):
        a, _, _ = spd_system(n=8, seed=8)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(a, 4, np.int32)

    def test_invalid_block_size(self):
        a, _, _ = spd_system(n=8, seed=9)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(a, 0)

    def test_singular_block_falls_back(self):
        a = COOMatrix((4, 4), [0, 1, 2, 3], [1, 0, 2, 3], [1.0, 1.0, 1.0, 1.0]).to_csr()
        # block [2x2] of rows 0-1 has zero diagonal but is invertible;
        # make a genuinely singular block instead
        a2 = COOMatrix((4, 4), [2, 3], [2, 3], [1.0, 1.0]).to_csr()
        p = BlockJacobiPreconditioner(a2, block_size=2)
        out = p.apply(np.ones(4))
        assert np.all(np.isfinite(out))

    def test_wrong_vector_shape(self):
        a, _, _ = spd_system(n=8, seed=10)
        p = BlockJacobiPreconditioner(a, 4)
        with pytest.raises(ValueError):
            p.apply(np.ones(9))


def tridiag(n=30, lo=-1.0, di=4.0, hi=-2.0):
    """Tridiagonal test matrix; its ILU(0) is the *exact* LU (no fill)."""
    rows = np.concatenate([np.arange(n), np.arange(1, n), np.arange(n - 1)])
    cols = np.concatenate([np.arange(n), np.arange(n - 1), np.arange(1, n)])
    data = np.concatenate([np.full(n, di), np.full(n - 1, lo), np.full(n - 1, hi)])
    return COOMatrix((n, n), rows, cols, data).to_csr()


class TestIlu0:
    def test_exact_for_fill_free_pattern(self):
        # tridiagonal: ILU(0) == full LU, so M^-1 A v == v to rounding
        a = tridiag(25)
        p = ILU0Preconditioner(a)
        rng = np.random.default_rng(12)
        v = rng.standard_normal(25)
        recovered = p.apply(a.matvec(v))
        assert np.allclose(recovered, v, rtol=1e-12)

    def test_gmres_converges_in_one_restart_on_fill_free_matrix(self):
        a = tridiag(64)
        rng = np.random.default_rng(13)
        x_true = rng.standard_normal(64)
        res = CbGmres(a, preconditioner=ILU0Preconditioner(a)).solve(
            a.matvec(x_true), 1e-12
        )
        assert res.converged
        assert res.iterations <= 3
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-9

    def test_factors_match_dense_ilu_on_spd(self):
        a, _, _ = spd_system(n=14, seed=14)
        p = ILU0Preconditioner(a)
        # the (dense) pattern here is full, so ILU(0) is plain LU
        dense = a.to_dense()
        v = np.random.default_rng(15).standard_normal(14)
        assert np.allclose(p.apply(v), np.linalg.solve(dense, v), rtol=1e-9)

    def test_zero_pivot_raises_named_row(self):
        # row 1 has no diagonal entry -> structural zero pivot
        a = COOMatrix((3, 3), [0, 1, 2], [0, 0, 2], [1.0, 1.0, 1.0]).to_csr()
        with pytest.raises(ZeroPivotError) as err:
            ILU0Preconditioner(a)
        assert err.value.row == 1
        assert isinstance(err.value, PreconditionerError)
        assert isinstance(err.value, ValueError)

    def test_exact_zero_pivot_raises(self):
        a = COOMatrix(
            (2, 2), [0, 0, 1, 1], [0, 1, 0, 1], [1.0, 1.0, 1.0, 1.0]
        ).to_csr()
        # elimination: u_11 = 1 - 1*1 = 0
        with pytest.raises(ZeroPivotError) as err:
            ILU0Preconditioner(a)
        assert err.value.row == 1

    def test_storage_ladder_byte_ratios(self):
        a, _, _ = spd_system(n=32, seed=16)
        sizes = {
            s: ILU0Preconditioner(a, storage=s).stored_nbytes
            for s in ("float64", "float32", "frsz2_32", "frsz2_16")
        }
        assert sizes["float32"] == sizes["float64"] // 2
        assert sizes["frsz2_32"] < sizes["float64"]
        assert sizes["frsz2_16"] < sizes["frsz2_32"]
        info = ILU0Preconditioner(a, storage="frsz2_16").cost_info()
        assert info["float64_bytes"] == sizes["float64"]
        assert info["stored_bytes"] == sizes["frsz2_16"]

    def test_compressed_factors_still_precondition(self):
        a = tridiag(48)
        rng = np.random.default_rng(17)
        b = a.matvec(rng.standard_normal(48))
        for storage in ("frsz2_32", "frsz2_16"):
            res = CbGmres(
                a, preconditioner=ILU0Preconditioner(a, storage=storage)
            ).solve(b, 1e-10)
            assert res.converged

    def test_nonsquare_rejected(self):
        a = COOMatrix((2, 3), [0, 1], [0, 1], [1.0, 1.0]).to_csr()
        with pytest.raises(ValueError):
            ILU0Preconditioner(a)

    def test_unknown_storage_rejected(self):
        a = tridiag(4)
        with pytest.raises(PreconditionerError):
            ILU0Preconditioner(a, storage="int8")


class TestMakePreconditioner:
    def test_choices_cover_cli_names(self):
        assert PRECONDITIONERS == ("none", "jacobi", "block_jacobi", "ilu0")
        assert PREC_STORAGES == ("float64", "float32", "frsz2_32", "frsz2_16")

    def test_builds_each_kind(self):
        a, _, _ = spd_system(n=16, seed=18)
        assert make_preconditioner("none", a).is_identity
        assert isinstance(make_preconditioner("jacobi", a), JacobiPreconditioner)
        assert isinstance(
            make_preconditioner("block_jacobi", a, storage="frsz2_16"),
            BlockJacobiPreconditioner,
        )
        assert isinstance(
            make_preconditioner("ilu0", a, storage="frsz2_32"), ILU0Preconditioner
        )

    def test_unknown_name_and_storage_rejected(self):
        a, _, _ = spd_system(n=8, seed=19)
        with pytest.raises(PreconditionerError):
            make_preconditioner("amg", a)
        with pytest.raises(PreconditionerError):
            make_preconditioner("ilu0", a, storage="float128")

    def test_tracer_counts_applies_and_bytes(self):
        a, _, _ = spd_system(n=16, seed=20)
        tracer = Tracer()
        p = make_preconditioner("ilu0", a, tracer=tracer)
        v = np.ones(16)
        p.apply(v)
        p.apply(v)
        assert tracer.counters["prec.applies"] == 2
        assert tracer.counters["prec.apply.bytes"] == 2 * (p.stored_nbytes + 16 * 16)
        assert tracer.total_seconds("prec.setup") > 0.0
        assert tracer.total_seconds("prec.apply") > 0.0

    def test_attach_tracer_does_not_clobber_constructor_tracer(self):
        a, _, _ = spd_system(n=8, seed=21)
        mine = Tracer()
        p = make_preconditioner("jacobi", a, tracer=mine)
        p.attach_tracer(Tracer())
        p.apply(np.ones(8))
        assert mine.counters["prec.applies"] == 1


class TestFrsz2BlockJacobiDefaultGrid:
    def test_frsz2_16_block_jacobi_converges_on_default_lung2(self):
        """The headline compressed-preconditioner claim: 16-bit FRSZ2
        block factors keep convergence on the default-scale grid."""
        p = make_problem("lung2", "default")
        prec = BlockJacobiPreconditioner(p.a, block_size=8, storage="frsz2_16")
        res = CbGmres(p.a, "frsz2_32", preconditioner=prec).solve(
            p.b, p.target_rrn
        )
        assert res.converged
        assert prec.stored_nbytes < prec.float64_nbytes / 3


class TestBlockSizeFuzz:
    @settings(max_examples=25, deadline=None)
    @given(
        block_size=st.integers(min_value=1, max_value=23),
        n=st.integers(min_value=3, max_value=40),
        storage=st.sampled_from(PREC_STORAGES),
    )
    def test_block_jacobi_any_block_size_is_finite_and_close(
        self, block_size, n, storage
    ):
        a, _, _ = spd_system(n=n, seed=22)
        p = BlockJacobiPreconditioner(a, block_size=block_size, storage=storage)
        ref = BlockJacobiPreconditioner(a, block_size=block_size)
        v = np.random.default_rng(23).standard_normal(n)
        out = p.apply(v)
        assert out.shape == (n,)
        assert np.all(np.isfinite(out))
        # the ladder perturbs, it must not distort: frsz2_16 keeps ~2
        # decimal digits on these well-scaled blocks
        assert np.allclose(out, ref.apply(v), rtol=5e-2, atol=5e-2)


class TestPreconditionedSolver:
    def test_preconditioning_reduces_iterations(self):
        p = make_problem("StocF-1465", "smoke")
        plain = CbGmres(p.a).solve(p.b, p.target_rrn)
        prec = CbGmres(p.a, preconditioner=JacobiPreconditioner(p.a)).solve(
            p.b, p.target_rrn
        )
        assert prec.converged
        assert prec.iterations <= plain.iterations

    def test_preconditioner_applies_counted(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, preconditioner=JacobiPreconditioner(p.a)).solve(
            p.b, p.target_rrn
        )
        # one apply per iteration plus one per restart's solution update
        assert res.stats.preconditioner_applies == res.iterations + res.stats.restarts

    def test_identity_preconditioner_matches_unpreconditioned(self):
        p = make_problem("lung2", "smoke")
        a_res = CbGmres(p.a).solve(p.b, p.target_rrn)
        b_res = CbGmres(p.a, preconditioner=IdentityPreconditioner()).solve(
            p.b, p.target_rrn
        )
        assert a_res.iterations == b_res.iterations
        assert np.array_equal(a_res.x, b_res.x)

    def test_compressed_basis_with_preconditioner(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(
            p.a, "frsz2_32", preconditioner=JacobiPreconditioner(p.a)
        ).solve(p.b, p.target_rrn)
        assert res.converged

    def test_solution_correctness_with_preconditioner(self):
        a, b, x_true = spd_system(n=60, seed=11)
        res = CbGmres(a, preconditioner=BlockJacobiPreconditioner(a, 10)).solve(
            b, 1e-12
        )
        assert res.converged
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-9


class TestMgsOption:
    def test_mgs_converges_like_cgs(self):
        p = make_problem("atmosmodd", "smoke")
        cgs = CbGmres(p.a, orthogonalization="cgs").solve(p.b, p.target_rrn)
        mgs = CbGmres(p.a, orthogonalization="mgs").solve(p.b, p.target_rrn)
        assert cgs.converged and mgs.converged
        assert abs(cgs.iterations - mgs.iterations) <= max(3, cgs.iterations // 10)

    def test_invalid_orthogonalization_rejected(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError):
            CbGmres(p.a, orthogonalization="householder")
