"""Fused compressed-basis kernels and the streaming basis mode.

The load-bearing property is the determinism contract of
:mod:`repro.fused`: the ``cached`` and ``streaming`` basis modes must be
*bit-identical* — same Hessenberg entries, same residual histories, same
solutions — because they run the same tile kernels over the same grid.
The satellite property is the memory claim: streaming never materializes
an ``(n, m)`` float64 basis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accessor import make_accessor
from repro.accessor.frsz2_accessor import Frsz2Accessor, read_frsz2_tiles
from repro.fused import (
    DEFAULT_TILE_ELEMS,
    CachedTileReader,
    FusedOpLog,
    StreamingTileReader,
    axpy_fused,
    combine_fused,
    dot_basis_fused,
    norm_fused,
    tile_grid,
)
from repro.solvers import CbGmres, make_problem
from repro.solvers.basis import BASIS_MODES, KrylovBasis
from repro.solvers.orthogonal import cgs_orthogonalize

STORAGES = ["frsz2_16", "frsz2_32", "float32", "float64"]

krylov_vals = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_subnormal=False),
    min_size=1,
    max_size=200,
)


def _filled_bases(n, j, storage, rng, tile_elems=DEFAULT_TILE_ELEMS, m=None):
    """One cached + one streaming basis holding the same j vectors."""
    m = m or max(j, 1)
    bases = [
        KrylovBasis(n, m, storage, basis_mode=mode, tile_elems=tile_elems)
        for mode in BASIS_MODES
    ]
    for i in range(j):
        v = rng.standard_normal(n)
        v /= max(np.linalg.norm(v), 1.0)
        for b in bases:
            b.write_vector(i, v)
    return bases


class TestTileGrid:
    def test_covers_exactly(self):
        for n in (1, 31, 32, 33, 1000):
            for tile in (1, 32, 64, 2048):
                grid = tile_grid(n, tile)
                assert grid[0][0] == 0 and grid[-1][1] == n
                for (a0, a1), (b0, b1) in zip(grid, grid[1:]):
                    assert a1 == b0
                assert all(t1 - t0 <= tile for t0, t1 in grid)

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(ValueError):
            tile_grid(10, 0)


class TestKernelsAgainstDense:
    """Fused kernels equal the dense-matrix reference (within fp jitter
    of the reduction order — exact for a single tile)."""

    @given(vals=krylov_vals, j=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_dot_combine_axpy_match_dense(self, vals, j):
        n = len(vals)
        rng = np.random.default_rng(n * 31 + j)
        cache = np.zeros((n, j + 1), order="F")
        for i in range(j):
            cache[:, i] = rng.permuted(np.array(vals))
        w = np.array(vals)
        y = rng.standard_normal(j)
        reader = CachedTileReader(cache, j)
        v = cache[:, :j]
        assert np.allclose(dot_basis_fused(reader, w, 64), v.T @ w)
        assert np.allclose(combine_fused(reader, y, 64), v @ y)
        w2 = w.copy()
        axpy_fused(reader, y, w2, 64)
        assert np.allclose(w2, w - v @ y)

    def test_axpy_bitwise_equals_combine_subtraction(self):
        # each element is touched exactly once -> not just close, equal
        rng = np.random.default_rng(7)
        n, j = 777, 4
        cache = np.asfortranarray(rng.standard_normal((n, j + 1)))
        w = rng.standard_normal(n)
        y = rng.standard_normal(j)
        via_combine = w - combine_fused(CachedTileReader(cache, j), y, 128)
        via_axpy = axpy_fused(CachedTileReader(cache, j), y, w.copy(), 128)
        np.testing.assert_array_equal(via_axpy, via_combine)

    def test_norm_fused_matches_tile_accumulation(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(500)
        got = norm_fused(lambda t0, t1: x[t0:t1], 500, 64)
        ref = 0.0
        for t0, t1 in tile_grid(500, 64):
            ref += float(x[t0:t1] @ x[t0:t1])
        assert got == float(np.sqrt(ref))

    def test_zero_vectors_edge(self):
        cache = np.zeros((10, 1), order="F")
        reader = CachedTileReader(cache, 0)
        assert dot_basis_fused(reader, np.ones(10)).shape == (0,)
        np.testing.assert_array_equal(
            combine_fused(reader, np.zeros(0)), np.zeros(10)
        )


class TestReaderBitIdentity:
    """Cached and streaming tile readers deliver identical values, so
    every fused kernel is bit-identical between them."""

    @pytest.mark.parametrize("storage", STORAGES)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300), j=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_kernels_bit_identical(self, storage, seed, n, j):
        rng = np.random.default_rng(seed)
        cached, streaming = _filled_bases(n, j, storage, rng, tile_elems=64)
        assert cached.tile_elems == streaming.tile_elems
        w = rng.standard_normal(n)
        y = rng.standard_normal(j)
        np.testing.assert_array_equal(
            cached.dot_basis(j, w), streaming.dot_basis(j, w)
        )
        np.testing.assert_array_equal(
            cached.combine(j, y), streaming.combine(j, y)
        )
        wc, ws = w.copy(), w.copy()
        np.testing.assert_array_equal(
            cached.axpy(j, y, wc), streaming.axpy(j, y, ws)
        )
        for i in range(j):
            assert cached.norm_vector(i) == streaming.norm_vector(i)
            np.testing.assert_array_equal(
                cached.vector(i), streaming.vector(i)
            )

    def test_batched_frsz2_tile_read_equals_per_vector(self):
        rng = np.random.default_rng(11)
        n, j = 260, 3
        accs = [make_accessor("frsz2_32", n) for _ in range(j)]
        for acc in accs:
            assert isinstance(acc, Frsz2Accessor)
            acc.write(rng.standard_normal(n))
        for t0, t1 in [(0, 64), (32, 96), (5, 71), (192, 260), (0, n)]:
            out = np.empty((j, t1 - t0))
            assert read_frsz2_tiles(accs, t0, t1, out)
            for row, acc in enumerate(accs):
                np.testing.assert_array_equal(out[row], acc.read_tile(t0, t1))

    def test_streaming_reader_mixed_formats_falls_back(self):
        rng = np.random.default_rng(5)
        n = 100
        accs = [make_accessor("frsz2_32", n), make_accessor("float32", n)]
        vals = [rng.standard_normal(n) for _ in accs]
        for acc, v in zip(accs, vals):
            acc.write(v)
        out = np.empty((2, 64))
        assert not read_frsz2_tiles(accs, 0, 64, out)
        reader = StreamingTileReader(accs, 2)
        reader.load(0, 64, out)
        for row, acc in enumerate(accs):
            np.testing.assert_array_equal(out[row], acc.read()[:64])


class TestArnoldiBitIdentity:
    """One CGS Arnoldi step produces identical Hessenberg entries."""

    @pytest.mark.parametrize("storage", STORAGES)
    def test_hessenberg_entries_identical(self, storage):
        rng = np.random.default_rng(23)
        n, j = 400, 5
        cached, streaming = _filled_bases(n, j, storage, rng, m=j + 1)
        w = rng.standard_normal(n)
        rc = cgs_orthogonalize(cached, j, w.copy(), eta=0.7)
        rs = cgs_orthogonalize(streaming, j, w.copy(), eta=0.7)
        np.testing.assert_array_equal(rc.h, rs.h)
        assert rc.h_next == rs.h_next
        assert rc.reorthogonalized == rs.reorthogonalized
        np.testing.assert_array_equal(rc.w, rs.w)


class TestSolverBitIdentity:
    """Full CB-GMRES solves agree bitwise between basis modes."""

    @pytest.mark.parametrize("storage", STORAGES)
    def test_solutions_and_histories_identical(self, storage):
        p = make_problem("lung2", "smoke")
        results = {}
        for mode in BASIS_MODES:
            solver = CbGmres(p.a, storage, m=25, max_iter=400, basis_mode=mode)
            results[mode] = solver.solve(p.b, p.target_rrn, record_history=True)
        rc, rs = results["cached"], results["streaming"]
        assert rc.converged and rs.converged
        assert rc.iterations == rs.iterations
        np.testing.assert_array_equal(rc.x, rs.x)
        assert [(s.iteration, s.rrn, s.kind) for s in rc.history] == [
            (s.iteration, s.rrn, s.kind) for s in rs.history
        ]

    def test_mgs_modes_identical(self):
        p = make_problem("lung2", "smoke")
        res = [
            CbGmres(
                p.a, "frsz2_32", m=20, max_iter=300,
                orthogonalization="mgs", basis_mode=mode,
            ).solve(p.b, p.target_rrn)
            for mode in BASIS_MODES
        ]
        np.testing.assert_array_equal(res[0].x, res[1].x)
        assert res[0].iterations == res[1].iterations


class TestStreamingMemory:
    """The streaming mode's reason to exist: O(tile) float64, not O(n*m)."""

    def test_streaming_never_allocates_dense_basis(self):
        n, m = 4096, 40
        basis = KrylovBasis(n, m, "frsz2_32", basis_mode="streaming")
        assert basis._cache is None
        rng = np.random.default_rng(0)
        for i in range(m):
            basis.write_vector(i, rng.standard_normal(n))
        w = rng.standard_normal(n)
        basis.dot_basis(m, w)
        basis.axpy(m, rng.standard_normal(m), w)
        dense_bytes = n * (m + 1) * 8
        assert basis.peak_float64_bytes > 0
        assert basis.peak_float64_bytes <= m * basis.tile_elems * 8
        assert basis.peak_float64_bytes < dense_bytes
        # scratch is (j, tile): growing n does not grow the working set
        assert basis.peak_float64_bytes == basis.fused_log.peak_scratch_bytes

    def test_cached_mode_reports_dense_footprint(self):
        basis = KrylovBasis(1000, 30, "frsz2_32", basis_mode="cached")
        assert basis.peak_float64_bytes == 1000 * 31 * 8

    def test_solver_stats_report_per_mode_footprint(self):
        p = make_problem("lung2", "smoke")
        n, m = p.a.n, 25
        stats = {}
        for mode in BASIS_MODES:
            r = CbGmres(p.a, "frsz2_32", m=m, max_iter=400, basis_mode=mode)
            stats[mode] = r.solve(p.b, p.target_rrn).stats
            assert stats[mode].basis_mode == mode
            assert stats[mode].fused_dot_calls > 0
            assert stats[mode].fused_tiles > 0
        assert stats["cached"].basis_peak_float64_bytes == n * (m + 1) * 8
        assert stats["streaming"].basis_peak_float64_bytes < n * (m + 1) * 8

    def test_tile_rounds_up_to_block_granularity(self):
        basis = KrylovBasis(500, 5, "frsz2_32", basis_mode="streaming", tile_elems=33)
        assert basis.tile_elems % 32 == 0
        assert basis.tile_elems >= 33
        b64 = KrylovBasis(500, 5, "float64", tile_elems=33)
        assert b64.tile_elems == 33  # float64 has no block granularity


class TestResetIsolation:
    """reset() clears the cache and the accessor payloads (satellite 2)."""

    @pytest.mark.parametrize("storage", STORAGES)
    @pytest.mark.parametrize("mode", BASIS_MODES)
    def test_no_stale_bits_after_reset(self, storage, mode):
        rng = np.random.default_rng(9)
        n = 200
        basis = KrylovBasis(n, 3, storage, basis_mode=mode)
        basis.write_vector(0, rng.standard_normal(n))
        basis.reset()
        with pytest.raises(IndexError):
            basis.vector(0)
        # the accessor payload itself is gone, not just fenced
        np.testing.assert_array_equal(
            basis.accessors[0].read(), np.zeros(n)
        )
        if mode == "cached":
            assert not basis._cache.any()

    def test_fused_log_counts_accumulate(self):
        rng = np.random.default_rng(1)
        basis = KrylovBasis(300, 4, "frsz2_16", basis_mode="streaming", tile_elems=64)
        for i in range(3):
            basis.write_vector(i, rng.standard_normal(300))
        log = basis.fused_log
        assert isinstance(log, FusedOpLog)
        basis.dot_basis(3, rng.standard_normal(300))
        assert log.dot_calls == 1 and log.dot_vectors == 3
        assert log.tiles == len(tile_grid(300, basis.tile_elems))
        assert log.values == 3 * 300
        basis.combine(3, rng.standard_normal(3))
        assert log.combine_calls == 1 and log.combine_vectors == 3
