"""Tests for the batched multi-RHS solve path (``CbGmres.solve_batch``).

The load-bearing property is bit-identity: column ``c`` of a batched
solve must equal an independent ``solve(B[:, c])`` — solution bits,
residual history, iteration counts — for every storage format, SpMV
format and batch width.  Everything else (counters, masking, input
validation) rides on top of that contract.
"""

import numpy as np
import pytest

from repro.solvers import BatchGmresResult, CbGmres, make_problem


def rhs_block(problem, nrhs, seed_base=1000):
    """Deterministic (n, nrhs) RHS block with solvable columns."""
    columns = []
    for c in range(nrhs):
        rng = np.random.default_rng(seed_base + c)
        x = rng.standard_normal(problem.a.shape[1])
        x /= np.linalg.norm(x)
        columns.append(problem.a.matvec(x))
    return np.stack(columns, axis=1)


def assert_columns_identical(solo_results, batch_result):
    """Every batch column equals its independent solve, bit for bit."""
    assert len(solo_results) == len(batch_result)
    for c, (solo, col) in enumerate(zip(solo_results, batch_result)):
        assert np.array_equal(solo.x, col.x), f"column {c}: solution bits"
        assert solo.iterations == col.iterations, f"column {c}: iterations"
        assert solo.converged == col.converged, f"column {c}: converged"
        assert solo.final_rrn == col.final_rrn, f"column {c}: final_rrn"
        solo_hist = [(s.iteration, s.rrn, s.kind) for s in solo.history]
        col_hist = [(s.iteration, s.rrn, s.kind) for s in col.history]
        assert solo_hist == col_hist, f"column {c}: residual history"
        assert solo.stats.restarts == col.stats.restarts
        assert solo.stats.spmv_calls == col.stats.spmv_calls
        assert solo.stats.basis_writes == col.stats.basis_writes
        assert (
            solo.stats.reorthogonalizations == col.stats.reorthogonalizations
        )


class TestBitIdentity:
    """Satellite 4: batched == loop column-for-column across the grid."""

    @pytest.mark.parametrize("storage", ["frsz2_16", "frsz2_32", "float64"])
    @pytest.mark.parametrize("spmv_format", ["csr", "ell", "sell"])
    @pytest.mark.parametrize("nrhs", [1, 2, 7])
    def test_matches_independent_solves(self, storage, spmv_format, nrhs):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, nrhs)
        target = problem.target_rrn

        def solver():
            return CbGmres(
                problem.a, storage, m=30, max_iter=400,
                spmv_format=spmv_format,
            )

        solos = [solver().solve(B[:, c], target) for c in range(nrhs)]
        batch = solver().solve_batch(B, target)
        assert_columns_identical(solos, batch)

    @pytest.mark.parametrize("storage", ["frsz2_16", "frsz2_32", "float64"])
    def test_b1_is_the_plain_solver(self, storage):
        """A width-1 batch must be today's solver, not a near-clone."""
        problem = make_problem("lung2", "smoke")
        b = rhs_block(problem, 1)[:, 0]
        solo = CbGmres(problem.a, storage, m=30, max_iter=400).solve(
            b, problem.target_rrn
        )
        batch = CbGmres(problem.a, storage, m=30, max_iter=400).solve_batch(
            b, problem.target_rrn
        )
        assert_columns_identical([solo], batch)

    def test_streaming_basis_mode(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 3)
        target = problem.target_rrn

        def solver():
            return CbGmres(
                problem.a, "frsz2_32", m=30, max_iter=400,
                basis_mode="streaming",
            )

        solos = [solver().solve(B[:, c], target) for c in range(3)]
        batch = solver().solve_batch(B, target)
        assert_columns_identical(solos, batch)

    def test_mgs_falls_back_to_solo_kernels(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 3)
        target = problem.target_rrn

        def solver():
            return CbGmres(
                problem.a, "frsz2_32", m=30, max_iter=400,
                orthogonalization="mgs",
            )

        solos = [solver().solve(B[:, c], target) for c in range(3)]
        batch = solver().solve_batch(B, target)
        assert_columns_identical(solos, batch)
        # MGS is inherently sequential per column: no batched ortho
        assert batch.batched_ortho_steps == 0

    def test_per_column_targets_and_early_exit(self):
        """Columns leave the lockstep at their own convergence points."""
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 4)
        targets = [1e-2, 1e-6, 1e-9, 1e-4]

        def solver():
            return CbGmres(problem.a, "frsz2_32", m=30, max_iter=400)

        solos = [
            solver().solve(B[:, c], targets[c]) for c in range(4)
        ]
        batch = solver().solve_batch(B, targets)
        assert_columns_identical(solos, batch)
        # looser targets must finish in fewer iterations
        its = batch.iterations
        assert its[0] < its[1] < its[2]

    def test_x0_block(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 2)
        rng = np.random.default_rng(7)
        X0 = rng.standard_normal(B.shape) * 0.01

        def solver():
            return CbGmres(problem.a, "frsz2_32", m=30, max_iter=400)

        solos = [
            solver().solve(B[:, c], problem.target_rrn, x0=X0[:, c])
            for c in range(2)
        ]
        batch = solver().solve_batch(B, problem.target_rrn, x0=X0)
        assert_columns_identical(solos, batch)


class TestBatchedFastPaths:
    def test_counters_report_shared_work(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 4)
        batch = CbGmres(
            problem.a, "frsz2_32", m=30, max_iter=400
        ).solve_batch(B, problem.target_rrn)
        assert isinstance(batch, BatchGmresResult)
        assert batch.batched_spmv_calls > 0
        assert batch.batched_basis_writes > 0
        assert batch.batched_ortho_steps > 0
        assert all(batch.converged)

    def test_b1_bypasses_batched_kernels(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 1)
        batch = CbGmres(
            problem.a, "frsz2_32", m=30, max_iter=400
        ).solve_batch(B, problem.target_rrn)
        assert batch.batched_spmv_calls == 0
        assert batch.batched_basis_writes == 0
        assert batch.batched_ortho_steps == 0

    def test_monitor_receives_column_index(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 3)
        seen = []

        def monitor(col, iteration, j, basis, implicit_rrn):
            seen.append((col, iteration, j))
            assert np.isfinite(implicit_rrn) or implicit_rrn == np.inf

        batch = CbGmres(
            problem.a, "frsz2_32", m=30, max_iter=400
        ).solve_batch(B, problem.target_rrn, monitor=monitor)
        for c, result in enumerate(batch):
            calls = [t for t in seen if t[0] == c]
            assert len(calls) == result.iterations
            assert [t[1] for t in calls] == list(
                range(1, result.iterations + 1)
            )


class TestResultContainer:
    def test_sequence_protocol(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 2)
        batch = CbGmres(
            problem.a, "float64", m=30, max_iter=400
        ).solve_batch(B, problem.target_rrn)
        assert len(batch) == 2
        assert batch[0] is batch.results[0]
        assert [r.converged for r in batch] == batch.converged
        assert [r.iterations for r in batch] == batch.iterations

    def test_empty_batch(self):
        problem = make_problem("lung2", "smoke")
        batch = CbGmres(
            problem.a, "float64", m=30, max_iter=400
        ).solve_batch([], problem.target_rrn)
        assert len(batch) == 0

    def test_zero_rhs_column_short_circuits(self):
        problem = make_problem("lung2", "smoke")
        B = rhs_block(problem, 2)
        B[:, 1] = 0.0
        batch = CbGmres(
            problem.a, "frsz2_32", m=30, max_iter=400
        ).solve_batch(B, problem.target_rrn)
        assert batch[1].converged
        assert batch[1].iterations == 0
        assert np.array_equal(batch[1].x, np.zeros(problem.a.shape[0]))
        assert batch[0].converged  # the other column still solved


class TestInputValidation:
    def test_wrong_rhs_shape(self):
        problem = make_problem("lung2", "smoke")
        solver = CbGmres(problem.a, "float64", m=30, max_iter=400)
        with pytest.raises(ValueError):
            solver.solve_batch(np.zeros((3, 2)), 1e-6)
        with pytest.raises(ValueError):
            solver.solve_batch([np.zeros(3)], 1e-6)

    def test_target_count_mismatch(self):
        problem = make_problem("lung2", "smoke")
        solver = CbGmres(problem.a, "float64", m=30, max_iter=400)
        B = rhs_block(problem, 2)
        with pytest.raises(ValueError):
            solver.solve_batch(B, [1e-6, 1e-6, 1e-6])

    def test_negative_target(self):
        problem = make_problem("lung2", "smoke")
        solver = CbGmres(problem.a, "float64", m=30, max_iter=400)
        with pytest.raises(ValueError):
            solver.solve_batch(rhs_block(problem, 2), -1.0)

    def test_x0_shape_mismatch(self):
        problem = make_problem("lung2", "smoke")
        solver = CbGmres(problem.a, "float64", m=30, max_iter=400)
        B = rhs_block(problem, 2)
        with pytest.raises(ValueError):
            solver.solve_batch(B, 1e-6, x0=np.zeros(problem.a.shape[0]))
