"""Fault injection, breakdown recovery, precision fallback, corruption.

Covers the robustness acceptance surface: seeded injectors replay
exactly; v2 containers detect every single-bit corruption; injected
NaN/Inf never crash the hardened solver or escape into the returned
solution; the fallback chain guarantees convergence via float64.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FRSZ2
from repro.core.serialize import dump_bytes, load_bytes
from repro.robust import (
    DEFAULT_CHAIN,
    FallbackPolicy,
    FaultInjector,
    FaultyAccessor,
    FaultySpmvMatrix,
    RobustCbGmres,
    flip_array_bit,
    flip_container_bit,
    flip_exponent_bit,
    flip_payload_bit,
    run_campaign,
    truncate_container,
)
from repro.accessor import make_accessor
from repro.solvers import CbGmres, GivensLeastSquares, make_problem


def small_container(version=2, n=40, bs=8, l=21, seed=3):
    codec = FRSZ2(l, bs)
    comp = codec.compress(np.random.default_rng(seed).standard_normal(n))
    return codec, comp, dump_bytes(comp, version=version)


# ----------------------------------------------------------------------
# injectors
# ----------------------------------------------------------------------

class TestInjectors:
    def test_deterministic_replay(self):
        a = FaultInjector(0.3, 42)
        b = FaultInjector(0.3, 42)
        assert [a.fire() for _ in range(200)] == [b.fire() for _ in range(200)]
        assert a.injected == b.injected > 0

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(1.5, 0)

    def test_flip_array_bit_flips_exactly_one_bit(self):
        arr = np.zeros(4, dtype=np.uint32)
        flip_array_bit(arr, 37)
        bits = np.unpackbits(arr.view(np.uint8))
        assert bits.sum() == 1

    def test_flip_payload_and_exponent_bits(self):
        codec, comp, _ = small_container()
        before = codec.decompress(comp).copy()
        flip_payload_bit(comp, 11)
        after_payload = codec.decompress(comp)
        assert not np.array_equal(before, after_payload)
        flip_exponent_bit(comp, 3)
        assert not np.array_equal(after_payload, codec.decompress(comp))

    def test_faulty_spmv_injects_nan(self):
        p = make_problem("lung2", "smoke")
        a = FaultySpmvMatrix(p.a, FaultInjector(1.0, 0), "spmv_nan")
        y = a.matvec(p.b)
        assert np.isnan(y).sum() == 1
        assert a.shape == p.a.shape and a.nnz == p.a.nnz

    def test_faulty_accessor_readout_nan(self):
        inj = FaultInjector(1.0, 0)
        acc = FaultyAccessor(make_accessor("frsz2_32", 64), inj, "readout_nan")
        acc.write(np.linspace(-1, 1, 64))
        out = acc.read()
        assert np.isnan(out).sum() == 1
        # the wrapped (uncorrupted) accessor is untouched
        assert np.isfinite(acc.inner.read()).all()

    def test_faulty_accessor_storage_bitflip(self):
        inj = FaultInjector(1.0, 1)
        acc = FaultyAccessor(make_accessor("frsz2_32", 64), inj, "payload_bitflip")
        v = np.linspace(-1, 1, 64)
        acc.write(v)
        assert not np.array_equal(acc.read(), FRSZ2(32, 32).roundtrip(v))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultyAccessor(make_accessor("float64", 8), FaultInjector(0.1, 0), "nope")
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError, match="fault kind"):
            FaultySpmvMatrix(p.a, FaultInjector(0.1, 0), "readout_nan")


# ----------------------------------------------------------------------
# container corruption (v2 CRC32 + hostile headers)
# ----------------------------------------------------------------------

class TestContainerCorruption:
    def test_v2_detects_single_bit_flip_anywhere(self):
        _, _, data = small_container(version=2)
        for bit in range(len(data) * 8):
            with pytest.raises(ValueError):
                load_bytes(flip_container_bit(data, bit))

    def test_v2_detects_every_byte_mutation(self):
        _, _, data = small_container(version=2)
        for pos in range(len(data)):
            mutated = bytearray(data)
            mutated[pos] ^= 0xFF
            with pytest.raises(ValueError):
                load_bytes(bytes(mutated))

    def test_truncation_at_every_length_raises(self):
        _, _, data = small_container(version=2)
        for length in range(len(data)):
            with pytest.raises(ValueError):
                load_bytes(truncate_container(data, length))

    def test_v1_mutations_never_crash_outside_valueerror(self):
        codec, comp, data = small_container(version=1)
        reference = codec.decompress(comp)
        undetected = 0
        for pos in range(len(data)):
            mutated = bytearray(data)
            mutated[pos] ^= 0x10
            try:
                out = load_bytes(bytes(mutated))
            except ValueError:
                continue
            undetected += 1
            codec.decompress(out)  # must still decode without crashing
        # v1 has no checksum: payload corruption must slip through —
        # that asymmetry is exactly what v2 exists to close
        assert undetected > 0

    def test_v1_still_loads(self):
        codec, comp, data = small_container(version=1)
        out = load_bytes(data)
        assert np.array_equal(codec.decompress(out), codec.decompress(comp))

    def test_hostile_header_zero_block_size(self):
        import struct
        _, _, data = small_container(version=2)
        buf = bytearray(data)
        struct.pack_into("<I", buf, 8, 0)  # bs field
        with pytest.raises(ValueError, match="block_size"):
            load_bytes(bytes(buf))

    def test_hostile_header_bad_bit_length(self):
        import struct
        _, _, data = small_container(version=2)
        for bad in (0, 1, 65, 40_000):
            buf = bytearray(data)
            struct.pack_into("<H", buf, 6, bad)  # l field
            with pytest.raises(ValueError, match="bit_length"):
                load_bytes(bytes(buf))

    def test_hostile_header_overflowing_count(self):
        import struct
        _, _, data = small_container(version=2)
        buf = bytearray(data)
        struct.pack_into("<Q", buf, 12, 2**63)  # n field
        with pytest.raises(ValueError, match="n=9223372036854775808"):
            load_bytes(bytes(buf))

    def test_unwritable_version_rejected(self):
        _, comp, _ = small_container()
        with pytest.raises(ValueError, match="version"):
            dump_bytes(comp, version=3)


# ----------------------------------------------------------------------
# breakdown recovery in the hardened solver
# ----------------------------------------------------------------------

class TestRecovery:
    def test_spmv_nan_recovered_and_logged(self):
        p = make_problem("atmosmodd", "smoke")
        a = FaultySpmvMatrix(p.a, FaultInjector(0.05, 123), "spmv_nan")
        res = CbGmres(a, "frsz2_32", m=50, max_iter=2000).solve(p.b, p.target_rrn)
        assert res.converged
        assert res.recoveries > 0
        assert res.stats.recoveries == res.recoveries
        assert len(res.breakdown_events) >= res.recoveries
        assert {e.kind for e in res.breakdown_events} <= {
            "nonfinite_spmv", "nonfinite_residual", "nonfinite_orthogonalization",
            "nonfinite_update", "basis_write_failed", "loss_of_orthogonality",
        }
        assert np.all(np.isfinite(res.x))

    def test_unhardened_crashes_or_diverges(self):
        p = make_problem("atmosmodd", "smoke")
        a = FaultySpmvMatrix(p.a, FaultInjector(0.05, 123), "spmv_nan")
        solver = CbGmres(a, "frsz2_32", m=50, max_iter=2000, recovery=False)
        try:
            res = solver.solve(p.b, p.target_rrn)
        except (FloatingPointError, ValueError, OverflowError):
            return  # crash: the failure mode recovery exists to remove
        assert not res.converged

    def test_persistent_faults_exhaust_budget_gracefully(self):
        p = make_problem("lung2", "smoke")
        a = FaultySpmvMatrix(p.a, FaultInjector(1.0, 0), "spmv_nan")
        res = CbGmres(a, "frsz2_32", m=20, max_iter=500, max_recoveries=3).solve(
            p.b, p.target_rrn
        )
        assert not res.converged
        assert res.recovery_exhausted
        assert res.recoveries >= 3
        assert np.all(np.isfinite(res.x))

    def test_clean_solve_records_nothing(self):
        p = make_problem("lung2", "smoke")
        res = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        assert res.converged
        assert res.recoveries == 0
        assert res.breakdown_events == []
        assert not res.recovery_exhausted

    def test_givens_rejects_nonfinite_column(self):
        lsq = GivensLeastSquares(4, 1.0)
        with pytest.raises(FloatingPointError, match="non-finite"):
            lsq.append_column(np.array([np.nan]), 0.5)
        with pytest.raises(FloatingPointError, match="non-finite"):
            lsq.append_column(np.array([1.0]), np.inf)

    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([0.02, 0.05, 0.15]),
           st.sampled_from(["spmv_nan", "spmv_inf"]))
    @settings(max_examples=15, deadline=None)
    def test_injected_nonfinite_never_escapes(self, seed, rate, kind):
        p = make_problem("lung2", "smoke")
        a = FaultySpmvMatrix(p.a, FaultInjector(rate, seed), kind)
        res = CbGmres(a, "frsz2_32", m=30, max_iter=400).solve(p.b, p.target_rrn)
        assert np.all(np.isfinite(res.x))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_basis_readout_nan_never_escapes(self, seed):
        p = make_problem("lung2", "smoke")
        inj = FaultInjector(0.1, seed)
        factory = lambda n: FaultyAccessor(make_accessor("frsz2_32", n), inj, "readout_nan")
        res = CbGmres(p.a, "frsz2_32", m=30, max_iter=400,
                      accessor_factory=factory).solve(p.b, p.target_rrn)
        assert np.all(np.isfinite(res.x))


# ----------------------------------------------------------------------
# fallback policy / RobustCbGmres
# ----------------------------------------------------------------------

class TestFallback:
    def test_chain_from(self):
        pol = FallbackPolicy()
        assert pol.chain_from("frsz2_16").chain == DEFAULT_CHAIN
        assert pol.chain_from("frsz2_32").chain == ("frsz2_32", "float64")
        assert pol.chain_from("float64").chain == ("float64",)
        assert pol.chain_from("float32").chain == ("float32", "float64")

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="chain"):
            FallbackPolicy(chain=())

    def test_unknown_format_rejected_eagerly(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(KeyError):
            RobustCbGmres(p.a, FallbackPolicy(chain=("not_a_format",)))

    def test_clean_problem_no_fallback(self):
        p = make_problem("lung2", "smoke")
        rr = RobustCbGmres(p.a, FallbackPolicy(chain=("frsz2_32", "float64")),
                           m=30, max_iter=500).solve(p.b, p.target_rrn)
        assert rr.outcome == "converged"
        assert not rr.fell_back
        assert len(rr.attempts) == 1
        assert rr.storage_used == "frsz2_32"

    def test_hopeless_format_falls_back_to_terminal(self):
        # PR02R at a tightened target defeats frsz2_16; float64 guarantees it
        p = make_problem("PR02R", "smoke")
        rr = RobustCbGmres(p.a, FallbackPolicy(chain=("frsz2_16", "float64")),
                           m=50, max_iter=1500).solve(p.b, p.target_rrn * 1e-4)
        assert rr.converged
        assert rr.fell_back
        assert rr.outcome == "fell_back"
        assert rr.storage_used == "float64"
        assert rr.total_iterations == sum(a.iterations for a in rr.attempts)


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------

class TestCampaign:
    KW = dict(
        matrix="atmosmodd",
        scale="smoke",
        faults=("payload_bitflip", "readout_nan", "spmv_nan"),
        storages=("frsz2_16", "frsz2_32", "float32"),
        rates=(0.05,),
        seed=11,
        m=40,
        max_iter=1500,
    )

    def test_hardened_campaign_survives_every_cell(self):
        camp = run_campaign(**self.KW)
        assert len(camp.cells) == 9  # 3 faults x 3 storages x 1 rate
        for cell in camp.cells:
            assert cell.outcome in ("converged", "fell_back"), cell
        assert camp.survival_rate == 1.0
        assert "survival rates" in camp.summary()
        assert "fault-injection campaign" in camp.table()

    def test_campaign_is_deterministic(self):
        a = run_campaign(**self.KW)
        b = run_campaign(**self.KW)
        assert a.cells == b.cells

    def test_unhardened_campaign_shows_the_gap(self):
        camp = run_campaign(**{**self.KW, "hardened": False, "fallback": False})
        outcomes = {c.outcome for c in camp.cells}
        # without recovery, NaN faults crash or diverge at least somewhere
        assert outcomes & {"crashed", "diverged", "stalled", "capped", "failed"}
        assert camp.survival_rate < 1.0
