"""Tests for the benchmark harness (report rendering + experiment drivers)."""

import math

import numpy as np
import pytest

from repro.bench import (
    FIG7_FORMATS,
    format_histogram,
    format_series,
    format_table,
    krylov_histograms,
    krylov_vectors,
    matrix_exponent_histogram,
    solve_with_storage,
    table1_rows,
    table2_rows,
)
from repro.sparse import suite_names


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table("t", ["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert lines[0] == "== t =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_alignment(self):
        out = format_table("t", ["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[3]) >= len("a-much-longer-cell")

    def test_float_formatting(self):
        out = format_table("t", ["v"], [[1.23456789e-12], [0.0], [float("nan")]])
        assert "1.23e-12" in out
        assert "-" in out  # nan cell

    def test_empty_rows(self):
        out = format_table("t", ["a"], [])
        assert "== t ==" in out


class TestFormatSeries:
    def test_merges_series_on_x(self):
        out = format_series(
            "s", "x", {"a": [(0, 1.0), (1, 2.0)], "b": [(1, 3.0)]}
        )
        lines = out.splitlines()
        assert "x" in lines[1] and "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title, header, rule, two x rows

    def test_downsampling(self):
        pts = [(i, float(i)) for i in range(1000)]
        out = format_series("s", "x", {"a": pts}, max_points=10)
        assert len(out.splitlines()) <= 14


class TestFormatHistogram:
    def test_bars_scale_with_counts(self):
        out = format_histogram("h", [0, 1], [10, 5], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_empty(self):
        out = format_histogram("h", [], [])
        assert out == "== h =="


class TestTableDrivers:
    def test_table1_covers_suite(self):
        rows = table1_rows("smoke")
        assert [r[0] for r in rows] == suite_names()
        for r in rows:
            assert r[1] > 0 and r[2] > 0  # size, nnz
            assert r[5] > 0  # target

    def test_table2_has_nine_rows(self):
        rows = table2_rows()
        assert len(rows) == 9
        assert ("sz3_08", "absolute", "1e-08") in rows


class TestKrylovCapture:
    def test_vectors_are_normalized(self):
        vecs = krylov_vectors("lung2", (0, 3), scale="smoke")
        assert set(vecs) == {0, 3}
        for v in vecs.values():
            assert np.linalg.norm(v) == pytest.approx(1.0, rel=1e-10)

    def test_vectors_are_orthogonal(self):
        vecs = krylov_vectors("lung2", (0, 1, 2, 3), scale="smoke")
        vs = [vecs[i] for i in sorted(vecs)]
        for i in range(len(vs)):
            for j in range(i + 1, len(vs)):
                assert abs(vs[i] @ vs[j]) < 1e-10

    def test_histograms_structure(self):
        data = krylov_histograms("lung2", (0, 2), scale="smoke", value_bins=11)
        assert set(data) == {0, 2}
        hist, edges, exp_vals, exp_counts = data[0]
        assert hist.size == 11 and edges.size == 12
        assert exp_counts.sum() > 0


class TestMatrixExponentHistogram:
    def test_pr02r_wide(self):
        edges, hist = matrix_exponent_histogram("PR02R", scale="smoke")
        assert hist.sum() > 0
        assert edges[-1] - edges[0] > 40

    def test_bins_cover_all_entries(self):
        edges, hist = matrix_exponent_histogram("lung2", scale="smoke")
        from repro.sparse import build_matrix

        a = build_matrix("lung2", "smoke")
        assert hist.sum() == np.count_nonzero(a.data)


class TestSolveDriver:
    def test_solve_with_storage(self):
        res = solve_with_storage("lung2", "frsz2_32", scale="smoke")
        assert res.converged
        assert res.storage == "frsz2_32"

    def test_target_override(self):
        res = solve_with_storage("lung2", "float64", scale="smoke", target_rrn=1e-3)
        assert res.converged
        assert res.target_rrn == 1e-3

    def test_fig7_formats_constant(self):
        assert FIG7_FORMATS == ("float64", "float32", "float16", "frsz2_32")
