"""Adaptive precision controller: unit rules, solver threading, and
composition with the robust fault-escalation chain.

The controller's contract (docs/PRECISION.md):

* per restart it picks the cheapest ladder format whose unit roundoff
  (x safety) fits inside the reduction the cycle must deliver;
* storage-distress feedback (capped cycles, relative re-orth jumps,
  orthogonality loss, recoveries) arms a *held* upshift;
* external floors — the composition rule with ``repro.robust`` — always
  win over anything the error-bound rule would admit.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jit import dispatch as jit_dispatch
from repro.robust import (
    FallbackPolicy,
    RobustCbGmres,
    run_campaign,
)
from repro.solvers import (
    ADAPTIVE_STORAGE,
    CbGmres,
    ControllerConfig,
    CycleFeedback,
    DEFAULT_LADDER,
    FlexibleGmres,
    KrylovBasis,
    PrecisionController,
    make_problem,
    storage_unit_roundoff,
)


@pytest.fixture(scope="module")
def lung2():
    return make_problem("lung2", "smoke")


@pytest.fixture(scope="module")
def atmosmodd():
    return make_problem("atmosmodd", "smoke")


class TestUnitRoundoff:
    def test_frsz2_widths(self):
        assert storage_unit_roundoff("frsz2_16") == 2.0 ** -15
        assert storage_unit_roundoff("frsz2_32") == 2.0 ** -31
        assert storage_unit_roundoff("frsz2_21") == 2.0 ** -20

    def test_ieee_formats(self):
        assert storage_unit_roundoff("float64") == 2.0 ** -53
        assert storage_unit_roundoff("float32") == 2.0 ** -24

    def test_unknown_format(self):
        with pytest.raises(KeyError):
            storage_unit_roundoff("sz3_08")


class TestControllerConfig:
    def test_default_ladder_matches_fallback_chain(self):
        from repro.robust.fallback import DEFAULT_CHAIN

        assert DEFAULT_LADDER == DEFAULT_CHAIN

    def test_rejects_misordered_ladder(self):
        with pytest.raises(ValueError, match="ordered"):
            ControllerConfig(ladder=("float64", "frsz2_16"))

    def test_rejects_off_ladder_floor(self):
        with pytest.raises(ValueError, match="floor"):
            ControllerConfig(floor="float32")

    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError, match="safety"):
            ControllerConfig(safety=0.5)


class TestControllerRules:
    def test_first_decision_uses_prior_gain(self):
        c = PrecisionController()
        d = c.decide(1.0, 1e-12)
        # prior gain 1e-8 admits frsz2_32 (u*4 ~ 1.9e-9) but not
        # frsz2_16 (u*4 ~ 1.2e-4)
        assert d.storage == "frsz2_32"
        assert d.reason == "error-bound"

    def test_near_convergence_admits_cheapest(self):
        c = PrecisionController()
        c.decide(1.0, 1e-6)
        c.observe_cycle(CycleFeedback("frsz2_32", 1.0, 1e-4, 50))
        d = c.decide(1e-4, 1e-6)
        # finish line 1e-2 fits inside one frsz2_16 cycle
        assert d.storage == "frsz2_16"

    def test_capped_cycle_does_not_poison_gain_estimate(self):
        c = PrecisionController()
        c.decide(1.0, 1e-30)
        # a frsz2_16 cycle landing at ~2.5 u16 is storage-capped: the
        # controller must not adopt 7.5e-5 as the matrix's rate
        c.observe_cycle(CycleFeedback("frsz2_16", 1.0, 7.5e-5, 50))
        assert c._gain_pred is None

    def test_distress_arms_held_upshift(self):
        c = PrecisionController()
        c.decide(1.0, 1e-30)
        c.observe_cycle(CycleFeedback("frsz2_32", 1.0, 0.9999, 50))  # stall
        d = c.decide(0.9999, 1e-30)
        assert d.storage == "float64"
        assert d.reason == "feedback-hold"
        assert c.upshifts == 1

    def test_hold_yields_to_closeout(self):
        c = PrecisionController()
        c.decide(1.0, 1e-3)
        # capped-but-excellent cycle arms a hold...
        c.observe_cycle(CycleFeedback("frsz2_32", 1.0, 1e-9, 50))
        d = c.decide(1e-2, 1e-3)
        # ...but the remaining decade fits inside one frsz2_16 cycle,
        # so the hold must not force an expensive closing cycle
        assert d.storage == "frsz2_16"
        assert d.reason == "error-bound"

    def test_reorth_signal_is_relative(self):
        c = PrecisionController()
        c.decide(1.0, 1e-30)
        # 100% re-orthogonalization on the very first cycle sets the
        # reference; with no jump over it, no distress upshift fires
        # (some matrices re-orthogonalize every step even in float64)
        c.observe_cycle(CycleFeedback("frsz2_32", 1.0, 1e-4, 50,
                                      reorthogonalizations=50))
        d = c.decide(1e-4, 1e-30)
        assert d.reason == "error-bound"

    def test_floor_clamps_and_is_monotone(self):
        c = PrecisionController()
        c.raise_floor("float64")
        c.raise_floor("frsz2_32")  # lowering is a no-op
        assert c.floor == "float64"
        d = c.decide(1.0, 1e-6)
        assert d.storage == "float64"
        assert d.reason == "floor"

    def test_floor_rejects_off_ladder(self):
        with pytest.raises(ValueError, match="ladder"):
            PrecisionController().raise_floor("float32")

    def test_config_floor_applies_at_construction(self):
        c = PrecisionController(ControllerConfig(floor="frsz2_32"))
        assert c.floor == "frsz2_32"

    def test_storage_trace_mirrors_decisions(self):
        c = PrecisionController()
        c.decide(1.0, 1e-6)
        c.decide(1e-3, 1e-6)
        assert c.storage_trace == [d.storage for d in c.decisions]


class TestAdaptiveSolve:
    def test_converges_with_trace(self, lung2):
        res = CbGmres(lung2.a, "adaptive", m=30, max_iter=500).solve(
            lung2.b, lung2.target_rrn
        )
        assert res.converged
        assert res.storage == ADAPTIVE_STORAGE
        assert res.stats.storage_trace
        assert len(res.precision_trace) == len(res.stats.storage_trace)
        for fmt in res.stats.storage_trace:
            assert fmt in DEFAULT_LADDER

    def test_traffic_buckets_account_all_basis_io(self, lung2):
        res = CbGmres(lung2.a, "adaptive", m=30, max_iter=500).solve(
            lung2.b, lung2.target_rrn
        )
        assert sum(res.stats.reads_by_storage.values()) == res.stats.basis_reads
        assert sum(res.stats.writes_by_storage.values()) == res.stats.basis_writes

    def test_cached_streaming_bit_identity(self, atmosmodd):
        runs = {}
        for mode in ("cached", "streaming"):
            runs[mode] = CbGmres(
                atmosmodd.a, "adaptive", m=20, max_iter=800, basis_mode=mode
            ).solve(atmosmodd.b, atmosmodd.target_rrn)
        a, b = runs["cached"], runs["streaming"]
        assert a.iterations == b.iterations
        assert a.stats.storage_trace == b.stats.storage_trace
        np.testing.assert_array_equal(a.x, b.x)

    def test_adaptive_rejects_fixed_accessor_factory(self, lung2):
        from repro.accessor import make_accessor

        with pytest.raises(ValueError, match="storage_factory"):
            CbGmres(
                lung2.a, "adaptive",
                accessor_factory=lambda n: make_accessor("frsz2_32", n),
            )

    def test_adaptive_rejects_solve_batch(self, lung2):
        solver = CbGmres(lung2.a, "adaptive", m=30, max_iter=200)
        with pytest.raises(ValueError, match="batch"):
            solver.solve_batch(np.stack([lung2.b, lung2.b], axis=1), 1e-6)

    def test_fgmres_adaptive_z_basis(self, lung2):
        res = FlexibleGmres(lung2.a, "adaptive", m=30, max_iter=500).solve(
            lung2.b, lung2.target_rrn
        )
        assert res.converged
        assert res.stats.storage_trace
        assert res.precision_trace
        assert sum(res.stats.writes_by_storage.values()) == res.stats.basis_writes

    def test_timing_model_prices_buckets(self, lung2):
        from repro.gpu import GmresTimingModel

        res = CbGmres(lung2.a, "adaptive", m=30, max_iter=500).solve(
            lung2.b, lung2.target_rrn
        )
        model = GmresTimingModel()
        moved = model.basis_bytes_moved(res.stats, res.storage)
        assert moved > 0
        # a pure-float64 pricing of the same log must cost at least as
        # much as the mixed-format buckets
        flat = dataclasses.replace(
            res.stats, reads_by_storage={}, writes_by_storage={}
        )
        assert model.basis_bytes_moved(flat, "float64") >= moved


class TestMixedStorageBasis:
    def test_set_storage_per_slot(self):
        rng = np.random.default_rng(7)
        vecs = rng.standard_normal((256, 4))
        for mode in ("cached", "streaming"):
            basis = KrylovBasis(256, 3, "frsz2_32", basis_mode=mode)
            basis.set_storage("frsz2_16", slots=[1])
            basis.set_storage("float64", slots=[3])
            assert not basis.uniform_storage
            assert basis.slot_storages == [
                "frsz2_32", "frsz2_16", "frsz2_32", "float64"
            ]
            for j in range(4):
                basis.write_vector(j, vecs[:, j])
            # float64 slot is exact; lossy slots are within their bound
            np.testing.assert_array_equal(basis.read_vector(3), vecs[:, 3])
            err16 = np.max(np.abs(basis.read_vector(1) - vecs[:, 1]))
            err32 = np.max(np.abs(basis.read_vector(2) - vecs[:, 2]))
            assert err32 < err16 < 1e-3

    def test_mixed_slots_bit_identical_across_modes(self):
        rng = np.random.default_rng(11)
        vecs = rng.standard_normal((300, 3))
        w = rng.standard_normal(300)
        outs = []
        for mode in ("cached", "streaming"):
            basis = KrylovBasis(300, 2, "frsz2_32", basis_mode=mode)
            basis.set_storage("frsz2_16", slots=[0])
            for j in range(3):
                basis.write_vector(j, vecs[:, j])
            outs.append((basis.dot_basis(3, w), basis.combine(3, np.ones(3))))
        np.testing.assert_array_equal(outs[0][0], outs[1][0])
        np.testing.assert_array_equal(outs[0][1], outs[1][1])

    @pytest.mark.parametrize(
        "backend",
        [
            "numpy",
            pytest.param("jit", marks=pytest.mark.skipif(
                not jit_dispatch.jit_available(),
                reason="jit engine unavailable",
            )),
        ],
    )
    def test_mixed_slots_bit_identical_across_backends(self, backend):
        # set_storage rebuilds accessors through the basis' default
        # factory, which must keep the construction-time backend pinned
        # — a rebuilt slot silently dropping to numpy would go unnoticed
        # (bit-identical!) but forfeit the jit speedup, and a backend
        # mismatch in kernels would break these exact comparisons
        rng = np.random.default_rng(23)
        vecs = rng.standard_normal((320, 3))
        w = rng.standard_normal(320)
        outs = {}
        for b in ("numpy", backend):
            basis = KrylovBasis(320, 2, "frsz2_32", backend=b)
            basis.set_storage("frsz2_16", slots=[0])
            basis.set_storage("float64", slots=[2])
            assert basis.backend == b
            for j in range(3):
                basis.write_vector(j, vecs[:, j])
            outs[b] = (basis.dot_basis(3, w), basis.combine(3, np.ones(3)))
        np.testing.assert_array_equal(outs["numpy"][0], outs[backend][0])
        np.testing.assert_array_equal(outs["numpy"][1], outs[backend][1])

    def test_set_storage_rejects_fixed_factory(self):
        from repro.accessor import make_accessor

        basis = KrylovBasis(
            64, 2, "frsz2_32",
            accessor_factory=lambda n: make_accessor("frsz2_32", n),
        )
        with pytest.raises(ValueError, match="factory"):
            basis.set_storage("float64")

    def test_set_storage_rejects_slot_out_of_range(self):
        basis = KrylovBasis(64, 2, "frsz2_32")
        with pytest.raises(IndexError, match="slot"):
            basis.set_storage("float64", slots=[5])


class TestRobustComposition:
    def test_attempt_plan_expands_adaptive_with_rising_floors(self):
        solver = RobustCbGmres(
            make_problem("lung2", "smoke").a,
            FallbackPolicy(chain=("adaptive",) + ("float64",)),
        )
        plan = solver.attempt_plan()
        assert plan == [
            (ADAPTIVE_STORAGE, "frsz2_16"),
            (ADAPTIVE_STORAGE, "frsz2_32"),
            ("float64", None),
        ]
        # floors are monotone non-decreasing along the plan
        ladder = list(DEFAULT_LADDER)
        floors = [ladder.index(f) for _, f in plan if f is not None]
        assert floors == sorted(floors)

    def test_adaptive_chain_solves(self, lung2):
        solver = RobustCbGmres(
            lung2.a, FallbackPolicy(chain=("adaptive", "float64")),
            m=30, max_iter=500,
        )
        rr = solver.solve(lung2.b, lung2.target_rrn)
        assert rr.converged
        # every adaptive attempt honored its floor
        for (storage, floor), attempt in zip(solver.attempt_plan(), rr.attempts):
            if storage != ADAPTIVE_STORAGE or floor is None:
                continue
            floor_idx = list(DEFAULT_LADDER).index(floor)
            for fmt in attempt.stats.storage_trace:
                assert list(DEFAULT_LADDER).index(fmt) >= floor_idx

    def test_campaign_accepts_adaptive(self):
        camp = run_campaign(
            matrix="lung2", scale="smoke",
            faults=("payload_bitflip",), storages=("adaptive",),
            rates=(0.05,), m=30, max_iter=500,
        )
        assert camp.survival_rate == 1.0
        assert all(c.storage == "adaptive" for c in camp.cells)

    def test_campaign_still_rejects_unknown_storage(self):
        with pytest.raises(ValueError, match="unknown storage"):
            run_campaign(storages=("not_a_format",))


# ---------------------------------------------------------------------
# fuzz: seeded fault + adaptation schedules
# ---------------------------------------------------------------------

_rrn = st.floats(min_value=1e-16, max_value=1.0, allow_nan=False)
_feedback = st.builds(
    CycleFeedback,
    storage=st.sampled_from(DEFAULT_LADDER),
    start_rrn=_rrn,
    end_rrn=_rrn,
    iterations=st.integers(min_value=0, max_value=60),
    reorthogonalizations=st.integers(min_value=0, max_value=60),
    loss_of_orthogonality=st.booleans(),
    recoveries=st.integers(min_value=0, max_value=3),
)
_event = st.one_of(
    st.tuples(st.just("observe"), _feedback),
    st.tuples(st.just("floor"), st.sampled_from(DEFAULT_LADDER)),
    st.tuples(st.just("decide"), _rrn),
)


class TestControllerFuzz:
    @given(events=st.lists(_event, max_size=40), target=_rrn)
    @settings(max_examples=200, deadline=None)
    def test_any_schedule_keeps_invariants(self, events, target):
        """Arbitrary interleavings of feedback, floor raises and
        decisions never crash, never leave the ladder, and never pick
        below the floor in force at decision time."""
        c = PrecisionController()
        ladder = list(DEFAULT_LADDER)
        for kind, payload in events:
            if kind == "observe":
                c.observe_cycle(payload)
            elif kind == "floor":
                floor_before = c.floor
                c.raise_floor(payload)
                # floors are monotone
                assert ladder.index(c.floor) >= ladder.index(floor_before)
            else:
                d = c.decide(payload, target)
                assert d.storage in ladder
                assert ladder.index(d.storage) >= ladder.index(c.floor)
        assert len(c.decisions) == sum(1 for k, _ in events if k == "decide")

    @given(
        fault=st.sampled_from(("payload_bitflip", "readout_nan")),
        rate=st.sampled_from((0.02, 0.08)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=6, deadline=None)
    def test_faulted_adaptive_solves_terminate(self, fault, rate, seed):
        """Seeded faults against the adaptive chain: every solve is
        terminal, nothing silently diverges, and escalation always wins
        (the campaign marks non-surviving cells, so survival==1 means
        the float64 terminal caught whatever the controller could not)."""
        camp = run_campaign(
            matrix="lung2", scale="smoke",
            faults=(fault,), storages=("adaptive",), rates=(rate,),
            seed=seed, m=30, max_iter=500,
        )
        (cell,) = camp.cells
        assert cell.outcome in ("converged", "fell_back")
        assert np.isfinite(cell.final_rrn)
        assert cell.final_rrn <= 1.0
