"""Tests for the solver-as-a-service job engine (`repro.serve`).

The robustness contract under test: bounded admission with explicit
reject-with-reason, validated lifecycle transitions, per-job deadlines
and heartbeat hang detection that *reclaim the worker*, bounded retry
with backoff and storage degradation, cooperative cancellation, drain
semantics, per-job state isolation, and — throughout — that a served
job's numbers are bit-identical to a direct in-process solve.
"""

import threading
import time

import numpy as np
import pytest

from repro.observe import ScopedTracer, Tracer
from repro.robust.chaos import CHAOS_EXIT_CODE, ChaosError, ChaosSpec, chaos_monitor
from repro.serve import (
    ClosedError,
    DrainingError,
    IllegalTransition,
    IsolationError,
    JobRecord,
    JobSpec,
    JobState,
    ProgressBus,
    QueueFullError,
    ServeConfig,
    SolveEngine,
    build_serve_health,
    run_solve_job,
    validate_serve_health,
)
from repro.serve.queue import AdmissionController
from repro.serve.worker import _leak_state_for_tests

MATRIX = "cfd2"

#: a chaos plan that keeps a worker busy "forever" (hang at iteration 2)
HANG = ChaosSpec("worker_hang", at_iteration=2).to_dict()


def _spec(**kw):
    kw.setdefault("matrix", MATRIX)
    kw.setdefault("storage", "frsz2_32")
    kw.setdefault("progress_every", 5)
    return JobSpec(**kw)


def _config(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff_base_s", 0.02)
    kw.setdefault("backoff_cap_s", 0.2)
    kw.setdefault("heartbeat_timeout_s", 10.0)
    return ServeConfig(**kw)


# -- state machine ------------------------------------------------------


class TestJobStateMachine:
    def test_happy_path(self):
        job = JobRecord(job_id="j", spec=_spec())
        job.transition(JobState.RUNNING)
        job.transition(JobState.RETRY_WAIT)
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        assert job.terminal and job.finished.is_set()

    def test_illegal_transitions_raise(self):
        job = JobRecord(job_id="j", spec=_spec())
        with pytest.raises(IllegalTransition):
            job.transition(JobState.DONE)  # QUEUED -> DONE skips RUNNING
        job.transition(JobState.CANCELLED)
        for state in JobState.ALL:
            with pytest.raises(IllegalTransition):
                job.transition(state)  # terminal states are absorbing

    def test_spec_roundtrip(self):
        spec = _spec(deadline_s=1.5, chaos=HANG, rhs_seed=7)
        assert JobSpec.from_dict(spec.to_dict()) == spec


# -- admission / backpressure ------------------------------------------


class TestAdmission:
    def test_reject_reasons_counted(self):
        adm = AdmissionController(max_queue=1)
        adm.admit(0, False, False)
        with pytest.raises(QueueFullError):
            adm.admit(1, False, False)
        with pytest.raises(DrainingError):
            adm.admit(0, True, False)
        with pytest.raises(ClosedError):
            adm.admit(0, True, True)  # closed wins over draining
        assert adm.accepted == 1
        assert adm.rejected == {"queue_full": 1, "draining": 1, "closed": 1}
        assert adm.rejected_total == 3

    def test_wait_percentiles_empty(self):
        adm = AdmissionController(max_queue=4)
        assert adm.wait_percentiles() == {"p50": None, "p95": None, "max": None}
        adm.record_queue_wait(0.1)
        adm.record_queue_wait(0.3)
        waits = adm.wait_percentiles()
        assert waits["p50"] == pytest.approx(0.2)
        assert waits["max"] == pytest.approx(0.3)


# -- progress bus -------------------------------------------------------


class TestProgressBus:
    def test_filtered_delivery_and_replay(self):
        bus = ProgressBus()
        all_events, one_job = [], []
        bus.subscribe(all_events.append)
        bus.subscribe(one_job.append, job_id="a")
        bus.publish("a", "state", {"state": "queued"})
        bus.publish("b", "state", {"state": "queued"})
        assert [e.job_id for e in all_events] == ["a", "b"]
        assert [e.job_id for e in one_job] == ["a"]
        assert [e.kind for e in bus.events("a")] == ["state"]
        assert all_events[0].seq < all_events[1].seq

    def test_poisoned_subscriber_detached(self):
        bus = ProgressBus()
        good = []

        def bad(_event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(bad)
        bus.subscribe(good.append)
        bus.publish("a", "state")
        bus.publish("a", "state")
        assert len(good) == 2
        assert bus.poisoned_subscribers == 1
        assert bus.subscriber_count == 1

    def test_flush_closes_streams(self):
        bus = ProgressBus()
        events = []
        bus.subscribe(events.append)
        bus.publish("a", "progress")
        bus.flush(["a"])
        bus.flush(["a"])  # idempotent
        kinds = [(e.job_id, e.kind) for e in events]
        assert kinds == [("a", "progress"), ("a", "stream_closed"),
                         (None, "stream_closed")]
        assert bus.closed


# -- scoped tracer ------------------------------------------------------


class TestScopedTracer:
    def test_prefixed_counts_and_spans(self):
        base = Tracer()
        scope = ScopedTracer(base, "serve").scope("job.j1")
        scope.count("retries")
        with scope.span("solve"):
            pass
        assert base.counters["serve.job.j1.retries"] == 1
        assert scope.counters == {"retries": 1}
        assert base.total_seconds("serve.job.j1.solve") >= 0.0


# -- worker isolation ---------------------------------------------------


class TestWorkerIsolation:
    def test_leaked_state_detected(self):
        _leak_state_for_tests("ghost-job")
        try:
            with pytest.raises(IsolationError):
                run_solve_job(_spec().to_dict(), "next-job", 1, "frsz2_32")
        finally:
            from repro.serve import worker
            worker._ACTIVE_JOB = None

    def test_sequential_jobs_leave_no_state(self):
        first = run_solve_job(_spec().to_dict(), "j1", 1, "frsz2_32")
        second = run_solve_job(_spec().to_dict(), "j2", 1, "frsz2_32")
        assert np.array_equal(first["x"], second["x"])
        assert first["iterations"] == second["iterations"]


# -- engine lifecycle ---------------------------------------------------


class TestEngine:
    def test_clean_jobs_bit_identical_to_direct_solve(self):
        with SolveEngine(_config()) as engine:
            jobs = [engine.submit(_spec(rhs_seed=i)) for i in range(3)]
            assert engine.drain(timeout=60)
        direct = [
            run_solve_job(_spec(rhs_seed=i).to_dict(), "ref", 1, "frsz2_32")
            for i in range(3)
        ]
        for job, ref in zip(jobs, direct):
            assert job.state == JobState.DONE
            assert np.array_equal(job.result["x"], ref["x"])
            assert job.result["iterations"] == ref["iterations"]
            assert job.result["final_rrn"] == ref["final_rrn"]

    def test_backpressure_rejects_with_reason(self):
        config = _config(workers=1, max_queue=1)
        with SolveEngine(config) as engine:
            running = engine.submit(_spec(chaos=HANG, max_retries=0))
            time.sleep(0.3)  # let it start so it occupies the worker
            queued = engine.submit(_spec())
            with pytest.raises(QueueFullError) as excinfo:
                engine.submit(_spec())
            assert excinfo.value.reason == "queue_full"
            assert engine.cancel(queued.job_id)
            assert engine.cancel(running.job_id)
        assert engine.admission.rejected["queue_full"] == 1

    def test_submit_after_close_rejected(self):
        engine = SolveEngine(_config())
        engine.close()
        with pytest.raises(ClosedError):
            engine.submit(_spec())

    def test_crash_retried_with_backoff_and_degradation(self):
        crash = ChaosSpec("worker_crash", at_iteration=3).to_dict()
        states = []
        with SolveEngine(_config()) as engine:
            engine.subscribe(
                lambda e: states.append(e.payload) if e.kind == "state" else None
            )
            chaotic = engine.submit(_spec(storage="frsz2_16", chaos=crash))
            clean = engine.submit(_spec())
            assert engine.drain(timeout=60)
        assert chaotic.state == JobState.DONE
        assert chaotic.retries == 1
        assert [a.outcome for a in chaotic.attempts] == ["crashed", "done"]
        assert [a.storage for a in chaotic.attempts] == ["frsz2_16", "frsz2_32"]
        assert chaotic.degradations == 1
        assert f"exit code {CHAOS_EXIT_CODE}" in chaotic.attempts[0].error
        retry_states = [s for s in states if s.get("state") == JobState.RETRY_WAIT]
        assert retry_states and retry_states[0]["retry_in_s"] > 0
        # the crash never touched the unrelated job
        assert clean.state == JobState.DONE and clean.retries == 0
        assert engine.crashes_observed == 1

    def test_solve_error_retried(self):
        error = ChaosSpec("solve_error", at_iteration=3).to_dict()
        with SolveEngine(_config()) as engine:
            job = engine.submit(_spec(chaos=error))
            assert engine.drain(timeout=60)
        assert job.state == JobState.DONE
        assert [a.outcome for a in job.attempts] == ["error", "done"]
        assert "ChaosError" in job.attempts[0].error

    def test_retry_budget_exhausted_fails(self):
        # only_attempt=None = persistent fault: every attempt errors
        persistent = ChaosSpec(
            "solve_error", at_iteration=3, only_attempt=None
        ).to_dict()
        with SolveEngine(_config(max_retries=1)) as engine:
            job = engine.submit(_spec(chaos=persistent))
            assert engine.drain(timeout=60)
        assert job.state == JobState.FAILED
        assert len(job.attempts) == 2
        assert "retry budget 1 exhausted" in job.reason

    def test_hang_detected_and_worker_reclaimed(self):
        config = _config(workers=1, heartbeat_timeout_s=0.5)
        with SolveEngine(config) as engine:
            hung = engine.submit(_spec(chaos=HANG))
            assert engine.drain(timeout=60)
            assert engine.hangs_detected == 1
        assert hung.state == JobState.DONE  # retry (unarmed) succeeded
        assert [a.outcome for a in hung.attempts] == ["hung", "done"]

    def test_deadline_times_out_then_worker_serves_cleanly(self):
        # heartbeat generous, deadline tight: the hang must be ended by
        # the deadline, and the reclaimed worker must serve the next
        # job with bit-identical results
        config = _config(workers=1, heartbeat_timeout_s=30.0)
        with SolveEngine(config) as engine:
            hung = engine.submit(_spec(chaos=HANG, deadline_s=0.5))
            assert hung.wait(timeout=30)
            follow_up = engine.submit(_spec())
            assert engine.drain(timeout=60)
            assert engine.timeouts_enforced == 1
        assert hung.state == JobState.TIMED_OUT
        assert "deadline" in hung.reason
        assert follow_up.state == JobState.DONE
        reference = run_solve_job(_spec().to_dict(), "ref", 1, "frsz2_32")
        assert np.array_equal(follow_up.result["x"], reference["x"])

    def test_cancel_queued_job_immediate(self):
        config = _config(workers=1)
        with SolveEngine(config) as engine:
            engine.submit(_spec(chaos=HANG, max_retries=0, deadline_s=5.0))
            queued = engine.submit(_spec())
            assert engine.cancel(queued.job_id)
            assert queued.state == JobState.CANCELLED
            assert not engine.cancel(queued.job_id)  # already terminal
            engine.close(force=True)

    def test_cancel_running_hang_killed_after_grace(self):
        # a worker stuck in a syscall never reaches the cooperative
        # cancellation point, so the grace timeout must kill it
        config = _config(workers=1, heartbeat_timeout_s=30.0,
                         cancel_grace_s=0.3)
        with SolveEngine(config) as engine:
            hung = engine.submit(_spec(chaos=HANG))
            time.sleep(0.5)  # let it start and hang
            assert engine.cancel(hung.job_id)
            assert hung.wait(timeout=30)
            assert hung.state == JobState.CANCELLED
            # the worker slot is usable again
            follow_up = engine.submit(_spec())
            assert engine.drain(timeout=60)
        assert follow_up.state == JobState.DONE

    def test_drain_timeout_then_draining_rejects(self):
        config = _config(workers=1, heartbeat_timeout_s=30.0)
        with SolveEngine(config) as engine:
            engine.submit(_spec(chaos=HANG, deadline_s=10.0))
            time.sleep(0.2)
            assert not engine.drain(timeout=0.3)  # hang outlives timeout
            with pytest.raises(DrainingError):
                engine.submit(_spec())
            engine.close(force=True)

    def test_drain_flushes_streams(self):
        events = []
        with SolveEngine(_config()) as engine:
            engine.subscribe(events.append)
            job = engine.submit(_spec())
            assert engine.drain(timeout=60)
        closed = [e for e in events if e.kind == "stream_closed"]
        assert {e.job_id for e in closed} == {job.job_id, None}
        assert engine.bus.closed

    def test_close_force_cancels_everything(self):
        config = _config(workers=1, heartbeat_timeout_s=30.0)
        engine = SolveEngine(config)
        running = engine.submit(_spec(chaos=HANG))
        queued = engine.submit(_spec())
        time.sleep(0.3)
        engine.close(force=True)
        assert running.state == JobState.CANCELLED
        assert queued.state == JobState.CANCELLED
        assert "engine closed" in running.reason

    def test_progress_events_stream_residuals(self):
        progress = []
        with SolveEngine(_config()) as engine:
            engine.subscribe(
                lambda e: progress.append(e.payload) if e.kind == "progress" else None
            )
            job = engine.submit(_spec(progress_every=5))
            assert engine.drain(timeout=60)
        assert job.result["progress_events"] == len(progress) > 0
        for payload in progress:
            assert payload["implicit_rrn"] >= 0
            assert "spmv" in payload["phase_seconds"]

    def test_health_block_validates(self):
        with SolveEngine(_config()) as engine:
            engine.submit(_spec())
            assert engine.drain(timeout=60)
            health = build_serve_health(engine)
        validate_serve_health(health)
        assert health["jobs"]["accepted"] == health["jobs"]["done"] == 1
        broken = dict(health, schema_version=99)
        with pytest.raises(ValueError):
            validate_serve_health(broken)


# -- batch coalescing ---------------------------------------------------


class TestCoalescing:
    """Opt-in multi-RHS coalescing (``ServeConfig(coalesce=True)``)."""

    @staticmethod
    def _occupy_and_queue(engine, nrhs):
        """Fill the single worker with a hang, queue ``nrhs`` batchable
        jobs behind it, then cancel the hang so the freed dispatch slot
        gathers the queued peers into one batch."""
        hang = engine.submit(_spec(chaos=HANG, max_retries=0))
        time.sleep(0.4)  # let the hang start and occupy the worker
        jobs = [engine.submit(_spec(rhs_seed=i)) for i in range(nrhs)]
        assert all(j.state == JobState.QUEUED for j in jobs)
        engine.cancel(hang.job_id)
        return jobs

    def test_coalesced_jobs_bit_identical_to_solo(self):
        tracer = Tracer()
        attempts = []
        config = _config(workers=1, coalesce=True, cancel_grace_s=0.2,
                         heartbeat_timeout_s=30.0)
        with SolveEngine(config, tracer=tracer) as engine:
            engine.subscribe(
                lambda e: attempts.append(e) if e.kind == "attempt" else None
            )
            jobs = self._occupy_and_queue(engine, 3)
            assert engine.drain(timeout=60)
        for job in jobs:
            assert job.state == JobState.DONE
            assert job.result["batch_columns"] == 3
        # one batched dispatch, announced on every member's event stream
        assert tracer.counters["serve.batches_dispatched"] == 1
        assert tracer.counters["serve.batched_jobs"] == 3
        batched_events = {
            e.job_id: e.payload["batched_with"]
            for e in attempts
            if "batched_with" in e.payload
        }
        assert batched_events == {j.job_id: 3 for j in jobs}
        # the coalesced columns are bit-identical to solo attempts
        for i, job in enumerate(jobs):
            ref = run_solve_job(
                _spec(rhs_seed=i).to_dict(), "ref", 1, "frsz2_32"
            )
            assert np.array_equal(job.result["x"], ref["x"])
            assert job.result["iterations"] == ref["iterations"]
            assert job.result["final_rrn"] == ref["final_rrn"]

    def test_max_batch_caps_gather(self):
        config = _config(workers=1, coalesce=True, max_batch=2,
                         cancel_grace_s=0.2, heartbeat_timeout_s=30.0)
        with SolveEngine(config) as engine:
            jobs = self._occupy_and_queue(engine, 3)
            assert engine.drain(timeout=60)
        widths = sorted(j.result.get("batch_columns", 1) for j in jobs)
        assert widths == [1, 2, 2]

    def test_ineligible_jobs_never_coalesce(self):
        """Deadline jobs and retry attempts run solo even when peers
        queue alongside them."""
        tracer = Tracer()
        config = _config(workers=1, coalesce=True, cancel_grace_s=0.2,
                         heartbeat_timeout_s=30.0)
        with SolveEngine(config, tracer=tracer) as engine:
            hang = engine.submit(_spec(chaos=HANG, max_retries=0))
            time.sleep(0.4)
            deadlined = [
                engine.submit(_spec(rhs_seed=i, deadline_s=120.0))
                for i in range(2)
            ]
            engine.cancel(hang.job_id)
            assert engine.drain(timeout=60)
        for job in deadlined:
            assert job.state == JobState.DONE
            assert "batch_columns" not in job.result
        assert tracer.counters.get("serve.batches_dispatched", 0) == 0

    def test_retry_after_crash_runs_solo_while_peers_batch(self):
        attempts = []
        crash = ChaosSpec("worker_crash", at_iteration=3).to_dict()
        config = _config(workers=1, coalesce=True)
        with SolveEngine(config) as engine:
            engine.subscribe(
                lambda e: attempts.append(e) if e.kind == "attempt" else None
            )
            crashy = engine.submit(_spec(chaos=crash))
            peers = [engine.submit(_spec(rhs_seed=i)) for i in range(2)]
            assert engine.drain(timeout=60)
        assert crashy.state == JobState.DONE
        assert crashy.retries == 1
        # neither of the crashy job's attempts was ever batched ...
        crashy_events = [e for e in attempts if e.job_id == crashy.job_id]
        assert crashy_events
        assert all("batched_with" not in e.payload for e in crashy_events)
        # ... while the peers queued behind it coalesced with each other
        for peer in peers:
            assert peer.state == JobState.DONE
            assert peer.result["batch_columns"] == 2

    def test_member_cancel_leaves_peers_running(self):
        # slow target: the batch must still be computing when the cancel
        # lands, and finish afterwards for the surviving members
        config = _config(workers=1, coalesce=True, cancel_grace_s=0.2,
                         heartbeat_timeout_s=30.0)
        with SolveEngine(config) as engine:
            hang = engine.submit(_spec(chaos=HANG, max_retries=0))
            time.sleep(0.4)
            jobs = [
                engine.submit(_spec(rhs_seed=i, target_rrn=1e-13,
                                    max_iter=3000))
                for i in range(3)
            ]
            engine.cancel(hang.job_id)
            deadline = time.monotonic() + 30
            while (any(j.state != JobState.RUNNING for j in jobs)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert engine.cancel(jobs[1].job_id)
            assert jobs[1].wait(timeout=30)
            assert engine.drain(timeout=120)
        assert jobs[1].state == JobState.CANCELLED
        assert "peers continue" in jobs[1].reason
        for peer in (jobs[0], jobs[2]):
            assert peer.state == JobState.DONE
            assert peer.result["batch_columns"] == 3

    def test_worker_entry_matches_solo_jobs(self):
        from repro.serve.worker import run_solve_batch_job

        specs = [_spec(rhs_seed=i).to_dict() for i in range(3)]
        out = run_solve_batch_job(
            specs, ["a", "b", "c"], attempt=1, storage="frsz2_32"
        )
        assert out["batch_columns"] == 3
        assert out["batched_spmv_calls"] > 0
        for i, job_id in enumerate(["a", "b", "c"]):
            ref = run_solve_job(specs[i], "ref", 1, "frsz2_32")
            got = out["results"][job_id]
            assert np.array_equal(got["x"], ref["x"])
            assert got["iterations"] == ref["iterations"]
            assert got["final_rrn"] == ref["final_rrn"]
            assert got["converged"] == ref["converged"]

    def test_worker_entry_validates_lengths(self):
        from repro.serve.worker import run_solve_batch_job

        with pytest.raises(ValueError):
            run_solve_batch_job(
                [_spec().to_dict()], ["a", "b"], attempt=1, storage="frsz2_32"
            )
        with pytest.raises(ValueError):
            run_solve_batch_job([], [], attempt=1, storage="frsz2_32")


# -- chaos monitor unit -------------------------------------------------


class TestChaosMonitor:
    def test_solve_error_fires_at_iteration(self):
        tick = chaos_monitor(ChaosSpec("solve_error", at_iteration=2))
        tick(0, 0, None, 1.0)
        tick(1, 1, None, 1.0)
        with pytest.raises(ChaosError):
            tick(2, 2, None, 1.0)

    def test_armed_attempt_scoping(self):
        spec = ChaosSpec("worker_crash", only_attempt=1)
        assert spec.armed(1) and not spec.armed(2)
        persistent = ChaosSpec("worker_crash", only_attempt=None)
        assert persistent.armed(1) and persistent.armed(7)
