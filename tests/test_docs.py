"""Documentation health: README doctests and markdown link integrity.

CI runs this as the docs job — the README quickstart must stay
executable, and no markdown file may link to a path that does not
exist in the repository.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: every markdown file whose links we guarantee
DOC_FILES = sorted(
    list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_readme_doctests():
    """Every ``>>>`` block in the README must run and match."""
    results = doctest.testfile(
        str(REPO / "README.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "README lost its doctest examples"
    assert results.failed == 0


@pytest.mark.parametrize("md", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_no_dead_relative_links(md):
    """Relative links in markdown must point at existing files."""
    dead = []
    for target in _LINK.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"dead links in {md.name}: {dead}"
