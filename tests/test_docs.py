"""Documentation health: README doctests and markdown link integrity.

CI runs this as the docs job — the README quickstart must stay
executable, and no markdown file may link to a path that does not
exist in the repository.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: every markdown file whose links we guarantee
DOC_FILES = sorted(
    list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_readme_doctests():
    """Every ``>>>`` block in the README must run and match."""
    results = doctest.testfile(
        str(REPO / "README.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "README lost its doctest examples"
    assert results.failed == 0


#: pages the docs set must always contain, with the sections we promise
REQUIRED_PAGES = {
    "docs/PRECISION.md": (
        "## The switching rule",
        "## Composition with robust escalation",
        "## Mixed-storage bases",
        "## Worked example",
    ),
    "docs/ARCHITECTURE.md": (
        "Adaptive precision data flow",
        "## Kernel dispatch: the numpy and jit backends",
    ),
    "docs/EXPERIMENTS.md": (
        "--storage adaptive",
        "### `--backend` — numpy vs jit-compiled kernels",
        "### `--preconditioner` — the compressed preconditioning tier",
    ),
    "docs/PRECONDITIONING.md": (
        "## Right preconditioning in Fig. 1",
        "## The factor-storage ladder",
        "## Stagnating scenarios",
        "## Bench tier and the v6 schema",
    ),
}

#: page -> markdown files that must link to it
REQUIRED_INBOUND_LINKS = {
    "docs/PRECISION.md": ("README.md", "docs/ARCHITECTURE.md"),
    "docs/PRECONDITIONING.md": (
        "README.md",
        "docs/ARCHITECTURE.md",
        "docs/EXPERIMENTS.md",
    ),
}


@pytest.mark.parametrize("page", sorted(REQUIRED_PAGES), ids=str)
def test_required_page_exists_with_sections(page):
    """Key documentation pages exist and keep their promised sections."""
    path = REPO / page
    assert path.exists(), f"{page} is missing"
    text = path.read_text()
    for heading in REQUIRED_PAGES[page]:
        assert heading in text, f"{page} lost its '{heading}' section"


@pytest.mark.parametrize("page", sorted(REQUIRED_INBOUND_LINKS), ids=str)
def test_required_page_is_linked(page):
    """Key pages are reachable from the places readers start at."""
    name = Path(page).name
    for source in REQUIRED_INBOUND_LINKS[page]:
        text = (REPO / source).read_text()
        assert name in text, f"{source} no longer links to {page}"


@pytest.mark.parametrize("md", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_no_dead_relative_links(md):
    """Relative links in markdown must point at existing files."""
    dead = []
    for target in _LINK.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"dead links in {md.name}: {dead}"
