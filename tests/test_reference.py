"""Tests for the scalar reference codec and the Fig. 3 walkthrough trace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference


class TestCompressValue:
    def test_one_with_l32(self):
        # 1.0: sign 0, e = 1023, sig53 = 2^52; k = 0, shift = 22
        c = reference.compress_value(1.0, 1023, 32)
        assert c == (1 << 52) >> 22  # leading 1 at field bit 30

    def test_sign_bit_position(self):
        c_pos = reference.compress_value(1.0, 1023, 32)
        c_neg = reference.compress_value(-1.0, 1023, 32)
        assert c_neg == c_pos | (1 << 31)

    def test_smaller_exponent_shifts_right(self):
        c1 = reference.compress_value(1.0, 1023, 32)
        c_half = reference.compress_value(0.5, 1023, 32)
        assert c_half == c1 >> 1

    def test_exponent_above_block_max_raises(self):
        with pytest.raises(ValueError):
            reference.compress_value(2.0, 1023, 32)

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            reference.compress_value(math.nan, 1023, 32)
        with pytest.raises(ValueError):
            reference.compress_value(math.inf, 1023, 32)

    def test_underflow_to_zero_when_k_large(self):
        # k = 40 > l-2 for l=32: value vanishes entirely
        c = reference.compress_value(2.0 ** -40, 1023, 32)
        assert c == 0

    def test_fits_in_l_bits(self):
        for v in (0.999, -0.001, 0.5, -1.0):
            c = reference.compress_value(v, 1023, 21)
            assert 0 <= c < (1 << 21)


class TestBlockRoundtrip:
    def test_example_block(self):
        vals = [0.75, -0.5, 0.25, 1.0]
        e_max, cs = reference.compress_block(vals, 32)
        assert e_max == 1023
        out = reference.decompress_block(e_max, cs, 32)
        assert out == vals  # all exactly representable

    def test_truncation_toward_zero(self):
        vals = [1.0 / 3.0]
        e_max, cs = reference.compress_block(vals, 16)
        (out,) = reference.decompress_block(e_max, cs, 16)
        assert 0 < out <= vals[0]
        assert vals[0] - out < 2.0 ** (e_max - 1023 - 14)

    def test_rounding_mode(self):
        vals = [1.0 / 3.0]
        e_max, cs = reference.compress_block(vals, 16, rounding=True)
        (out,) = reference.decompress_block(e_max, cs, 16)
        assert abs(out - vals[0]) <= 2.0 ** (e_max - 1023 - 14 - 1)

    def test_zero_block(self):
        e_max, cs = reference.compress_block([0.0, -0.0], 32)
        out = reference.decompress_block(e_max, cs, 32)
        assert out[0] == 0.0 and not math.copysign(1, out[0]) < 0
        assert out[1] == 0.0 and math.copysign(1, out[1]) < 0

    @given(
        st.lists(
            # subnormal results flush to zero on decode, which can exceed
            # the normal-range grid bound; the bound holds for normal input
            st.floats(
                min_value=-1.0, max_value=1.0, allow_nan=False, allow_subnormal=False
            ),
            min_size=1,
            max_size=32,
        ),
        st.sampled_from([12, 16, 21, 32, 48]),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_bound_property(self, vals, l):
        e_max, cs = reference.compress_block(vals, l)
        out = reference.decompress_block(e_max, cs, l)
        bound = math.ldexp(1.0, e_max - 1023 - (l - 2))
        for v, o in zip(vals, out):
            assert abs(v - o) < bound
            assert abs(o) <= abs(v)  # truncation shrinks magnitude


class TestTrace:
    def test_trace_matches_direct_compression(self):
        vals = [0.8, -0.3]
        trace = reference.trace_block_compression(vals, 16)
        e_max, cs = reference.compress_block(vals, 16)
        assert trace.e_max == e_max
        assert trace.compressed == cs
        assert trace.decompressed == reference.decompress_block(e_max, cs, 16)

    def test_trace_records_all_steps(self):
        trace = reference.trace_block_compression([1.0, 0.5], 32)
        assert trace.signs == [0, 0]
        assert trace.exponents == [1023, 1022]
        assert trace.e_max == 1023
        assert trace.shifts == [22, 23]

    def test_format_steps_is_printable(self):
        trace = reference.trace_block_compression([0.8, -0.3], 16)
        text = trace.format_steps(16)
        assert "e_max" in text
        assert "step 1" in text
        assert len(text.splitlines()) >= 5
