"""Cross-module integration tests: full pipelines through the library."""

import numpy as np
import pytest

from repro.accessor import Frsz2Accessor
from repro.bench import figure7_rows, figure8_rows, FIG7_FORMATS
from repro.core import FRSZ2
from repro.gpu import GmresTimingModel, speedup_table
from repro.gpu.warp import warp_compress_block, warp_decompress_block
from repro.solvers import (
    CbGmres,
    JacobiPreconditioner,
    calibrate_target,
    make_problem,
    predict_format,
)
from repro.sparse import (
    build_matrix,
    magnitude_ordering,
    permute_system,
    read_matrix_market,
    write_matrix_market,
)
from repro.solvers.problems import make_rhs


class TestFileRoundTripPipeline:
    def test_generate_write_read_solve(self, tmp_path):
        """Matrix generation -> MatrixMarket -> reload -> solve."""
        a = build_matrix("lung2", "smoke")
        path = tmp_path / "lung2.mtx"
        write_matrix_market(path, a)
        a2 = read_matrix_market(path)
        b, x_sol = make_rhs(a2)
        res = CbGmres(a2, "frsz2_32").solve(b, 1e-8)
        assert res.converged
        assert np.linalg.norm(res.x - x_sol) < 1e-5

    def test_reload_preserves_solver_behaviour(self, tmp_path):
        a = build_matrix("atmosmodd", "smoke")
        path = tmp_path / "a.mtx"
        write_matrix_market(path, a)
        a2 = read_matrix_market(path)
        b, _ = make_rhs(a)
        r1 = CbGmres(a, "float32").solve(b, 1e-10)
        r2 = CbGmres(a2, "float32").solve(b, 1e-10)
        assert r1.iterations == r2.iterations
        assert np.array_equal(r1.x, r2.x)


class TestPredictorGuidedSolve:
    def test_predict_then_solve(self):
        """The §VIII workflow: predict a format, then use it."""
        p = make_problem("StocF-1465", "smoke")
        rec = predict_format(p.a, p.b, probe_iterations=10)
        res = CbGmres(p.a, rec.storage).solve(p.b, p.target_rrn)
        assert res.converged

    def test_predictor_avoids_known_failures(self):
        p = make_problem("PR02R", "smoke")
        rec = predict_format(p.a, p.b, probe_iterations=10)
        # whatever it picks must actually converge
        res = CbGmres(p.a, rec.storage, max_iter=3000).solve(p.b, p.target_rrn)
        assert res.converged


class TestCombinedFeatures:
    def test_reordering_plus_preconditioner_plus_compression(self):
        """All optional machinery at once on FRSZ2's worst case."""
        p = make_problem("PR02R", "smoke")
        perm = magnitude_ordering(np.abs(p.b))
        a2, b2 = permute_system(p.a, p.b, perm)
        solver = CbGmres(
            a2,
            "frsz2_32",
            preconditioner=JacobiPreconditioner(a2),
            orthogonalization="mgs",
        )
        res = solver.solve(b2, p.target_rrn)
        assert res.converged
        x = np.empty_like(res.x)
        x[perm.perm] = res.x
        rrn = np.linalg.norm(p.b - p.a.matvec(x)) / np.linalg.norm(p.b)
        assert rrn <= p.target_rrn * (1 + 1e-9)

    def test_calibrate_then_sweep(self):
        """Section V-C calibration feeding a storage-format sweep."""
        p = make_problem("cfd2", "smoke")
        cal = calibrate_target(p.a, p.b, max_iter=300, name="cfd2")
        results = [
            CbGmres(p.a, fmt).solve(p.b, cal.target_rrn)
            for fmt in ("float64", "float32", "frsz2_32")
        ]
        assert all(r.converged for r in results)
        table = speedup_table(results)
        assert set(table) == {"float64", "float32", "frsz2_32"}


class TestWarpAccessorConsistency:
    def test_accessor_blocks_match_warp_kernels(self):
        """The Accessor path and the SIMT warp kernels must agree on
        every block of a real Krylov-sized vector."""
        rng = np.random.default_rng(42)
        v = rng.standard_normal(32 * 8)
        v /= np.linalg.norm(v)
        acc = Frsz2Accessor(v.size, bit_length=32)
        acc.write(v)
        codec = FRSZ2(32)
        comp = acc.compressed
        for blk in range(comp.layout.num_blocks):
            block_vals = v[blk * 32 : (blk + 1) * 32]
            wrep = warp_compress_block(block_vals, 32)
            assert wrep.e_max == comp.exponents[blk]
            drep = warp_decompress_block(wrep.e_max, wrep.output, 32)
            assert np.array_equal(drep.output, acc.read_block(blk))


class TestFigureDriverConsistency:
    def test_fig7_and_fig8_agree_on_failures(self):
        """A nan final RRN in Fig. 7 must be a zero ratio in Fig. 8."""
        import math

        f7 = {r[0]: r for r in figure7_rows("smoke")}
        f8 = {r[0]: r for r in figure8_rows("smoke")}
        for name in f7:
            for k, fmt in enumerate(FIG7_FORMATS):
                failed7 = math.isnan(f7[name][2 + k])
                failed8 = f8[name][2 + k] == 0.0
                assert failed7 == failed8, (name, fmt)

    def test_speedup_table_matches_timing_model(self):
        p = make_problem("lung2", "smoke")
        r64 = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        r32 = CbGmres(p.a, "float32").solve(p.b, p.target_rrn)
        model = GmresTimingModel()
        expected = (
            model.time_result(r64).total_seconds
            / model.time_result(r32).total_seconds
        )
        assert speedup_table([r64, r32])["float32"] == pytest.approx(expected)


class TestDeterminism:
    """Everything in the pipeline must be bit-reproducible."""

    def test_full_solve_deterministic(self):
        p1 = make_problem("StocF-1465", "smoke")
        p2 = make_problem("StocF-1465", "smoke")
        r1 = CbGmres(p1.a, "frsz2_32").solve(p1.b, p1.target_rrn)
        r2 = CbGmres(p2.a, "frsz2_32").solve(p2.b, p2.target_rrn)
        assert r1.iterations == r2.iterations
        assert np.array_equal(r1.x, r2.x)
        assert [s.rrn for s in r1.history] == [s.rrn for s in r2.history]

    def test_compressor_roundtrips_deterministic(self):
        from repro.compressors import list_compressors, make_compressor

        rng = np.random.default_rng(0)
        x = rng.standard_normal(2000)
        x /= np.linalg.norm(x)
        for name in list_compressors():
            a = make_compressor(name).roundtrip(x)
            b = make_compressor(name).roundtrip(x)
            assert np.array_equal(a, b), name
