"""Tests for the GPU performance model (device, kernels, roofline, timing)."""

import numpy as np
import pytest

from repro.gpu import (
    A100_SXM,
    H100_PCIE,
    GmresTimingModel,
    achieved_bandwidth,
    bandwidth_efficiency,
    cuszp2_bandwidth_range,
    format_cost,
    frsz2_vs_cuszp2_speedup,
    read_kernel_cost,
    roofline_series,
    speedup_table,
)
from repro.gpu.kernels import KernelCost
from repro.solvers import CbGmres, make_problem


class TestDeviceSpec:
    def test_h100_headline_numbers(self):
        assert H100_PCIE.mem_bandwidth == 2000e9
        assert H100_PCIE.fp64_flops == 25.6e12
        assert H100_PCIE.l2_bytes == 50 * 1024 * 1024

    def test_flops_per_double_read_is_about_100(self):
        """The Section I pen-and-paper calculation."""
        assert H100_PCIE.flops_per_double_read == pytest.approx(102.4)

    def test_spare_ops_budget_at_32_bits(self):
        """~46 operations available once values shrink to 32 bits."""
        budget = H100_PCIE.spare_ops_budget(stored_bits=32, used_flops=4)
        assert 40 <= budget <= 55


class TestFormatCost:
    def test_float64_is_free(self):
        f = format_cost("float64")
        assert f.stored_bits == 64 and f.decompress_ops == 0

    def test_frsz2_32_is_33_bits(self):
        assert format_cost("frsz2_32").stored_bits == pytest.approx(33.0)

    def test_frsz2_aliases(self):
        assert format_cost("Acc<frsz2_21>").stored_bits == format_cost("frsz2_21").stored_bits

    def test_unaligned_surcharge(self):
        aligned = format_cost("frsz2_32")
        straddling = format_cost("frsz2_21")
        assert not straddling.aligned
        assert straddling.decompress_ops > aligned.decompress_ops

    def test_instruction_counts_within_budget(self):
        f = format_cost("frsz2_32")
        assert f.decompress_ops <= 46
        assert f.compress_ops <= 46

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            format_cost("float128")


class TestKernelCost:
    def test_memory_bound_kernel(self):
        c = KernelCost(bytes_moved=1e9, fp64_flops=1e6, int_ops=0)
        t = c.time_on(H100_PCIE)
        assert t == pytest.approx(1e9 / (2000e9 * 0.92))

    def test_compute_bound_kernel(self):
        c = KernelCost(bytes_moved=8, fp64_flops=1e12, int_ops=0)
        assert c.time_on(H100_PCIE) == pytest.approx(1e12 / 25.6e12)

    def test_int_pipe_can_dominate(self):
        c = KernelCost(bytes_moved=8, fp64_flops=0, int_ops=1e13)
        assert c.time_on(H100_PCIE) == pytest.approx(1e13 / 51.2e12)

    def test_unaligned_slower(self):
        a = KernelCost(bytes_moved=1e9, fp64_flops=0, int_ops=0, aligned=True)
        u = KernelCost(bytes_moved=1e9, fp64_flops=0, int_ops=0, aligned=False)
        assert u.time_on(H100_PCIE) > a.time_on(H100_PCIE)


class TestRoofline:
    """The Fig. 4 observations, as assertions on the model."""

    def setup_method(self):
        self.series = roofline_series(intensities=(1.0, 4.0, 16.0, 128.0, 1024.0))

    def _gflops(self, fmt):
        return np.array([p.gflops for p in self.series[fmt]])

    def test_accessor_is_zero_cost(self):
        assert np.allclose(self._gflops("float64"), self._gflops("Acc<float64>"))
        assert np.allclose(self._gflops("float32"), self._gflops("Acc<float32>"))

    def test_frsz2_16_fastest_at_low_intensity(self):
        low = {f: self.series[f][0].gflops for f in self.series}
        assert max(low, key=low.get) == "Acc<frsz2_16>"

    def test_frsz2_16_not_twice_float32(self):
        """Fig. 4: 'it is not a factor of 2 faster than single-precision'."""
        r = self.series["Acc<frsz2_16>"][0].gflops / self.series["Acc<float32>"][0].gflops
        assert 1.0 < r < 2.0

    def test_frsz2_32_just_below_float32(self):
        f32 = self.series["Acc<float32>"][0].gflops
        frsz2 = self.series["Acc<frsz2_32>"][0].gflops
        assert frsz2 < f32
        assert frsz2 > f32 * 0.93  # 32/33 bits, minus the derate

    def test_frsz2_21_no_faster_than_frsz2_32(self):
        """Fig. 4: the 33% footprint saving does not translate to speed."""
        assert (
            self.series["Acc<frsz2_21>"][0].gflops
            <= self.series["Acc<frsz2_32>"][0].gflops * 1.02
        )

    def test_all_formats_merge_when_compute_bound(self):
        high = [self.series[f][-1].gflops for f in self.series]
        assert max(high) / min(high) < 1.01

    def test_gap_closes_with_intensity(self):
        gap = self._gflops("Acc<frsz2_16>") / self._gflops("float64")
        assert np.all(np.diff(gap) <= 1e-9)  # never widens
        assert gap[0] > 2.0 and gap[-1] == pytest.approx(1.0)

    def test_monotone_in_intensity(self):
        for fmt in self.series:
            g = self._gflops(fmt)
            assert np.all(np.diff(g) >= -1e-9)


class TestBandwidthClaims:
    def test_frsz2_32_reaches_99_6_percent(self):
        """Paper: 'Acc<frsz2_32> reaches 1991GB/s, ~99.6% of reachable'."""
        assert bandwidth_efficiency("Acc<frsz2_32>") == pytest.approx(0.996, abs=0.002)

    def test_achieved_bandwidth_below_peak(self):
        assert achieved_bandwidth("Acc<frsz2_32>") < H100_PCIE.mem_bandwidth

    def test_cuszp2_range_scales_with_device(self):
        lo_h, hi_h = cuszp2_bandwidth_range(H100_PCIE)
        lo_a, hi_a = cuszp2_bandwidth_range(A100_SXM)
        assert lo_h > lo_a and hi_h > hi_a
        assert hi_a == pytest.approx(1241e9)

    def test_frsz2_vs_cuszp2_matches_claim4(self):
        """Paper claim 4: 1.2~3.1x faster than cuSZp2 at the roofline."""
        lo, hi = frsz2_vs_cuszp2_speedup()
        assert 1.0 < lo < 1.5
        assert 2.5 < hi < 3.5


class TestTimingModel:
    def _solve(self, fmt, problem):
        return CbGmres(problem.a, fmt).solve(problem.b, problem.target_rrn)

    def test_timing_breakdown_positive(self):
        p = make_problem("lung2", "smoke")
        t = GmresTimingModel().time_result(self._solve("frsz2_32", p))
        assert t.spmv_seconds > 0
        assert t.basis_read_seconds > 0
        assert t.basis_write_seconds > 0
        assert t.total_seconds > 0

    def test_smaller_storage_means_less_basis_read_time(self):
        p = make_problem("lung2", "smoke")
        model = GmresTimingModel()
        r64 = self._solve("float64", p)
        r16 = self._solve("float16", p)
        per_read64 = model.time_result(r64).basis_read_seconds / r64.stats.basis_reads
        per_read16 = model.time_result(r16).basis_read_seconds / r16.stats.basis_reads
        assert per_read16 < per_read64 / 2

    def test_speedup_table_baseline_is_one(self):
        p = make_problem("lung2", "smoke")
        results = [self._solve(f, p) for f in ("float64", "float32")]
        table = speedup_table(results)
        assert table["float64"] == pytest.approx(1.0)

    def test_speedup_table_requires_baseline(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError):
            speedup_table([self._solve("float32", p)])

    def test_unconverged_formats_omitted(self):
        """Fig. 11: 'the entire bar is removed ... if a storage format
        does not reach the targeted relative residual norm'."""
        p = make_problem("PR02R", "default")
        r64 = self._solve("float64", p)
        r16 = CbGmres(p.a, "float16", max_iter=2000).solve(p.b, p.target_rrn)
        table = speedup_table([r64, r16])
        assert "float16" not in table

    def test_atmosmod_ordering_matches_fig11(self):
        """frsz2_32 beats float32 beats float64 on the atmosmod family."""
        p = make_problem("atmosmodd", "default")
        results = [self._solve(f, p) for f in ("float64", "frsz2_32", "float32")]
        table = speedup_table(results)
        assert table["frsz2_32"] > table["float32"] > 0.95
        assert table["frsz2_32"] > 1.0
