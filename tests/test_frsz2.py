"""Unit, integration and property tests for the vectorized FRSZ2 codec."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import FRSZ2, reference
from repro.core.ieee754 import effective_biased_exponent, significand53, to_bits

finite_doubles = st.floats(
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=True,
    width=64,
)

krylov_like = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


def block_emax(x):
    bits = to_bits(np.asarray(x, dtype=np.float64))
    e = effective_biased_exponent(bits).astype(np.int64)
    e = np.where(significand53(bits) == 0, 1, e)
    return int(e.max()) if x.size else 1


class TestConstruction:
    @pytest.mark.parametrize("l", [1, 0, 65, -3])
    def test_invalid_bit_length(self, l):
        with pytest.raises(ValueError):
            FRSZ2(bit_length=l)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            FRSZ2(block_size=0)

    def test_defaults_match_paper_recommendation(self):
        codec = FRSZ2()
        assert codec.bit_length == 32
        assert codec.block_size == 32
        assert codec.rounding is False


class TestCompressBasics:
    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            FRSZ2().compress(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            FRSZ2().compress(np.array([np.inf]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FRSZ2().compress(np.ones((2, 2)))

    def test_accepts_non_float64_input_by_casting(self):
        c = FRSZ2().compress(np.array([1, 2, 3], dtype=np.int64))
        assert np.array_equal(FRSZ2().decompress(c), [1.0, 2.0, 3.0])

    def test_empty_array(self):
        codec = FRSZ2()
        c = codec.compress(np.zeros(0))
        assert c.n == 0
        assert codec.decompress(c).size == 0

    def test_storage_size_matches_eq3(self):
        codec = FRSZ2(bit_length=21)
        c = codec.compress(np.random.default_rng(0).standard_normal(1000))
        assert c.nbytes == c.layout.total_nbytes
        assert c.payload.nbytes == c.layout.value_nbytes
        assert c.exponents.nbytes == c.layout.exponent_nbytes

    def test_bits_per_value_frsz2_32(self):
        c = FRSZ2(32).compress(np.ones(32 * 10))
        assert c.bits_per_value == pytest.approx(33.0)

    def test_exponent_stream_one_per_block(self):
        c = FRSZ2().compress(np.ones(100))
        assert c.exponents.shape == (4,)  # ceil(100/32)
        assert c.exponents.dtype == np.int32


class TestExactCases:
    def test_powers_of_two_roundtrip_exactly(self):
        x = 2.0 ** np.arange(-10, 11, dtype=np.float64)
        codec = FRSZ2(bit_length=32, block_size=32)
        assert np.array_equal(codec.roundtrip(x), x)

    def test_uniform_exponent_block_preserves_31_bits(self):
        # values in [1, 2): all share exponent, 30 fraction bits survive
        rng = np.random.default_rng(1)
        x = 1.0 + rng.random(320)
        y = FRSZ2(32).roundtrip(x)
        assert np.abs(x - y).max() < 2.0 ** -29

    def test_values_representable_in_field_are_exact(self):
        # multiples of 2^-20 in [-2, 2) fit easily in a 32-bit field
        rng = np.random.default_rng(2)
        x = rng.integers(-(2 << 20), 2 << 20, 500) * 2.0 ** -20
        assert np.array_equal(FRSZ2(32).roundtrip(x), x)

    def test_zeros_roundtrip(self):
        x = np.zeros(64)
        assert np.array_equal(FRSZ2().roundtrip(x), x)

    def test_signed_zero_preserved(self):
        x = np.array([-0.0, 0.0])
        y = FRSZ2().roundtrip(x)
        assert np.signbit(y[0]) and not np.signbit(y[1])

    def test_all_same_value_block(self):
        x = np.full(32, 0.3)
        y = FRSZ2(32).roundtrip(x)
        assert np.abs(x - y).max() < 2.0 ** -31

    def test_subnormal_inputs_flush_or_stay_tiny(self):
        x = np.array([5e-324, 1e-310, 0.0, 2e-308])
        y = FRSZ2(32).roundtrip(x)
        assert np.all(np.abs(y) <= np.abs(x))  # truncation never grows magnitude
        assert np.all(np.isfinite(y))


class TestErrorBound:
    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_block_error_bound_random_data(self, l):
        rng = np.random.default_rng(l)
        x = rng.standard_normal(4096)
        codec = FRSZ2(bit_length=l)
        y = codec.roundtrip(x)
        err = np.abs(x - y)
        for b in range(codec.layout_for(x.size).num_blocks):
            sl = slice(b * 32, (b + 1) * 32)
            bound = codec.max_block_error_bound(block_emax(x[sl]))
            assert err[sl].max() < bound

    def test_truncation_never_increases_magnitude(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(2048) * 10.0 ** rng.integers(-8, 8, 2048)
        y = FRSZ2(32).roundtrip(x)
        assert np.all(np.abs(y) <= np.abs(x))
        assert np.all((y == 0) | (np.sign(y) == np.sign(x)))

    def test_rounding_halves_worst_case_error(self):
        rng = np.random.default_rng(4)
        x = 1.0 + rng.random(32 * 64)  # uniform exponent: clean comparison
        trunc = np.abs(FRSZ2(16).roundtrip(x) - x).max()
        rnd = np.abs(FRSZ2(16, rounding=True).roundtrip(x) - x).max()
        assert rnd <= trunc / 1.9

    def test_rounding_carry_clamped_not_sign_corrupted(self):
        # value just below a power of two rounds up; must not flip sign
        x = np.full(32, np.nextafter(2.0, 0.0))
        y = FRSZ2(16, rounding=True).roundtrip(x)
        assert np.all(y > 0)
        assert np.all(np.abs(y - x) < 2.0 ** -13)

    def test_wide_exponent_range_in_block_loses_small_values(self):
        # the PR02R failure mode (paper Section VI-A, Fig. 10): one huge
        # value forces small values' significands out of the field
        x = np.array([1e30] + [1e-10] * 31)
        y = FRSZ2(32).roundtrip(x)
        assert y[0] == pytest.approx(1e30, rel=1e-6)
        assert np.all(y[1:] == 0.0)


class TestAgainstReference:
    @pytest.mark.parametrize("l", [16, 21, 32, 11, 54])
    def test_fields_match_reference(self, l):
        rng = np.random.default_rng(l * 7)
        x = rng.standard_normal(96) * 10.0 ** rng.integers(-5, 5, 96)
        codec = FRSZ2(bit_length=l)
        comp = codec.compress(x)
        for b in range(3):
            blk = x[b * 32 : (b + 1) * 32]
            e_ref, c_ref = reference.compress_block(blk.tolist(), l)
            assert comp.exponents[b] == e_ref
            got = codec._read_fields(comp, np.arange(b * 32, (b + 1) * 32))
            assert got.tolist() == c_ref

    @pytest.mark.parametrize("l", [16, 21, 32, 11, 54])
    def test_decompress_matches_reference(self, l):
        rng = np.random.default_rng(l * 13)
        x = rng.standard_normal(96) * 10.0 ** rng.integers(-12, 12, 96)
        codec = FRSZ2(bit_length=l)
        y = codec.roundtrip(x)
        for b in range(3):
            blk = x[b * 32 : (b + 1) * 32]
            e_ref, c_ref = reference.compress_block(blk.tolist(), l)
            d_ref = reference.decompress_block(e_ref, c_ref, l)
            assert y[b * 32 : (b + 1) * 32].tolist() == d_ref

    @given(
        st.lists(krylov_like, min_size=1, max_size=40),
        st.sampled_from([16, 21, 32]),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_matches_reference_krylov_range(self, vals, l):
        x = np.array(vals, dtype=np.float64)
        codec = FRSZ2(bit_length=l, block_size=8)
        y = codec.roundtrip(x)
        nb = -(-x.size // 8)
        expect = []
        for b in range(nb):
            blk = x[b * 8 : (b + 1) * 8]
            e_ref, c_ref = reference.compress_block(blk.tolist(), l)
            expect.extend(reference.decompress_block(e_ref, c_ref, l))
        assert y.tolist() == expect

    @given(st.lists(finite_doubles, min_size=1, max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_reference_full_range(self, vals):
        x = np.array(vals, dtype=np.float64)
        codec = FRSZ2(bit_length=32, block_size=4)
        y = codec.roundtrip(x)
        nb = -(-x.size // 4)
        expect = []
        for b in range(nb):
            blk = x[b * 4 : (b + 1) * 4]
            e_ref, c_ref = reference.compress_block(blk.tolist(), 32)
            expect.extend(reference.decompress_block(e_ref, c_ref, 32))
        got = y.tolist()
        assert len(got) == len(expect)
        for g, e in zip(got, expect):
            assert g == e or (g == 0.0 and e == 0.0)


class TestRandomAccess:
    def test_get_matches_full_decompress(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(1000)
        codec = FRSZ2(bit_length=21)
        comp = codec.compress(x)
        full = codec.decompress(comp)
        idx = rng.integers(0, 1000, 200)
        assert np.array_equal(codec.get(comp, idx), full[idx])

    def test_get_scalar(self):
        x = np.linspace(-1, 1, 100)
        codec = FRSZ2()
        comp = codec.compress(x)
        assert codec.get(comp, 42) == codec.decompress(comp)[42]

    def test_get_out_of_range_raises(self):
        comp = FRSZ2().compress(np.ones(10))
        with pytest.raises(IndexError):
            FRSZ2().get(comp, 10)
        with pytest.raises(IndexError):
            FRSZ2().get(comp, -1)

    def test_decompress_block_matches_slices(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(100)
        codec = FRSZ2()
        comp = codec.compress(x)
        full = codec.decompress(comp)
        for b in range(comp.layout.num_blocks):
            blk = codec.decompress_block(comp, b)
            assert np.array_equal(blk, full[b * 32 : (b + 1) * 32])

    def test_decompress_out_parameter(self):
        x = np.linspace(0, 1, 50)
        codec = FRSZ2()
        comp = codec.compress(x)
        out = np.empty(50)
        ret = codec.decompress(comp, out=out)
        assert ret is out
        assert np.array_equal(out, codec.decompress(comp))

    def test_decompress_out_wrong_shape_raises(self):
        comp = FRSZ2().compress(np.ones(10))
        with pytest.raises(ValueError):
            FRSZ2().decompress(comp, out=np.empty(11))


class TestIdempotence:
    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_roundtrip_is_projection(self, l):
        """Decompressed values re-compress to themselves exactly."""
        rng = np.random.default_rng(l)
        x = rng.standard_normal(500)
        codec = FRSZ2(bit_length=l)
        once = codec.roundtrip(x)
        twice = codec.roundtrip(once)
        assert np.array_equal(once, twice)

    @given(st.lists(krylov_like, min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_projection_property(self, vals):
        x = np.array(vals)
        codec = FRSZ2(bit_length=21, block_size=16)
        once = codec.roundtrip(x)
        assert np.array_equal(once, codec.roundtrip(once))


class TestBlockSizes:
    @pytest.mark.parametrize("bs", [1, 2, 7, 16, 32, 64, 128])
    def test_roundtrip_various_block_sizes(self, bs):
        rng = np.random.default_rng(bs)
        x = rng.standard_normal(333)
        codec = FRSZ2(bit_length=32, block_size=bs)
        y = codec.roundtrip(x)
        assert np.abs(x - y).max() < 1e-6

    def test_smaller_blocks_are_more_accurate_on_varied_data(self):
        """Smaller blocks -> tighter shared exponents -> less error."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal(4096) * 10.0 ** rng.integers(-4, 4, 4096)
        err = {}
        for bs in (4, 32, 256):
            y = FRSZ2(bit_length=16, block_size=bs).roundtrip(x)
            nz = x != 0
            err[bs] = np.median(np.abs((x - y))[nz] / np.abs(x)[nz])
        assert err[4] <= err[32] <= err[256]

    def test_partial_last_block(self):
        x = np.linspace(-1, 1, 33)  # 32 + 1
        y = FRSZ2().roundtrip(x)
        assert np.abs(x - y).max() < 1e-8


class TestBitLengthMonotonicity:
    def test_more_bits_never_worse(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal(2048)
        errs = []
        for l in (12, 16, 21, 24, 32, 40):
            errs.append(np.abs(FRSZ2(bit_length=l).roundtrip(x) - x).max())
        assert all(a >= b for a, b in zip(errs, errs[1:]))

    def test_frsz2_32_beats_float32_on_shared_exponent_blocks(self):
        """The paper's key accuracy claim: with the exponent externalized,
        frsz2_32 keeps ~30 fraction bits vs float32's 23 (Section VI-A)."""
        rng = np.random.default_rng(10)
        # Krylov-like: normalized vector, neighbouring values similar scale
        x = rng.standard_normal(32 * 256)
        x /= np.linalg.norm(x)
        frsz2_err = np.abs(FRSZ2(32).roundtrip(x) - x)
        f32_err = np.abs(x.astype(np.float32).astype(np.float64) - x)
        assert np.median(frsz2_err) < np.median(f32_err)


class TestRoundingShiftClamp:
    """Regression tests for the rounding addend's shift clamp.

    ``_encode_fields`` used to form the round-to-nearest addend as
    ``1 << (shift - 1)`` without an upper clamp.  For a value far enough
    below its block's maximum the shift exceeds the significand width:

    * ``shift == 64``: the addend ``2^63`` is still representable, but
      the down-shift is clamped to 63, so the addend survived as a
      spurious significand bit — deterministically wrong on every
      platform (the value decoded as one grid ulp instead of 0);
    * ``shift >= 65``: ``shift - 1`` reaches 64, which is undefined for
      uint64 and wraps to ``shift % 64`` on x86, resurrecting fully
      truncated values as garbage.

    The fix zeroes the addend once the value truncates away entirely
    (``shift > 54``; the 53-bit significand cannot round further than
    one position past its own width).
    """

    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_shift_64_flushes_to_zero(self, l):
        # second value sits exactly shift == 64 below the block max
        codec = FRSZ2(bit_length=l, rounding=True)
        x = np.array([1.0, 2.0 ** -(10 + l)])
        out = codec.roundtrip(x)
        assert out[0] == 1.0
        assert out[1] == 0.0

    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_undefined_shift_region_flushes_to_zero(self, l):
        # shift - 1 in {64, 127}: the formerly undefined uint64 shifts
        codec = FRSZ2(bit_length=l, rounding=True)
        for extra in (11, 74):  # shift = 65 and shift = 128
            x = np.array([1.0, 2.0 ** -(extra + l)])
            out = codec.roundtrip(x)
            assert out[1] == 0.0, f"l={l}, shift={54 + extra + l - 54}"

    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_extreme_dynamic_range_respects_error_bound(self, l):
        # one full block spanning ~600 binades, signs mixed, with zeros:
        # every decoded value must stay within the block's a-priori
        # truncation bound, and everything below the grid must flush
        rng = np.random.default_rng(l)
        exponents = rng.integers(-300, 301, 32)
        x = rng.choice([-1.0, 1.0], 32) * (1.0 + rng.random(32)) * (
            2.0 ** exponents.astype(np.float64)
        )
        x[::11] = 0.0
        codec = FRSZ2(bit_length=l, rounding=True)
        out = codec.roundtrip(x)
        assert np.all(np.isfinite(out))
        bound = codec.max_block_error_bound(block_emax(x))
        assert np.abs(out - x).max() <= bound
        grid = bound / 2.0  # rounding: anything below half a grid ulp dies
        assert np.all(out[np.abs(x) < grid * 0.99] == 0.0)

    @pytest.mark.parametrize("l", [16, 21, 32])
    @given(small_exp=st.integers(min_value=-1074, max_value=-60))
    @settings(max_examples=40, deadline=None)
    def test_any_fully_truncated_value_decodes_to_zero(self, l, small_exp):
        codec = FRSZ2(bit_length=l, rounding=True)
        x = np.array([1.0, 2.0 ** small_exp])
        out = codec.roundtrip(x)
        assert out[1] == 0.0
