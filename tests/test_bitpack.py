"""Unit and property tests for the bit-stream packing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack


class TestWordsNeeded:
    def test_exact_multiples(self):
        assert bitpack.words_needed(0) == 0
        assert bitpack.words_needed(32) == 1
        assert bitpack.words_needed(64) == 2

    def test_rounds_up(self):
        assert bitpack.words_needed(1) == 1
        assert bitpack.words_needed(33) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitpack.words_needed(-1)


class TestPackUnpackFields:
    @pytest.mark.parametrize("width", [1, 3, 8, 13, 16, 21, 24, 31, 32])
    def test_roundtrip_narrow_widths(self, width):
        rng = np.random.default_rng(width)
        n = 257
        fields = rng.integers(0, 1 << width, n, dtype=np.uint64)
        words = bitpack.pack_fields(fields, width)
        assert words.size == bitpack.words_needed(n * width)
        out = bitpack.unpack_fields(words, n, width)
        assert np.array_equal(out, fields)

    @pytest.mark.parametrize("width", [33, 48, 53, 63, 64])
    def test_roundtrip_wide_widths(self, width):
        rng = np.random.default_rng(width)
        n = 101
        if width == 64:
            fields = rng.integers(0, 1 << 63, n, dtype=np.uint64) * 2 + 1
        else:
            fields = rng.integers(0, 1 << width, n, dtype=np.uint64)
        words = bitpack.pack_fields(fields, width)
        out = bitpack.unpack_fields(words, n, width)
        assert np.array_equal(out, fields)

    def test_empty_input(self):
        words = bitpack.pack_fields(np.zeros(0, dtype=np.uint64), 21)
        assert words.size == 0
        out = bitpack.unpack_fields(words, 0, 21)
        assert out.size == 0

    def test_single_field(self):
        words = bitpack.pack_fields(np.array([0x1FFFFF], dtype=np.uint64), 21)
        assert bitpack.unpack_fields(words, 1, 21)[0] == 0x1FFFFF

    def test_known_layout_lsb_first(self):
        # two 16-bit fields share the first word, little-endian bit order
        words = bitpack.pack_fields(np.array([0x1234, 0xABCD], dtype=np.uint64), 16)
        assert words[0] == np.uint32(0xABCD1234)

    def test_straddling_layout(self):
        # 21-bit fields: second field straddles words 0 and 1
        f = np.array([0x1FFFFF, 0x000001], dtype=np.uint64)
        words = bitpack.pack_fields(f, 21)
        assert words[0] == np.uint32((1 << 21) | 0x1FFFFF)
        assert words[1] == np.uint32(0)


class TestPackAt:
    def test_value_wider_than_declared_raises(self):
        words = np.zeros(2, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([0]), np.array([4], dtype=np.uint64), 2
            )

    def test_out_of_stream_raises(self):
        words = np.zeros(1, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([20]), np.array([1], dtype=np.uint64), 16
            )

    def test_negative_position_raises(self):
        words = np.zeros(1, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([-1]), np.array([1], dtype=np.uint64), 4
            )

    def test_wrong_dtype_raises(self):
        with pytest.raises(TypeError):
            bitpack.pack_at(
                np.zeros(1, dtype=np.uint64),
                np.array([0]),
                np.array([1], dtype=np.uint64),
                4,
            )

    def test_mixed_widths(self):
        words = np.zeros(4, dtype=np.uint32)
        fields = np.array([0b101, 0x7FFF, 1, 0xFFFFFFFF], dtype=np.uint64)
        widths = np.array([3, 15, 1, 32])
        bitpos = np.concatenate([[0], np.cumsum(widths)[:-1]])
        bitpack.pack_at(words, bitpos, fields, widths)
        out = bitpack.unpack_at(words, bitpos, widths)
        assert np.array_equal(out, fields)

    def test_word_aligned_blocks(self):
        # mimic the FRSZ2 layout: each block starts word aligned
        width, bs, wpb = 21, 4, 3  # ceil(4*21/32) == 3
        nblocks = 5
        rng = np.random.default_rng(3)
        fields = rng.integers(0, 1 << width, bs * nblocks, dtype=np.uint64)
        idx = np.arange(bs * nblocks)
        bitpos = (idx // bs) * wpb * 32 + (idx % bs) * width
        words = np.zeros(nblocks * wpb, dtype=np.uint32)
        bitpack.pack_at(words, bitpos, fields, width)
        assert np.array_equal(bitpack.unpack_at(words, bitpos, width), fields)

    def test_unpack_empty(self):
        out = bitpack.unpack_at(np.zeros(1, dtype=np.uint32), np.zeros(0, dtype=np.int64), 8)
        assert out.size == 0


@st.composite
def field_arrays(draw):
    width = draw(st.integers(min_value=1, max_value=64))
    n = draw(st.integers(min_value=1, max_value=80))
    max_val = (1 << width) - 1
    vals = draw(
        st.lists(st.integers(min_value=0, max_value=max_val), min_size=n, max_size=n)
    )
    return width, np.array(vals, dtype=np.uint64)


class TestPackProperty:
    @given(field_arrays())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_any_width(self, case):
        width, fields = case
        words = bitpack.pack_fields(fields, width)
        assert np.array_equal(bitpack.unpack_fields(words, fields.size, width), fields)

    @given(field_arrays())
    @settings(max_examples=80, deadline=None)
    def test_stream_matches_big_integer_model(self, case):
        """The packed stream must equal the mathematical bit concatenation."""
        width, fields = case
        words = bitpack.pack_fields(fields, width)
        model = 0
        for i, f in enumerate(fields.tolist()):
            model |= f << (i * width)
        got = 0
        for i, w in enumerate(words.tolist()):
            got |= w << (32 * i)
        assert got == model
