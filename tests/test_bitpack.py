"""Unit and property tests for the bit-stream packing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack


class TestWordsNeeded:
    def test_exact_multiples(self):
        assert bitpack.words_needed(0) == 0
        assert bitpack.words_needed(32) == 1
        assert bitpack.words_needed(64) == 2

    def test_rounds_up(self):
        assert bitpack.words_needed(1) == 1
        assert bitpack.words_needed(33) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitpack.words_needed(-1)


class TestPackUnpackFields:
    @pytest.mark.parametrize("width", [1, 3, 8, 13, 16, 21, 24, 31, 32])
    def test_roundtrip_narrow_widths(self, width):
        rng = np.random.default_rng(width)
        n = 257
        fields = rng.integers(0, 1 << width, n, dtype=np.uint64)
        words = bitpack.pack_fields(fields, width)
        assert words.size == bitpack.words_needed(n * width)
        out = bitpack.unpack_fields(words, n, width)
        assert np.array_equal(out, fields)

    @pytest.mark.parametrize("width", [33, 48, 53, 63, 64])
    def test_roundtrip_wide_widths(self, width):
        rng = np.random.default_rng(width)
        n = 101
        if width == 64:
            fields = rng.integers(0, 1 << 63, n, dtype=np.uint64) * 2 + 1
        else:
            fields = rng.integers(0, 1 << width, n, dtype=np.uint64)
        words = bitpack.pack_fields(fields, width)
        out = bitpack.unpack_fields(words, n, width)
        assert np.array_equal(out, fields)

    def test_empty_input(self):
        words = bitpack.pack_fields(np.zeros(0, dtype=np.uint64), 21)
        assert words.size == 0
        out = bitpack.unpack_fields(words, 0, 21)
        assert out.size == 0

    def test_single_field(self):
        words = bitpack.pack_fields(np.array([0x1FFFFF], dtype=np.uint64), 21)
        assert bitpack.unpack_fields(words, 1, 21)[0] == 0x1FFFFF

    def test_known_layout_lsb_first(self):
        # two 16-bit fields share the first word, little-endian bit order
        words = bitpack.pack_fields(np.array([0x1234, 0xABCD], dtype=np.uint64), 16)
        assert words[0] == np.uint32(0xABCD1234)

    def test_straddling_layout(self):
        # 21-bit fields: second field straddles words 0 and 1
        f = np.array([0x1FFFFF, 0x000001], dtype=np.uint64)
        words = bitpack.pack_fields(f, 21)
        assert words[0] == np.uint32((1 << 21) | 0x1FFFFF)
        assert words[1] == np.uint32(0)


class TestPackAt:
    def test_value_wider_than_declared_raises(self):
        words = np.zeros(2, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([0]), np.array([4], dtype=np.uint64), 2
            )

    def test_out_of_stream_raises(self):
        words = np.zeros(1, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([20]), np.array([1], dtype=np.uint64), 16
            )

    def test_negative_position_raises(self):
        words = np.zeros(1, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_at(
                words, np.array([-1]), np.array([1], dtype=np.uint64), 4
            )

    def test_wrong_dtype_raises(self):
        with pytest.raises(TypeError):
            bitpack.pack_at(
                np.zeros(1, dtype=np.uint64),
                np.array([0]),
                np.array([1], dtype=np.uint64),
                4,
            )

    def test_mixed_widths(self):
        words = np.zeros(4, dtype=np.uint32)
        fields = np.array([0b101, 0x7FFF, 1, 0xFFFFFFFF], dtype=np.uint64)
        widths = np.array([3, 15, 1, 32])
        bitpos = np.concatenate([[0], np.cumsum(widths)[:-1]])
        bitpack.pack_at(words, bitpos, fields, widths)
        out = bitpack.unpack_at(words, bitpos, widths)
        assert np.array_equal(out, fields)

    def test_word_aligned_blocks(self):
        # mimic the FRSZ2 layout: each block starts word aligned
        width, bs, wpb = 21, 4, 3  # ceil(4*21/32) == 3
        nblocks = 5
        rng = np.random.default_rng(3)
        fields = rng.integers(0, 1 << width, bs * nblocks, dtype=np.uint64)
        idx = np.arange(bs * nblocks)
        bitpos = (idx // bs) * wpb * 32 + (idx % bs) * width
        words = np.zeros(nblocks * wpb, dtype=np.uint32)
        bitpack.pack_at(words, bitpos, fields, width)
        assert np.array_equal(bitpack.unpack_at(words, bitpos, width), fields)

    def test_unpack_empty(self):
        out = bitpack.unpack_at(np.zeros(1, dtype=np.uint32), np.zeros(0, dtype=np.int64), 8)
        assert out.size == 0


@st.composite
def field_arrays(draw):
    width = draw(st.integers(min_value=1, max_value=64))
    n = draw(st.integers(min_value=1, max_value=80))
    max_val = (1 << width) - 1
    vals = draw(
        st.lists(st.integers(min_value=0, max_value=max_val), min_size=n, max_size=n)
    )
    return width, np.array(vals, dtype=np.uint64)


class TestPackProperty:
    @given(field_arrays())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_any_width(self, case):
        width, fields = case
        words = bitpack.pack_fields(fields, width)
        assert np.array_equal(bitpack.unpack_fields(words, fields.size, width), fields)

    @given(field_arrays())
    @settings(max_examples=80, deadline=None)
    def test_stream_matches_big_integer_model(self, case):
        """The packed stream must equal the mathematical bit concatenation."""
        width, fields = case
        words = bitpack.pack_fields(fields, width)
        model = 0
        for i, f in enumerate(fields.tolist()):
            model |= f << (i * width)
        got = 0
        for i, w in enumerate(words.tolist()):
            got |= w << (32 * i)
        assert got == model


class TestBoundsErrorReporting:
    """The out-of-range ValueError must name the offending field.

    These also pin down the removal of the dead ``end = bitpos[-1] +
    widths[-1]`` fragment: the real bounds check must consider *every*
    field, not assume the last array element is the highest position.
    """

    def test_pack_past_end_names_position_and_stream(self):
        words = np.zeros(2, dtype=np.uint32)  # 64-bit stream
        with pytest.raises(ValueError, match=r"width 21 at bit position 50.*64-bit stream.*2 words"):
            bitpack.pack_at(words, np.array([50]), np.array([0], dtype=np.uint64), 21)

    def test_pack_negative_position_names_position(self):
        words = np.zeros(2, dtype=np.uint32)
        with pytest.raises(ValueError, match=r"bit position -7"):
            bitpack.pack_at(words, np.array([-7]), np.array([0], dtype=np.uint64), 8)

    def test_pack_offender_not_in_last_place(self):
        # the overflowing field sits first; a "check only bitpos[-1]"
        # shortcut would miss it
        words = np.zeros(2, dtype=np.uint32)
        bitpos = np.array([60, 0])
        fields = np.zeros(2, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"bit position 60"):
            bitpack.pack_at(words, bitpos, fields, 21)

    def test_unpack_past_end_names_position_and_stream(self):
        words = np.zeros(3, dtype=np.uint32)  # 96-bit stream
        with pytest.raises(ValueError, match=r"width 33 at bit position 64.*96-bit stream"):
            bitpack.unpack_at(words, np.array([64]), 33)

    def test_unpack_negative_position_raises_not_wraps(self):
        words = np.arange(4, dtype=np.uint32)
        with pytest.raises(ValueError, match=r"bit position -1"):
            bitpack.unpack_at(words, np.array([-1]), 8)


class TestStraddleClampEdge:
    """The straddle read clamps its second-word index at the stream end;
    a field ending *exactly* at the last word with a nonzero bit offset
    must still round-trip (the shifted-in bits are masked off)."""

    @pytest.mark.parametrize("width", [5, 21, 31, 33, 47, 63])
    def test_field_ending_exactly_at_stream_end(self, width):
        nwords = 4  # 128-bit stream
        bitpos = np.array([nwords * 32 - width])
        assert bitpos[0] % 32 != 0  # genuinely offset into the last words
        rng = np.random.default_rng(width)
        value = rng.integers(0, 1 << min(width, 63), 1, dtype=np.uint64) | (
            np.uint64(1) << np.uint64(width - 1)  # force the top bit live
        )
        words = np.zeros(nwords, dtype=np.uint32)
        bitpack.pack_at(words, bitpos, value, width)
        assert np.array_equal(bitpack.unpack_at(words, bitpos, width), value)

    def test_full_stream_of_straddling_fields_with_tail_at_end(self):
        # 21-bit fields densely packed so the final field ends at bit 672
        # (= 21 words exactly): the last read clamps but stays correct
        width, n = 21, 32
        fields = (np.arange(n, dtype=np.uint64) * 77773) & ((1 << width) - 1)
        words = bitpack.pack_fields(fields, width)
        assert words.size * 32 == n * width  # ends flush with the stream
        out = bitpack.unpack_fields(words, n, width)
        assert np.array_equal(out, fields)

    def test_one_past_the_exact_end_raises(self):
        nwords, width = 4, 21
        words = np.zeros(nwords, dtype=np.uint32)
        bitpos = np.array([nwords * 32 - width + 1])
        with pytest.raises(ValueError):
            bitpack.unpack_at(words, bitpos, width)
        with pytest.raises(ValueError):
            bitpack.pack_at(words, bitpos, np.zeros(1, dtype=np.uint64), width)

    def test_far_past_end_raises_not_wraps(self):
        words = np.zeros(2, dtype=np.uint32)
        for pos in (10**6, 2**40):
            with pytest.raises(ValueError):
                bitpack.unpack_at(words, np.array([pos]), 8)
