"""Tests for flexible GMRES with a compressed preconditioned basis."""

import numpy as np
import pytest

from repro.gpu import GmresTimingModel
from repro.solvers import (
    CbGmres,
    FlexibleGmres,
    JacobiPreconditioner,
    make_problem,
)
from repro.sparse import COOMatrix


class TestBasics:
    def test_solves_to_target(self):
        p = make_problem("lung2", "smoke")
        res = FlexibleGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        assert res.converged
        assert res.final_rrn <= p.target_rrn * (1 + 1e-9)

    def test_storage_label(self):
        p = make_problem("lung2", "smoke")
        res = FlexibleGmres(p.a, "float16").solve(p.b, p.target_rrn)
        assert res.storage == "fgmres[float16]"

    def test_zero_rhs(self):
        p = make_problem("lung2", "smoke")
        res = FlexibleGmres(p.a).solve(np.zeros(p.a.n), 1e-8)
        assert res.converged and res.iterations == 0

    def test_nonsquare_rejected(self):
        a = COOMatrix((2, 3), [0], [0], [1.0]).to_csr()
        with pytest.raises(ValueError):
            FlexibleGmres(a)

    def test_invalid_restart(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError):
            FlexibleGmres(p.a, m=0)

    def test_wrong_rhs_shape(self):
        p = make_problem("lung2", "smoke")
        with pytest.raises(ValueError):
            FlexibleGmres(p.a).solve(np.ones(p.a.n + 1), 1e-8)

    def test_identity_z_storage_matches_cb_gmres_float64(self):
        p = make_problem("atmosmodd", "smoke")
        fg = FlexibleGmres(p.a, "float64").solve(p.b, p.target_rrn)
        cb = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        assert fg.iterations == cb.iterations

    def test_with_preconditioner(self):
        p = make_problem("StocF-1465", "smoke")
        res = FlexibleGmres(
            p.a, "frsz2_32", preconditioner=JacobiPreconditioner(p.a)
        ).solve(p.b, p.target_rrn)
        assert res.converged


class TestRef17TradeOff:
    """The paper's related-work characterization of Agullo et al. [17]:
    'This improves the numerical stability at the price of reduced
    runtime benefits.'"""

    def test_stability_on_frsz2_worst_case(self):
        """Compressing Z instead of V sidesteps the PR02R failure: the
        Arnoldi basis is exact, so FGMRES tracks float64 iterations."""
        p = make_problem("PR02R", "smoke")
        cb64 = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        cb_frsz2 = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        fg_frsz2 = FlexibleGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        assert fg_frsz2.converged
        assert fg_frsz2.iterations <= cb64.iterations * 1.3
        assert cb_frsz2.iterations > 2 * fg_frsz2.iterations

    def test_reduced_runtime_benefit(self):
        """...but the uncompressed V basis halves the traffic savings."""
        p = make_problem("atmosmodd", "default")
        model = GmresTimingModel()
        base_t = model.time_result(
            CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        ).total_seconds
        cb = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        fg = FlexibleGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        cb_speedup = base_t / model.time_stats(cb.stats, "frsz2_32").total_seconds
        fg_speedup = base_t / model.time_stats(fg.stats, "frsz2_32").total_seconds
        assert cb_speedup > fg_speedup

    def test_uncompressed_reads_accounted(self):
        p = make_problem("lung2", "smoke")
        fg = FlexibleGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        cb = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        assert fg.stats.uncompressed_basis_reads > 0
        assert cb.stats.uncompressed_basis_reads == 0
        # FGMRES reads the compressed basis only at solution updates,
        # so its compressed-read count stays far below CB-GMRES's
        # (which reads the whole basis every orthogonalization)
        assert fg.stats.basis_reads <= fg.iterations
        assert cb.stats.basis_reads > cb.iterations

    def test_restart_cycle_works(self):
        p = make_problem("atmosmodd", "smoke")
        res = FlexibleGmres(p.a, "frsz2_32", m=20).solve(p.b, p.target_rrn)
        assert res.converged
        assert res.stats.restarts >= 2
