"""Tests for the warp-level SIMT executor and its FRSZ2 kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FRSZ2
from repro.gpu.warp import (
    WARP_SIZE,
    Warp,
    measured_instruction_counts,
    warp_compress_block,
    warp_decompress_block,
)


class TestWarpPrimitives:
    def test_shfl_xor_butterfly(self):
        w = Warp()
        v = np.arange(32, dtype=np.int64)
        out = w.shfl_xor(v, 1)
        assert out[0] == 1 and out[1] == 0 and out[30] == 31 and out[31] == 30

    def test_shfl_broadcast(self):
        w = Warp()
        v = np.arange(32, dtype=np.int64)
        assert np.all(w.shfl(v, 7) == 7)

    def test_butterfly_reduction_computes_max(self):
        w = Warp()
        rng = np.random.default_rng(0)
        v = rng.integers(0, 1000, 32)
        m = v.copy()
        for mask in (16, 8, 4, 2, 1):
            m = w.maximum(m, w.shfl_xor(m, mask))
        assert np.all(m == v.max())
        assert w.counts["shuffle"] == 5

    def test_ballot(self):
        w = Warp()
        pred = np.zeros(32, dtype=bool)
        pred[0] = True
        pred[5] = True
        assert w.ballot(pred) == (1 | (1 << 5))

    def test_ballot_all(self):
        w = Warp()
        assert w.ballot(np.ones(32, dtype=bool)) == 0xFFFFFFFF

    def test_clz_counts_instructions(self):
        w = Warp()
        out = w.clz(np.full(32, 1, dtype=np.uint64), width=31)
        assert np.all(out == 30)
        assert w.counts["clz"] == 1

    def test_reinterpret_is_free(self):
        w = Warp()
        x = np.ones(32)
        bits = w.double_as_uint64(x)
        assert w.total_instructions == 0
        assert np.array_equal(w.uint64_as_double(bits), x)

    def test_reset(self):
        w = Warp()
        w.add(1, 2)
        w.reset()
        assert w.total_instructions == 0


class TestWarpKernelsMatchCodec:
    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_compress_bit_identical(self, l):
        rng = np.random.default_rng(l)
        x = rng.standard_normal(32) * 10.0 ** rng.integers(-8, 8, 32)
        codec = FRSZ2(l)
        comp = codec.compress(x)
        rep = warp_compress_block(x, l)
        assert rep.e_max == comp.exponents[0]
        assert np.array_equal(rep.output, codec._read_fields(comp, np.arange(32)))

    @pytest.mark.parametrize("l", [16, 21, 32])
    def test_decompress_bit_identical(self, l):
        rng = np.random.default_rng(l + 100)
        x = rng.standard_normal(32)
        codec = FRSZ2(l)
        comp = codec.compress(x)
        crep = warp_compress_block(x, l)
        drep = warp_decompress_block(crep.e_max, crep.output, l)
        assert np.array_equal(drep.output, codec.decompress(comp))

    def test_zeros_block(self):
        rep = warp_compress_block(np.zeros(32), 32)
        out = warp_decompress_block(rep.e_max, rep.output, 32)
        assert np.array_equal(out.output, np.zeros(32))

    def test_signed_values(self):
        x = np.array([(-1.0) ** i * (i + 1) / 32 for i in range(32)])
        rep = warp_compress_block(x, 32)
        out = warp_decompress_block(rep.e_max, rep.output, 32).output
        assert np.all(np.sign(out) == np.sign(x))

    def test_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            warp_compress_block(np.zeros(16), 32)
        with pytest.raises(ValueError):
            warp_decompress_block(1023, np.zeros(16, dtype=np.uint64), 32)

    def test_rejects_nonfinite(self):
        x = np.zeros(32)
        x[3] = np.inf
        with pytest.raises(ValueError):
            warp_compress_block(x, 32)

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
            min_size=32,
            max_size=32,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip_matches_codec(self, vals):
        x = np.array(vals)
        codec = FRSZ2(21)
        rep = warp_compress_block(x, 21)
        out = warp_decompress_block(rep.e_max, rep.output, 21).output
        assert np.array_equal(out, codec.roundtrip(x))


class TestInstructionBudget:
    def test_counts_fit_the_papers_budget(self):
        """Section I: ~46 spare operations per value at 32 stored bits.

        Both kernels must fit comfortably, or FRSZ2 could not hide
        behind the memory access."""
        comp, dec = measured_instruction_counts(32)
        assert dec <= 46
        assert comp <= 46

    def test_decompression_cheaper_than_compression(self):
        """Section IV-B: 'Decompression is an easier procedure'."""
        comp, dec = measured_instruction_counts(32)
        assert dec < comp

    def test_compress_uses_five_shuffles(self):
        rep = warp_compress_block(np.random.default_rng(1).standard_normal(32), 32)
        assert rep.counts["shuffle"] == 5

    def test_decompress_needs_no_shuffles(self):
        """Decompression requires no inter-thread communication, which is
        why it fits the Accessor interface (Section IV-C)."""
        crep = warp_compress_block(np.random.default_rng(2).standard_normal(32), 32)
        drep = warp_decompress_block(crep.e_max, crep.output, 32)
        assert drep.counts.get("shuffle", 0) == 0

    def test_decompress_uses_clz(self):
        crep = warp_compress_block(np.random.default_rng(3).standard_normal(32), 32)
        drep = warp_decompress_block(crep.e_max, crep.output, 32)
        assert drep.counts["clz"] == 1

    def test_counts_independent_of_data(self):
        """SIMT lockstep: no data-dependent branching in the kernels."""
        a = warp_compress_block(np.full(32, 0.5), 32)
        b = warp_compress_block(np.random.default_rng(4).standard_normal(32) * 1e8, 32)
        assert a.counts == b.counts
