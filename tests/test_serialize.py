"""Tests for the FRSZ2 binary container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FRSZ2
from repro.core.serialize import dump_bytes, dump_file, load_bytes, load_file


def compressed(l=32, bs=32, n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return FRSZ2(l, bs), FRSZ2(l, bs).compress(rng.standard_normal(n))


class TestRoundTrip:
    @pytest.mark.parametrize("l", [16, 21, 32, 64])
    def test_bytes_roundtrip(self, l):
        codec, comp = compressed(l=l, seed=l)
        out = load_bytes(dump_bytes(comp))
        assert out.layout == comp.layout
        assert np.array_equal(out.exponents, comp.exponents)
        assert np.array_equal(out.payload, comp.payload)
        assert np.array_equal(codec.decompress(out), codec.decompress(comp))

    def test_file_roundtrip(self, tmp_path):
        codec, comp = compressed(seed=1)
        path = tmp_path / "vec.frz2"
        dump_file(path, comp)
        out = load_file(path)
        assert np.array_equal(codec.decompress(out), codec.decompress(comp))

    def test_empty_array(self):
        codec = FRSZ2()
        comp = codec.compress(np.zeros(0))
        out = load_bytes(dump_bytes(comp))
        assert out.n == 0
        assert codec.decompress(out).size == 0

    def test_custom_block_size(self):
        codec, comp = compressed(l=21, bs=8, n=137, seed=2)
        out = load_bytes(dump_bytes(comp))
        assert out.layout.block_size == 8
        assert np.array_equal(codec.decompress(out), codec.decompress(comp))

    @given(
        st.integers(min_value=1, max_value=300),
        st.sampled_from([12, 16, 21, 32]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, n, l):
        rng = np.random.default_rng(n * 31 + l)
        x = rng.standard_normal(n)
        codec = FRSZ2(l)
        comp = codec.compress(x)
        out = load_bytes(dump_bytes(comp))
        assert np.array_equal(codec.decompress(out), codec.decompress(comp))


class TestValidation:
    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            load_bytes(b"FR")

    def test_bad_magic(self):
        _, comp = compressed()
        data = b"XXXX" + dump_bytes(comp)[4:]
        with pytest.raises(ValueError, match="magic"):
            load_bytes(data)

    def test_bad_version(self):
        import struct

        _, comp = compressed()
        data = bytearray(dump_bytes(comp))
        struct.pack_into("<H", data, 4, 999)
        with pytest.raises(ValueError, match="version"):
            load_bytes(bytes(data))

    def test_size_mismatch(self):
        _, comp = compressed()
        with pytest.raises(ValueError, match="size mismatch"):
            load_bytes(dump_bytes(comp) + b"\0")
        with pytest.raises(ValueError, match="size mismatch"):
            load_bytes(dump_bytes(comp)[:-1])

    def test_loaded_arrays_are_writable_copies(self):
        codec, comp = compressed()
        out = load_bytes(dump_bytes(comp))
        out.exponents[0] += 1  # must not raise (frombuffer is read-only)


class TestContainerV2:
    def test_default_version_is_2_with_crc_trailer(self):
        _, comp = compressed()
        v1 = dump_bytes(comp, version=1)
        v2 = dump_bytes(comp)
        assert len(v2) == len(v1) + 4  # 4-byte CRC32 trailer

    def test_both_versions_load_identically(self):
        codec, comp = compressed(l=21, bs=8, n=137, seed=5)
        for version in (1, 2):
            out = load_bytes(dump_bytes(comp, version=version))
            assert np.array_equal(codec.decompress(out), codec.decompress(comp))

    def test_v2_flags_payload_corruption_v1_cannot(self):
        _, comp = compressed(n=64)
        v1 = bytearray(dump_bytes(comp, version=1))
        v2 = bytearray(dump_bytes(comp, version=2))
        pos = len(v1) - 3  # inside the payload stream for both versions
        v1[pos] ^= 0x01
        v2[pos] ^= 0x01
        load_bytes(bytes(v1))  # v1 has no checksum: corruption slips through
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_bytes(bytes(v2))

    def test_v2_flags_crc_trailer_corruption(self):
        _, comp = compressed(n=64)
        data = bytearray(dump_bytes(comp, version=2))
        data[-1] ^= 0x80
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_bytes(bytes(data))

    def test_file_roundtrip_both_versions(self, tmp_path):
        codec, comp = compressed(seed=9)
        for version in (1, 2):
            path = tmp_path / f"vec_v{version}.frz2"
            dump_file(path, comp, version=version)
            out = load_file(path)
            assert np.array_equal(codec.decompress(out), codec.decompress(comp))
