"""Tests for matrix reordering (RCM, magnitude grouping, permutations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    COOMatrix,
    Permutation,
    build_matrix,
    magnitude_ordering,
    permute_system,
    reverse_cuthill_mckee,
)
from repro.sparse.generators import poisson_3d, stencil_2d


def bandwidth(a) -> int:
    coo = a.to_coo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.rows - coo.cols).max())


class TestPermutation:
    def test_identity(self):
        p = Permutation(np.arange(5))
        v = np.arange(5.0)
        assert np.array_equal(p.apply_vector(v), v)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        p = Permutation(rng.permutation(20))
        v = rng.standard_normal(20)
        assert np.array_equal(p.inverse.apply_vector(p.apply_vector(v)), v)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            Permutation(np.array([0, 5]))
        with pytest.raises(ValueError):
            Permutation(np.array([[0, 1]]))

    def test_apply_matrix_is_symmetric_permutation(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((6, 6))
        rows, cols = np.nonzero(dense)
        a = COOMatrix((6, 6), rows, cols, dense[rows, cols]).to_csr()
        perm = Permutation(rng.permutation(6))
        pa = perm.apply_matrix(a).to_dense()
        expected = dense[np.ix_(perm.perm, perm.perm)]
        assert np.allclose(pa, expected)

    def test_apply_matrix_shape_mismatch(self):
        a = COOMatrix((3, 3), [0], [0], [1.0]).to_csr()
        with pytest.raises(ValueError):
            Permutation(np.arange(4)).apply_matrix(a)

    def test_apply_vector_shape_mismatch(self):
        with pytest.raises(ValueError):
            Permutation(np.arange(3)).apply_vector(np.ones(4))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_inverse_property(self, n):
        rng = np.random.default_rng(n)
        p = Permutation(rng.permutation(n))
        assert np.array_equal(p.inverse.inverse.perm, p.perm)


class TestRCM:
    def test_reduces_bandwidth_of_shuffled_stencil(self):
        a = stencil_2d(12, 12, 4.0, -1.0)
        rng = np.random.default_rng(2)
        shuffled = Permutation(rng.permutation(a.n)).apply_matrix(a)
        rcm = reverse_cuthill_mckee(shuffled)
        reordered = rcm.apply_matrix(shuffled)
        assert bandwidth(reordered) < bandwidth(shuffled) / 3

    def test_is_a_valid_permutation(self):
        a = poisson_3d(5, 5, 5)
        p = reverse_cuthill_mckee(a)
        assert sorted(p.perm.tolist()) == list(range(a.n))

    def test_handles_disconnected_components(self):
        # two disjoint 2-cliques
        a = COOMatrix(
            (4, 4), [0, 1, 2, 3], [1, 0, 3, 2], [1.0, 1.0, 1.0, 1.0]
        ).to_csr()
        p = reverse_cuthill_mckee(a)
        assert sorted(p.perm.tolist()) == [0, 1, 2, 3]

    def test_handles_isolated_nodes(self):
        a = COOMatrix((3, 3), [0], [1], [1.0]).to_csr()
        p = reverse_cuthill_mckee(a)
        assert sorted(p.perm.tolist()) == [0, 1, 2]

    def test_rejects_nonsquare(self):
        a = COOMatrix((2, 3), [0], [0], [1.0]).to_csr()
        with pytest.raises(ValueError):
            reverse_cuthill_mckee(a)

    def test_deterministic(self):
        a = poisson_3d(4, 4, 4)
        assert np.array_equal(
            reverse_cuthill_mckee(a).perm, reverse_cuthill_mckee(a).perm
        )


class TestMagnitudeOrdering:
    def test_sorts_by_magnitude(self):
        scale = np.array([1e3, 1e-3, 1.0, 1e6])
        p = magnitude_ordering(scale)
        assert np.array_equal(np.abs(scale)[p.perm], sorted(np.abs(scale)))

    def test_zeros_first_and_stable(self):
        scale = np.array([2.0, 0.0, 2.0, 0.0])
        p = magnitude_ordering(scale)
        assert p.perm.tolist() == [1, 3, 0, 2]

    def test_groups_exponents_into_blocks(self):
        """The point of the ordering: blocks stop mixing exponents."""
        from repro.solvers import exponent_spread_features

        rng = np.random.default_rng(3)
        v = rng.standard_normal(32 * 64)
        v[rng.random(v.size) < 1 / 16] *= 1e12  # scattered spikes
        before = exponent_spread_features(v).frsz2_kill_fraction
        after = exponent_spread_features(
            magnitude_ordering(v).apply_vector(v)
        ).frsz2_kill_fraction
        assert before > 0.5
        assert after < 0.1

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            magnitude_ordering(np.ones((2, 2)))


class TestPermuteSystem:
    def test_solution_recoverable(self):
        from repro.solvers import CbGmres, make_problem

        p = make_problem("lung2", "smoke")
        perm = magnitude_ordering(p.b)
        a2, b2 = permute_system(p.a, p.b, perm)
        res = CbGmres(a2).solve(b2, p.target_rrn)
        assert res.converged
        x = np.empty_like(res.x)
        x[perm.perm] = res.x
        rrn = np.linalg.norm(p.b - p.a.matvec(x)) / np.linalg.norm(p.b)
        assert rrn <= p.target_rrn * (1 + 1e-9)

    def test_spectrum_preserved(self):
        a = poisson_3d(3, 3, 3, shift=0.1)
        perm = Permutation(np.random.default_rng(4).permutation(a.n))
        a2, _ = permute_system(a, np.ones(a.n), perm)
        e1 = np.sort(np.linalg.eigvalsh(a.to_dense()))
        e2 = np.sort(np.linalg.eigvalsh(a2.to_dense()))
        assert np.allclose(e1, e2)


class TestReorderingRescuesFrsz2:
    def test_magnitude_ordering_rescues_pr02r(self):
        """The actionable consequence of the paper's Section VI-A
        PR02R-vs-HV15R analysis: grouping unknowns by magnitude turns
        FRSZ2's worst case into a near-normal one."""
        from repro.solvers import CbGmres, make_problem

        p = make_problem("PR02R", "smoke")
        base = CbGmres(p.a, "frsz2_32").solve(p.b, p.target_rrn)
        perm = magnitude_ordering(np.abs(p.b))
        a2, b2 = permute_system(p.a, p.b, perm)
        reordered = CbGmres(a2, "frsz2_32").solve(b2, p.target_rrn)
        ref = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
        assert base.converged and reordered.converged
        assert reordered.iterations < base.iterations / 1.5
        # not fully normalized (later Krylov vectors reshuffle magnitudes)
        # but far closer to the float64 baseline than before
        assert reordered.iterations < 6 * ref.iterations
