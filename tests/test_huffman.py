"""Tests for the canonical Huffman coder used by the SZ-like compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import huffman


class TestBuildCode:
    def test_single_symbol_gets_one_bit(self):
        code = huffman.build_code(np.array([5, 5, 5]))
        assert code.symbols.tolist() == [5]
        assert code.lengths.tolist() == [1]

    def test_two_symbols(self):
        code = huffman.build_code(np.array([1, 2, 2, 2]))
        assert sorted(code.lengths.tolist()) == [1, 1]

    def test_skewed_distribution_shorter_codes_for_frequent(self):
        stream = np.array([0] * 100 + [1] * 10 + [2] * 1)
        code = huffman.build_code(stream)
        lut = {int(s): int(l) for s, l in zip(code.symbols, code.lengths)}
        assert lut[0] <= lut[1] <= lut[2]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(-50, 50, 5000)
        code = huffman.build_code(stream)
        kraft = np.sum(2.0 ** (-code.lengths.astype(float)))
        assert kraft <= 1.0 + 1e-12

    def test_canonical_codes_are_prefix_free(self):
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 30, 1000)
        code = huffman.build_code(stream)
        entries = [
            (format(int(c), f"0{int(l)}b"))
            for c, l in zip(code.codes, code.lengths)
        ]
        for i, a in enumerate(entries):
            for j, b in enumerate(entries):
                if i != j:
                    assert not b.startswith(a)

    def test_empty_stream(self):
        code = huffman.build_code(np.zeros(0, dtype=np.int64))
        assert code.symbols.size == 0


class TestEncodeDecode:
    def test_roundtrip_small(self):
        stream = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5], dtype=np.int64)
        code, bits, nbits = huffman.encode(stream)
        out = huffman.decode(code, bits, stream.size)
        assert np.array_equal(out, stream)

    def test_roundtrip_negative_symbols(self):
        stream = np.array([-7, -7, 0, 3, -7, 3, 0, 0], dtype=np.int64)
        code, bits, _ = huffman.encode(stream)
        assert np.array_equal(huffman.decode(code, bits, stream.size), stream)

    def test_roundtrip_single_distinct_symbol(self):
        stream = np.full(17, -123, dtype=np.int64)
        code, bits, nbits = huffman.encode(stream)
        assert nbits == 17  # one bit each
        assert np.array_equal(huffman.decode(code, bits, 17), stream)

    def test_empty_stream(self):
        code, bits, nbits = huffman.encode(np.zeros(0, dtype=np.int64))
        assert bits == b"" and nbits == 0
        assert huffman.decode(code, bits, 0).size == 0

    def test_compression_beats_raw_on_skewed_data(self):
        rng = np.random.default_rng(2)
        stream = rng.geometric(0.5, 20_000) - 1
        code, bits, nbits = huffman.encode(stream)
        # entropy ~2 bits/symbol; raw int64 would be 64
        assert nbits < 3 * stream.size

    def test_encoded_nbytes_matches_encode(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(-10, 10, 1000)
        code, bits, nbits = huffman.encode(stream)
        est = huffman.encoded_nbytes(code, stream)
        assert est == (nbits + 7) // 8 + code.table_nbytes

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, vals):
        stream = np.array(vals, dtype=np.int64)
        code, bits, _ = huffman.encode(stream)
        assert np.array_equal(huffman.decode(code, bits, stream.size), stream)

    @given(st.lists(st.integers(min_value=-5, max_value=5), min_size=2, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_near_entropy_optimality(self, vals):
        """Huffman length is within 1 bit/symbol of the entropy bound."""
        stream = np.array(vals, dtype=np.int64)
        _, counts = np.unique(stream, return_counts=True)
        p = counts / counts.sum()
        entropy = float(-(p * np.log2(p)).sum())
        code, _, nbits = huffman.encode(stream)
        assert nbits >= entropy * stream.size - 1e-6
        assert nbits <= (entropy + 1) * stream.size + 1e-6


class TestReverseBits:
    def test_reverse_known(self):
        out = huffman._reverse_bits(
            np.array([0b110], dtype=np.uint64), np.array([3], dtype=np.int64)
        )
        assert out[0] == 0b011

    def test_reverse_is_involution(self):
        rng = np.random.default_rng(4)
        lens = rng.integers(1, 33, 100)
        vals = np.array(
            [rng.integers(0, 1 << int(l)) for l in lens], dtype=np.uint64
        )
        once = huffman._reverse_bits(vals, lens)
        twice = huffman._reverse_bits(once, lens)
        assert np.array_equal(twice, vals)
