"""Cross-cutting property-based tests over the whole stack.

These encode the *laws* the library's pieces must satisfy jointly:
compressor contracts, accessor semantics, solver invariants — beyond the
per-module tests.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.accessor import make_accessor
from repro.compressors import ErrorBoundMode, list_compressors, make_compressor
from repro.core import FRSZ2
from repro.solvers import CbGmres, GivensLeastSquares
from repro.sparse import COOMatrix

finite_vec = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=False),
    min_size=1,
    max_size=150,
)

krylov_vec = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_subnormal=False),
    min_size=1,
    max_size=150,
)


class TestCompressorContracts:
    """Laws every registered compressor must obey on any finite input."""

    @pytest.mark.parametrize("name", list_compressors())
    @given(vals=krylov_vec)
    @settings(max_examples=15, deadline=None)
    def test_shape_and_finiteness(self, name, vals):
        x = np.array(vals)
        comp = make_compressor(name)
        y = comp.roundtrip(x)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("name", ["sz3_06", "zfp_06", "cuszp_06"])
    @given(vals=finite_vec)
    @settings(max_examples=25, deadline=None)
    def test_absolute_bound_law(self, name, vals):
        x = np.array(vals)
        comp = make_compressor(name)
        y = comp.roundtrip(x)
        bound = float(comp.error_bound if hasattr(comp, "error_bound") else comp.tolerance)
        assert np.abs(y - x).max() <= bound * (1 + 1e-9)

    @pytest.mark.parametrize("name", ["frsz2_16", "frsz2_32", "zfp_fr_16", "zfp_fr_32"])
    @given(vals=krylov_vec)
    @settings(max_examples=15, deadline=None)
    def test_fixed_rate_size_independent_of_values(self, name, vals):
        """A fixed-rate compressor's size depends only on n."""
        x = np.array(vals)
        comp = make_compressor(name)
        s1 = comp.compress(x).nbytes
        s2 = comp.compress(np.zeros_like(x)).nbytes
        assert s1 == s2

    # zfp_* is deliberately excluded: its floor-truncation in the
    # transform domain drifts by one grid step per round trip — the
    # reconstruction bias the paper blames for ZFP's slow convergence
    # (covered by tests/test_zfplike.py::TestBias)
    @pytest.mark.parametrize("name", ["sz3_06", "sz_pwrel_04", "cuszp_06", "frsz2_32"])
    @given(vals=krylov_vec)
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_idempotent(self, name, vals):
        """Lattice/fixed-point reconstructions are round-trip fixed points."""
        x = np.array(vals)
        comp = make_compressor(name)
        once = comp.roundtrip(x)
        twice = comp.roundtrip(once)
        assert np.array_equal(once, twice)


class TestAccessorLaws:
    @pytest.mark.parametrize(
        "name", ["float64", "float32", "float16", "frsz2_16", "frsz2_32", "zfp_fr_32"]
    )
    @given(vals=krylov_vec)
    @settings(max_examples=10, deadline=None)
    def test_read_is_stable(self, name, vals):
        """Reads never change the stored value (decompression is pure)."""
        x = np.array(vals)
        acc = make_accessor(name, x.size)
        acc.write(x)
        first = acc.read()
        for _ in range(3):
            assert np.array_equal(acc.read(), first)

    @pytest.mark.parametrize("name", ["float32", "frsz2_32"])
    @given(vals=krylov_vec)
    @settings(max_examples=10, deadline=None)
    def test_write_read_write_fixed_point(self, name, vals):
        """Writing back a read value reproduces it exactly."""
        x = np.array(vals)
        acc = make_accessor(name, x.size)
        acc.write(x)
        y = acc.read()
        acc.write(y)
        assert np.array_equal(acc.read(), y)


class TestFrsz2AlgebraicLaws:
    @given(vals=krylov_vec, scale_exp=st.integers(min_value=-30, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_scaling_by_powers_of_two_commutes(self, vals, scale_exp):
        """FRSZ2 is exponent-based: scaling input by 2^k scales output
        by 2^k exactly (no requantization), as long as nothing over- or
        underflows."""
        x = np.array(vals)
        # stay far from the subnormal underflow region, where the codec
        # flushes to zero and scaling no longer commutes
        assume(np.all((x == 0) | (np.abs(x) > 1e-200)))
        codec = FRSZ2(21, block_size=8)
        base = codec.roundtrip(x)
        scaled = codec.roundtrip(x * 2.0**scale_exp)
        assert np.array_equal(scaled, base * 2.0**scale_exp)

    @given(vals=krylov_vec)
    @settings(max_examples=60, deadline=None)
    def test_negation_symmetry(self, vals):
        """compress(-x) == -compress(x): the sign bit is independent."""
        x = np.array(vals)
        codec = FRSZ2(32)
        a = codec.roundtrip(x)
        b = codec.roundtrip(-x)
        assert np.array_equal(b, -a)

    @given(vals=krylov_vec, l1=st.sampled_from([12, 16, 21]), extra=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_refinement(self, vals, l1, extra):
        """More bits never increase any single value's error."""
        x = np.array(vals)
        lo = FRSZ2(l1).roundtrip(x)
        hi = FRSZ2(l1 + extra).roundtrip(x)
        assert np.all(np.abs(hi - x) <= np.abs(lo - x) + 0.0)


class TestSolverInvariants:
    def _system(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = np.eye(n) * (3 + rng.random(n)) + rng.standard_normal((n, n)) * 0.15
        rows, cols = np.nonzero(dense)
        a = COOMatrix((n, n), rows, cols, dense[rows, cols]).to_csr()
        return a, rng.standard_normal(n)

    @given(n=st.integers(min_value=3, max_value=40), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_implicit_residual_monotone_within_cycle(self, n, seed):
        a, b = self._system(n, seed)
        res = CbGmres(a, m=n).solve(b, 1e-13)
        rrns = [s.rrn for s in res.history if s.kind == "implicit"]
        assert all(x >= y - 1e-12 for x, y in zip(rrns, rrns[1:]))

    @given(n=st.integers(min_value=3, max_value=30), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_converged_solution_satisfies_target(self, n, seed):
        a, b = self._system(n, seed)
        target = 1e-10
        res = CbGmres(a, m=n).solve(b, target)
        assume(res.converged)
        rrn = np.linalg.norm(b - a.matvec(res.x)) / np.linalg.norm(b)
        assert rrn <= target * (1 + 1e-9)

    @given(n=st.integers(min_value=2, max_value=25), seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_solution_in_krylov_space_for_full_cycle(self, n, seed):
        """Unrestarted GMRES at m=n solves exactly (happy breakdown)."""
        a, b = self._system(n, seed)
        res = CbGmres(a, m=n, max_iter=n).solve(b, 1e-12)
        assert res.final_rrn < 1e-8

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_givens_residual_equals_true_lstsq_residual(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 9))
        beta = float(rng.random() + 0.1)
        lsq = GivensLeastSquares(m, beta)
        h_full = np.zeros((m + 1, m))
        for j in range(m):
            h = rng.standard_normal(j + 1)
            hn = float(np.abs(rng.standard_normal()) + 0.1)
            h_full[: j + 1, j] = h
            h_full[j + 1, j] = hn
            lsq.append_column(h, hn)
        rhs = np.zeros(m + 1)
        rhs[0] = beta
        y = lsq.solve()
        assert lsq.residual_norm == pytest.approx(
            float(np.linalg.norm(rhs - h_full @ y)), abs=1e-9
        )


class TestWideStraddleBitpack:
    """Property coverage for the >32-bit hi-chunk path of pack_at /
    unpack_at (widths 33..63 decompose into two 32-bit chunks, each of
    which can itself straddle a word boundary)."""

    @staticmethod
    def _layout(draw_gaps, width, values):
        """Bit positions packing ``values`` with per-field gaps."""
        positions = []
        pos = 0
        for gap in draw_gaps:
            pos += gap
            positions.append(pos)
            pos += width
        return np.array(positions, dtype=np.int64), pos

    @given(
        width=st.integers(min_value=33, max_value=63),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_wide_widths_at_arbitrary_offsets(self, width, data):
        from repro.core import bitpack

        n = data.draw(st.integers(min_value=1, max_value=24), label="n")
        gaps = data.draw(
            st.lists(st.integers(min_value=0, max_value=37), min_size=n, max_size=n),
            label="gaps",
        )
        fields = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=(1 << width) - 1),
                    min_size=n,
                    max_size=n,
                ),
                label="fields",
            ),
            dtype=np.uint64,
        )
        bitpos, total_bits = self._layout(gaps, width, fields)
        words = np.zeros(bitpack.words_needed(total_bits), dtype=np.uint32)
        bitpack.pack_at(words, bitpos, fields, width)
        assert np.array_equal(bitpack.unpack_at(words, bitpos, width), fields)

    @given(width=st.integers(min_value=33, max_value=63))
    @settings(max_examples=31, deadline=None)
    def test_all_ones_field_ending_flush_with_stream(self, width):
        """The worst case for the clamped straddle read: a saturated
        hi-chunk whose second word is the very last of the stream."""
        from repro.core import bitpack

        nwords = bitpack.words_needed(width + 13)
        bitpos = np.array([nwords * 32 - width], dtype=np.int64)
        fields = np.array([(1 << width) - 1], dtype=np.uint64)
        words = np.zeros(nwords, dtype=np.uint32)
        bitpack.pack_at(words, bitpos, fields, width)
        assert np.array_equal(bitpack.unpack_at(words, bitpos, width), fields)


class TestFrsz2RandomAccessLaw:
    """``FRSZ2.get`` on any index subset must agree exactly with the
    corresponding slice of a full ``decompress`` — the random-access-by-
    block property CB-GMRES relies on (paper Section IV-B)."""

    @given(
        l=st.sampled_from([16, 21, 32, 33, 48]),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_get_matches_decompress_on_random_subsets(self, l, data):
        n = data.draw(st.integers(min_value=1, max_value=200), label="n")
        vals = data.draw(
            st.lists(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
            label="vals",
        )
        k = data.draw(st.integers(min_value=1, max_value=n), label="k")
        idx = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=k,
                    max_size=k,
                ),
                label="idx",
            ),
            dtype=np.int64,
        )
        codec = FRSZ2(bit_length=l)
        comp = codec.compress(np.array(vals))
        full = codec.decompress(comp)
        got = codec.get(comp, idx)
        # bit-exact, including signed zeros
        assert np.array_equal(
            got.view(np.uint64), full[idx].view(np.uint64)
        )
