"""Tests for the repro.observe tracing layer and the perf bench on top.

Covers the tracer substrate (nested spans, counters, aggregation), the
instrumented hot paths (solver, basis, accessors, codec, SpMV), the
zero-overhead/bit-identical guarantee of the default null tracer, and
the ``python -m repro bench`` document lifecycle (run, validate,
persist, compare).
"""

import numpy as np
import pytest

from repro.bench.perf import (
    BENCH_PHASES,
    BENCH_SCHEMA_VERSION,
    compare_bench,
    load_bench,
    run_bench,
    run_bench_entry,
    validate_bench,
    write_bench,
)
from repro.core import FRSZ2
from repro.observe import NULL_TRACER, NullTracer, Tracer
from repro.solvers import CbGmres, make_problem
from repro.sparse.generators import stencil_2d


class TestTracerSubstrate:
    def test_nested_spans_record_paths_and_depths(self):
        clock = iter(range(100)).__next__
        t = Tracer(clock=lambda: float(clock()))
        with t.span("restart"):
            with t.span("arnoldi", j=1):
                with t.span("spmv"):
                    pass
        names = [(s.name, s.path, s.depth) for s in t.spans]
        assert names == [
            ("spmv", "restart/arnoldi/spmv", 2),
            ("arnoldi", "restart/arnoldi", 1),
            ("restart", "restart", 0),
        ]
        assert t.spans[1].attrs == {"j": 1}

    def test_exclusive_time_subtracts_direct_children(self):
        ticks = iter([0.0, 1.0, 2.0, 10.0])  # open A, open B, close B, close A
        t = Tracer(clock=ticks.__next__)
        with t.span("outer"):
            with t.span("inner"):
                pass
        agg = t.by_name()
        assert agg["inner"].seconds == pytest.approx(1.0)
        assert agg["outer"].seconds == pytest.approx(10.0)
        assert agg["outer"].exclusive_seconds == pytest.approx(9.0)

    def test_total_seconds_under_isolates_ancestry(self):
        ticks = iter([float(i) for i in range(20)])
        t = Tracer(clock=ticks.__next__)
        with t.span("orthogonalize"):
            with t.span("basis_read"):
                pass
        with t.span("update"):
            with t.span("basis_read"):
                pass
        assert t.total_seconds("basis_read") == pytest.approx(2.0)
        assert t.total_seconds("basis_read", under="orthogonalize") == pytest.approx(1.0)
        assert t.total_seconds("basis_read", under="update") == pytest.approx(1.0)
        assert t.total_seconds("basis_read", under="spmv") == 0.0

    def test_counters_accumulate(self):
        t = Tracer()
        t.count("a")
        t.count("a", 4)
        t.count("b", 2.5)
        assert t.counters == {"a": 5, "b": 2.5}

    def test_reset_clears_state(self):
        t = Tracer()
        with t.span("x"):
            t.count("c")
        t.reset()
        assert t.spans == [] and t.counters == {}

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in t.spans] == ["boom"]
        assert t.spans[0].end >= t.spans[0].start

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        assert nt.enabled is False
        with nt.span("anything", attr=1):
            nt.count("ignored", 7)
        assert nt.spans == [] and nt.counters == {}
        assert nt.total_seconds("anything") == 0.0
        assert nt.by_name() == {}
        assert NULL_TRACER.enabled is False


def _small_problem():
    a = stencil_2d(12, 12, 4.0, -1.0)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.shape[0])
    return a, b


class TestInstrumentedSolve:
    def test_solver_emits_expected_span_names(self):
        a, b = _small_problem()
        t = Tracer()
        a.tracer = t
        res = CbGmres(a, "frsz2_32", m=20, max_iter=200, tracer=t).solve(b, 1e-8)
        assert res.converged
        agg = t.by_name()
        for name in (
            "restart", "arnoldi", "spmv", "orthogonalize",
            "basis_read", "basis_write", "update", "csr.matvec",
        ):
            assert name in agg, f"missing span {name}"
        # one spmv per matvec: restarts + iterations + final verification
        assert agg["spmv"].count == res.stats.spmv_calls
        assert agg["arnoldi"].count == res.iterations
        assert agg["basis_write"].count == res.stats.basis_writes

    def test_counters_cover_every_layer(self):
        a, b = _small_problem()
        t = Tracer()
        a.tracer = t
        res = CbGmres(a, "frsz2_32", m=20, max_iter=200, tracer=t).solve(b, 1e-8)
        c = t.counters
        assert c["spmv.calls"] == res.stats.spmv_calls
        assert c["frsz2.compress.calls"] == res.stats.basis_writes
        assert c["accessor.writes"] == res.stats.basis_writes
        assert c["frsz2.compress.values"] == res.stats.basis_writes * a.shape[0]
        assert c["basis.vector_reads"] > 0
        assert c["basis.bytes_read"] > 0

    def test_null_tracer_results_bit_identical(self):
        a1, b = _small_problem()
        a2, _ = _small_problem()
        plain = CbGmres(a1, "frsz2_32", m=20, max_iter=200).solve(b, 1e-10)
        t = Tracer()
        a2.tracer = t
        traced = CbGmres(a2, "frsz2_32", m=20, max_iter=200, tracer=t).solve(b, 1e-10)
        assert np.array_equal(
            plain.x.view(np.uint64), traced.x.view(np.uint64)
        )
        assert plain.iterations == traced.iterations
        assert plain.final_rrn == traced.final_rrn

    def test_basis_read_nested_under_orthogonalize_and_update(self):
        a, b = _small_problem()
        t = Tracer()
        CbGmres(a, "float64", m=20, max_iter=200, tracer=t).solve(b, 1e-8)
        assert t.total_seconds("basis_read", under="orthogonalize") > 0.0
        assert t.total_seconds("basis_read", under="update") > 0.0
        paths = {s.path for s in t.spans if s.name == "basis_read"}
        assert all("orthogonalize" in p or "update" in p for p in paths)


class TestCodecCounters:
    def test_frsz2_get_counts_blocks_touched(self):
        codec = FRSZ2(bit_length=32, block_size=32)
        t = Tracer()
        codec.tracer = t
        comp = codec.compress(np.linspace(-1, 1, 128))  # 4 blocks
        codec.get(comp, np.array([0, 1, 33, 97]))  # blocks 0, 1, 3
        assert t.counters["frsz2.compress.calls"] == 1
        assert t.counters["frsz2.compress.blocks"] == 4
        assert t.counters["frsz2.get.calls"] == 1
        assert t.counters["frsz2.get.values"] == 4
        assert t.counters["frsz2.get.blocks"] == 3

    def test_decompress_counts_bytes(self):
        codec = FRSZ2(bit_length=21)
        t = Tracer()
        codec.tracer = t
        comp = codec.compress(np.ones(100))
        codec.decompress(comp)
        assert t.counters["frsz2.decompress.bytes"] == comp.nbytes
        assert t.counters["frsz2.decompress.values"] == 100


BENCH_KW = dict(
    matrices=["lung2"],
    storages=["float64", "float32", "frsz2_32"],
    scale="smoke",
    m=30,
    max_iter=500,
)


@pytest.fixture(scope="module")
def bench_doc():
    return run_bench(**BENCH_KW)


class TestBenchDocument:
    def test_schema_valid_and_versioned(self, bench_doc):
        validate_bench(bench_doc)  # raises on violation
        assert bench_doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert len(bench_doc["entries"]) == 3

    def test_per_phase_attribution_present_for_required_storages(self, bench_doc):
        seen = {e["storage"] for e in bench_doc["entries"]}
        assert {"float64", "float32", "frsz2_32"} <= seen
        for entry in bench_doc["entries"]:
            assert set(entry["phases"]) == set(BENCH_PHASES)
            modeled = sum(
                p["modeled_seconds"] for p in entry["phases"].values()
            )
            assert modeled == pytest.approx(entry["modeled_seconds"])
            assert entry["phases"]["spmv"]["modeled_seconds"] > 0
            assert entry["phases"]["basis_read"]["modeled_seconds"] > 0
            wall = sum(p["wall_seconds"] for p in entry["phases"].values())
            assert wall <= entry["wall_seconds"] * 1.001

    def test_frsz2_entry_carries_codec_counters(self, bench_doc):
        entry = next(
            e for e in bench_doc["entries"] if e["storage"] == "frsz2_32"
        )
        assert entry["counters"]["frsz2.compress.calls"] > 0
        assert entry["bits_per_value"] == pytest.approx(33.0, abs=1.5)

    def test_write_load_roundtrip(self, bench_doc, tmp_path):
        path = tmp_path / "bench.json"
        write_bench(bench_doc, str(path))
        assert load_bench(str(path)) == __import__("json").load(open(path))

    def test_validator_rejects_mutations(self, bench_doc):
        import copy

        bad = copy.deepcopy(bench_doc)
        bad["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench(bad)
        bad = copy.deepcopy(bench_doc)
        del bad["entries"][0]["phases"]["spmv"]
        with pytest.raises(ValueError, match="phases"):
            validate_bench(bad)
        bad = copy.deepcopy(bench_doc)
        bad["entries"][0]["final_rrn"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            validate_bench(bad)
        bad = copy.deepcopy(bench_doc)
        del bad["entries"][0]["iterations"]
        with pytest.raises(ValueError, match="iterations"):
            validate_bench(bad)

    def test_deterministic_metrics_reproducible(self, bench_doc):
        again = run_bench(**BENCH_KW)
        for a, b in zip(bench_doc["entries"], again["entries"]):
            assert a["iterations"] == b["iterations"]
            assert a["modeled_seconds"] == b["modeled_seconds"]
            assert a["final_rrn"] == b["final_rrn"]


class TestBenchCompare:
    def test_identical_documents_clean(self, bench_doc):
        assert compare_bench(bench_doc, bench_doc) == []

    def test_injected_iteration_regression_flagged(self, bench_doc):
        import copy

        worse = copy.deepcopy(bench_doc)
        worse["entries"][0]["iterations"] *= 2
        regs = compare_bench(bench_doc, worse, tolerance=0.05)
        assert any(r.metric == "iterations" for r in regs)

    def test_injected_modeled_time_regression_flagged(self, bench_doc):
        import copy

        worse = copy.deepcopy(bench_doc)
        worse["entries"][-1]["modeled_seconds"] *= 1.5
        regs = compare_bench(bench_doc, worse)
        assert [r.metric for r in regs] == ["modeled_seconds"]

    def test_lost_convergence_flagged(self, bench_doc):
        import copy

        worse = copy.deepcopy(bench_doc)
        worse["entries"][0]["converged"] = False
        regs = compare_bench(bench_doc, worse)
        assert any(r.metric == "converged" for r in regs)

    def test_missing_entry_flagged(self, bench_doc):
        import copy

        worse = copy.deepcopy(bench_doc)
        worse["entries"] = worse["entries"][1:]
        regs = compare_bench(bench_doc, worse)
        assert any("coverage" in r.metric for r in regs)

    def test_improvement_is_not_a_regression(self, bench_doc):
        import copy

        better = copy.deepcopy(bench_doc)
        for e in better["entries"]:
            e["iterations"] = max(e["iterations"] - 5, 1)
            e["modeled_seconds"] *= 0.5
        assert compare_bench(bench_doc, better) == []

    def test_tolerance_absorbs_small_drift(self, bench_doc):
        import copy

        drift = copy.deepcopy(bench_doc)
        for e in drift["entries"]:
            e["modeled_seconds"] *= 1.03
        assert compare_bench(bench_doc, drift, tolerance=0.05) == []
        assert compare_bench(bench_doc, drift, tolerance=0.01) != []


class TestBenchEntry:
    def test_single_entry_smoke(self):
        entry = run_bench_entry("lung2", "frsz2_32", "smoke", m=20, max_iter=300)
        assert entry["matrix"] == "lung2"
        assert entry["converged"]
        assert entry["wall_seconds"] > 0
        assert entry["counters"]["spmv.calls"] > 0
