"""Tests for the Accessor interface (storage/arithmetic decoupling)."""

import numpy as np
import pytest

from repro.accessor import (
    Float16Accessor,
    Float32Accessor,
    Float64Accessor,
    Frsz2Accessor,
    RoundTripAccessor,
    accessor_factory,
    list_storage_formats,
    make_accessor,
)
from repro.compressors import make_compressor


def krylov_vector(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


class TestFloat64Accessor:
    def test_lossless_roundtrip(self):
        x = krylov_vector()
        acc = Float64Accessor(x.size)
        acc.write(x)
        assert np.array_equal(acc.read(), x)

    def test_read_returns_copy(self):
        x = krylov_vector()
        acc = Float64Accessor(x.size)
        acc.write(x)
        out = acc.read()
        out[0] = 99.0
        assert acc.read()[0] != 99.0

    def test_bits_per_value(self):
        acc = Float64Accessor(100)
        assert acc.bits_per_value == 64.0

    def test_wrong_shape_raises(self):
        acc = Float64Accessor(10)
        with pytest.raises(ValueError):
            acc.write(np.ones(11))

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            Float64Accessor(-1)


class TestFloat32Accessor:
    def test_quantizes_to_single(self):
        x = krylov_vector()
        acc = Float32Accessor(x.size)
        acc.write(x)
        assert np.array_equal(acc.read(), x.astype(np.float32).astype(np.float64))

    def test_bits_per_value(self):
        assert Float32Accessor(10).bits_per_value == 32.0

    def test_overflow_raises(self):
        acc = Float32Accessor(1)
        with pytest.raises(OverflowError):
            acc.write(np.array([1e200]))


class TestFloat16Accessor:
    def test_quantizes_to_half(self):
        x = krylov_vector()
        acc = Float16Accessor(x.size)
        acc.write(x)
        assert np.array_equal(acc.read(), x.astype(np.float16).astype(np.float64))

    def test_saturates_instead_of_overflowing(self):
        acc = Float16Accessor(2)
        acc.write(np.array([1e10, -1e10]))
        out = acc.read()
        limit = float(np.finfo(np.float16).max)
        assert out[0] == limit and out[1] == -limit

    def test_bits_per_value(self):
        assert Float16Accessor(10).bits_per_value == 16.0


class TestFrsz2Accessor:
    def test_roundtrip_matches_codec(self):
        from repro.core import FRSZ2

        x = krylov_vector()
        acc = Frsz2Accessor(x.size, bit_length=32)
        acc.write(x)
        assert np.array_equal(acc.read(), FRSZ2(32).roundtrip(x))

    def test_name_follows_paper_labels(self):
        assert Frsz2Accessor(10, bit_length=21).name == "frsz2_21"

    def test_bits_per_value_is_33_for_l32(self):
        acc = Frsz2Accessor(32 * 10, bit_length=32)
        assert acc.bits_per_value == pytest.approx(33.0)

    def test_read_before_write_returns_zeros(self):
        acc = Frsz2Accessor(10)
        assert np.array_equal(acc.read(), np.zeros(10))

    def test_read_block(self):
        x = krylov_vector(100, seed=1)
        acc = Frsz2Accessor(100)
        acc.write(x)
        full = acc.read()
        assert np.array_equal(acc.read_block(1), full[32:64])

    def test_read_block_before_write_raises(self):
        with pytest.raises(RuntimeError):
            Frsz2Accessor(10).read_block(0)

    def test_ablation_kwargs(self):
        acc = Frsz2Accessor(64, bit_length=16, block_size=8, rounding=True)
        assert acc.codec.block_size == 8 and acc.codec.rounding


class TestRoundTripAccessor:
    def test_injects_compressor_error(self):
        x = krylov_vector()
        comp = make_compressor("sz3_06")
        acc = RoundTripAccessor(x.size, comp, "sz3_06")
        acc.write(x)
        out = acc.read()
        assert not np.array_equal(out, x)  # lossy
        assert np.abs(out - x).max() <= 1e-6 * (1 + 1e-9)

    def test_stored_nbytes_is_compressed_size(self):
        x = krylov_vector()
        comp = make_compressor("zfp_fr_16")
        acc = RoundTripAccessor(x.size, comp, "zfp_fr_16")
        acc.write(x)
        assert acc.bits_per_value == pytest.approx(16.0, abs=0.6)

    def test_reads_are_stable(self):
        x = krylov_vector()
        acc = RoundTripAccessor(x.size, make_compressor("sz3_07"), "sz3_07")
        acc.write(x)
        assert np.array_equal(acc.read(), acc.read())


class TestTrafficAccounting:
    def test_write_and_read_counted(self):
        x = krylov_vector(320)
        acc = Frsz2Accessor(320, bit_length=32)
        acc.write(x)
        acc.read()
        acc.read()
        expected = acc.stored_nbytes()
        assert acc.traffic.bytes_written == expected
        assert acc.traffic.bytes_read == 2 * expected
        assert acc.traffic.writes == 1 and acc.traffic.reads == 2

    def test_traffic_reflects_storage_format(self):
        x = krylov_vector(1000)
        a64 = Float64Accessor(1000)
        a16 = Float16Accessor(1000)
        a64.write(x)
        a16.write(x)
        assert a64.traffic.bytes_written == 4 * a16.traffic.bytes_written

    def test_reset_and_merge(self):
        acc = Float64Accessor(10)
        acc.write(np.zeros(10))
        other = Float64Accessor(10)
        other.write(np.zeros(10))
        other.traffic.merge(acc.traffic)
        assert other.traffic.bytes_written == 160
        acc.traffic.reset()
        assert acc.traffic.bytes_written == 0


class TestRegistry:
    def test_list_contains_all_families(self):
        names = list_storage_formats()
        for required in ("float64", "float32", "float16", "frsz2_32", "sz3_08", "zfp_fr_32"):
            assert required in names

    @pytest.mark.parametrize("name", ["float64", "float32", "float16", "frsz2_16", "frsz2_32"])
    def test_make_accessor_native(self, name):
        acc = make_accessor(name, 64)
        x = krylov_vector(64)
        acc.write(x)
        assert acc.read().shape == (64,)
        assert acc.name == name

    def test_make_accessor_roundtrip_format(self):
        acc = make_accessor("zfp_fr_32", 100)
        assert isinstance(acc, RoundTripAccessor)

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            make_accessor("float128", 10)

    def test_factory_validates_eagerly(self):
        with pytest.raises(KeyError):
            accessor_factory("bogus")
        f = accessor_factory("frsz2_32")
        assert f(10).n == 10

    def test_factory_forwards_kwargs(self):
        f = accessor_factory("frsz2_32", block_size=16)
        assert f(32).codec.block_size == 16
