"""Decoded-block cache and batch-codec equivalence tests.

The cache's one law: any interleaving of ``write`` / ``read`` /
``read_block`` on a cache-enabled :class:`Frsz2Accessor` is
*byte-identical* to the same interleaving on a cache-disabled one.  The
batch codec entry points obey the analogous law against their
per-vector / per-block counterparts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accessor import DEFAULT_CACHE_BLOCKS, Frsz2Accessor
from repro.core import FRSZ2
from repro.observe import Tracer
from repro.solvers import CbGmres, make_problem

#: lengths straddling block boundaries for BS=32 (partial/full/multi)
BOUNDARY_SIZES = [1, 31, 32, 33, 63, 64, 65, 100, 257]


def vec(n, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestCacheWriteFuzz:
    """Hypothesis: interleaved ops match the cache-off accessor exactly."""

    @given(
        n=st.sampled_from(BOUNDARY_SIZES),
        bit_length=st.sampled_from([16, 21, 32]),
        cache_blocks=st.sampled_from([1, 2, 3, DEFAULT_CACHE_BLOCKS]),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("write"), st.integers(0, 2**31 - 1)),
                st.tuples(st.just("read"), st.just(0)),
                st.tuples(st.just("read_block"), st.integers(0, 2**31 - 1)),
            ),
            min_size=1,
            max_size=14,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_ops_bit_identical(self, n, bit_length, cache_blocks, ops):
        cached = Frsz2Accessor(n, bit_length=bit_length, cache_blocks=cache_blocks)
        plain = Frsz2Accessor(n, bit_length=bit_length, cache_blocks=0)
        nb = cached.codec.layout_for(n).num_blocks
        wrote = False
        for op, arg in ops:
            if op == "write":
                x = vec(n, seed=arg)
                cached.write(x)
                plain.write(x)
                wrote = True
            elif op == "read":
                a, b = cached.read(), plain.read()
                assert a.dtype == b.dtype == np.float64
                assert a.tobytes() == b.tobytes()
            elif op == "read_block" and wrote:
                block = arg % nb
                a = cached.read_block(block)
                b = plain.read_block(block)
                assert a.tobytes() == b.tobytes()
        if wrote:
            assert cached.read().tobytes() == plain.read().tobytes()

    @given(n=st.sampled_from(BOUNDARY_SIZES), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_cached_reread_identical(self, n, seed):
        """Second (cache-served) read equals the first, byte for byte."""
        acc = Frsz2Accessor(n)
        acc.write(vec(n, seed))
        first = acc.read()
        second = acc.read()
        assert first.tobytes() == second.tobytes()
        assert acc.cache.hits > 0


class TestCacheSemantics:
    def test_returned_arrays_are_safe_copies(self):
        """Mutating a read result must not poison later cached reads."""
        acc = Frsz2Accessor(64)
        acc.write(vec(64))
        out = acc.read()
        expected = out.copy()
        out[:] = 99.0
        assert np.array_equal(acc.read(), expected)
        blk = acc.read_block(0)
        blk_expected = blk.copy()
        blk[:] = -1.0
        assert np.array_equal(acc.read_block(0), blk_expected)

    def test_write_invalidates_cache(self):
        acc = Frsz2Accessor(64)
        acc.write(vec(64, seed=1))
        acc.read()
        acc.write(vec(64, seed=2))
        assert acc.cache.invalidations == 1
        assert np.array_equal(acc.read(), acc.codec.decompress(acc.compressed))

    def test_hit_miss_counters(self):
        acc = Frsz2Accessor(64)  # 2 blocks
        acc.write(vec(64))
        acc.read()  # 2 misses
        acc.read()  # 2 hits
        acc.read_block(1)  # 1 hit
        assert (acc.cache.hits, acc.cache.misses) == (3, 2)
        assert acc.cache.hit_rate == pytest.approx(3 / 5)

    def test_lru_eviction(self):
        acc = Frsz2Accessor(96, cache_blocks=2)  # 3 blocks, capacity 2
        acc.write(vec(96))
        for block in range(3):
            acc.read_block(block)
        assert acc.cache.evictions == 1
        # block 0 was evicted; blocks 1 and 2 still hit
        acc.read_block(1)
        acc.read_block(2)
        assert acc.cache.hits == 2
        acc.read_block(0)
        assert acc.cache.misses == 4

    def test_full_read_bypasses_too_small_cache(self):
        """A scan larger than capacity must not thrash the cache."""
        acc = Frsz2Accessor(96, cache_blocks=2)
        acc.write(vec(96))
        out = acc.read()
        assert np.array_equal(out, acc.codec.decompress(acc.compressed))
        assert acc.cache.evictions == 0
        assert acc.cache.misses == 0  # bypass, not a miss storm

    def test_cache_disabled_counts_nothing(self):
        acc = Frsz2Accessor(64, cache_blocks=0)
        acc.write(vec(64))
        acc.read()
        acc.read_block(0)
        assert (acc.cache.hits, acc.cache.misses, acc.cache.evictions) == (0, 0, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Frsz2Accessor(64, cache_blocks=-1)

    def test_tracer_counters(self):
        tracer = Tracer()
        acc = Frsz2Accessor(64)
        acc.set_tracer(tracer)
        acc.write(vec(64))
        acc.read()
        acc.read()
        assert tracer.counters["accessor.cache.misses"] == 2
        assert tracer.counters["accessor.cache.hits"] == 2

    def test_manual_invalidate_after_out_of_band_mutation(self):
        acc = Frsz2Accessor(64)
        acc.write(np.ones(64))
        before = acc.read()
        acc.compressed.payload[0] ^= acc.compressed.payload.dtype.type(1)
        acc.invalidate_cache()
        after = acc.read()
        assert after.tobytes() != before.tobytes()
        assert np.array_equal(after, acc.codec.decompress(acc.compressed))


class TestBatchCodec:
    """Batch entry points are bit-identical to their scalar counterparts."""

    @pytest.mark.parametrize("bit_length", [16, 21, 32])
    @pytest.mark.parametrize("rounding", [False, True])
    def test_compress_batch_matches_per_vector(self, bit_length, rounding):
        codec = FRSZ2(bit_length=bit_length, rounding=rounding)
        for n in BOUNDARY_SIZES:
            xs = [vec(n, seed=s) for s in range(3)]
            batch = codec.compress_batch(xs)
            for x, comp in zip(xs, batch):
                ref = codec.compress(x)
                assert comp.n == ref.n
                assert np.array_equal(comp.exponents, ref.exponents)
                assert np.array_equal(comp.payload, ref.payload)

    @pytest.mark.parametrize("bit_length", [16, 21, 32])
    def test_decompress_batch_matches_per_vector(self, bit_length):
        codec = FRSZ2(bit_length=bit_length)
        comps = [codec.compress(vec(n, seed=n)) for n in [31, 64, 100]]
        outs = codec.decompress_batch(comps)
        for comp, out in zip(comps, outs):
            assert out.tobytes() == codec.decompress(comp).tobytes()

    @pytest.mark.parametrize("bit_length", [16, 21, 32])
    def test_decompress_blocks_matches_per_block(self, bit_length):
        codec = FRSZ2(bit_length=bit_length)
        for n in [33, 100, 257]:
            comp = codec.compress(vec(n, seed=n))
            nb = comp.layout.num_blocks
            blocks = list(range(nb - 1, -1, -1))  # arbitrary order
            outs = codec.decompress_blocks(comp, blocks)
            for block, out in zip(blocks, outs):
                assert out.tobytes() == codec.decompress_block(comp, block).tobytes()

    def test_compress_batch_rejects_mixed_lengths(self):
        codec = FRSZ2()
        with pytest.raises(ValueError):
            codec.compress_batch([np.ones(10), np.ones(11)])

    def test_compress_batch_empty(self):
        assert FRSZ2().compress_batch([]) == []

    @staticmethod
    def _transient_encode_bytes(codec, nrhs, n):
        """Peak scratch above the retained outputs for one batch encode."""
        import gc
        import tracemalloc

        xs = [vec(n, seed=s) for s in range(nrhs)]
        gc.collect()
        tracemalloc.start()
        comps = codec.compress_batch(xs)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(comps) == nrhs
        return peak - current

    def test_compress_batch_staging_bounded_in_batch_size(self):
        # regression: the batch encoder used to stage the whole batch as
        # one dense (B, padded) float64 block, so transient memory grew
        # linearly with B.  The chunked encoder's staging is bounded by
        # the chunk size: an 8x wider batch must not need meaningfully
        # more scratch (dense staging would show ~8x here).
        codec = FRSZ2(bit_length=32)
        n = 1 << 16
        small = self._transient_encode_bytes(codec, 8, n)
        large = self._transient_encode_bytes(codec, 64, n)
        assert large <= small * 1.6 + (1 << 20), (small, large)


class TestSolverBitIdentity:
    def test_cached_solve_matches_uncached(self):
        """End-to-end: accessor cache must not perturb the solver."""
        p = make_problem("lung2", "smoke")
        results = []
        for cache_blocks in (DEFAULT_CACHE_BLOCKS, 0):
            res = CbGmres(
                p.a,
                m=30,
                max_iter=400,
                accessor_factory=lambda n: Frsz2Accessor(n, cache_blocks=cache_blocks),
            ).solve(p.b, p.target_rrn)
            results.append(res)
        a, b = results
        assert a.converged == b.converged
        assert a.iterations == b.iterations
        assert a.x.tobytes() == b.x.tobytes()
        assert a.final_rrn == b.final_rrn
