"""Tests for the orthogonality/perturbation analysis instrumentation."""

import numpy as np
import pytest

from repro.solvers import (
    CbGmres,
    basis_perturbation,
    make_problem,
    trace_orthogonality,
)


def unit_vector(n=3200, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    return v / np.linalg.norm(v)


class TestBasisPerturbation:
    def test_float64_is_exact(self):
        assert basis_perturbation("float64", unit_vector()) == 0.0

    def test_ordering_matches_significand_bits(self):
        """The mechanism behind Fig. 8's ordering: per-write perturbation
        frsz2_32 < float32 < float16."""
        v = unit_vector()
        p_frsz2 = basis_perturbation("frsz2_32", v)
        p32 = basis_perturbation("float32", v)
        p16 = basis_perturbation("float16", v)
        assert 0 < p_frsz2 < p32 < p16

    def test_scale_of_perturbations(self):
        v = unit_vector(seed=1)
        assert basis_perturbation("frsz2_32", v) < 1e-8
        assert basis_perturbation("float16", v) > 1e-5


class TestMonitorHook:
    def test_monitor_called_every_iteration(self):
        p = make_problem("lung2", "smoke")
        calls = []
        CbGmres(p.a).solve(
            p.b, p.target_rrn, monitor=lambda it, j, basis, impl: calls.append((it, j))
        )
        assert len(calls) > 0
        its = [c[0] for c in calls]
        assert its == sorted(its)
        # j counts up within a cycle
        assert calls[0][1] == 1

    def test_monitor_sees_live_basis(self):
        p = make_problem("lung2", "smoke")
        seen = []

        def monitor(it, j, basis, impl):
            seen.append(basis.matrix(j).shape)

        CbGmres(p.a, m=10).solve(p.b, p.target_rrn, monitor=monitor)
        assert seen[0] == (p.a.n, 1)
        assert all(s[0] == p.a.n for s in seen)


class TestOrthogonalityTrace:
    def test_float64_basis_stays_orthogonal(self):
        p = make_problem("atmosmodd", "smoke")
        t = trace_orthogonality(p.a, p.b, "float64", p.target_rrn, sample_every=3)
        assert t.worst_orthogonality < 1e-12
        assert t.worst_norm_drift < 1e-12
        assert t.result.converged

    def test_loss_ordering_explains_iteration_ordering(self):
        """Orthogonality decay orders exactly like Fig. 8's iterations."""
        p = make_problem("atmosmodd", "smoke")
        worst = {}
        iters = {}
        for fmt in ("float64", "frsz2_32", "float32", "float16"):
            t = trace_orthogonality(p.a, p.b, fmt, p.target_rrn, sample_every=5)
            worst[fmt] = t.worst_orthogonality
            iters[fmt] = t.result.iterations
        assert (
            worst["float64"]
            < worst["frsz2_32"]
            < worst["float32"]
            < worst["float16"]
        )
        assert (
            iters["float64"]
            <= iters["frsz2_32"]
            <= iters["float32"]
            <= iters["float16"]
        )

    def test_sampling_interval_respected(self):
        p = make_problem("lung2", "smoke")
        t = trace_orthogonality(p.a, p.b, "float32", p.target_rrn, sample_every=4)
        assert all(i % 4 == 0 for i in t.iterations)

    def test_empty_trace_properties(self):
        from repro.solvers.analysis import OrthogonalityTrace

        t = OrthogonalityTrace(storage="x")
        assert t.worst_orthogonality == 0.0
        assert t.worst_norm_drift == 0.0
