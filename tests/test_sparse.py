"""Tests for the sparse-matrix substrate (COO, CSR, SpMV, I/O)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOMatrix, CSRMatrix, read_matrix_market, write_matrix_market


def random_coo(m, n, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return COOMatrix(
        (m, n),
        rng.integers(0, m, nnz),
        rng.integers(0, n, nnz),
        rng.standard_normal(nnz),
    )


class TestCOO:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [0], [0, 1], [1.0, 2.0])

    def test_validates_row_range(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_validates_col_range(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [0], [-1], [1.0])

    def test_sum_duplicates(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0])
        out = coo.sum_duplicates()
        assert out.nnz == 2
        dense = out.to_dense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 4.0

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix((1, 1), [0, 0], [0, 0], [1.0, 1.5])
        assert coo.to_dense()[0, 0] == 2.5

    def test_transpose(self):
        coo = random_coo(3, 5, 10, seed=1)
        assert np.array_equal(coo.transpose().to_dense(), coo.to_dense().T)

    def test_empty(self):
        coo = COOMatrix((3, 3), [], [], [])
        assert coo.to_csr().nnz == 0


class TestCSRConstruction:
    def test_from_coo_matches_dense(self):
        coo = random_coo(20, 15, 120, seed=2)
        # duplicate summation order differs between the two paths, so
        # agreement is up to floating-point associativity
        assert np.allclose(coo.to_csr().to_dense(), coo.to_dense(), rtol=1e-14)

    def test_invalid_indptr_shape(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_column_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 5]), np.array([1.0, 2.0]))

    def test_roundtrip_through_coo(self):
        a = random_coo(10, 10, 40, seed=3).to_csr()
        b = a.to_coo().to_csr()
        assert np.array_equal(a.to_dense(), b.to_dense())


class TestSpMV:
    def test_matches_dense_matvec(self):
        a = random_coo(30, 25, 200, seed=4).to_csr()
        x = np.random.default_rng(5).standard_normal(25)
        assert np.allclose(a.matvec(x), a.to_dense() @ x)

    def test_matmul_operator(self):
        a = random_coo(5, 5, 10, seed=6).to_csr()
        x = np.ones(5)
        assert np.array_equal(a @ x, a.matvec(x))

    def test_empty_rows_give_zero(self):
        # row 1 empty
        a = COOMatrix((3, 3), [0, 2], [0, 2], [1.0, 2.0]).to_csr()
        y = a.matvec(np.ones(3))
        assert y[1] == 0.0

    def test_rmatvec_matches_dense(self):
        a = random_coo(12, 18, 80, seed=7).to_csr()
        y = np.random.default_rng(8).standard_normal(12)
        assert np.allclose(a.rmatvec(y), a.to_dense().T @ y)

    def test_wrong_size_raises(self):
        a = random_coo(3, 4, 5, seed=9).to_csr()
        with pytest.raises(ValueError):
            a.matvec(np.ones(3))
        with pytest.raises(ValueError):
            a.rmatvec(np.ones(4))

    def test_out_parameter(self):
        a = random_coo(6, 6, 12, seed=10).to_csr()
        x = np.ones(6)
        out = np.empty(6)
        ret = a.matvec(x, out=out)
        assert ret is out
        assert np.array_equal(out, a.matvec(x))

    def test_counter_accumulates(self):
        a = random_coo(6, 6, 12, seed=11).to_csr()
        a.counter.reset()
        a.matvec(np.ones(6))
        a.matvec(np.ones(6))
        assert a.counter.calls == 2
        assert a.counter.flops == 4 * a.nnz

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=120))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_dense(self, n, nnz):
        a = random_coo(n, n, nnz, seed=nnz * 31 + n).to_csr()
        x = np.random.default_rng(n).standard_normal(n)
        assert np.allclose(a.matvec(x), a.to_dense() @ x, atol=1e-12)


class TestCSRHelpers:
    def test_diagonal(self):
        a = COOMatrix((3, 3), [0, 1, 1, 2], [0, 1, 2, 0], [5.0, 7.0, 1.0, 2.0]).to_csr()
        assert np.array_equal(a.diagonal(), [5.0, 7.0, 0.0])

    def test_row_norms(self):
        a = COOMatrix((2, 3), [0, 0, 1], [0, 1, 2], [3.0, -4.0, 2.0]).to_csr()
        assert np.array_equal(a.row_norms(1), [7.0, 2.0])
        assert np.array_equal(a.row_norms(np.inf), [4.0, 2.0])
        assert np.allclose(a.row_norms(2), [5.0, 2.0])

    def test_row_norms_bad_ord(self):
        a = random_coo(2, 2, 2, seed=12).to_csr()
        with pytest.raises(ValueError):
            a.row_norms(3)

    def test_scale_rows_cols(self):
        a = random_coo(4, 4, 10, seed=13).to_csr()
        dr = np.array([1.0, 2.0, 0.5, 3.0])
        dc = np.array([2.0, 1.0, 1.0, 0.25])
        scaled = a.scale_rows_cols(dr, dc)
        expected = np.diag(dr) @ a.to_dense() @ np.diag(dc)
        assert np.allclose(scaled.to_dense(), expected)

    def test_scale_wrong_shape_raises(self):
        a = random_coo(3, 3, 4, seed=14).to_csr()
        with pytest.raises(ValueError):
            a.scale_rows_cols(np.ones(2), np.ones(3))

    def test_transpose(self):
        a = random_coo(5, 7, 20, seed=15).to_csr()
        assert np.array_equal(a.transpose().to_dense(), a.to_dense().T)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        a = random_coo(10, 8, 30, seed=16).to_csr()
        path = tmp_path / "test.mtx"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        assert b.shape == a.shape
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_roundtrip_gzip(self, tmp_path):
        a = random_coo(5, 5, 10, seed=17).to_csr()
        path = tmp_path / "test.mtx.gz"
        write_matrix_market(path, a)
        assert np.array_equal(read_matrix_market(path).to_dense(), a.to_dense())

    def test_values_roundtrip_exactly(self, tmp_path):
        a = COOMatrix((2, 2), [0, 1], [0, 1], [1.0 / 3.0, -1e-300]).to_csr()
        path = tmp_path / "exact.mtx"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        assert np.array_equal(b.data, a.data)

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n1 1 2.0\n2 1 -1.0\n3 2 0.5\n3 3 1.0\n"
        )
        a = read_matrix_market(path)
        d = a.to_dense()
        assert d[0, 1] == -1.0 and d[1, 0] == -1.0
        assert d[1, 2] == 0.5 and d[2, 1] == 0.5

    def test_skew_symmetric_expansion(self, tmp_path):
        path = tmp_path / "skew.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        d = read_matrix_market(path).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        d = read_matrix_market(path).to_dense()
        assert np.array_equal(d, np.eye(2))

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "com.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 42.0\n"
        )
        assert read_matrix_market(path).to_dense()[0, 0] == 42.0

    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_complex_field(self, tmp_path):
        path = tmp_path / "cplx.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)
