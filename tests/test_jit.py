"""Cross-backend bit-identity suite for the jit kernel backend.

The ``backend={numpy,jit}`` switch is only sound because every jit
kernel replays the numpy reference's arithmetic exactly — same
accumulation order, same rounding, no FMA contraction.  This suite
pins that contract at every layer: raw bitpack fields, codec
round-trips, SpMV formats, fused cached/streaming solves and full
``CbGmres.solve``/``solve_batch`` runs must all be *byte*-equal across
backends.  When no jit engine is available (no numba, no C compiler)
the jit half skips with the engine's own failure reason.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accessor import make_accessor
from repro.core.frsz2 import FRSZ2
from repro.jit import dispatch
from repro.solvers import CbGmres, make_problem
from repro.sparse import build_matrix
from repro.sparse.engine import SPMV_FORMATS, SpmvEngine

requires_jit = pytest.mark.skipif(
    not dispatch.jit_available(),
    reason=f"jit engine unavailable: {dispatch.jit_unavailable_reason()}",
)

#: the standard cross-backend axis: numpy always runs, jit skips with
#: the engine's own failure reason when no engine compiles
BACKENDS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("jit", id="jit", marks=requires_jit),
]


# ----------------------------------------------------------------------
# dispatch registry / resolution
# ----------------------------------------------------------------------


class TestDispatch:
    def test_resolve_none_is_numpy(self):
        assert dispatch.resolve_backend(None) == "numpy"
        assert dispatch.resolve_backend("numpy") == "numpy"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            dispatch.resolve_backend("cuda")

    def test_unknown_kernel_name_raises(self):
        with pytest.raises(KeyError, match="no kernel"):
            dispatch.get_kernel("no.such.kernel", "numpy")

    def test_register_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            dispatch.register_kernel("x", "cuda", lambda: None)

    def test_numpy_registry_covers_hot_kernels(self):
        names = set(dispatch.registered_kernels("numpy"))
        assert {
            "bitpack.pack_at", "bitpack.unpack_at",
            "frsz2.encode_fields", "frsz2.decode_fields",
            "frsz2.pack_stream", "frsz2.decode_stream",
            "frsz2.decode_gather",
            "spmv.csr_matvec", "spmv.ell_matvec", "spmv.sell_group_matvec",
            "fused.dot_basis", "fused.combine", "fused.axpy", "fused.norm",
            "fused.dot_basis_batch", "fused.axpy_batch",
            "prec.lower_trisolve", "prec.upper_trisolve",
            "prec.block_diag_apply",
        } <= names

    def test_unavailable_jit_degrades_with_named_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_DISABLE", "1")
        dispatch._reset_engine_cache()
        try:
            with pytest.warns(dispatch.JitUnavailableWarning,
                              match="REPRO_JIT_DISABLE"):
                assert dispatch.resolve_backend("jit") == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert dispatch.resolve_backend("jit", warn=False) == "numpy"
            with pytest.raises(dispatch.JitUnavailableError):
                dispatch.get_kernel("frsz2.encode_fields", "jit")
        finally:
            monkeypatch.delenv("REPRO_JIT_DISABLE")
            dispatch._reset_engine_cache()

    @requires_jit
    def test_jit_registry_mirrors_numpy(self):
        dispatch.get_kernel("frsz2.encode_fields", "jit")  # force load
        assert dispatch.registered_kernels("jit") == \
            dispatch.registered_kernels("numpy")
        assert dispatch.jit_engine_name() in ("numba", "cffi")
        assert dispatch.jit_unavailable_reason() is None


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------


def _sample(n=1537, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) * np.exp(rng.uniform(-40, 40, n))
    x[:5] = [0.0, -0.0, 1.0, -1.0, 2.0 ** -300]
    return x


@pytest.mark.parametrize("backend", BACKENDS)
class TestCodecBitIdentity:
    # 16/32/64 exercise the aligned layouts, 21/13 the straddling
    # word-stream path, 52 a straddling width with a >32-bit field
    @pytest.mark.parametrize("bit_length", [13, 16, 21, 32, 52, 64])
    @pytest.mark.parametrize("rounding", [False, True])
    def test_roundtrip_matches_numpy(self, backend, bit_length, rounding):
        x = _sample()
        ref = FRSZ2(bit_length=bit_length, rounding=rounding)
        alt = FRSZ2(bit_length=bit_length, rounding=rounding, backend=backend)
        assert alt.backend == backend
        c_ref, c_alt = ref.compress(x), alt.compress(x)
        np.testing.assert_array_equal(c_ref.exponents, c_alt.exponents)
        np.testing.assert_array_equal(c_ref.payload, c_alt.payload)
        np.testing.assert_array_equal(
            ref.decompress(c_ref), alt.decompress(c_alt)
        )

    def test_gather_and_block_paths_match_numpy(self, backend):
        x = _sample(1000, seed=9)
        ref = FRSZ2(bit_length=21)
        alt = FRSZ2(bit_length=21, backend=backend)
        c_ref, c_alt = ref.compress(x), alt.compress(x)
        idx = np.array([0, 7, 999, 511, 7])
        np.testing.assert_array_equal(ref.get(c_ref, idx), alt.get(c_alt, idx))
        blocks = [0, 3, c_ref.layout.num_blocks - 1, 3]
        for a, b in zip(ref.decompress_blocks(c_ref, blocks),
                        alt.decompress_blocks(c_alt, blocks)):
            np.testing.assert_array_equal(a, b)
        comps_ref = [ref.compress(_sample(1000, seed=s)) for s in (1, 2, 3)]
        comps_alt = [alt.compress(_sample(1000, seed=s)) for s in (1, 2, 3)]
        for a, b in zip(ref.decompress_blocks_batch(comps_ref, blocks),
                        alt.decompress_blocks_batch(comps_alt, blocks)):
            np.testing.assert_array_equal(a, b)

    def test_accessor_write_read_matches_numpy(self, backend):
        x = _sample(777, seed=5)
        ref = make_accessor("frsz2_21", 777)
        alt = make_accessor("frsz2_21", 777, backend=backend)
        ref.write(x)
        alt.write(x)
        np.testing.assert_array_equal(ref.read(), alt.read())


# ----------------------------------------------------------------------
# SpMV formats
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt", sorted(SPMV_FORMATS))
class TestSpmvBitIdentity:
    def test_matvec_and_matmat_match_numpy(self, backend, fmt):
        a = build_matrix("atmosmodd", "smoke")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(a.shape[1])
        X = rng.standard_normal((a.shape[1], 3))
        ref = SpmvEngine(a, format=fmt, backend="numpy")
        alt = SpmvEngine(a, format=fmt, backend=backend)
        np.testing.assert_array_equal(ref.matvec(x), alt.matvec(x))
        np.testing.assert_array_equal(ref.matmat(X), alt.matmat(X))


# ----------------------------------------------------------------------
# fused modes and full solves
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def problem():
    return make_problem("lung2", "smoke")


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolveBitIdentity:
    @pytest.mark.parametrize("basis_mode", ["cached", "streaming"])
    def test_fused_solve_matches_numpy(self, problem, backend, basis_mode):
        def run(b):
            return CbGmres(
                problem.a, "frsz2_21", m=30, max_iter=300,
                spmv_format="sell", basis_mode=basis_mode, backend=b,
            ).solve(problem.b, problem.target_rrn)

        ref, alt = run("numpy"), run(backend)
        assert np.array_equal(ref.x, alt.x)
        assert ref.iterations == alt.iterations
        assert [(s.iteration, s.rrn) for s in ref.history] == \
            [(s.iteration, s.rrn) for s in alt.history]

    @pytest.mark.parametrize("storage", ["float64", "frsz2_32", "adaptive"])
    def test_storages_match_numpy(self, problem, backend, storage):
        def run(b):
            return CbGmres(
                problem.a, storage, m=30, max_iter=400, backend=b
            ).solve(problem.b, problem.target_rrn)

        ref, alt = run("numpy"), run(backend)
        assert np.array_equal(ref.x, alt.x)
        assert ref.iterations == alt.iterations
        assert ref.final_rrn == alt.final_rrn

    @pytest.mark.parametrize("prec_name,prec_storage", [
        ("jacobi", "float64"),
        ("block_jacobi", "frsz2_16"),
        ("ilu0", "float64"),
        ("ilu0", "frsz2_32"),
    ])
    @pytest.mark.parametrize("basis_mode", ["cached", "streaming"])
    def test_preconditioned_solve_matches_numpy(
        self, problem, backend, prec_name, prec_storage, basis_mode
    ):
        from repro.solvers import make_preconditioner

        def run(b):
            prec = make_preconditioner(
                prec_name, problem.a, storage=prec_storage, backend=b
            )
            return CbGmres(
                problem.a, "frsz2_32", m=30, max_iter=300,
                basis_mode=basis_mode, backend=b, preconditioner=prec,
            ).solve(problem.b, problem.target_rrn)

        ref, alt = run("numpy"), run(backend)
        assert np.array_equal(ref.x, alt.x)
        assert ref.iterations == alt.iterations
        assert [(s.iteration, s.rrn) for s in ref.history] == \
            [(s.iteration, s.rrn) for s in alt.history]

    def test_solve_batch_matches_numpy(self, problem, backend):
        rng = np.random.default_rng(17)
        B = np.stack(
            [problem.a.matvec(rng.standard_normal(problem.a.shape[1]))
             for _ in range(3)],
            axis=1,
        )

        def run(b):
            return CbGmres(
                problem.a, "frsz2_32", m=30, max_iter=400, backend=b
            ).solve_batch(B, problem.target_rrn)

        ref, alt = run("numpy"), run(backend)
        for r, a in zip(ref, alt):
            assert np.array_equal(r.x, a.x)
            assert r.iterations == a.iterations
            assert r.final_rrn == a.final_rrn


@requires_jit
def test_trisolve_kernels_match_numpy_bitwise():
    """The triangular-solve bit-identity suite: the jit engine's
    sequential sweeps must replay the pure-Python reference
    recurrence exactly (multiply-then-subtract rounding order)."""
    from repro.solvers import prec_kernels

    rng = np.random.default_rng(42)
    n = 211
    rows = [
        np.unique(rng.integers(0, i, min(5, i)))
        if i else np.empty(0, np.int64)
        for i in range(n)
    ]
    ip = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([r.size for r in rows], out=ip[1:])
    cols = np.concatenate(rows).astype(np.int64)
    vals = rng.standard_normal(cols.size) * np.exp2(
        rng.integers(-40, 40, cols.size).astype(float)
    )
    b = rng.standard_normal(n)
    lower_np = dispatch.get_kernel("prec.lower_trisolve", "numpy")
    lower_jit = dispatch.get_kernel("prec.lower_trisolve", "jit")
    np.testing.assert_array_equal(
        np.asarray(lower_np(ip, cols, vals, b)).view(np.uint64),
        np.asarray(lower_jit(ip, cols, vals, b)).view(np.uint64),
    )
    udiag = rng.standard_normal(n) + 2.0 * np.sign(
        rng.standard_normal(n)
    )
    urows = [
        np.unique(rng.integers(i + 1, n, min(5, n - 1 - i)))
        if i < n - 1 else np.empty(0, np.int64)
        for i in range(n)
    ]
    uip = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([r.size for r in urows], out=uip[1:])
    ucols = np.concatenate(urows).astype(np.int64)
    uvals = rng.standard_normal(ucols.size)
    upper_np = dispatch.get_kernel("prec.upper_trisolve", "numpy")
    upper_jit = dispatch.get_kernel("prec.upper_trisolve", "jit")
    np.testing.assert_array_equal(
        np.asarray(upper_np(uip, ucols, uvals, udiag, b)).view(np.uint64),
        np.asarray(upper_jit(uip, ucols, uvals, udiag, b)).view(np.uint64),
    )
    for bs in (8, 5):
        nb = -(-n // bs)
        blocks = rng.standard_normal(nb * bs * bs)
        bd_np = dispatch.get_kernel("prec.block_diag_apply", "numpy")
        bd_jit = dispatch.get_kernel("prec.block_diag_apply", "jit")
        np.testing.assert_array_equal(
            np.asarray(bd_np(blocks, b, bs, n)).view(np.uint64),
            np.asarray(bd_jit(blocks, b, bs, n)).view(np.uint64),
        )
    assert prec_kernels is not None


# ----------------------------------------------------------------------
# bitpack fuzz: width/straddle edges
# ----------------------------------------------------------------------


@st.composite
def field_streams(draw):
    """A field stream hitting word-straddle edges: random widths in
    [1, 64] at a random starting bit offset, so fields land aligned,
    word-interior and straddling one or two uint32 boundaries."""
    widths = draw(st.lists(st.integers(1, 64), min_size=1, max_size=24))
    fields = [
        draw(st.integers(0, (1 << w) - 1)) for w in widths
    ]
    start = draw(st.integers(0, 31))
    return widths, fields, start


@requires_jit
@settings(max_examples=60, deadline=None)
@given(field_streams())
def test_bitpack_fuzz_jit_matches_numpy(stream):
    widths, fields, start = stream
    widths = np.asarray(widths, dtype=np.int64)
    fields_arr = np.asarray(fields, dtype=np.uint64)
    bitpos = start + np.concatenate(
        ([0], np.cumsum(widths[:-1], dtype=np.int64))
    )
    nwords = int((bitpos[-1] + widths[-1] + 31) // 32)
    packs = {}
    unpacks = {}
    for backend in ("numpy", "jit"):
        pack = dispatch.get_kernel("bitpack.pack_at", backend)
        unpack = dispatch.get_kernel("bitpack.unpack_at", backend)
        words = np.zeros(nwords, dtype=np.uint32)
        pack(words, bitpos, fields_arr, widths)
        packs[backend] = words
        unpacks[backend] = unpack(words, bitpos, widths)
    np.testing.assert_array_equal(packs["numpy"], packs["jit"])
    np.testing.assert_array_equal(unpacks["numpy"], unpacks["jit"])
    # both backends must also round-trip the original fields
    np.testing.assert_array_equal(unpacks["numpy"], fields_arr)
