"""Deterministic parallel fan-out of experiment grids.

The bench (`python -m repro bench`) and fault-campaign (`python -m repro
faults`) commands sweep a matrix × storage (× fault × rate) grid whose
cells are *independent solves*: each cell builds its own problem,
tracer and (seeded) fault injectors, so cells share no mutable state
and can run in separate processes.  :func:`run_grid` fans such a grid
out over a :class:`concurrent.futures.ProcessPoolExecutor` while
keeping the results **deterministic**:

* results are returned in *task submission order*, never completion
  order — a grid run with ``jobs=8`` is field-for-field identical to
  ``jobs=1`` on every deterministic metric;
* randomness must be task-local: every cell derives its seed from its
  grid coordinates (e.g. the campaign's ``(seed, fault, storage, rate)``
  spawn keys), so partitioning work across workers cannot reorder any
  random stream;
* ``jobs=1`` short-circuits to a plain in-process loop — byte-identical
  to the historical serial path, with no pickling requirement at all.

A worker that raises — or dies outright (segfault, ``os._exit``, OOM
kill) — surfaces as a :class:`WorkerCrashError` naming the offending
task; the pool is shut down, never left hanging.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["WorkerCrashError", "resolve_jobs", "run_grid"]


class WorkerCrashError(RuntimeError):
    """A grid worker raised or died; names the task that was lost.

    Attributes
    ----------
    label : str
        Human-readable identity of the failed task (e.g.
        ``"bench[atmosmodd/frsz2_32]"``).
    cause : BaseException or None
        The worker's exception when one was transported back; ``None``
        when the worker process died without one (a broken pool).
    """

    def __init__(self, label: str, cause: Optional[BaseException] = None) -> None:
        detail = f": {cause}" if cause is not None else " (worker process died)"
        super().__init__(f"grid worker failed on {label}{detail}")
        self.label = label
        self.cause = cause


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "all
    cores" (``os.cpu_count()``), mirroring ``make -j`` conventions.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def run_grid(
    fn: Callable[..., Any],
    tasks: Sequence[Dict[str, Any]],
    jobs: int = 1,
    labels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``fn(**task)`` for every task, results in submission order.

    Parameters
    ----------
    fn : callable
        The cell worker.  With ``jobs > 1`` it must be picklable (a
        module-level function) and so must every task's values.
    tasks : sequence of dict
        Keyword arguments for each cell, one dict per cell.
    jobs : int, default 1
        Worker processes.  ``1`` runs a plain serial loop in-process
        (bit-identical to the historical behaviour); ``0`` or negative
        use every core.
    labels : sequence of str, optional
        Per-task names for error reporting; defaults to
        ``task[<index>]``.
    timeout : float, optional
        Per-task result timeout in seconds (guards against a hung
        worker); ``None`` waits indefinitely.

    Returns
    -------
    list
        ``[fn(**tasks[0]), fn(**tasks[1]), ...]`` — ordering never
        depends on completion order.

    Raises
    ------
    WorkerCrashError
        A worker raised, died, or timed out; the error names the task.
        In serial mode exceptions propagate unchanged (easier
        debugging).
    """
    tasks = list(tasks)
    if labels is None:
        labels = [f"task[{i}]" for i in range(len(tasks))]
    elif len(labels) != len(tasks):
        raise ValueError(
            f"got {len(labels)} labels for {len(tasks)} tasks"
        )
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(**task) for task in tasks]

    results: List[Any] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(fn, **task) for task in tasks]
        try:
            for i, future in enumerate(futures):
                try:
                    results[i] = future.result(timeout=timeout)
                except BrokenProcessPool as exc:
                    raise WorkerCrashError(labels[i]) from exc
                except (TimeoutError, _FuturesTimeout) as exc:
                    raise WorkerCrashError(labels[i], exc) from exc
                except Exception as exc:
                    raise WorkerCrashError(labels[i], exc) from exc
        except WorkerCrashError:
            for pending in futures:
                pending.cancel()
            raise
    return results
