"""Deterministic parallel fan-out of experiment grids.

The bench (`python -m repro bench`) and fault-campaign (`python -m repro
faults`) commands sweep a matrix × storage (× fault × rate) grid whose
cells are *independent solves*: each cell builds its own problem,
tracer and (seeded) fault injectors, so cells share no mutable state
and can run in separate processes.  :func:`run_grid` fans such a grid
out over a :class:`repro.parallel.pool.SupervisedPool` while keeping
the results **deterministic**:

* results are returned in *task submission order*, never completion
  order — a grid run with ``jobs=8`` is field-for-field identical to
  ``jobs=1`` on every deterministic metric;
* randomness must be task-local: every cell derives its seed from its
  grid coordinates (e.g. the campaign's ``(seed, fault, storage, rate)``
  spawn keys), so partitioning work across workers cannot reorder any
  random stream;
* ``jobs=1`` short-circuits to a plain in-process loop — byte-identical
  to the historical serial path, with no pickling requirement at all.

Failure handling is a mode, not a fate:

* ``on_error="raise"`` (default, the historical behaviour): the first
  failing task — a raised exception, a dead worker process, or a blown
  per-task deadline — aborts the grid with a :class:`WorkerCrashError`
  naming that task;
* ``on_error="collect"``: the grid always runs to completion and failed
  tasks appear *in the results list* as :class:`WorkerCrashError`
  records (check ``isinstance(r, WorkerCrashError)``), so one crashed
  cell no longer throws away the rest of a long campaign.

The ``timeout`` parameter is a **true per-task wall deadline**: the
clock starts when the task begins executing on a worker (not at
submission, not at result collection), so an early hung task can never
consume the budget of later tasks.  A task that exceeds it has its
worker process killed and respawned — the slot is reclaimed, remaining
tasks keep running.  In serial mode (``jobs=1``) there is no process to
kill, so ``timeout`` is not enforced there.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .pool import SupervisedPool

__all__ = ["WorkerCrashError", "resolve_jobs", "run_grid", "ON_ERROR_MODES"]

#: accepted ``on_error`` modes of :func:`run_grid`
ON_ERROR_MODES = ("raise", "collect")

#: grace window (seconds) to drain near-simultaneous failures before
#: picking the lowest-submission-index one in ``raise`` mode
_RAISE_DRAIN_S = 0.2


class WorkerCrashError(RuntimeError):
    """A grid worker raised, died, or blew its deadline; names the task.

    Attributes
    ----------
    label : str
        Human-readable identity of the failed task (e.g.
        ``"bench[atmosmodd/frsz2_32]"``).
    cause : BaseException or None
        The worker's exception when one was transported back; a
        ``TimeoutError`` for a blown deadline; ``None`` when the worker
        process died without one (segfault, ``os._exit``, OOM kill).
    kind : str
        Failure class: ``"error"`` (worker raised), ``"crash"`` (worker
        process died), or ``"timeout"`` (per-task deadline exceeded).
    """

    def __init__(
        self,
        label: str,
        cause: Optional[BaseException] = None,
        kind: str = "error",
    ) -> None:
        if cause is not None:
            detail = f": {cause}"
        elif kind == "crash":
            detail = " (worker process died)"
        else:
            detail = ""
        super().__init__(f"grid worker failed on {label}{detail}")
        self.label = label
        self.cause = cause
        self.kind = kind


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "all
    cores" (``os.cpu_count()``), mirroring ``make -j`` conventions.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _run_serial(
    fn: Callable[..., Any],
    tasks: List[Dict[str, Any]],
    labels: Sequence[str],
    on_error: str,
) -> List[Any]:
    if on_error == "raise":
        # exceptions propagate unchanged (easier debugging)
        return [fn(**task) for task in tasks]
    results: List[Any] = []
    for i, task in enumerate(tasks):
        try:
            results.append(fn(**task))
        except Exception as exc:
            results.append(WorkerCrashError(labels[i], exc, kind="error"))
    return results


def run_grid(
    fn: Callable[..., Any],
    tasks: Sequence[Dict[str, Any]],
    jobs: int = 1,
    labels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
) -> List[Any]:
    """Run ``fn(**task)`` for every task, results in submission order.

    Parameters
    ----------
    fn : callable
        The cell worker.  With ``jobs > 1`` it must be picklable (a
        module-level function) and so must every task's values.
    tasks : sequence of dict
        Keyword arguments for each cell, one dict per cell.
    jobs : int, default 1
        Worker processes.  ``1`` runs a plain serial loop in-process
        (bit-identical to the historical behaviour); ``0`` or negative
        use every core.
    labels : sequence of str, optional
        Per-task names for error reporting; defaults to
        ``task[<index>]``.
    timeout : float, optional
        Per-task wall deadline in seconds, measured from the moment the
        task **starts on a worker** — never from submission, so a slow
        early task cannot eat later tasks' budgets.  A task over
        deadline has its worker killed (and respawned); the task fails
        with ``kind="timeout"``.  ``None`` waits indefinitely.  Not
        enforced in serial mode (no process to kill).
    on_error : {"raise", "collect"}, default "raise"
        ``"raise"``: first failure aborts the grid with a
        :class:`WorkerCrashError` (ties broken by submission order).
        ``"collect"``: always return a full-length results list in
        which failed tasks are :class:`WorkerCrashError` records.

    Returns
    -------
    list
        ``[fn(**tasks[0]), fn(**tasks[1]), ...]`` — ordering never
        depends on completion order.  Under ``on_error="collect"``,
        positions whose task failed hold the error record instead.

    Raises
    ------
    WorkerCrashError
        Under ``on_error="raise"``: a worker raised, died, or timed
        out; the error names the task.  In serial mode exceptions
        propagate unchanged (easier debugging).
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    tasks = list(tasks)
    if labels is None:
        labels = [f"task[{i}]" for i in range(len(tasks))]
    elif len(labels) != len(tasks):
        raise ValueError(
            f"got {len(labels)} labels for {len(tasks)} tasks"
        )
    jobs = resolve_jobs(jobs)
    # jobs > 1 always uses the pool — even for a single task — so the
    # caller's process-isolation expectation (a crashing cell cannot
    # take down the driver) holds regardless of grid size
    if jobs == 1 or not tasks:
        return _run_serial(fn, tasks, labels, on_error)

    results: List[Any] = [None] * len(tasks)
    failures: Dict[int, WorkerCrashError] = {}
    open_count = len(tasks)
    with SupervisedPool(min(jobs, len(tasks))) as pool:
        index = {}
        handles = []
        for i, task in enumerate(tasks):
            handle = pool.submit(fn, task, label=labels[i])
            index[handle.id] = i
            handles.append(handle)

        def settle(i: int, value: Any) -> None:
            nonlocal open_count
            if isinstance(value, WorkerCrashError):
                failures[i] = value
            results[i] = value
            open_count -= 1

        while open_count > 0:
            # enforce per-task deadlines (clock starts at task start)
            wait_s = 0.25
            if timeout is not None:
                now = time.monotonic()
                for handle in handles:
                    if handle.state != "running" or handle.started_at is None:
                        continue
                    remaining = handle.started_at + timeout - now
                    if remaining <= 0:
                        pool.kill(handle)
                        settle(index[handle.id], WorkerCrashError(
                            handle.label,
                            TimeoutError(
                                f"task exceeded its {timeout:g}s wall deadline"
                            ),
                            kind="timeout",
                        ))
                    else:
                        wait_s = min(wait_s, remaining)
            for event in pool.poll(timeout=wait_s):
                i = index[event.task.id]
                if event.kind == "done":
                    settle(i, event.task.result)
                elif event.kind == "error":
                    settle(i, WorkerCrashError(
                        event.task.label, event.task.error, kind="error"))
                elif event.kind == "crashed":
                    settle(i, WorkerCrashError(
                        event.task.label, None, kind="crash"))
            if on_error == "raise" and failures:
                # near-simultaneous failures race into the supervisor in
                # worker order; drain briefly so the *earliest-submitted*
                # failure is the one reported, deterministically
                drain_until = time.monotonic() + _RAISE_DRAIN_S
                while open_count > 0 and time.monotonic() < drain_until:
                    for event in pool.poll(timeout=0.02):
                        i = index[event.task.id]
                        if event.kind == "done":
                            settle(i, event.task.result)
                        elif event.kind == "error":
                            settle(i, WorkerCrashError(
                                event.task.label, event.task.error,
                                kind="error"))
                        elif event.kind == "crashed":
                            settle(i, WorkerCrashError(
                                event.task.label, None, kind="crash"))
                raise failures[min(failures)]
    return results
