"""Parallel execution engine: deterministic fan-out of experiment grids.

See :mod:`repro.parallel.runner` for the design contract (submission-
order results, task-local seeding, named worker-crash errors).  The
bench and fault-campaign drivers consume this through their ``jobs``
parameters / ``--jobs`` CLI flags.
"""

from .runner import WorkerCrashError, resolve_jobs, run_grid

__all__ = ["WorkerCrashError", "resolve_jobs", "run_grid"]
