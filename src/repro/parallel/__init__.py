"""Parallel execution engine: deterministic fan-out + supervised pools.

See :mod:`repro.parallel.runner` for the grid contract (submission-
order results, task-local seeding, per-task wall deadlines, named
worker-crash errors, ``on_error="collect"`` partial results) and
:mod:`repro.parallel.pool` for the supervised worker-process substrate
(kill/respawn, progress streaming, cooperative cancellation) that both
the grid runner and the :mod:`repro.serve` job engine are built on.
The bench and fault-campaign drivers consume this through their
``jobs`` parameters / ``--jobs`` CLI flags.
"""

from .pool import PoolEvent, PoolTask, SupervisedPool, TaskCancelled
from .runner import ON_ERROR_MODES, WorkerCrashError, resolve_jobs, run_grid

__all__ = [
    "ON_ERROR_MODES",
    "PoolEvent",
    "PoolTask",
    "SupervisedPool",
    "TaskCancelled",
    "WorkerCrashError",
    "resolve_jobs",
    "run_grid",
]
