"""Supervised persistent worker pool: the process substrate of
:func:`repro.parallel.run_grid` and the :mod:`repro.serve` job engine.

``concurrent.futures.ProcessPoolExecutor`` cannot do three things a
hardened service needs:

* **kill one hung task** — a stuck worker can only be abandoned, never
  reclaimed, so a per-task wall deadline cannot actually be enforced;
* **survive a worker death** — one ``os._exit`` breaks the whole pool;
* **stream mid-task progress** — there is no channel from a running
  task back to the supervisor, so hang detection has nothing to watch.

:class:`SupervisedPool` keeps one long-lived process per worker slot,
each attached to the supervisor by a duplex pipe.  Tasks are dispatched
to idle workers in submission order; a task may emit progress messages
through an injected ``emit`` callback (which doubles as the heartbeat
and the cooperative-cancellation point); a worker that dies — for any
reason, at any time — is detected via its process sentinel, reported as
a ``crashed`` event for the task it was running, and its slot is
respawned so the pool never shrinks.  :meth:`SupervisedPool.kill`
terminates a specific task's worker on purpose (deadline/hang
enforcement) with the same respawn guarantee.

The pool is deliberately policy-free: it reports events
(``started`` / ``progress`` / ``done`` / ``error`` / ``cancelled`` /
``crashed``) and leaves retries, deadlines and state machines to its
callers (:func:`~repro.parallel.runner.run_grid`,
:class:`repro.serve.engine.SolveEngine`).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "TaskCancelled",
    "PoolTask",
    "PoolEvent",
    "SupervisedPool",
    "EVENT_KINDS",
]

#: event kinds a :meth:`SupervisedPool.poll` call may return
EVENT_KINDS = ("started", "progress", "done", "error", "cancelled", "crashed")

# task states (terminal: done/error/cancelled/crashed/killed)
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
CRASHED = "crashed"
KILLED = "killed"


class TaskCancelled(Exception):
    """Raised inside a worker when the supervisor requested cancellation.

    Task functions normally never see it: the injected ``emit`` callback
    raises it and the worker main loop catches it.  A task that must
    release resources on cancellation may catch and re-raise.
    """


@dataclass
class PoolTask:
    """Supervisor-side record of one submitted task."""

    id: int
    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any]
    #: name of a keyword argument to inject the worker-side ``emit``
    #: callback into (``None`` = the function takes no progress channel)
    emit_kwarg: Optional[str] = None
    state: str = PENDING
    result: Any = None
    #: transported exception (``error``) or exit code (``crashed``)
    error: Optional[BaseException] = None
    exitcode: Optional[int] = None
    worker_id: Optional[int] = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    ended_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, ERROR, CANCELLED, CRASHED, KILLED)


@dataclass
class PoolEvent:
    """One observation from the pool: ``kind`` is one of
    :data:`EVENT_KINDS`; ``payload`` carries progress data, the result,
    or the transported error."""

    kind: str
    task: PoolTask
    payload: Any = None


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _worker_main(conn) -> None:
    """Loop: receive a task, run it, report; exit on ``stop`` or EOF.

    Progress messages and cooperative cancellation both flow through the
    injected ``emit``: every call first drains pending supervisor
    messages (a queued ``cancel`` raises :class:`TaskCancelled`), then
    sends the progress payload.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        if msg[0] == "cancel":
            # cancel for a task that already finished; nothing to do
            continue
        _, tid, fn, kwargs, emit_kwarg = msg

        def emit(payload: Any, _tid=tid) -> None:
            while conn.poll():
                m = conn.recv()
                if m[0] == "cancel":
                    raise TaskCancelled()
                if m[0] == "stop":
                    raise SystemExit(0)
            conn.send(("progress", _tid, payload))

        try:
            if emit_kwarg is not None:
                kwargs = dict(kwargs)
                kwargs[emit_kwarg] = emit
            result = fn(**kwargs)
            conn.send(("done", tid, result))
        except TaskCancelled:
            conn.send(("cancelled", tid, None))
        except SystemExit:
            return
        except BaseException as exc:
            try:
                conn.send(("error", tid, exc))
            except Exception:
                # unpicklable exception (or unpicklable attributes):
                # transport a plain summary instead of dying silently
                conn.send(
                    ("error", tid, RuntimeError(f"{type(exc).__name__}: {exc}"))
                )


class _Worker:
    """One supervised slot: a live process, its pipe, and its task."""

    __slots__ = ("id", "proc", "conn", "current")

    def __init__(self, wid: int, ctx) -> None:
        self.id = wid
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child,), daemon=True,
            name=f"repro-pool-{wid}",
        )
        self.proc.start()
        child.close()
        self.current: Optional[PoolTask] = None


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------


class SupervisedPool:
    """A fixed-size pool of supervised worker processes.

    Parameters
    ----------
    workers : int
        Worker slots; each is a long-lived process reused across tasks
        and respawned whenever it dies or is killed.
    context : multiprocessing context, optional
        Defaults to the platform default (``fork`` on Linux — fast and
        compatible with closures over already-imported modules).

    Use as a context manager; :meth:`shutdown` is idempotent.
    """

    def __init__(self, workers: int, context=None) -> None:
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self._ctx = context or mp.get_context()
        self._workers: List[_Worker] = [
            _Worker(i, self._ctx) for i in range(workers)
        ]
        self._pending: deque = deque()
        self._ids = itertools.count()
        self._closed = False

    # -- submission ----------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        kwargs: Dict[str, Any],
        label: Optional[str] = None,
        emit_kwarg: Optional[str] = None,
    ) -> PoolTask:
        """Queue ``fn(**kwargs)``; returns the task record immediately.

        The task starts when a worker slot frees up (reported as a
        ``started`` event from :meth:`poll`).  ``fn`` and every value in
        ``kwargs`` must be picklable.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        task = PoolTask(
            id=next(self._ids),
            label=label if label is not None else f"task[{fn.__name__}]",
            fn=fn,
            kwargs=kwargs,
            emit_kwarg=emit_kwarg,
        )
        self._pending.append(task)
        return task

    @property
    def idle_workers(self) -> int:
        return sum(1 for w in self._workers if w.current is None)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- event loop ----------------------------------------------------

    def _dispatch(self, events: List[PoolEvent]) -> None:
        for worker in self._workers:
            if not self._pending:
                break
            if worker.current is not None:
                continue
            task = self._pending.popleft()
            if task.state == CANCELLED:  # cancelled while pending
                continue
            worker.conn.send(
                ("task", task.id, task.fn, task.kwargs, task.emit_kwarg)
            )
            worker.current = task
            task.worker_id = worker.id
            task.state = RUNNING
            task.started_at = time.monotonic()
            events.append(PoolEvent("started", task))

    def _finish(self, task: PoolTask, state: str) -> None:
        task.state = state
        task.ended_at = time.monotonic()

    def _handle_message(self, worker: _Worker, msg, events: List[PoolEvent]) -> None:
        kind, tid, payload = msg
        task = worker.current
        if task is None or task.id != tid:
            # message for a task we already force-killed; drop it
            return
        if kind == "progress":
            events.append(PoolEvent("progress", task, payload))
            return
        if kind == "done":
            task.result = payload
            self._finish(task, DONE)
        elif kind == "error":
            task.error = payload
            self._finish(task, ERROR)
        elif kind == "cancelled":
            self._finish(task, CANCELLED)
        worker.current = None
        events.append(PoolEvent(kind, task, payload))

    def _respawn(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        fresh = _Worker(worker.id, self._ctx)
        self._workers[self._workers.index(worker)] = fresh

    def poll(self, timeout: float = 0.0) -> List[PoolEvent]:
        """Dispatch pending tasks and collect events for up to ``timeout``
        seconds (0 = only what is already available).

        Returns immediately once at least one event is available;
        ``started`` events from dispatching count.
        """
        events: List[PoolEvent] = []
        self._dispatch(events)
        deadline = time.monotonic() + max(timeout, 0.0)
        first = True
        while True:
            wait_s = 0.0 if (events or not first) else max(
                deadline - time.monotonic(), 0.0
            )
            first = False
            sources: Dict[Any, _Worker] = {}
            for w in self._workers:
                sources[w.conn] = w
                sources[w.proc.sentinel] = w
            ready = _mp_wait(list(sources), timeout=wait_s)
            if not ready:
                break
            dead: List[_Worker] = []
            for r in ready:
                worker = sources[r]
                if r is worker.conn:
                    # drain everything the worker has sent so far;
                    # results beat sentinel-based crash detection when a
                    # worker finished a task and then died
                    try:
                        while worker.conn.poll():
                            self._handle_message(worker, worker.conn.recv(), events)
                    except (EOFError, OSError):
                        if worker not in dead:
                            dead.append(worker)
                elif not worker.proc.is_alive():
                    if worker not in dead:
                        dead.append(worker)
            for worker in dead:
                # flush any result that raced the death
                try:
                    while worker.conn.poll():
                        self._handle_message(worker, worker.conn.recv(), events)
                except (EOFError, OSError):
                    pass
                task = worker.current
                exitcode = worker.proc.exitcode
                worker.current = None
                self._respawn(worker)
                if task is not None and not task.terminal:
                    task.exitcode = exitcode
                    self._finish(task, CRASHED)
                    events.append(PoolEvent("crashed", task, exitcode))
            self._dispatch(events)
        return events

    # -- control -------------------------------------------------------

    def request_cancel(self, task: PoolTask) -> bool:
        """Ask a task to stop cooperatively.

        A pending task is cancelled immediately (and reported ``True``);
        a running task gets a ``cancel`` message it will observe at its
        next ``emit`` call — a task that never emits must be
        :meth:`kill`-ed instead.  Returns False for terminal tasks.
        """
        if task.terminal:
            return False
        if task.state == PENDING:
            self._finish(task, CANCELLED)
            return True
        worker = self._worker_of(task)
        if worker is not None:
            try:
                worker.conn.send(("cancel", task.id))
            except (OSError, ValueError):
                return False
        return True

    def kill(self, task: PoolTask, state: str = KILLED) -> bool:
        """Forcibly terminate the worker running ``task`` and respawn it.

        The deadline/hang-enforcement primitive: the worker process is
        gone within ``terminate()`` semantics, the slot is respawned, the
        task is marked ``state`` (default ``killed``).  Returns False if
        the task was not running.
        """
        if task.state == PENDING:
            self._finish(task, state)
            try:
                self._pending.remove(task)
            except ValueError:
                pass
            return True
        worker = self._worker_of(task)
        if worker is None:
            return False
        worker.current = None
        self._finish(task, state)
        self._respawn(worker)
        return True

    def _worker_of(self, task: PoolTask) -> Optional[_Worker]:
        for w in self._workers:
            if w.current is task:
                return w
        return None

    def shutdown(self) -> None:
        """Stop all workers (idempotent); pending tasks are dropped."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        for w in self._workers:
            try:
                w.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for w in self._workers:
            w.proc.join(timeout=1.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            try:
                w.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SupervisedPool(workers={len(self._workers)}, "
            f"idle={self.idle_workers}, pending={len(self._pending)})"
        )
