"""Structured tracing for the solver hot paths.

The paper's performance argument is an accounting exercise: bytes moved
and instructions issued per kernel (Fig. 4, Fig. 11, the "46 spare
instructions" budget).  This module provides the observation side of
that accounting — a :class:`Tracer` with *nested spans* (wall-clock
intervals forming a tree: ``restart/arnoldi/orthogonalize/basis_read``)
and *counters* (monotonic tallies such as ``frsz2.compress.values``) —
so a solve can report where its time and traffic actually went.

Design constraints:

* **Zero overhead by default.**  Every instrumented call site holds a
  tracer reference that defaults to the shared :data:`NULL_TRACER`,
  whose operations are no-ops; hot loops additionally guard counter
  updates with ``if tracer.enabled``.  With the null tracer the solver
  is bit-identical to the un-instrumented code (tracing never touches
  numerics either way).
* **Strict nesting.**  Spans are context managers; the tracer keeps a
  stack, so each finished span knows its slash-joined path and how much
  of its time was spent in direct children (for exclusive-time
  attribution).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "PhaseTotal",
    "NullTracer",
    "Tracer",
    "ScopedTracer",
    "NULL_TRACER",
]


class _NullSpan:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer every instrumented object holds by default.

    ``enabled`` is False so hot paths can skip even the argument
    construction of a counter update.  All methods are safe no-ops;
    queries return empty aggregates.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    @property
    def spans(self) -> List["SpanRecord"]:
        return []

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    def total_seconds(self, name: str, under: Optional[str] = None) -> float:
        return 0.0

    def by_name(self) -> Dict[str, "PhaseTotal"]:
        return {}

    def reset(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: the shared default tracer (stateless, safe to share globally)
NULL_TRACER = NullTracer()


@dataclass
class SpanRecord:
    """One finished span: a named wall-clock interval in the span tree."""

    name: str
    #: slash-joined ancestry, e.g. ``restart/arnoldi/spmv``
    path: str
    depth: int
    start: float
    end: float = 0.0
    #: wall seconds spent inside *direct* child spans
    child_seconds: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Inclusive duration (children included)."""
        return self.end - self.start

    @property
    def exclusive_seconds(self) -> float:
        """Duration minus time attributed to direct children."""
        return max(self.seconds - self.child_seconds, 0.0)


@dataclass
class PhaseTotal:
    """Aggregate over all spans sharing a name."""

    count: int = 0
    seconds: float = 0.0
    exclusive_seconds: float = 0.0


class _LiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_rec")

    def __init__(self, tracer: "Tracer", rec: SpanRecord) -> None:
        self._tracer = tracer
        self._rec = rec

    def __enter__(self) -> SpanRecord:
        return self._rec

    def __exit__(self, *exc: object) -> bool:
        self._tracer._finish(self._rec)
        return False


class Tracer:
    """Collect nested spans and counters from instrumented call sites.

    Attach one tracer to every cooperating object of a run (solver,
    basis, accessors, codec, matrix) so their spans share one tree and
    their counters one namespace; see ``repro.bench.perf`` for the
    canonical wiring.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stack: List[SpanRecord] = []
        #: finished spans in completion order
        self.spans: List[SpanRecord] = []
        #: counter name -> accumulated value
        self.counters: Dict[str, float] = {}

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a nested span; use as ``with tracer.span("spmv"): ...``.

        Parameters
        ----------
        name : str
            Span name; repeated names aggregate in :meth:`by_name`.
        **attrs
            Arbitrary key/value annotations stored on the record
            (e.g. ``slot=3``, ``vectors=j``).

        Returns
        -------
        context manager
            Entering returns the live :class:`SpanRecord`; exiting
            stamps the end time and attributes child time to the
            parent.
        """
        parent = self._stack[-1] if self._stack else None
        rec = SpanRecord(
            name=name,
            path=f"{parent.path}/{name}" if parent else name,
            depth=len(self._stack),
            start=self._clock(),
            attrs=attrs,
        )
        self._stack.append(rec)
        return _LiveSpan(self, rec)

    def _finish(self, rec: SpanRecord) -> None:
        rec.end = self._clock()
        # spans are context managers, so nesting is structural; tolerate
        # a mismatched stack anyway (an inner span leaked by a hook)
        while self._stack and self._stack[-1] is not rec:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self._stack:
            self._stack[-1].child_seconds += rec.seconds
        self.spans.append(rec)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero).

        Parameters
        ----------
        name : str
            Dotted counter name (``frsz2.compress.values``,
            ``accessor.cache.hits``, ...).  One flat namespace per
            tracer.
        value : int or float, default 1
            Increment; tallies are monotone by convention.
        """
        self.counters[name] = self.counters.get(name, 0) + value

    def reset(self) -> None:
        """Drop all finished spans and counters (open spans survive)."""
        self.spans.clear()
        self.counters.clear()

    # -- aggregation ----------------------------------------------------

    def total_seconds(self, name: str, under: Optional[str] = None) -> float:
        """Inclusive seconds of all spans named ``name``.

        With ``under``, only spans nested (at any depth) inside a span of
        that name are summed — e.g. ``total_seconds("basis_read",
        under="update")`` isolates the solution-update reads from the
        orthogonalization reads.
        """
        total = 0.0
        needle = None if under is None else f"/{under}/"
        for rec in self.spans:
            if rec.name != name:
                continue
            if needle is not None:
                # ancestry = path with the leaf name stripped off
                ancestry = "/" + rec.path[: len(rec.path) - len(name)]
                if needle not in ancestry:
                    continue
            total += rec.seconds
        return total

    def by_name(self) -> Dict[str, PhaseTotal]:
        """Aggregate spans by name: count, inclusive and exclusive time."""
        out: Dict[str, PhaseTotal] = {}
        for rec in self.spans:
            agg = out.setdefault(rec.name, PhaseTotal())
            agg.count += 1
            agg.seconds += rec.seconds
            agg.exclusive_seconds += rec.exclusive_seconds
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, counters={len(self.counters)}, "
            f"open={len(self._stack)})"
        )


class ScopedTracer:
    """A tracer view that prefixes every span and counter name.

    Multi-tenant call sites — the :mod:`repro.serve` job engine in
    particular — funnel many jobs' observations through *one* underlying
    tracer.  Without scoping their counters collide (job A's
    ``attempts`` is indistinguishable from job B's); with a scope each
    job gets its own dotted namespace::

        job_tracer = ScopedTracer(engine_tracer, f"serve.job.{job_id}")
        job_tracer.count("retries")     # -> serve.job.<id>.retries
        with job_tracer.span("attempt"):  # span named serve.job.<id>.attempt
            ...

    Scopes nest (``scope()`` on a scoped tracer concatenates prefixes)
    and wrapping the :data:`NULL_TRACER` stays a zero-overhead no-op
    (``enabled`` mirrors the base tracer, so guarded hot paths skip
    work exactly as before).
    """

    __slots__ = ("base", "prefix")

    def __init__(self, base, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self.base = base
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def span(self, name: str, **attrs: Any):
        return self.base.span(self._qualify(name), **attrs)

    def count(self, name: str, value: float = 1) -> None:
        self.base.count(self._qualify(name), value)

    def scope(self, prefix: str) -> "ScopedTracer":
        """A child scope: ``scope("x").scope("y")`` prefixes ``x.y.``."""
        return ScopedTracer(self.base, self._qualify(prefix))

    @property
    def counters(self) -> Dict[str, float]:
        """The base tracer's counters restricted to this scope,
        returned with the prefix stripped."""
        needle = self.prefix + "."
        return {
            name[len(needle):]: value
            for name, value in self.base.counters.items()
            if name.startswith(needle)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScopedTracer({self.prefix!r}, base={self.base!r})"
