"""repro.observe — structured tracing and metrics for the hot paths.

A :class:`Tracer` collects nested wall-clock spans and named counters
from every instrumented layer (CB-GMRES solver, Krylov basis, accessors,
FRSZ2 codec, CSR SpMV).  The default everywhere is the zero-overhead
:data:`NULL_TRACER`, so un-instrumented use is unchanged.  The benchmark
runner (``python -m repro bench``) wires one tracer through a whole
solve and merges the observed spans with the GPU timing model's
predicted per-kernel times into a per-phase attribution report.
:class:`ScopedTracer` gives multi-tenant call sites (the
:mod:`repro.serve` job engine) a per-job namespace over one shared
tracer, so concurrent jobs' spans and counters never collide.
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    PhaseTotal,
    ScopedTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseTotal",
    "ScopedTracer",
    "SpanRecord",
    "Tracer",
]
