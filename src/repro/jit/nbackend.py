"""Numba ``@njit`` kernel engine (the ``[jit]`` optional extra).

The preferred JIT engine: the same scalar kernels as
:mod:`repro.jit.cbackend`, expressed as Numba ``nopython`` functions.
Importing this module raises ``ImportError`` when Numba is absent;
:func:`repro.jit.dispatch.load_engine` then falls through to the C
engine and, failing that, to numpy with a
:class:`~repro.jit.dispatch.JitUnavailableWarning`.

Bit-identity notes
------------------
* float64 inputs/outputs are reinterpreted as ``uint64`` *outside* the
  kernels (zero-copy views), so the codec kernels are pure integer bit
  manipulation — byte-equal to the reference by construction.
* all integer locals are kept strictly ``uint64``/``int64``; mixing the
  two would make Numba promote to float64 and silently change bits.
* Numba does not apply fast-math or FMA contraction by default, so the
  SpMV accumulations round exactly like the numpy reference; the
  engine self-test (:mod:`repro.jit.selftest`) verifies this before
  the engine is accepted.
"""

from __future__ import annotations

import numpy as np

from numba import njit  # noqa: F401 - ImportError here disables the engine

__all__ = ["NumbaEngine"]

_U64 = np.uint64
_MANTISSA_MASK = np.uint64(0xFFFFFFFFFFFFF)
_IMPLICIT_BIT = np.uint64(1) << np.uint64(52)
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@njit(cache=True)
def _mask(width):
    if width >= 64:
        return _ONES
    return (_U64(1) << _U64(width)) - _U64(1)


@njit(cache=True)
def _put_chunk(words, bitpos, chunk, nbits):
    if nbits <= 0:
        return
    v = (chunk & _mask(nbits)) << _U64(bitpos & 31)
    wi = bitpos >> 5
    words[wi] |= np.uint32(v & _U64(0xFFFFFFFF))
    hi = np.uint32(v >> _U64(32))
    if hi:
        words[wi + 1] |= hi


@njit(cache=True)
def _get_chunk(words, bitpos, nbits):
    wi = bitpos >> 5
    off = bitpos & 31
    nxt = wi + 1
    if nxt > words.size - 1:
        nxt = words.size - 1
    lo = _U64(words[wi])
    hi = _U64(words[nxt])
    if off == 0:
        combined = lo
    else:
        combined = (lo >> _U64(off)) | (hi << _U64(32 - off))
    return combined & _mask(nbits)


@njit(cache=True)
def _pack_at(words, bitpos, fields, widths):
    for i in range(fields.size):
        w = widths[i]
        val = fields[i] & _mask(w)
        lo_bits = w if w < 32 else 32
        _put_chunk(words, bitpos[i], val, lo_bits)
        if w > 32:
            _put_chunk(words, bitpos[i] + 32, val >> _U64(32), w - 32)


@njit(cache=True)
def _unpack_at(words, bitpos, widths, out):
    for i in range(bitpos.size):
        w = widths[i]
        lo_bits = w if w < 32 else 32
        val = _get_chunk(words, bitpos[i], lo_bits)
        if w > 32:
            val |= _get_chunk(words, bitpos[i] + 32, w - 32) << _U64(32)
        out[i] = val


@njit(cache=True)
def _encode(xbits, n, bs, l, rounding, fields, e_max_out):
    nb = (n + bs - 1) // bs
    for b in range(nb):
        i0 = b * bs
        i1 = min(i0 + bs, n)
        e_max = _U64(1)
        for i in range(i0, i1):
            bits = xbits[i]
            be = (bits >> _U64(52)) & _U64(0x7FF)
            if be == _U64(0x7FF):
                return i + 1
            e_eff = be if be != _U64(0) else _U64(1)
            if e_eff > e_max:
                e_max = e_eff
        e_max_out[b] = np.int32(e_max)
        for i in range(i0, i1):
            bits = xbits[i]
            be = (bits >> _U64(52)) & _U64(0x7FF)
            sign = bits >> _U64(63)
            e_eff = be if be != _U64(0) else _U64(1)
            sig53 = bits & _MANTISSA_MASK
            if be != _U64(0):
                sig53 |= _IMPLICIT_BIT
            k = np.int64(e_max) - np.int64(e_eff)
            shift = np.int64(54 - l) + k
            base = sig53
            if rounding:
                half_bit = shift - 1
                if half_bit < 0:
                    half_bit = 0
                if half_bit > 63:
                    half_bit = 63
                if shift > 0 and shift <= 54:
                    base = sig53 + (_U64(1) << _U64(half_bit))
            pos = shift
            if pos < 0:
                pos = 0
            if pos > 63:
                pos = 63
            neg = -shift
            if neg < 0:
                neg = 0
            if neg > 63:
                neg = 63
            c_sig = (base >> _U64(pos)) << _U64(neg)
            if rounding:
                limit = (_U64(1) << _U64(l - 1)) - _U64(1)
                if c_sig > limit:
                    c_sig = limit
            fields[i] = (sign << _U64(l - 1)) | c_sig
    return 0


@njit(cache=True)
def _decode_field(f, e_max, l):
    sig_mask = (_U64(1) << _U64(l - 1)) - _U64(1)
    sign = f >> _U64(l - 1)
    c_sig = f & sig_mask
    bits = sign << _U64(63)
    if c_sig != _U64(0):
        hsb = np.int64(63)
        probe = c_sig
        while (probe >> _U64(63)) == _U64(0):
            probe = probe << _U64(1)
            hsb -= 1
        e = e_max - (np.int64(l) - 2 - hsb)
        if e >= 1:
            up = 52 - hsb
            if up < 0:
                up = 0
            down = hsb - 52
            if down < 0:
                down = 0
            sig53 = (c_sig >> _U64(down)) << _U64(up)
            bits |= (_U64(e) & _U64(0x7FF)) << _U64(52)
            bits |= sig53 & _MANTISSA_MASK
    return bits


@njit(cache=True)
def _decode_fields(fields, e_max, l, out_bits):
    for i in range(fields.size):
        out_bits[i] = _decode_field(fields[i], e_max[i], l)


@njit(cache=True)
def _pack_stream(fields, n, bs, l, wpb, words):
    for i in range(n):
        block = i // bs
        bitpos = block * wpb * 32 + (i - block * bs) * l
        lo_bits = l if l < 32 else 32
        _put_chunk(words, bitpos, fields[i], lo_bits)
        if l > 32:
            _put_chunk(words, bitpos + 32, fields[i] >> _U64(32), l - 32)


@njit(cache=True)
def _read_slot_packed(words, i, bs, l, wpb):
    block = i // bs
    bitpos = block * wpb * 32 + (i - block * bs) * l
    lo_bits = l if l < 32 else 32
    val = _get_chunk(words, bitpos, lo_bits)
    if l > 32:
        val |= _get_chunk(words, bitpos + 32, l - 32) << _U64(32)
    return val


@njit(cache=True)
def _decode_stream_aligned(payload, exponents, n, bs, l, out_bits):
    for i in range(n):
        out_bits[i] = _decode_field(
            _U64(payload[i]), np.int64(exponents[i // bs]), l
        )


@njit(cache=True)
def _decode_stream_packed(words, exponents, n, bs, l, wpb, out_bits):
    for i in range(n):
        f = _read_slot_packed(words, i, bs, l, wpb)
        out_bits[i] = _decode_field(f, np.int64(exponents[i // bs]), l)


@njit(cache=True)
def _decode_gather_aligned(payload, exponents, idx, bs, l, out_bits):
    for i in range(idx.size):
        j = idx[i]
        out_bits[i] = _decode_field(
            _U64(payload[j]), np.int64(exponents[j // bs]), l
        )


@njit(cache=True)
def _decode_gather_packed(words, exponents, idx, bs, l, wpb, out_bits):
    for i in range(idx.size):
        j = idx[i]
        f = _read_slot_packed(words, j, bs, l, wpb)
        out_bits[i] = _decode_field(f, np.int64(exponents[j // bs]), l)


@njit(cache=True)
def _csr_matvec(rows, cols, data, x, y):
    for r in range(y.size):
        y[r] = 0.0
    for i in range(data.size):
        y[rows[i]] += data[i] * x[cols[i]]


@njit(cache=True)
def _ell_matvec(cols_t, vals_t, x, y):
    width, m = cols_t.shape
    if width == 0:
        for r in range(m):
            y[r] = 0.0
        return
    for r in range(m):
        y[r] = vals_t[0, r] * x[cols_t[0, r]]
    for s in range(1, width):
        for r in range(m):
            y[r] += vals_t[s, r] * x[cols_t[s, r]]


@njit(cache=True)
def _sell_group_matvec(rows, cols_t, vals_t, x, y):
    width, g = cols_t.shape
    for r in range(g):
        acc = vals_t[0, r] * x[cols_t[0, r]]
        for s in range(1, width):
            acc += vals_t[s, r] * x[cols_t[s, r]]
        y[rows[r]] = acc


@njit(cache=True)
def _lower_unit_trisolve(indptr, indices, data, y):
    for i in range(y.size):
        s = y[i]
        for k in range(indptr[i], indptr[i + 1]):
            s -= data[k] * y[indices[k]]
        y[i] = s


@njit(cache=True)
def _upper_trisolve(indptr, indices, data, udiag, y):
    for i in range(y.size - 1, -1, -1):
        s = y[i]
        for k in range(indptr[i], indptr[i + 1]):
            s -= data[k] * y[indices[k]]
        y[i] = s / udiag[i]


@njit(cache=True)
def _block_diag_apply(blocks, v, bs, n, out):
    nb = (n + bs - 1) // bs
    for b in range(nb):
        lo = b * bs
        hi = min(lo + bs, n)
        base = b * bs * bs
        for i in range(lo, hi):
            s = 0.0
            row = base + (i - lo) * bs
            for k in range(lo, hi):
                s += blocks[row + (k - lo)] * v[k]
            out[i] = s


class NumbaEngine:
    """Engine facade over the ``@njit`` kernels (same API as ``CEngine``)."""

    name = "numba"

    # -- bitpack ------------------------------------------------------

    def pack_at(self, words, bitpos, fields, widths) -> None:
        from ..core import bitpack

        if words.dtype != np.uint32:
            raise TypeError("words must be uint32")
        bitpos = np.asarray(bitpos, dtype=np.int64)
        fields = np.asarray(fields, dtype=np.uint64)
        widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), fields.shape)
        if bitpos.shape != fields.shape:
            raise ValueError("bitpos and fields must have the same shape")
        if fields.size == 0:
            return
        if np.any(widths < 1) or np.any(widths > 64):
            raise ValueError("widths must be in [1, 64]")
        if np.any(fields & ~bitpack._field_mask(widths)):
            raise ValueError("field value exceeds its declared width")
        bitpack._check_bounds(bitpos, widths, words.size)
        if not words.flags.c_contiguous:
            bitpack.pack_at(words, bitpos, fields, widths)
            return
        _pack_at(
            words,
            np.ascontiguousarray(bitpos),
            np.ascontiguousarray(fields),
            np.ascontiguousarray(widths),
        )

    def unpack_at(self, words, bitpos, widths) -> np.ndarray:
        from ..core import bitpack

        if words.dtype != np.uint32:
            raise TypeError("words must be uint32")
        bitpos = np.asarray(bitpos, dtype=np.int64)
        widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), bitpos.shape)
        if bitpos.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if np.any(widths < 1) or np.any(widths > 64):
            raise ValueError("widths must be in [1, 64]")
        bitpack._check_bounds(bitpos, widths, words.size)
        out = np.empty(bitpos.shape, dtype=np.uint64)
        _unpack_at(
            np.ascontiguousarray(words),
            np.ascontiguousarray(bitpos),
            np.ascontiguousarray(widths),
            out,
        )
        return out

    # -- FRSZ2 codec --------------------------------------------------

    def encode_fields(self, x, bit_length, block_size, rounding):
        x = np.ascontiguousarray(x, dtype=np.float64)
        n = x.size
        nb = -(-n // block_size)
        fields = np.empty(n, dtype=np.uint64)
        e_max = np.empty(nb, dtype=np.int32)
        if n:
            rc = _encode(
                x.view(np.uint64), n, block_size, bit_length,
                bool(rounding), fields, e_max,
            )
            if rc:
                raise ValueError("FRSZ2 does not support NaN or Inf inputs")
        return fields, e_max

    def decode_fields(self, fields, e_max_per_value, bit_length) -> np.ndarray:
        fields = np.ascontiguousarray(fields, dtype=np.uint64)
        e_max = np.ascontiguousarray(e_max_per_value, dtype=np.int64)
        out = np.empty(fields.size, dtype=np.float64)
        if fields.size:
            _decode_fields(fields, e_max, bit_length, out.view(np.uint64))
        return out

    def pack_stream(self, fields, layout) -> np.ndarray:
        fields = np.ascontiguousarray(fields, dtype=np.uint64)
        words = np.zeros(layout.value_words, dtype=np.uint32)
        if fields.size:
            _pack_stream(
                fields, fields.size, layout.block_size, layout.bit_length,
                layout.words_per_block, words,
            )
        return words

    def decode_stream(self, comp, out) -> np.ndarray:
        layout = comp.layout
        if comp.n == 0:
            return out
        exponents = np.ascontiguousarray(comp.exponents, dtype=np.int32)
        if layout.is_aligned:
            _decode_stream_aligned(
                comp.payload, exponents, comp.n, layout.block_size,
                layout.bit_length, out.view(np.uint64),
            )
        else:
            _decode_stream_packed(
                comp.payload, exponents, comp.n, layout.block_size,
                layout.bit_length, layout.words_per_block,
                out.view(np.uint64),
            )
        return out

    def decode_gather(self, comp, indices, out=None) -> np.ndarray:
        layout = comp.layout
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if out is None:
            out = np.empty(indices.size, dtype=np.float64)
        if indices.size == 0:
            return out
        exponents = np.ascontiguousarray(comp.exponents, dtype=np.int32)
        if layout.is_aligned:
            _decode_gather_aligned(
                comp.payload, exponents, indices, layout.block_size,
                layout.bit_length, out.view(np.uint64),
            )
        else:
            _decode_gather_packed(
                comp.payload, exponents, indices, layout.block_size,
                layout.bit_length, layout.words_per_block,
                out.view(np.uint64),
            )
        return out

    # -- SpMV ---------------------------------------------------------

    def csr_matvec(self, rows, cols, data, x, m) -> np.ndarray:
        y = np.empty(m, dtype=np.float64)
        _csr_matvec(rows, cols, data, np.ascontiguousarray(x, np.float64), y)
        return y

    def ell_matvec(self, cols_t, vals_t, x, work, out) -> np.ndarray:
        m = cols_t.shape[1]
        y = out if out is not None and out.flags.c_contiguous else np.empty(m)
        _ell_matvec(cols_t, vals_t, np.ascontiguousarray(x, np.float64), y)
        if out is not None and y is not out:
            out[:] = y
            return out
        return y

    def sell_group_matvec(self, rows, cols_t, vals_t, x, work, y) -> None:
        x = np.ascontiguousarray(x, np.float64)
        if y.flags.c_contiguous:
            _sell_group_matvec(rows, cols_t, vals_t, x, y)
            return
        tmp = np.empty(rows.size, dtype=np.float64)
        _sell_group_matvec(
            np.arange(rows.size, dtype=np.int64), cols_t, vals_t, x, tmp
        )
        y[rows] = tmp

    # -- preconditioner applies ---------------------------------------

    def lower_unit_trisolve(self, indptr, indices, data, b) -> np.ndarray:
        y = np.array(b, dtype=np.float64)
        _lower_unit_trisolve(
            np.ascontiguousarray(indptr, np.int64),
            np.ascontiguousarray(indices, np.int64),
            np.ascontiguousarray(data, np.float64),
            y,
        )
        return y

    def upper_trisolve(self, indptr, indices, data, udiag, b) -> np.ndarray:
        y = np.array(b, dtype=np.float64)
        _upper_trisolve(
            np.ascontiguousarray(indptr, np.int64),
            np.ascontiguousarray(indices, np.int64),
            np.ascontiguousarray(data, np.float64),
            np.ascontiguousarray(udiag, np.float64),
            y,
        )
        return y

    def block_diag_apply(self, blocks, v, bs, n) -> np.ndarray:
        out = np.empty(int(n), dtype=np.float64)
        _block_diag_apply(
            np.ascontiguousarray(blocks, np.float64),
            np.ascontiguousarray(v, np.float64),
            int(bs),
            int(n),
            out,
        )
        return out
