"""Bit-identity self-test every JIT engine must pass before acceptance.

:func:`repro.jit.dispatch.load_engine` runs :func:`run` on each engine
candidate; any mismatch (or crash) rejects the engine and the loader
falls through to the next candidate, ultimately to the numpy backend.
This is the first line of the byte-equality contract — the parametrized
backend suite in ``tests/test_jit.py`` is the second.

The inputs deliberately cover the codec's edge geometry: straddling and
aligned bit lengths, partial trailing blocks, rounding carries, signed
zeros, subnormals, and huge dynamic range within one block.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run"]


def _expect(ok: bool, what: str) -> None:
    if not ok:
        raise AssertionError(f"jit self-test mismatch: {what}")


def _sample_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Finite float64 values exercising every codec branch."""
    x = rng.standard_normal(n) * np.exp2(rng.integers(-320, 300, n).astype(float))
    x[:: 7] = 0.0
    x[1:: 11] = -0.0
    x[2:: 13] = 5e-324  # subnormal
    x[3:: 17] = -1.7976931348623157e308
    return x


def _check_bitpack(engine, rng: np.random.Generator) -> None:
    from ..core import bitpack

    n = 257
    widths = rng.integers(1, 65, n)
    bitpos = np.concatenate([[0], np.cumsum(widths)[:-1]])
    fields = rng.integers(0, 1 << 62, n, dtype=np.uint64) & bitpack._field_mask(
        widths
    )
    nwords = bitpack.words_needed(int(bitpos[-1] + widths[-1]))
    ref = np.zeros(nwords, dtype=np.uint32)
    bitpack.pack_at(ref, bitpos, fields, widths)
    got = np.zeros(nwords, dtype=np.uint32)
    engine.pack_at(got, bitpos, fields, widths)
    _expect(np.array_equal(ref, got), "bitpack.pack_at")
    _expect(
        np.array_equal(
            bitpack.unpack_at(ref, bitpos, widths),
            engine.unpack_at(ref, bitpos, widths),
        ),
        "bitpack.unpack_at",
    )


def _check_codec(engine, rng: np.random.Generator) -> None:
    from ..core.frsz2 import FRSZ2

    x = _sample_values(rng, 203)  # partial trailing block for bs in {32, 5}
    for bit_length in (16, 21, 32, 51, 64):
        for rounding in (False, True):
            for block_size in (32, 5):
                codec = FRSZ2(
                    bit_length=bit_length,
                    block_size=block_size,
                    rounding=rounding,
                )
                tag = f"l={bit_length} bs={block_size} rounding={rounding}"
                ref_fields, ref_emax = codec._encode_fields(x)
                fields, emax = engine.encode_fields(
                    x, bit_length, block_size, rounding
                )
                _expect(
                    np.array_equal(ref_fields, fields)
                    and np.array_equal(ref_emax, emax),
                    f"frsz2.encode_fields ({tag})",
                )
                comp = codec.compress(x)
                layout = comp.layout
                if not layout.is_aligned:
                    _expect(
                        np.array_equal(
                            comp.payload, engine.pack_stream(fields, layout)
                        ),
                        f"frsz2.pack_stream ({tag})",
                    )
                ref_full = codec.decompress(comp)
                got_full = engine.decode_stream(comp, np.empty(x.size))
                _expect(
                    np.array_equal(
                        ref_full.view(np.uint64), got_full.view(np.uint64)
                    ),
                    f"frsz2.decode_stream ({tag})",
                )
                idx = rng.integers(0, x.size, 97)
                ref_some = codec.get(comp, idx)
                got_some = engine.decode_gather(comp, idx)
                _expect(
                    np.array_equal(
                        ref_some.view(np.uint64), got_some.view(np.uint64)
                    ),
                    f"frsz2.decode_gather ({tag})",
                )
                e_pv = comp.exponents.astype(np.int64)[idx // block_size]
                ref_dec = codec._decode_fields(ref_fields[idx], e_pv)
                got_dec = engine.decode_fields(ref_fields[idx], e_pv, bit_length)
                _expect(
                    np.array_equal(
                        ref_dec.view(np.uint64), got_dec.view(np.uint64)
                    ),
                    f"frsz2.decode_fields ({tag})",
                )


def _check_spmv(engine, rng: np.random.Generator) -> None:
    from ..sparse.csr import CSRMatrix
    from ..sparse.ell import ELLMatrix
    from ..sparse.sell import SELLMatrix

    m = 70
    density = 0.15
    mask = rng.random((m, m)) < density
    np.fill_diagonal(mask, True)
    dense = np.where(mask, rng.standard_normal((m, m)), 0.0)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(mask.sum(axis=1), out=indptr[1:])
    cols = np.nonzero(mask)[1].astype(np.int64)
    data = dense[mask]
    a = CSRMatrix((m, m), indptr, cols, data)
    x = rng.standard_normal(m)

    ref = a.matvec(x)
    got = engine.csr_matvec(a._rows, a.indices, a.data, x, m)
    _expect(np.array_equal(ref.view(np.uint64), got.view(np.uint64)),
            "spmv.csr_matvec")

    ell = ELLMatrix.from_csr(a)
    got = engine.ell_matvec(ell.cols_t, ell.vals_t, x, None, None)
    _expect(np.array_equal(ref.view(np.uint64), got.view(np.uint64)),
            "spmv.ell_matvec")

    sell = SELLMatrix.from_csr(a, slice_size=8, sigma=16)
    y = np.zeros(m)
    for rows, cols_t, vals_t, _ in sell._groups:
        engine.sell_group_matvec(rows, cols_t, vals_t, x, None, y)
    _expect(np.array_equal(ref.view(np.uint64), y.view(np.uint64)),
            "spmv.sell_group_matvec")


def _check_prec(engine, rng: np.random.Generator) -> None:
    from ..solvers import prec_kernels

    n = 83
    # random strictly-triangular patterns with ~6 entries per row
    lower_rows = [
        np.unique(rng.integers(0, i, min(6, i))) if i else np.empty(0, np.int64)
        for i in range(n)
    ]
    l_ip = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([r.size for r in lower_rows], out=l_ip[1:])
    l_cols = np.concatenate(lower_rows).astype(np.int64)
    l_vals = rng.standard_normal(l_cols.size)
    b = rng.standard_normal(n) * np.exp2(rng.integers(-30, 30, n).astype(float))

    ref = prec_kernels.lower_unit_trisolve_numpy(l_ip, l_cols, l_vals, b)
    got = engine.lower_unit_trisolve(l_ip, l_cols, l_vals, b)
    _expect(np.array_equal(ref.view(np.uint64), got.view(np.uint64)),
            "prec.lower_trisolve")

    upper_rows = [
        np.unique(rng.integers(i + 1, n, min(6, n - 1 - i)))
        if i < n - 1
        else np.empty(0, np.int64)
        for i in range(n)
    ]
    u_ip = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([r.size for r in upper_rows], out=u_ip[1:])
    u_cols = np.concatenate(upper_rows).astype(np.int64)
    u_vals = rng.standard_normal(u_cols.size)
    udiag = rng.standard_normal(n) + np.sign(rng.standard_normal(n)) * 2.0

    ref = prec_kernels.upper_trisolve_numpy(u_ip, u_cols, u_vals, udiag, b)
    got = engine.upper_trisolve(u_ip, u_cols, u_vals, udiag, b)
    _expect(np.array_equal(ref.view(np.uint64), got.view(np.uint64)),
            "prec.upper_trisolve")

    for bs in (8, 7):  # aligned and partial trailing block
        nb = -(-n // bs)
        blocks = rng.standard_normal(nb * bs * bs)
        ref = prec_kernels.block_diag_apply_numpy(blocks, b, bs, n)
        got = engine.block_diag_apply(blocks, b, bs, n)
        _expect(np.array_equal(ref.view(np.uint64), got.view(np.uint64)),
                f"prec.block_diag_apply (bs={bs})")


def run(engine) -> None:
    """Raise unless ``engine`` reproduces the numpy kernels bit-for-bit."""
    rng = np.random.default_rng(0xF25F2)
    _check_bitpack(engine, rng)
    _check_codec(engine, rng)
    _check_spmv(engine, rng)
    _check_prec(engine, rng)
