"""Kernel-dispatch registry and backend resolution.

Every hot kernel of the reproduction — the bitpack scatter/gather, the
FRSZ2 encode/decode block loops, the CSR/ELL/SELL SpMV kernels and the
fused tile reductions, plus the preconditioner triangular-solve and
block-diagonal applies — is registered here under a ``(name, backend)``
key.  Components (the codec, the sparse matrices, the solvers) resolve
their kernels through :func:`get_kernel` at construction time, so the
``backend={numpy,jit}`` switch is a single attribute threaded from the
CLI down to the innermost loop.

Backends
--------
``numpy``
    The vectorized reference implementations, registered by the modules
    that define them (:mod:`repro.core.bitpack`, :mod:`repro.core.frsz2`,
    :mod:`repro.sparse`, :mod:`repro.fused`).
``jit``
    Runtime-compiled scalar kernels that replay the *exact* arithmetic
    of the reference (same accumulation order, same rounding, no FMA
    contraction), so results are byte-equal.  Two engines are tried in
    order:

    1. :mod:`repro.jit.nbackend` — Numba ``@njit`` kernels (install via
       the ``[jit]`` extra).
    2. :mod:`repro.jit.cbackend` — C kernels compiled at runtime with
       the system C compiler through cffi.

    Whichever engine loads first must pass a bit-identity self-test
    against the numpy reference before it is accepted; a failing or
    missing engine falls through to the next.  When no engine works,
    :func:`resolve_backend` degrades ``jit`` to ``numpy`` with a
    :class:`JitUnavailableWarning` naming the reason.

The registry is deliberately flat: ``get_kernel`` is called once per
object construction (not per matvec), so dispatch overhead never sits
on the hot path.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "BACKENDS",
    "JitUnavailableWarning",
    "JitUnavailableError",
    "register_kernel",
    "register",
    "get_kernel",
    "registered_kernels",
    "load_engine",
    "jit_available",
    "jit_engine_name",
    "jit_unavailable_reason",
    "resolve_backend",
]

#: accepted values for every ``backend=`` knob
BACKENDS = ("numpy", "jit")


class JitUnavailableWarning(UserWarning):
    """``backend='jit'`` was requested but no JIT engine could be loaded."""


class JitUnavailableError(RuntimeError):
    """A jit kernel was requested while no JIT engine is available."""


_REGISTRY: Dict[Tuple[str, str], Callable] = {}


def register_kernel(name: str, backend: str, fn: Callable) -> Callable:
    """Register ``fn`` as kernel ``name`` for ``backend``; returns ``fn``."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    _REGISTRY[(name, backend)] = fn
    return fn


def register(name: str, backend: str) -> Callable:
    """Decorator form of :func:`register_kernel`."""

    def deco(fn: Callable) -> Callable:
        return register_kernel(name, backend, fn)

    return deco


def get_kernel(name: str, backend: str = "numpy") -> Callable:
    """The kernel registered as ``name`` for ``backend``.

    For ``backend='jit'`` the engine is loaded (and its kernels
    registered) on first use; raises :class:`JitUnavailableError` when
    no engine works — callers are expected to pass a backend that went
    through :func:`resolve_backend` first.
    """
    if backend == "jit":
        _ensure_jit_kernels()
    try:
        return _REGISTRY[(name, backend)]
    except KeyError:
        raise KeyError(
            f"no kernel {name!r} registered for backend {backend!r}"
        ) from None


def registered_kernels(backend: Optional[str] = None) -> List[str]:
    """Sorted kernel names registered for ``backend`` (or all backends)."""
    return sorted(
        {n for (n, b) in _REGISTRY if backend is None or b == backend}
    )


# ----------------------------------------------------------------------
# engine loading
# ----------------------------------------------------------------------

_ENGINE = None
_ENGINE_LOADED = False
_ENGINE_FAILURE: Optional[str] = None


def _load_numba():
    from . import nbackend

    return nbackend.NumbaEngine()


def _load_cffi():
    from . import cbackend

    return cbackend.CEngine()


def load_engine():
    """The process-wide JIT engine, or ``None`` with the reason recorded.

    Engines are tried in preference order (numba, then the cffi/C
    fallback); each candidate must pass :func:`selftest.run` — a
    bit-identity check of every kernel family against the numpy
    reference — before it is accepted.  The result (including failure)
    is cached for the process; set ``REPRO_JIT_DISABLE=1`` to force the
    unavailable path or ``REPRO_JIT_ENGINE={numba,cffi}`` to pin one
    candidate.
    """
    global _ENGINE, _ENGINE_LOADED, _ENGINE_FAILURE
    if _ENGINE_LOADED:
        return _ENGINE
    _ENGINE_LOADED = True
    if os.environ.get("REPRO_JIT_DISABLE"):
        _ENGINE_FAILURE = "disabled via REPRO_JIT_DISABLE"
        return None
    preferred = os.environ.get("REPRO_JIT_ENGINE")
    reasons = []
    for name, loader in (("numba", _load_numba), ("cffi", _load_cffi)):
        if preferred and name != preferred:
            continue
        try:
            engine = loader()
            from . import selftest

            selftest.run(engine)
        except Exception as exc:  # noqa: BLE001 - any failure disables the engine
            reasons.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        _ENGINE = engine
        return engine
    _ENGINE_FAILURE = "; ".join(reasons) or "no engine candidates"
    return None


def jit_available() -> bool:
    """True when a JIT engine loaded and passed its bit-identity self-test."""
    return load_engine() is not None


def jit_engine_name() -> Optional[str]:
    """``'numba'`` / ``'cffi'`` when available, else ``None``."""
    engine = load_engine()
    return engine.name if engine is not None else None


def jit_unavailable_reason() -> Optional[str]:
    """Why no engine loaded (``None`` while one is available)."""
    load_engine()
    return None if _ENGINE is not None else _ENGINE_FAILURE


def _reset_engine_cache() -> None:
    """Testing hook: forget the cached engine/registrations."""
    global _ENGINE, _ENGINE_LOADED, _ENGINE_FAILURE
    _ENGINE = None
    _ENGINE_LOADED = False
    _ENGINE_FAILURE = None
    for key in [k for k in _REGISTRY if k[1] == "jit"]:
        del _REGISTRY[key]


def resolve_backend(backend: Optional[str], warn: bool = True) -> str:
    """Validate a ``backend=`` knob and degrade gracefully.

    ``None`` means ``numpy``.  ``jit`` resolves to itself when an engine
    is available and otherwise falls back to ``numpy``, emitting a
    :class:`JitUnavailableWarning` that names what failed (unless
    ``warn=False``).  Unknown names raise ``ValueError``.
    """
    if backend is None:
        return "numpy"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "jit" and not jit_available():
        if warn:
            warnings.warn(
                f"jit backend unavailable ({jit_unavailable_reason()}); "
                "falling back to numpy",
                JitUnavailableWarning,
                stacklevel=2,
            )
        return "numpy"
    return backend


def _ensure_jit_kernels() -> None:
    """Register the loaded engine's kernels under the ``jit`` backend."""
    engine = load_engine()
    if engine is None:
        raise JitUnavailableError(
            f"jit backend unavailable: {jit_unavailable_reason()}"
        )
    if ("frsz2.encode_fields", "jit") in _REGISTRY:
        return
    register_kernel("bitpack.pack_at", "jit", engine.pack_at)
    register_kernel("bitpack.unpack_at", "jit", engine.unpack_at)
    register_kernel("frsz2.encode_fields", "jit", engine.encode_fields)
    register_kernel("frsz2.decode_fields", "jit", engine.decode_fields)
    register_kernel("frsz2.pack_stream", "jit", engine.pack_stream)
    register_kernel("frsz2.decode_stream", "jit", engine.decode_stream)
    register_kernel("frsz2.decode_gather", "jit", engine.decode_gather)
    register_kernel("spmv.csr_matvec", "jit", engine.csr_matvec)
    register_kernel("spmv.ell_matvec", "jit", engine.ell_matvec)
    register_kernel("spmv.sell_group_matvec", "jit", engine.sell_group_matvec)
    register_kernel("prec.lower_trisolve", "jit", engine.lower_unit_trisolve)
    register_kernel("prec.upper_trisolve", "jit", engine.upper_trisolve)
    register_kernel("prec.block_diag_apply", "jit", engine.block_diag_apply)
    # The prec.* numpy references live with the solvers; import them here
    # so the numpy/jit registries stay mirrored even when no
    # preconditioner object has been constructed yet.
    from ..solvers import prec_kernels as _prec_kernels  # noqa: F401
    # The fused tile kernels are backend-shared: the per-tile BLAS ``@``
    # reduction is the determinism contract itself (its internal blocking
    # cannot be replayed in scalar compiled code), so ``jit`` registers
    # the numpy callables and gains its speedup from the engine's codec
    # decode feeding the tiles.
    from ..fused import batch as _fused_batch
    from ..fused import kernels as _fused_kernels

    register_kernel("fused.dot_basis", "jit", _fused_kernels.dot_basis_fused)
    register_kernel("fused.combine", "jit", _fused_kernels.combine_fused)
    register_kernel("fused.axpy", "jit", _fused_kernels.axpy_fused)
    register_kernel("fused.norm", "jit", _fused_kernels.norm_fused)
    register_kernel("fused.dot_basis_batch", "jit", _fused_batch.dot_basis_batch)
    register_kernel("fused.axpy_batch", "jit", _fused_batch.axpy_batch)
