"""Runtime-compiled C kernel engine (cffi + the system C compiler).

This is the fallback JIT engine behind :mod:`repro.jit.nbackend`: the
same scalar kernels, written once in C, compiled to a shared library on
first use and loaded through cffi's ABI mode.  "JIT" is meant literally
— the library is built at runtime from the source below, cached by
content hash, so upgrading the kernels invalidates the cache
automatically.

Bit-identity contract
---------------------
Every kernel replays the numpy reference *operation for operation*:

* the FRSZ2 encode/decode are pure integer bit manipulation — identical
  by construction;
* the SpMV kernels accumulate each row strictly sequentially in entry
  order, exactly like ``np.bincount`` (CSR) and the slot-wise ELL/SELL
  passes;
* the build forces ``-ffp-contract=off`` so the compiler cannot fuse a
  multiply-add into an FMA, which would change the rounding of every
  accumulation against the reference.

The engine is only accepted by :func:`repro.jit.dispatch.load_engine`
after :mod:`repro.jit.selftest` verifies byte-equality on every kernel
family.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import sysconfig
import tempfile

import numpy as np

__all__ = ["CEngine", "C_SOURCE"]

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define MANTISSA_MASK 0xFFFFFFFFFFFFFULL
#define IMPLICIT_BIT  (1ULL << 52)

static uint64_t d2u(double x) { uint64_t u; memcpy(&u, &x, 8); return u; }
static double u2d(uint64_t u) { double x; memcpy(&x, &u, 8); return x; }

/* OR one <=32-bit chunk into a little-endian uint32 word stream.  A
 * chunk shifted past its first word spills into the next one; bits
 * beyond the stream are provably zero for in-bounds fields, so the
 * spill store is skipped exactly when numpy's scatter skips it. */
static void put_chunk(uint32_t *words, int64_t bitpos, uint64_t chunk,
                      int64_t nbits)
{
    if (nbits <= 0)
        return;
    uint64_t mask = (1ULL << nbits) - 1ULL;
    uint64_t v = (chunk & mask) << (bitpos & 31);
    int64_t wi = bitpos >> 5;
    words[wi] |= (uint32_t)(v & 0xFFFFFFFFULL);
    uint32_t hi = (uint32_t)(v >> 32);
    if (hi)
        words[wi + 1] |= hi;
}

/* Read one <=32-bit chunk; the straddle read of the following word is
 * clamped to the stream like the numpy gather (the shifted-in bits are
 * masked off either way). */
static uint64_t get_chunk(const uint32_t *words, int64_t nwords,
                          int64_t bitpos, int64_t nbits)
{
    int64_t wi = bitpos >> 5;
    int64_t off = bitpos & 31;
    int64_t nxt = wi + 1;
    if (nxt > nwords - 1)
        nxt = nwords - 1;
    uint64_t lo = words[wi];
    uint64_t hi = words[nxt];
    uint64_t combined = (lo >> off) | (off == 0 ? 0ULL : hi << (32 - off));
    uint64_t mask = nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1ULL;
    return combined & mask;
}

void bitpack_pack_at(uint32_t *words, const int64_t *bitpos,
                     const uint64_t *fields, const int64_t *widths,
                     int64_t n)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t w = widths[i];
        uint64_t mask = w >= 64 ? ~0ULL : (1ULL << w) - 1ULL;
        uint64_t val = fields[i] & mask;
        int64_t lo_bits = w < 32 ? w : 32;
        put_chunk(words, bitpos[i], val, lo_bits);
        if (w > 32)
            put_chunk(words, bitpos[i] + 32, val >> 32, w - 32);
    }
}

void bitpack_unpack_at(const uint32_t *words, int64_t nwords,
                       const int64_t *bitpos, const int64_t *widths,
                       int64_t n, uint64_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t w = widths[i];
        int64_t lo_bits = w < 32 ? w : 32;
        uint64_t val = get_chunk(words, nwords, bitpos[i], lo_bits);
        if (w > 32)
            val |= get_chunk(words, nwords, bitpos[i] + 32, w - 32) << 32;
        out[i] = val;
    }
}

/* FRSZ2 compression steps 1-5 (paper Section IV-A).  Returns 0 on
 * success, i+1 when x[i] is NaN/Inf. */
int64_t frsz2_encode(const double *x, int64_t n, int64_t bs, int64_t l,
                     int32_t rounding, uint64_t *fields, int32_t *e_max_out)
{
    int64_t nb = (n + bs - 1) / bs;
    for (int64_t b = 0; b < nb; b++) {
        int64_t i0 = b * bs;
        int64_t i1 = i0 + bs < n ? i0 + bs : n;
        uint64_t e_max = 1;
        for (int64_t i = i0; i < i1; i++) {
            uint64_t bits = d2u(x[i]);
            uint64_t be = (bits >> 52) & 0x7FF;
            if (be == 0x7FF)
                return i + 1;
            uint64_t e_eff = be ? be : 1;
            if (e_eff > e_max)
                e_max = e_eff;
        }
        e_max_out[b] = (int32_t)e_max;
        for (int64_t i = i0; i < i1; i++) {
            uint64_t bits = d2u(x[i]);
            uint64_t be = (bits >> 52) & 0x7FF;
            uint64_t sign = bits >> 63;
            uint64_t e_eff = be ? be : 1;
            uint64_t sig53 = (bits & MANTISSA_MASK) | (be ? IMPLICIT_BIT : 0);
            int64_t k = (int64_t)(e_max - e_eff);
            int64_t shift = 54 - l + k;
            uint64_t base = sig53;
            if (rounding) {
                int64_t half_bit = shift - 1;
                if (half_bit < 0) half_bit = 0;
                if (half_bit > 63) half_bit = 63;
                if (shift > 0 && shift <= 54)
                    base = sig53 + (1ULL << half_bit);
            }
            int64_t pos = shift < 0 ? 0 : (shift > 63 ? 63 : shift);
            int64_t neg = -shift < 0 ? 0 : (-shift > 63 ? 63 : -shift);
            uint64_t c_sig = (base >> pos) << neg;
            if (rounding) {
                uint64_t limit = (1ULL << (l - 1)) - 1ULL;
                if (c_sig > limit)
                    c_sig = limit;
            }
            fields[i] = (sign << (l - 1)) | c_sig;
        }
    }
    return 0;
}

/* FRSZ2 decompression steps 2-4 for one already-read field. */
static double decode_field(uint64_t f, int64_t e_max, int64_t l)
{
    uint64_t sig_mask = (1ULL << (l - 1)) - 1ULL;
    uint64_t sign = f >> (l - 1);
    uint64_t c_sig = f & sig_mask;
    uint64_t bits = sign << 63;
    if (c_sig != 0) {
        int64_t hsb = 63 - __builtin_clzll(c_sig);
        int64_t e = e_max - (l - 2 - hsb);
        if (e >= 1) {
            int64_t up = 52 - hsb < 0 ? 0 : 52 - hsb;
            int64_t down = hsb - 52 < 0 ? 0 : hsb - 52;
            uint64_t sig53 = (c_sig >> down) << up;
            bits |= ((uint64_t)e & 0x7FF) << 52;
            bits |= sig53 & MANTISSA_MASK;
        }
    }
    return u2d(bits);
}

void frsz2_decode_fields(const uint64_t *fields, const int64_t *e_max,
                         int64_t n, int64_t l, double *out)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = decode_field(fields[i], e_max[i], l);
}

/* Pack n l-bit fields into word-aligned blocks (straddling path). */
void frsz2_pack_stream(const uint64_t *fields, int64_t n, int64_t bs,
                       int64_t l, int64_t wpb, uint32_t *words)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t block = i / bs;
        int64_t bitpos = block * wpb * 32 + (i - block * bs) * l;
        int64_t lo_bits = l < 32 ? l : 32;
        put_chunk(words, bitpos, fields[i], lo_bits);
        if (l > 32)
            put_chunk(words, bitpos + 32, fields[i] >> 32, l - 32);
    }
}

/* Payload "kind": 0/1/2/3 = aligned uint8/16/32/64 slots, 4 = packed
 * uint32 word stream with word-aligned blocks. */
static uint64_t read_slot(const uint8_t *payload, int32_t kind,
                          int64_t nwords, int64_t i, int64_t bs, int64_t l,
                          int64_t wpb)
{
    switch (kind) {
    case 0: return payload[i];
    case 1: return ((const uint16_t *)payload)[i];
    case 2: return ((const uint32_t *)payload)[i];
    case 3: return ((const uint64_t *)payload)[i];
    default: {
        const uint32_t *words = (const uint32_t *)payload;
        int64_t block = i / bs;
        int64_t bitpos = block * wpb * 32 + (i - block * bs) * l;
        int64_t lo_bits = l < 32 ? l : 32;
        uint64_t val = get_chunk(words, nwords, bitpos, lo_bits);
        if (l > 32)
            val |= get_chunk(words, nwords, bitpos + 32, l - 32) << 32;
        return val;
    }
    }
}

/* Decode values [0, n) of one container in a single pass. */
void frsz2_decode_stream(const uint8_t *payload, int32_t kind,
                         int64_t nwords, const int32_t *exponents,
                         int64_t n, int64_t bs, int64_t l, int64_t wpb,
                         double *out)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t f = read_slot(payload, kind, nwords, i, bs, l, wpb);
        out[i] = decode_field(f, exponents[i / bs], l);
    }
}

/* Decode arbitrary value positions of one container. */
void frsz2_decode_gather(const uint8_t *payload, int32_t kind,
                         int64_t nwords, const int32_t *exponents,
                         const int64_t *idx, int64_t m, int64_t bs,
                         int64_t l, int64_t wpb, double *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t j = idx[i];
        uint64_t f = read_slot(payload, kind, nwords, j, bs, l, wpb);
        out[i] = decode_field(f, exponents[j / bs], l);
    }
}

/* y = A @ x, CSR with an expanded per-entry row array: entries
 * accumulate in stored order, exactly like np.bincount. */
void csr_matvec(const int64_t *rows, const int64_t *cols,
                const double *data, int64_t nnz, const double *x,
                double *y, int64_t m)
{
    for (int64_t r = 0; r < m; r++)
        y[r] = 0.0;
    for (int64_t i = 0; i < nnz; i++)
        y[rows[i]] += data[i] * x[cols[i]];
}

/* y = A @ x, ELL transposed (width, m) layout: per-row accumulation in
 * slot order, matching the numpy slot-wise/reduce kernels. */
void ell_matvec(const int64_t *cols_t, const double *vals_t, int64_t width,
                int64_t m, const double *x, double *y)
{
    if (width == 0) {
        for (int64_t r = 0; r < m; r++)
            y[r] = 0.0;
        return;
    }
    for (int64_t r = 0; r < m; r++)
        y[r] = vals_t[r] * x[cols_t[r]];
    for (int64_t s = 1; s < width; s++) {
        const int64_t *c = cols_t + s * m;
        const double *v = vals_t + s * m;
        for (int64_t r = 0; r < m; r++)
            y[r] += v[r] * x[c[r]];
    }
}

/* One SELL-C-sigma width group: y[rows[r]] = the row's slot-ordered
 * sum (the caller zeroes y for rows no group covers). */
void sell_group_matvec(const int64_t *rows, const int64_t *cols_t,
                       const double *vals_t, int64_t width, int64_t g,
                       const double *x, double *y)
{
    for (int64_t r = 0; r < g; r++) {
        double acc = vals_t[r] * x[cols_t[r]];
        for (int64_t s = 1; s < width; s++)
            acc += vals_t[s * g + r] * x[cols_t[s * g + r]];
        y[rows[r]] = acc;
    }
}

/* In-place forward sweep: L y = b with strictly-lower CSR L and an
 * implicit unit diagonal (the ILU(0) L factor). */
void prec_lower_trisolve(const int64_t *indptr, const int64_t *indices,
                         const double *data, double *y, int64_t n)
{
    for (int64_t i = 0; i < n; i++) {
        double s = y[i];
        for (int64_t k = indptr[i]; k < indptr[i + 1]; k++)
            s -= data[k] * y[indices[k]];
        y[i] = s;
    }
}

/* In-place backward sweep: U y = b with strictly-upper CSR entries
 * plus a separate diagonal array. */
void prec_upper_trisolve(const int64_t *indptr, const int64_t *indices,
                         const double *data, const double *udiag,
                         double *y, int64_t n)
{
    for (int64_t i = n - 1; i >= 0; i--) {
        double s = y[i];
        for (int64_t k = indptr[i]; k < indptr[i + 1]; k++)
            s -= data[k] * y[indices[k]];
        y[i] = s / udiag[i];
    }
}

/* out = blockdiag(B_0, B_1, ...) @ v with flattened zero-padded
 * bs x bs blocks; the short trailing block only touches its live
 * rows/columns. */
void prec_block_diag_apply(const double *blocks, const double *v,
                           int64_t bs, int64_t n, double *out)
{
    int64_t nb = (n + bs - 1) / bs;
    for (int64_t b = 0; b < nb; b++) {
        int64_t lo = b * bs;
        int64_t hi = lo + bs < n ? lo + bs : n;
        const double *base = blocks + b * bs * bs;
        for (int64_t i = lo; i < hi; i++) {
            double s = 0.0;
            const double *row = base + (i - lo) * bs;
            for (int64_t k = lo; k < hi; k++)
                s += row[k - lo] * v[k];
            out[i] = s;
        }
    }
}
"""

_CDEF = """
void bitpack_pack_at(uint32_t *words, const int64_t *bitpos,
                     const uint64_t *fields, const int64_t *widths,
                     int64_t n);
void bitpack_unpack_at(const uint32_t *words, int64_t nwords,
                       const int64_t *bitpos, const int64_t *widths,
                       int64_t n, uint64_t *out);
int64_t frsz2_encode(const double *x, int64_t n, int64_t bs, int64_t l,
                     int32_t rounding, uint64_t *fields, int32_t *e_max_out);
void frsz2_decode_fields(const uint64_t *fields, const int64_t *e_max,
                         int64_t n, int64_t l, double *out);
void frsz2_pack_stream(const uint64_t *fields, int64_t n, int64_t bs,
                       int64_t l, int64_t wpb, uint32_t *words);
void frsz2_decode_stream(const uint8_t *payload, int32_t kind,
                         int64_t nwords, const int32_t *exponents,
                         int64_t n, int64_t bs, int64_t l, int64_t wpb,
                         double *out);
void frsz2_decode_gather(const uint8_t *payload, int32_t kind,
                         int64_t nwords, const int32_t *exponents,
                         const int64_t *idx, int64_t m, int64_t bs,
                         int64_t l, int64_t wpb, double *out);
void csr_matvec(const int64_t *rows, const int64_t *cols,
                const double *data, int64_t nnz, const double *x,
                double *y, int64_t m);
void ell_matvec(const int64_t *cols_t, const double *vals_t, int64_t width,
                int64_t m, const double *x, double *y);
void sell_group_matvec(const int64_t *rows, const int64_t *cols_t,
                       const double *vals_t, int64_t width, int64_t g,
                       const double *x, double *y);
void prec_lower_trisolve(const int64_t *indptr, const int64_t *indices,
                         const double *data, double *y, int64_t n);
void prec_upper_trisolve(const int64_t *indptr, const int64_t *indices,
                         const double *data, const double *udiag,
                         double *y, int64_t n);
void prec_block_diag_apply(const double *blocks, const double *v,
                           int64_t bs, int64_t n, double *out);
"""

#: flags that pin IEEE semantics: no FMA contraction, no fast-math —
#: an FMA would change the rounding of every accumulation vs numpy
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

#: payload-kind codes shared with the C source
_ALIGNED_KINDS = {8: 0, 16: 1, 32: 2, 64: 3}
_PACKED_KIND = 4


def _cache_dir() -> str:
    explicit = os.environ.get("REPRO_JIT_CACHE")
    if explicit:
        return explicit
    return os.path.join(tempfile.gettempdir(), f"repro-jit-{os.getuid()}")


def _compiler() -> str:
    for candidate in (os.environ.get("CC"), sysconfig.get_config_var("CC")):
        if candidate:
            return candidate.split()[0]
    return "cc"


def _build_library() -> str:
    """Compile (once, content-hashed) and return the shared-library path."""
    key = hashlib.sha256(
        "\x00".join([C_SOURCE, _CDEF, " ".join(_CFLAGS), sys.platform]).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_jit_{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    fd, src_path = tempfile.mkstemp(suffix=".c", dir=cache)
    try:
        with os.fdopen(fd, "w") as f:
            f.write(C_SOURCE)
        tmp_lib = src_path + ".so"
        subprocess.run(
            [_compiler(), *_CFLAGS, src_path, "-o", tmp_lib],
            check=True,
            capture_output=True,
            text=True,
        )
        # atomic publish: concurrent builders race benignly
        os.replace(tmp_lib, lib_path)
    finally:
        for leftover in (src_path, src_path + ".so"):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return lib_path


class CEngine:
    """cffi/ABI-mode wrapper over the runtime-compiled C kernels.

    All methods take/return numpy arrays; inputs are made contiguous
    with the exact dtype the C side expects (an exact-value conversion,
    so results stay byte-equal to the reference).
    """

    name = "cffi"

    def __init__(self) -> None:
        import cffi

        self._ffi = cffi.FFI()
        self._ffi.cdef(_CDEF)
        self._lib = self._ffi.dlopen(_build_library())

    # -- pointer plumbing ---------------------------------------------

    def _ptr(self, arr: np.ndarray, ctype: str):
        return self._ffi.cast(ctype, arr.ctypes.data)

    @staticmethod
    def _c(arr, dtype) -> np.ndarray:
        return np.ascontiguousarray(arr, dtype=dtype)

    # -- bitpack ------------------------------------------------------

    def pack_at(self, words, bitpos, fields, widths) -> None:
        """In-place OR of width-bit fields; mirrors ``bitpack.pack_at``."""
        from ..core import bitpack

        if words.dtype != np.uint32:
            raise TypeError("words must be uint32")
        bitpos = np.asarray(bitpos, dtype=np.int64)
        fields = np.asarray(fields, dtype=np.uint64)
        widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), fields.shape)
        if bitpos.shape != fields.shape:
            raise ValueError("bitpos and fields must have the same shape")
        if fields.size == 0:
            return
        if np.any(widths < 1) or np.any(widths > 64):
            raise ValueError("widths must be in [1, 64]")
        if np.any(fields & ~bitpack._field_mask(widths)):
            raise ValueError("field value exceeds its declared width")
        bitpack._check_bounds(bitpos, widths, words.size)
        if not words.flags.c_contiguous:
            # the C kernel mutates the buffer in place; fall back rather
            # than write into a copy of a strided view
            bitpack.pack_at(words, bitpos, fields, widths)
            return
        self._lib.bitpack_pack_at(
            self._ptr(words, "uint32_t *"),
            self._ptr(self._c(bitpos, np.int64), "int64_t *"),
            self._ptr(self._c(fields, np.uint64), "uint64_t *"),
            self._ptr(self._c(widths, np.int64), "int64_t *"),
            fields.size,
        )

    def unpack_at(self, words, bitpos, widths) -> np.ndarray:
        """Read width-bit fields; mirrors ``bitpack.unpack_at``."""
        from ..core import bitpack

        if words.dtype != np.uint32:
            raise TypeError("words must be uint32")
        bitpos = np.asarray(bitpos, dtype=np.int64)
        widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), bitpos.shape)
        if bitpos.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if np.any(widths < 1) or np.any(widths > 64):
            raise ValueError("widths must be in [1, 64]")
        bitpack._check_bounds(bitpos, widths, words.size)
        words = self._c(words, np.uint32)
        out = np.empty(bitpos.shape, dtype=np.uint64)
        self._lib.bitpack_unpack_at(
            self._ptr(words, "uint32_t *"),
            words.size,
            self._ptr(self._c(bitpos, np.int64), "int64_t *"),
            self._ptr(self._c(widths, np.int64), "int64_t *"),
            bitpos.size,
            self._ptr(out, "uint64_t *"),
        )
        return out

    # -- FRSZ2 codec --------------------------------------------------

    def encode_fields(self, x, bit_length, block_size, rounding):
        """Steps 1-5; byte-equal to the reference ``encode_fields``."""
        x = self._c(x, np.float64)
        n = x.size
        nb = -(-n // block_size)
        fields = np.empty(n, dtype=np.uint64)
        e_max = np.empty(nb, dtype=np.int32)
        if n:
            rc = self._lib.frsz2_encode(
                self._ptr(x, "double *"),
                n,
                block_size,
                bit_length,
                int(bool(rounding)),
                self._ptr(fields, "uint64_t *"),
                self._ptr(e_max, "int32_t *"),
            )
            if rc:
                raise ValueError("FRSZ2 does not support NaN or Inf inputs")
        return fields, e_max

    def decode_fields(self, fields, e_max_per_value, bit_length) -> np.ndarray:
        """Steps 2-4; byte-equal to the reference ``decode_fields``."""
        fields = self._c(fields, np.uint64)
        e_max = self._c(e_max_per_value, np.int64)
        out = np.empty(fields.size, dtype=np.float64)
        if fields.size:
            self._lib.frsz2_decode_fields(
                self._ptr(fields, "uint64_t *"),
                self._ptr(e_max, "int64_t *"),
                fields.size,
                bit_length,
                self._ptr(out, "double *"),
            )
        return out

    def pack_stream(self, fields, layout) -> np.ndarray:
        """Straddling-path payload build (blocks word-aligned)."""
        fields = self._c(fields, np.uint64)
        words = np.zeros(layout.value_words, dtype=np.uint32)
        if fields.size:
            self._lib.frsz2_pack_stream(
                self._ptr(fields, "uint64_t *"),
                fields.size,
                layout.block_size,
                layout.bit_length,
                layout.words_per_block,
                self._ptr(words, "uint32_t *"),
            )
        return words

    @staticmethod
    def _payload_kind(layout) -> int:
        if layout.is_aligned:
            return _ALIGNED_KINDS[layout.bit_length]
        return _PACKED_KIND

    def decode_stream(self, comp, out) -> np.ndarray:
        """Full-container decode straight from the stored payload."""
        layout = comp.layout
        payload = comp.payload
        exponents = self._c(comp.exponents, np.int32)
        if comp.n:
            self._lib.frsz2_decode_stream(
                self._ptr(payload, "uint8_t *"),
                self._payload_kind(layout),
                0 if layout.is_aligned else payload.size,
                self._ptr(exponents, "int32_t *"),
                comp.n,
                layout.block_size,
                layout.bit_length,
                layout.words_per_block,
                self._ptr(out, "double *"),
            )
        return out

    def decode_gather(self, comp, indices, out=None) -> np.ndarray:
        """Decode arbitrary positions straight from the stored payload."""
        layout = comp.layout
        payload = comp.payload
        indices = self._c(indices, np.int64)
        exponents = self._c(comp.exponents, np.int32)
        if out is None:
            out = np.empty(indices.size, dtype=np.float64)
        if indices.size:
            self._lib.frsz2_decode_gather(
                self._ptr(payload, "uint8_t *"),
                self._payload_kind(layout),
                0 if layout.is_aligned else payload.size,
                self._ptr(exponents, "int32_t *"),
                self._ptr(indices, "int64_t *"),
                indices.size,
                layout.block_size,
                layout.bit_length,
                layout.words_per_block,
                self._ptr(out, "double *"),
            )
        return out

    # -- SpMV ---------------------------------------------------------

    def csr_matvec(self, rows, cols, data, x, m) -> np.ndarray:
        """Entry-ordered CSR accumulation (``np.bincount`` order)."""
        x = self._c(x, np.float64)
        y = np.empty(m, dtype=np.float64)
        self._lib.csr_matvec(
            self._ptr(rows, "int64_t *"),
            self._ptr(cols, "int64_t *"),
            self._ptr(data, "double *"),
            data.size,
            self._ptr(x, "double *"),
            self._ptr(y, "double *"),
            m,
        )
        return y

    def ell_matvec(self, cols_t, vals_t, x, work, out) -> np.ndarray:
        """Slot-ordered ELL accumulation (matches both numpy kernels)."""
        x = self._c(x, np.float64)
        width, m = cols_t.shape
        y = out if out is not None and out.flags.c_contiguous else np.empty(m)
        self._lib.ell_matvec(
            self._ptr(cols_t, "int64_t *"),
            self._ptr(vals_t, "double *"),
            width,
            m,
            self._ptr(x, "double *"),
            self._ptr(y, "double *"),
        )
        if out is not None and y is not out:
            out[:] = y
            return out
        return y

    def sell_group_matvec(self, rows, cols_t, vals_t, x, work, y) -> None:
        """One SELL width group; writes ``y[rows]`` in place."""
        x = self._c(x, np.float64)
        width, g = cols_t.shape
        if y.flags.c_contiguous:
            self._lib.sell_group_matvec(
                self._ptr(rows, "int64_t *"),
                self._ptr(cols_t, "int64_t *"),
                self._ptr(vals_t, "double *"),
                width,
                g,
                self._ptr(x, "double *"),
                self._ptr(y, "double *"),
            )
            return
        tmp = np.empty(g, dtype=np.float64)
        ident = np.arange(g, dtype=np.int64)
        self._lib.sell_group_matvec(
            self._ptr(ident, "int64_t *"),
            self._ptr(cols_t, "int64_t *"),
            self._ptr(vals_t, "double *"),
            width,
            g,
            self._ptr(x, "double *"),
            self._ptr(tmp, "double *"),
        )
        y[rows] = tmp

    # -- preconditioner applies ---------------------------------------

    def lower_unit_trisolve(self, indptr, indices, data, b) -> np.ndarray:
        indptr = self._c(indptr, np.int64)
        indices = self._c(indices, np.int64)
        data = self._c(data, np.float64)
        y = np.array(b, dtype=np.float64)
        self._lib.prec_lower_trisolve(
            self._ptr(indptr, "int64_t *"),
            self._ptr(indices, "int64_t *"),
            self._ptr(data, "double *"),
            self._ptr(y, "double *"),
            y.size,
        )
        return y

    def upper_trisolve(self, indptr, indices, data, udiag, b) -> np.ndarray:
        indptr = self._c(indptr, np.int64)
        indices = self._c(indices, np.int64)
        data = self._c(data, np.float64)
        udiag = self._c(udiag, np.float64)
        y = np.array(b, dtype=np.float64)
        self._lib.prec_upper_trisolve(
            self._ptr(indptr, "int64_t *"),
            self._ptr(indices, "int64_t *"),
            self._ptr(data, "double *"),
            self._ptr(udiag, "double *"),
            self._ptr(y, "double *"),
            y.size,
        )
        return y

    def block_diag_apply(self, blocks, v, bs, n) -> np.ndarray:
        blocks = self._c(blocks, np.float64)
        v = self._c(v, np.float64)
        out = np.empty(int(n), dtype=np.float64)
        self._lib.prec_block_diag_apply(
            self._ptr(blocks, "double *"),
            self._ptr(v, "double *"),
            int(bs),
            int(n),
            self._ptr(out, "double *"),
        )
        return out
