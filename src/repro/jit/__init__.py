"""JIT-compiled kernel backend (``backend={numpy,jit}``).

This package provides the second implementation of every hot kernel in
the reproduction, selected through the kernel-dispatch registry in
:mod:`repro.jit.dispatch`:

* :mod:`repro.jit.nbackend` — Numba ``@njit`` kernels (preferred;
  installed via the ``[jit]`` optional extra),
* :mod:`repro.jit.cbackend` — C kernels compiled at runtime with the
  system compiler through cffi (fallback when Numba is absent),
* the numpy reference kernels, registered by the modules defining them.

The contract is byte-equality: a JIT kernel must reproduce the numpy
reference bit-for-bit (same accumulation order, same rounding, no FMA
contraction).  Engines are vetted by :mod:`repro.jit.selftest` before
acceptance, and ``backend='jit'`` silently *degrades* to ``numpy`` —
with a :class:`JitUnavailableWarning` naming the reason — when no
engine works, so every caller can request ``jit`` unconditionally.
"""

from .dispatch import (
    BACKENDS,
    JitUnavailableError,
    JitUnavailableWarning,
    get_kernel,
    jit_available,
    jit_engine_name,
    jit_unavailable_reason,
    load_engine,
    register,
    register_kernel,
    registered_kernels,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "JitUnavailableError",
    "JitUnavailableWarning",
    "get_kernel",
    "jit_available",
    "jit_engine_name",
    "jit_unavailable_reason",
    "load_engine",
    "register",
    "register_kernel",
    "registered_kernels",
    "resolve_backend",
]
