"""Vectorized FRSZ2 codec (the paper's core contribution, Section IV).

FRSZ2 is a fixed-rate block-floating-point compressor: ``BS`` consecutive
float64 values share the maximum biased exponent ``e_max`` of the block;
each value is stored as an ``l``-bit field holding the sign bit followed
by the significand normalised to ``e_max`` (Eq. 2).  The per-block
exponents live in a separate ``int32`` stream (Section IV-C opt. 5).

The NumPy implementation mirrors the CUDA kernels operation-for-operation:
reinterpret casts instead of ``__double_as_longlong``, vectorized
leading-zero counts instead of ``__clz``, and a block-wise max reduction
instead of warp shuffles.  Numerical results are bit-identical to the
GPU algorithm (validated against the scalar reference and the SIMT warp
executor in the test suite).

Two data paths exist, as in the paper (Section IV-C opt. 3):

* *aligned* (``l`` in {8, 16, 32, 64}): fields map 1:1 onto machine
  integers; packing is a cast.
* *straddling* (any other ``l``): fields are bit-packed into 32-bit words
  with each block starting word-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from . import bitpack, ieee754
from .blocks import DEFAULT_BLOCK_SIZE, BlockLayout
from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER

__all__ = ["FRSZ2", "Frsz2Compressed"]

_U64 = np.uint64


@dataclass
class Frsz2Compressed:
    """An FRSZ2-compressed array.

    Attributes
    ----------
    layout:
        Block geometry and storage accounting (Eq. 3).
    exponents:
        One biased maximum exponent per block (``int32`` stream).
    payload:
        The compressed-value stream.  For aligned bit lengths this is a
        ``uint8/16/32/64`` array with one element per value slot; for
        straddling lengths it is the packed ``uint32`` word stream.
    """

    layout: BlockLayout
    exponents: np.ndarray
    payload: np.ndarray

    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def nbytes(self) -> int:
        """Stored size in bytes per Eq. 3 (alignment included)."""
        return self.layout.total_nbytes

    @property
    def bits_per_value(self) -> float:
        return self.layout.bits_per_value


_ALIGNED_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}

#: ceiling on the number of float64 values staged per batched-encode
#: chunk (2 MiB of staging); keeps ``compress_batch`` peak transient
#: memory bounded independent of the batch size
_BATCH_CHUNK_VALUES = 1 << 18

#: values per batched-decode chunk: large enough to amortize the
#: ~20-ufunc decode pipeline's Python overhead, small enough that its
#: elementwise temporaries (~a dozen 8-byte-per-value arrays) stay
#: cache-resident instead of streaming through DRAM
_DECODE_CHUNK_VALUES = 1 << 14


# ----------------------------------------------------------------------
# numpy reference kernels (the `backend="numpy"` registry entries)
# ----------------------------------------------------------------------

# The bitpack primitives are kernels in their own right (the jit engine
# replaces them); register the reference implementations here so both
# backends resolve through the same registry.
_dispatch.register_kernel("bitpack.pack_at", "numpy", bitpack.pack_at)
_dispatch.register_kernel("bitpack.unpack_at", "numpy", bitpack.unpack_at)


@_dispatch.register("frsz2.encode_fields", "numpy")
def encode_fields_numpy(
    x: np.ndarray, bit_length: int, block_size: int, rounding: bool
) -> "tuple[np.ndarray, np.ndarray]":
    """Steps 1-5: per-value l-bit fields and per-block exponents."""
    l = bit_length
    bs = block_size
    n = x.size
    layout = BlockLayout(n, bs, l)
    bits = ieee754.to_bits(x)
    if np.any(ieee754.biased_exponent(bits) == ieee754.EXPONENT_MASK):
        raise ValueError("FRSZ2 does not support NaN or Inf inputs")
    sign = ieee754.sign_bit(bits)
    e_eff = ieee754.effective_biased_exponent(bits)
    sig53 = ieee754.significand53(bits)
    # Zeros must not raise the block exponent: give them the minimum.
    e_for_max = np.where(sig53 == 0, _U64(1), e_eff)

    # Step 1: block-wise maximum exponent. Pad to a full block grid.
    nb = layout.num_blocks
    pad = nb * bs - n
    if pad:
        e_for_max = np.concatenate([e_for_max, np.ones(pad, dtype=np.uint64)])
    e_max = e_for_max.reshape(nb, bs).max(axis=1)
    e_max_per_value = np.repeat(e_max, bs)[:n]

    # Steps 2-5: shift the 53-bit significand so its leading 1 lands at
    # field bit (l-2-k); the sign occupies field bit (l-1).
    k = e_max_per_value - e_eff
    shift = np.int64(54 - l) + k.astype(np.int64)
    if rounding:
        # Round to nearest: add half of the last kept bit before the
        # truncating down-shift.  The addend must be exactly 0 once
        # the value truncates away entirely (shift > 54: sig53 has
        # only 53 bits, so even the rounded result is 0).  The clip
        # also keeps the shift itself in [0, 63]: np.where evaluates
        # both branches, and a uint64 shift by >= 64 is undefined —
        # on x86 it wraps to ``shift % 64``, which resurrected
        # fully-truncated values as garbage significands.
        half_bit = np.clip(shift - 1, 0, 63).astype(np.uint64)
        rnd = np.where(
            (shift > 0) & (shift <= 54),
            _U64(1) << half_bit,
            _U64(0),
        )
        base = sig53 + rnd
    else:
        base = sig53
    pos_shift = np.minimum(np.maximum(shift, 0), 63).astype(np.uint64)
    neg_shift = np.minimum(np.maximum(-shift, 0), 63).astype(np.uint64)
    c_sig = (base >> pos_shift) << neg_shift
    if rounding:
        # A carry out of the significand field would corrupt the sign.
        limit = (_U64(1) << np.uint64(l - 1)) - _U64(1)
        c_sig = np.minimum(c_sig, limit)
    fields = (sign << np.uint64(l - 1)) | c_sig
    return fields, e_max.astype(np.int32)


@_dispatch.register("frsz2.decode_fields", "numpy")
def decode_fields_numpy(
    fields: np.ndarray, e_max_per_value: np.ndarray, bit_length: int
) -> np.ndarray:
    """Steps 2-4: fields + block exponents -> float64 values.

    Uses the bit-assembly route of the paper (count leading zeros,
    recover ``e = e_max - k``, merge s/e/mantissa).  Values whose
    reconstruction falls below the normal float64 range flush to
    (signed) zero, exactly as the CUDA kernel does.
    """
    l = bit_length
    sign = fields >> np.uint64(l - 1)
    sig_mask = (_U64(1) << np.uint64(l - 1)) - _U64(1)
    c_sig = fields & sig_mask
    hsb = ieee754.highest_set_bit(c_sig)  # -1 for zero fields
    k = np.int64(l - 2) - hsb
    e = e_max_per_value.astype(np.int64) - k
    nonzero = c_sig != 0
    normal = nonzero & (e >= 1)
    # Align the leading 1 to mantissa bit 52, then drop it.  For
    # l > 54 the field holds more fraction bits than a double's
    # mantissa; the excess is truncated (down-shift).
    up = np.clip(52 - hsb, 0, 63).astype(np.uint64)
    down = np.clip(hsb - 52, 0, 63).astype(np.uint64)
    sig53 = np.where(normal, (c_sig >> down) << up, _U64(0))
    mant = sig53 & ieee754.MANTISSA_MASK
    e_field = np.where(normal, e, 0).astype(np.uint64)
    return ieee754.assemble(sign, e_field, mant)


def _stream_bit_positions(indices: np.ndarray, layout: BlockLayout) -> np.ndarray:
    """Stream bit offsets of value fields (blocks are word-aligned)."""
    bs = layout.block_size
    block = indices // bs
    within = indices - block * bs
    return block * (layout.words_per_block * 32) + within * layout.bit_length


def _read_fields_numpy(comp: "Frsz2Compressed", indices: np.ndarray) -> np.ndarray:
    l = comp.layout.bit_length
    if comp.layout.is_aligned:
        return comp.payload[indices].astype(np.uint64)
    bitpos = _stream_bit_positions(indices, comp.layout)
    return bitpack.unpack_at(comp.payload, bitpos, l)


@_dispatch.register("frsz2.pack_stream", "numpy")
def pack_stream_numpy(fields: np.ndarray, layout: BlockLayout) -> np.ndarray:
    """Straddling-path payload build (blocks word-aligned)."""
    payload = np.zeros(layout.value_words, dtype=np.uint32)
    bitpos = _stream_bit_positions(
        np.arange(fields.size, dtype=np.int64), layout
    )
    bitpack.pack_at(payload, bitpos, fields, layout.bit_length)
    return payload


@_dispatch.register("frsz2.decode_stream", "numpy")
def decode_stream_numpy(comp: "Frsz2Compressed", out: np.ndarray) -> np.ndarray:
    """Full-container decode: the composition the jit engine fuses."""
    n = comp.n
    indices = np.arange(n, dtype=np.int64)
    fields = _read_fields_numpy(comp, indices)
    e_max = np.repeat(comp.exponents.astype(np.int64), comp.layout.block_size)[:n]
    out[:] = decode_fields_numpy(fields, e_max, comp.layout.bit_length)
    return out


@_dispatch.register("frsz2.decode_gather", "numpy")
def decode_gather_numpy(
    comp: "Frsz2Compressed", indices: np.ndarray, out: "Optional[np.ndarray]" = None
) -> np.ndarray:
    """Positional decode: the composition the jit engine fuses."""
    indices = np.asarray(indices, dtype=np.int64)
    fields = _read_fields_numpy(comp, indices)
    e_max = comp.exponents.astype(np.int64)[indices // comp.layout.block_size]
    values = decode_fields_numpy(fields, e_max, comp.layout.bit_length)
    if out is not None:
        out[:] = values
        return out
    return values


class FRSZ2:
    """The FRSZ2 fixed-rate compressor.

    Parameters
    ----------
    bit_length:
        ``l``, bits per stored value (sign + significand).  The paper
        evaluates l in {16, 21, 32} and advocates 32.
    block_size:
        ``BS``, values per block.  The paper mandates 32 on NVIDIA GPUs
        (one block per warp); other sizes are supported for the ablation
        study.
    rounding:
        Step 5 cuts the significand to length ``l``.  The paper truncates;
        ``rounding=True`` selects round-to-nearest for the ablation bench
        (carries that would overflow into the sign bit are clamped).
    backend:
        Kernel backend, ``"numpy"`` (default) or ``"jit"``.  The jit
        backend runs the compiled engine from :mod:`repro.jit` and is
        bit-identical to numpy; when no engine is available it degrades
        to numpy with a :class:`repro.jit.JitUnavailableWarning`.
    """

    def __init__(
        self,
        bit_length: int = 32,
        block_size: int = DEFAULT_BLOCK_SIZE,
        rounding: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if not 2 <= bit_length <= 64:
            raise ValueError("bit_length must be in [2, 64]")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.bit_length = int(bit_length)
        self.block_size = int(block_size)
        self.rounding = bool(rounding)
        self.backend = _dispatch.resolve_backend(backend)
        self._encode_kernel = _dispatch.get_kernel(
            "frsz2.encode_fields", self.backend
        )
        self._decode_kernel = _dispatch.get_kernel(
            "frsz2.decode_fields", self.backend
        )
        self._pack_stream_kernel = _dispatch.get_kernel(
            "frsz2.pack_stream", self.backend
        )
        # Container-level fused paths exist only on the jit engine; the
        # numpy paths keep their existing composition (read fields,
        # repeat exponents, decode) so the default hot path is unchanged.
        if self.backend == "jit":
            self._stream_kernel = _dispatch.get_kernel("frsz2.decode_stream", "jit")
            self._gather_kernel = _dispatch.get_kernel("frsz2.decode_gather", "jit")
        else:
            self._stream_kernel = None
            self._gather_kernel = None
        #: observe-layer tracer; the null tracer keeps the hot path free
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # compression (paper Section IV-A)
    # ------------------------------------------------------------------

    def layout_for(self, n: int) -> BlockLayout:
        return BlockLayout(n, self.block_size, self.bit_length)

    def _encode_fields(self, x: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Steps 1-5: per-value l-bit fields and per-block exponents.

        Dispatches to the backend's ``frsz2.encode_fields`` kernel
        (:func:`encode_fields_numpy` is the reference).
        """
        return self._encode_kernel(
            x, self.bit_length, self.block_size, self.rounding
        )

    def compress(self, x: np.ndarray) -> Frsz2Compressed:
        """Compress a 1-D float64 array into an :class:`Frsz2Compressed`.

        Parameters
        ----------
        x : ndarray, shape (n,), dtype float64
            Finite values to compress (NaN/Inf raise ``ValueError``).
            Other dtypes/layouts are converted with
            ``np.ascontiguousarray``.

        Returns
        -------
        Frsz2Compressed
            Block layout, per-block ``int32`` biased exponents of shape
            ``(num_blocks,)``, and the packed value stream (one unsigned
            integer per slot for aligned ``l``, a ``uint32`` word stream
            otherwise).

        Raises
        ------
        ValueError
            If ``x`` is not 1-D or contains NaN/Inf.
        """
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("FRSZ2 compresses 1-D arrays")
        layout = self.layout_for(x.size)
        fields, exponents = self._encode_fields(x)
        payload = self._pack_fields(fields, layout)
        if self.tracer.enabled:
            self.tracer.count("frsz2.compress.calls")
            self.tracer.count("frsz2.compress.values", x.size)
            self.tracer.count("frsz2.compress.bytes", layout.total_nbytes)
            self.tracer.count("frsz2.compress.blocks", layout.num_blocks)
        return Frsz2Compressed(layout=layout, exponents=exponents, payload=payload)

    def _pack_fields(self, fields: np.ndarray, layout: BlockLayout) -> np.ndarray:
        """Turn ``n`` encoded l-bit fields into the stored payload array."""
        l = self.bit_length
        if layout.is_aligned:
            # Allocate the padded grid once (Eq. 3 storage) and write the
            # fields into it; the tail stays zero.  The assignment casts
            # uint64 -> narrow dtype exactly like the former astype +
            # concatenate pair (fields are < 2**l, so no truncation),
            # keeping containers bit-identical while avoiding a second
            # allocation + copy per vector.
            full = layout.num_blocks * self.block_size
            payload = np.zeros(full, dtype=_ALIGNED_DTYPES[l])
            payload[: fields.size] = fields
            return payload
        return self._pack_stream_kernel(fields, layout)

    def compress_batch(self, xs: Sequence[np.ndarray]) -> "List[Frsz2Compressed]":
        """Compress several same-length vectors in one vectorized pass.

        The encode (steps 1-5: exponent reduction, shift, truncate/round)
        runs once over the concatenated block grid of *all* vectors, so
        per-call Python/NumPy overhead is paid once instead of once per
        vector.  Each vector is padded to a whole number of blocks before
        concatenation, so no block ever straddles two vectors and the
        result is bit-identical to calling :meth:`compress` per vector
        (asserted in the test suite).

        Parameters
        ----------
        xs : sequence of ndarray, each shape (n,), dtype float64
            Vectors to compress.  All must share the same length.

        Returns
        -------
        list of Frsz2Compressed
            ``out[i]`` equals ``self.compress(xs[i])`` bit-for-bit.
        """
        arrays = [np.ascontiguousarray(x, dtype=np.float64) for x in xs]
        if not arrays:
            return []
        n = arrays[0].size
        for a in arrays:
            if a.ndim != 1:
                raise ValueError("FRSZ2 compresses 1-D arrays")
            if a.size != n:
                raise ValueError(
                    f"compress_batch needs equal-length vectors, got {a.size} != {n}"
                )
        layout = self.layout_for(n)
        bs = self.block_size
        padded = layout.num_blocks * bs
        # Encode in bounded chunks: the float64 staging rectangle (and
        # the uint64 field array the encode returns) covers at most
        # _BATCH_CHUNK_VALUES values regardless of batch size, so peak
        # transient memory is independent of B (the streaming-basis
        # guarantee from PR 5 would otherwise be undone here).  Each
        # vector pads to a whole number of blocks before concatenation,
        # so no block straddles two vectors and chunk boundaries fall on
        # vector boundaries — results are bit-identical to the unchunked
        # encode.  Zero padding cannot raise a block exponent (zeros
        # contribute the minimum e_max candidate) and encodes to
        # all-zero fields, so the split results match the per-vector
        # encode exactly.
        chunk_vecs = max(1, _BATCH_CHUNK_VALUES // max(padded, 1))
        staging = np.zeros((min(chunk_vecs, len(arrays)), padded), dtype=np.float64)
        out: "List[Frsz2Compressed]" = []
        for start in range(0, len(arrays), chunk_vecs):
            chunk = arrays[start : start + chunk_vecs]
            for i, a in enumerate(chunk):
                # only [:n] is ever written, so the pad columns stay zero
                # across reuses of the staging buffer
                staging[i, :n] = a
            fields, exponents = self._encode_fields(
                staging[: len(chunk)].reshape(-1)
            )
            fields = fields.reshape(len(chunk), padded)
            exponents = exponents.reshape(len(chunk), layout.num_blocks)
            out.extend(
                Frsz2Compressed(
                    layout=layout,
                    exponents=np.ascontiguousarray(exponents[i]),
                    payload=self._pack_fields(fields[i, :n], layout),
                )
                for i in range(len(chunk))
            )
        if self.tracer.enabled:
            self.tracer.count("frsz2.compress_batch.calls")
            self.tracer.count("frsz2.compress_batch.vectors", len(arrays))
            self.tracer.count("frsz2.compress.values", n * len(arrays))
            self.tracer.count("frsz2.compress.bytes",
                              layout.total_nbytes * len(arrays))
            self.tracer.count("frsz2.compress.blocks",
                              layout.num_blocks * len(arrays))
        return out

    # ------------------------------------------------------------------
    # decompression (paper Section IV-B)
    # ------------------------------------------------------------------

    @staticmethod
    def _bit_positions(indices: np.ndarray, layout: BlockLayout) -> np.ndarray:
        """Stream bit offsets of value fields (blocks are word-aligned)."""
        return _stream_bit_positions(indices, layout)

    def _read_fields(self, comp: Frsz2Compressed, indices: np.ndarray) -> np.ndarray:
        return _read_fields_numpy(comp, indices)

    def _decode_containers(
        self,
        comps: "Sequence[Frsz2Compressed]",
        flat: np.ndarray,
        e_block: np.ndarray,
    ) -> np.ndarray:
        """Decode positions ``flat`` of every same-layout container.

        The shared engine of the batched decompress paths.  The decode
        pipeline allocates ~a dozen elementwise temporaries spanning its
        whole input, so one giant fused pass over a large batch streams
        through DRAM instead of cache; this helper splits the (bitwise
        order-independent) transform into cache-resident chunks — within
        a container for long streams, across grouped containers for
        short ones — while every value stays bit-identical to a solo
        :meth:`decompress` of its container.

        Returns the concatenated values, ``m`` per container.
        """
        m = int(flat.size)
        if self._gather_kernel is not None:
            # The compiled gather has no elementwise temporaries, so no
            # chunking is needed: decode each container straight into
            # its contiguous output slice.
            values = np.empty(len(comps) * m)
            for i, c in enumerate(comps):
                self._gather_kernel(c, flat, out=values[i * m:(i + 1) * m])
            return values
        chunk = _DECODE_CHUNK_VALUES
        if m * len(comps) <= chunk:
            # small enough that one fused pass stays cache-resident
            fields = np.concatenate([self._read_fields(c, flat) for c in comps])
            e_max = np.concatenate(
                [c.exponents.astype(np.int64)[e_block] for c in comps]
            )
            return self._decode_fields(fields, e_max)
        values = np.empty(len(comps) * m)
        if m >= chunk:
            for i, c in enumerate(comps):
                fields = self._read_fields(c, flat)
                e_max = c.exponents.astype(np.int64)[e_block]
                base = i * m
                for s in range(0, m, chunk):
                    e = min(s + chunk, m)
                    values[base + s:base + e] = self._decode_fields(
                        fields[s:e], e_max[s:e]
                    )
            return values
        # many small containers: fuse whole containers into chunk-sized
        # groups so each decode pass amortizes its Python overhead
        group = max(1, chunk // m)
        for g0 in range(0, len(comps), group):
            gcomps = comps[g0:g0 + group]
            fields = np.concatenate(
                [self._read_fields(c, flat) for c in gcomps]
            )
            e_max = np.concatenate(
                [c.exponents.astype(np.int64)[e_block] for c in gcomps]
            )
            values[g0 * m:(g0 + len(gcomps)) * m] = self._decode_fields(
                fields, e_max
            )
        return values

    def _decode_fields(
        self, fields: np.ndarray, e_max_per_value: np.ndarray
    ) -> np.ndarray:
        """Steps 2-4: fields + block exponents -> float64 values.

        Dispatches to the backend's ``frsz2.decode_fields`` kernel
        (:func:`decode_fields_numpy` is the reference).
        """
        return self._decode_kernel(fields, e_max_per_value, self.bit_length)

    def decompress(self, comp: Frsz2Compressed, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Decompress the full array.

        Parameters
        ----------
        comp : Frsz2Compressed
            A container produced by :meth:`compress` (or loaded from the
            serialized form).
        out : ndarray, shape (n,), dtype float64, optional
            Preallocated destination; reused and returned when given.

        Returns
        -------
        ndarray, shape (n,), dtype float64
            The reconstructed values (lossy: truncated to the block's
            fixed-point grid, sub-grid values flushed to signed zero).
        """
        n = comp.n
        if out is not None and (out.shape != (n,) or out.dtype != np.float64):
            raise ValueError("out must be a float64 array of matching size")
        if self._stream_kernel is not None:
            values = (
                out
                if out is not None and out.flags.c_contiguous
                else np.empty(n)
            )
            self._stream_kernel(comp, values)
        else:
            indices = np.arange(n, dtype=np.int64)
            fields = self._read_fields(comp, indices)
            e_max = np.repeat(
                comp.exponents.astype(np.int64), comp.layout.block_size
            )[:n]
            values = self._decode_fields(fields, e_max)
        if self.tracer.enabled:
            self.tracer.count("frsz2.decompress.calls")
            self.tracer.count("frsz2.decompress.values", n)
            self.tracer.count("frsz2.decompress.bytes", comp.layout.total_nbytes)
            self.tracer.count("frsz2.decompress.blocks", comp.layout.num_blocks)
        if out is not None:
            if values is not out:
                out[:] = values
            return out
        return values

    def get(self, comp: Frsz2Compressed, indices: Union[int, np.ndarray]) -> np.ndarray:
        """Random access decompression (paper Section IV-B).

        Only the requested fields plus their blocks' ``e_max`` entries are
        touched — the random-access-by-block property CB-GMRES requires.
        """
        scalar = np.isscalar(indices)
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= comp.n):
            raise IndexError("index out of range")
        if self._gather_kernel is not None:
            values = self._gather_kernel(comp, idx)
        else:
            fields = self._read_fields(comp, idx)
            e_max = comp.exponents.astype(np.int64)[idx // comp.layout.block_size]
            values = self._decode_fields(fields, e_max)
        if self.tracer.enabled:
            layout = comp.layout
            blocks_touched = int(np.unique(idx // layout.block_size).size)
            # per-block stored bytes: value words + one int32 exponent
            block_nbytes = layout.words_per_block * 4 + 4
            self.tracer.count("frsz2.get.calls")
            self.tracer.count("frsz2.get.values", idx.size)
            self.tracer.count("frsz2.get.blocks", blocks_touched)
            self.tracer.count("frsz2.get.bytes", blocks_touched * block_nbytes)
        return values[0] if scalar else values

    def decompress_block(self, comp: Frsz2Compressed, block: int) -> np.ndarray:
        """Decompress one block (the cache-friendly access pattern)."""
        rng = comp.layout.block_range(block)
        return self.get(comp, np.arange(rng.start, rng.stop, dtype=np.int64))

    def decompress_blocks(
        self, comp: Frsz2Compressed, blocks: Sequence[int]
    ) -> "List[np.ndarray]":
        """Decompress several blocks in one vectorized pass.

        This is the accessor's bulk path: the field read and the decode
        (steps 2-4) each run once over the union of the requested blocks
        instead of once per block, while every returned array is
        bit-identical to :meth:`decompress_block` of the same block.

        Parameters
        ----------
        comp : Frsz2Compressed
            A container produced by :meth:`compress`.
        blocks : sequence of int
            Block indices in ``[0, num_blocks)``; order and duplicates
            are preserved in the output.

        Returns
        -------
        list of ndarray, dtype float64
            ``out[i]`` holds block ``blocks[i]``'s values — length
            ``block_size`` except for a trailing partial block.
        """
        idx = np.asarray(blocks, dtype=np.int64).reshape(-1)
        if idx.size == 0:
            return []
        nb = comp.layout.num_blocks
        if idx.min() < 0 or idx.max() >= nb:
            raise IndexError(
                f"block index out of range [0, {nb}) in {list(blocks)!r}"
            )
        bs = comp.layout.block_size
        # Element grid of all requested blocks; mask off the tail of a
        # trailing partial block.
        grid = idx[:, None] * bs + np.arange(bs, dtype=np.int64)[None, :]
        valid = grid < comp.n
        flat = grid.ravel()[valid.ravel()]
        if self._gather_kernel is not None:
            values = self._gather_kernel(comp, flat)
        else:
            fields = self._read_fields(comp, flat)
            e_max = comp.exponents.astype(np.int64)[flat // bs]
            values = self._decode_fields(fields, e_max)
        counts = valid.sum(axis=1)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        out = [values[offsets[i]:offsets[i + 1]] for i in range(idx.size)]
        if self.tracer.enabled:
            layout = comp.layout
            block_nbytes = layout.words_per_block * 4 + 4
            unique_blocks = int(np.unique(idx).size)
            self.tracer.count("frsz2.decompress_blocks.calls")
            self.tracer.count("frsz2.decompress_blocks.blocks", unique_blocks)
            self.tracer.count("frsz2.decompress_blocks.values", int(flat.size))
            self.tracer.count("frsz2.decompress_blocks.bytes",
                              unique_blocks * block_nbytes)
        return out

    def decompress_batch(
        self, comps: "Sequence[Frsz2Compressed]"
    ) -> "List[np.ndarray]":
        """Decompress several same-layout containers in one pass.

        The bit-assembly decode (the expensive part) runs once over the
        concatenated field stream of all containers; results are
        bit-identical to calling :meth:`decompress` per container.
        Containers with differing layouts fall back to per-container
        decompression.

        Parameters
        ----------
        comps : sequence of Frsz2Compressed

        Returns
        -------
        list of ndarray, each shape (n_i,), dtype float64
        """
        comps = list(comps)
        if not comps:
            return []
        first = comps[0].layout
        if any(c.layout != first for c in comps[1:]):
            return [self.decompress(c) for c in comps]
        n = first.n
        indices = np.arange(n, dtype=np.int64)
        values = self._decode_containers(
            comps, indices, indices // first.block_size
        )
        if self.tracer.enabled:
            self.tracer.count("frsz2.decompress_batch.calls")
            self.tracer.count("frsz2.decompress_batch.vectors", len(comps))
            self.tracer.count("frsz2.decompress.values", n * len(comps))
            self.tracer.count("frsz2.decompress.bytes",
                              first.total_nbytes * len(comps))
            self.tracer.count("frsz2.decompress.blocks",
                              first.num_blocks * len(comps))
        return [values[i * n:(i + 1) * n] for i in range(len(comps))]

    def decompress_blocks_batch(
        self, comps: "Sequence[Frsz2Compressed]", blocks: Sequence[int]
    ) -> "List[np.ndarray]":
        """Decompress the same blocks from several containers in one pass.

        This is the fused-kernel tile decode (paper Fig. 1 steps 4/18):
        one *tile* — a run of blocks — is decoded across **all** ``j``
        stored Krylov vectors at once, with the bit-assembly decode
        (steps 2-4) running in a single vectorized pass over every
        container's fields.  Each returned array is bit-identical to
        concatenating :meth:`decompress_blocks` of the same container.

        Parameters
        ----------
        comps : sequence of Frsz2Compressed
            Same-layout containers (mixed layouts fall back to the
            per-container bulk path).
        blocks : sequence of int
            Block indices in ``[0, num_blocks)``, shared by all
            containers; order and duplicates are preserved.

        Returns
        -------
        list of ndarray, dtype float64
            ``out[i]`` holds the concatenated values of ``blocks`` from
            ``comps[i]`` (a trailing partial block contributes only its
            valid values).
        """
        comps = list(comps)
        if not comps:
            return []
        first = comps[0].layout
        if any(c.layout != first for c in comps[1:]):
            return [
                np.concatenate(self.decompress_blocks(c, blocks))
                if len(blocks)
                else np.zeros(0)
                for c in comps
            ]
        idx = np.asarray(blocks, dtype=np.int64).reshape(-1)
        if idx.size == 0:
            return [np.zeros(0) for _ in comps]
        nb = first.num_blocks
        if idx.min() < 0 or idx.max() >= nb:
            raise IndexError(
                f"block index out of range [0, {nb}) in {list(blocks)!r}"
            )
        bs = first.block_size
        grid = idx[:, None] * bs + np.arange(bs, dtype=np.int64)[None, :]
        valid = grid < first.n
        flat = grid.ravel()[valid.ravel()]
        values = self._decode_containers(comps, flat, flat // bs)
        m = int(flat.size)
        out = [values[i * m:(i + 1) * m] for i in range(len(comps))]
        if self.tracer.enabled:
            block_nbytes = first.words_per_block * 4 + 4
            unique_blocks = int(np.unique(idx).size)
            self.tracer.count("frsz2.decompress_blocks_batch.calls")
            self.tracer.count("frsz2.decompress_blocks_batch.vectors", len(comps))
            self.tracer.count("frsz2.decompress_blocks.blocks",
                              unique_blocks * len(comps))
            self.tracer.count("frsz2.decompress_blocks.values", m * len(comps))
            self.tracer.count("frsz2.decompress_blocks.bytes",
                              unique_blocks * block_nbytes * len(comps))
        return out

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Compress then decompress (the error-injection path of §V-D)."""
        return self.decompress(self.compress(x))

    def max_block_error_bound(self, e_max_biased: int) -> float:
        """A priori truncation error bound for a block.

        Truncation drops bits below the fixed-point grid spacing
        ``2^(e_max - 1023 - (l - 2))``, so every value in the block
        satisfies ``|x - x'| < 2^(e_max - 1023 - (l - 2))`` (one grid ulp;
        half that with rounding).
        """
        import math

        return math.ldexp(1.0, int(e_max_biased) - 1023 - (self.bit_length - 2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FRSZ2(bit_length={self.bit_length}, block_size={self.block_size}, "
            f"rounding={self.rounding})"
        )
