"""Vectorized bit-stream packing into 32-bit words.

FRSZ2 stores compressed values as *l*-bit fields inside a stream of
integer words (paper Section IV: "For increased memory access speed, we
read and write our memory as integers with at least l bits").  For
``l = 2^x`` the fields align with machine types and packing is a cast;
for other lengths (e.g. ``l = 21``) neighbouring values straddle word
boundaries and must be merged before storing, since "GPUs can only store
values at a byte level" (compression step 6).

This module implements the general case: writing/reading ``width``-bit
fields (``1 <= width <= 64``) at arbitrary bit positions of a little-
endian ``uint32`` word stream, fully vectorized.  Fields wider than 32
bits are decomposed into 32-bit chunks; each chunk touches at most two
words.

The same machinery backs the Huffman bit streams of the SZ-like
comparator compressor.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "words_needed",
    "pack_at",
    "unpack_at",
    "pack_fields",
    "unpack_fields",
]

_U32_MASK = np.uint64(0xFFFFFFFF)


def _check_bounds(bitpos: np.ndarray, widths: np.ndarray, nwords: int) -> None:
    """Reject fields outside ``[0, nwords * 32)``, naming the offender."""
    stream_bits = nwords * 32
    bad = (bitpos < 0) | (bitpos + widths > stream_bits)
    if np.any(bad):
        i = int(np.argmax(bad))
        raise ValueError(
            f"field of width {int(widths[i])} at bit position {int(bitpos[i])} "
            f"falls outside the {stream_bits}-bit stream ({nwords} words)"
        )


def words_needed(total_bits: int) -> int:
    """Number of 32-bit words required to hold ``total_bits`` bits."""
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    return (int(total_bits) + 31) // 32


def _field_mask(widths: np.ndarray) -> np.ndarray:
    """Per-field mask ``2^width - 1`` as uint64 (width 64 -> all ones)."""
    w = widths.astype(np.uint64)
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    # Shifting by 64 is undefined; special-case full-width fields.
    shifted = np.where(w >= 64, full, (np.uint64(1) << np.where(w >= 64, np.uint64(0), w)) - np.uint64(1))
    return shifted


def _scatter_chunks(words: np.ndarray, bitpos: np.ndarray, chunks: np.ndarray, nbits: np.ndarray) -> None:
    """OR ``nbits``-bit (<=32) chunks into ``words`` at ``bitpos``."""
    active = nbits > 0
    if not np.all(active):
        bitpos = bitpos[active]
        chunks = chunks[active]
        nbits = nbits[active]
    if bitpos.size == 0:
        return
    word_idx = (bitpos >> 5).astype(np.int64)
    bit_off = (bitpos & 31).astype(np.uint64)
    vals = (chunks & _field_mask(nbits)) << bit_off  # <= 63 bits, fits uint64
    lo = (vals & _U32_MASK).astype(np.uint32)
    hi = (vals >> np.uint64(32)).astype(np.uint32)
    # np.bitwise_or.at is unbuffered: safe with repeated word indices.
    np.bitwise_or.at(words, word_idx, lo)
    spill = hi != 0
    if np.any(spill):
        np.bitwise_or.at(words, word_idx[spill] + 1, hi[spill])


def pack_at(words: np.ndarray, bitpos: np.ndarray, fields: np.ndarray, widths) -> None:
    """OR ``widths``-bit fields into a uint32 word stream at bit positions.

    Parameters
    ----------
    words:
        Destination ``uint32`` array.  Target bits must currently be zero
        (the operation is a bitwise OR, matching GPU store merging).
    bitpos:
        Bit offset of each field's LSB within the stream (int64).
    fields:
        Field values (converted to ``uint64``); bits above each field's
        width must be zero, otherwise a ``ValueError`` is raised.
    widths:
        Scalar or per-field widths in [1, 64].
    """
    if words.dtype != np.uint32:
        raise TypeError("words must be uint32")
    bitpos = np.asarray(bitpos, dtype=np.int64)
    fields = np.asarray(fields, dtype=np.uint64)
    widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), fields.shape)
    if bitpos.shape != fields.shape:
        raise ValueError("bitpos and fields must have the same shape")
    if fields.size == 0:
        return
    if np.any(widths < 1) or np.any(widths > 64):
        raise ValueError("widths must be in [1, 64]")
    if np.any(fields & ~_field_mask(widths)):
        raise ValueError("field value exceeds its declared width")
    _check_bounds(bitpos, widths, words.size)
    # Low chunk: up to 32 bits.
    lo_bits = np.minimum(widths, 32)
    _scatter_chunks(words, bitpos, fields, lo_bits)
    # High chunk for fields wider than 32 bits.
    hi_bits = widths - lo_bits
    if np.any(hi_bits > 0):
        _scatter_chunks(words, bitpos + 32, fields >> np.uint64(32), hi_bits)


def _gather_chunks(words: np.ndarray, bitpos: np.ndarray, nbits: np.ndarray) -> np.ndarray:
    """Read ``nbits``-bit (<=32) chunks from ``words`` at ``bitpos``."""
    word_idx = (bitpos >> 5).astype(np.int64)
    bit_off = (bitpos & 31).astype(np.uint64)
    lo = words[word_idx].astype(np.uint64)
    nxt = word_idx + 1
    # Clamp the straddle read; the shifted-in bits are masked off anyway.
    nxt = np.minimum(nxt, words.size - 1)
    hi = words[nxt].astype(np.uint64)
    combined = (lo >> bit_off) | np.where(
        bit_off == 0, np.uint64(0), hi << (np.uint64(32) - bit_off)
    )
    return combined & _field_mask(nbits)


def unpack_at(words: np.ndarray, bitpos: np.ndarray, widths) -> np.ndarray:
    """Read ``widths``-bit fields from a uint32 word stream (see pack_at)."""
    if words.dtype != np.uint32:
        raise TypeError("words must be uint32")
    bitpos = np.asarray(bitpos, dtype=np.int64)
    widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), bitpos.shape)
    if bitpos.size == 0:
        return np.zeros(0, dtype=np.uint64)
    if np.any(widths < 1) or np.any(widths > 64):
        raise ValueError("widths must be in [1, 64]")
    _check_bounds(bitpos, widths, words.size)
    lo_bits = np.minimum(widths, 32)
    out = _gather_chunks(words, bitpos, lo_bits)
    hi_bits = widths - lo_bits
    if np.any(hi_bits > 0):
        sel = hi_bits > 0
        hi = np.zeros_like(out)
        hi[sel] = _gather_chunks(words, bitpos[sel] + 32, hi_bits[sel])
        out = out | (hi << np.uint64(32))
    return out


def pack_fields(fields: np.ndarray, width: int) -> np.ndarray:
    """Pack equal-width fields consecutively; returns the uint32 stream."""
    fields = np.asarray(fields, dtype=np.uint64)
    n = fields.size
    words = np.zeros(words_needed(n * width), dtype=np.uint32)
    bitpos = np.arange(n, dtype=np.int64) * int(width)
    pack_at(words, bitpos, fields, width)
    return words


def unpack_fields(words: np.ndarray, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_fields`: read ``n`` consecutive fields."""
    bitpos = np.arange(n, dtype=np.int64) * int(width)
    return unpack_at(words, bitpos, width)
