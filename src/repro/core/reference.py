"""Scalar reference implementation of the FRSZ2 codec.

A deliberately straight-line, one-value-at-a-time transcription of the
compression steps 1-6 and decompression steps 1-4 from Section IV of the
paper.  It is the oracle against which the vectorized production codec
(:mod:`repro.core.frsz2`) and the warp-level SIMT kernel
(:mod:`repro.gpu.warp`) are tested, and it powers the step-by-step
walkthrough example (paper Fig. 3).

Python ints are arbitrary precision, so every shift here is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = [
    "compress_value",
    "compress_block",
    "decompress_value",
    "decompress_block",
    "CompressionTrace",
    "trace_block_compression",
]

_MANT_BITS = 52
_EXP_BIAS = 1023


def _split(x: float) -> "tuple[int, int, int]":
    """Split a finite double into (sign, effective biased exponent, sig53)."""
    bits = int.from_bytes(__import__("struct").pack("<d", x), "little")
    s = bits >> 63
    e = (bits >> 52) & 0x7FF
    m = bits & ((1 << 52) - 1)
    if e == 0x7FF:
        raise ValueError("non-finite values are not supported by FRSZ2")
    if e == 0:
        return s, 1, m  # subnormal / zero: no implicit bit
    return s, e, m | (1 << 52)


def compress_value(x: float, e_max: int, bit_length: int, rounding: bool = False) -> int:
    """Compress one value against a known block maximum exponent.

    Implements steps 2-5: extract sign and significand with explicit
    leading 1, prefix ``k = e_max - e`` zeros, prepend the sign, and cut
    to ``bit_length`` bits (truncation by default; optional
    round-to-nearest for the ablation study, clamped so a carry cannot
    overflow into the sign bit).
    """
    l = bit_length
    s, e, sig53 = _split(x)
    k = e_max - e
    if k < 0:
        raise ValueError("value exponent exceeds block maximum")
    shift = (54 - l) + k
    if rounding and shift > 0:
        c_sig = (sig53 + (1 << (shift - 1))) >> shift
        c_sig = min(c_sig, (1 << (l - 1)) - 1)
    elif shift >= 0:
        c_sig = sig53 >> shift
    else:
        c_sig = sig53 << (-shift)
    return (s << (l - 1)) | c_sig


def block_max_exponent(values: Sequence[float]) -> int:
    """Step 1: maximum effective biased exponent over the block."""
    return max(_split(float(v))[1] for v in values)


def compress_block(
    values: Sequence[float], bit_length: int, rounding: bool = False
) -> "tuple[int, List[int]]":
    """Compress a block; returns ``(e_max, [c, ...])`` (step 6 stores both)."""
    e_max = block_max_exponent(values)
    return e_max, [compress_value(float(v), e_max, bit_length, rounding) for v in values]


def decompress_value(c: int, e_max: int, bit_length: int) -> float:
    """Decompress one field ``c`` given its block's ``e_max``.

    Evaluates paper Eq. (2) exactly:

        value = (-1)^s * (c_{l-2} . c_{l-3} ... c_0)_2 * 2^(e_max - 1023)

    i.e. ``(-1)^s * c_sig * 2^(e_max - 1023 - (l - 2))`` via ``ldexp``.
    Results below the normal range flush to zero, mirroring the bit-
    assembly decoder used on the GPU.
    """
    l = bit_length
    s = (c >> (l - 1)) & 1
    c_sig = c & ((1 << (l - 1)) - 1)
    if c_sig == 0:
        return -0.0 if s else 0.0
    # k = leading zeros of the significand field; e = e_max - k (step 3).
    k = (l - 2) - c_sig.bit_length() + 1
    if e_max - k <= 0:
        return -0.0 if s else 0.0  # underflows the normal range
    # For l > 54 the field carries more fraction bits than a double's
    # mantissa; truncate the excess (matching the bit-assembly decoder).
    excess = c_sig.bit_length() - 53
    exp2 = e_max - _EXP_BIAS - (l - 2)
    if excess > 0:
        c_sig >>= excess
        exp2 += excess
    value = math.ldexp(c_sig, exp2)
    return -value if s else value


def decompress_block(e_max: int, fields: Sequence[int], bit_length: int) -> List[float]:
    """Decompress a whole block of fields."""
    return [decompress_value(c, e_max, bit_length) for c in fields]


@dataclass
class CompressionTrace:
    """Intermediate quantities of each compression step, for one block.

    Used by ``examples/compression_walkthrough.py`` to reproduce the
    worked illustration of paper Fig. 3.
    """

    values: List[float] = field(default_factory=list)
    signs: List[int] = field(default_factory=list)
    exponents: List[int] = field(default_factory=list)
    significands: List[int] = field(default_factory=list)
    e_max: int = 0
    shifts: List[int] = field(default_factory=list)
    compressed: List[int] = field(default_factory=list)
    decompressed: List[float] = field(default_factory=list)

    def format_steps(self, bit_length: int) -> str:
        """Human-readable rendering of the six compression steps."""
        lines = [f"block of {len(self.values)} values, l = {bit_length}"]
        lines.append(f"step 1: exponents {self.exponents} -> e_max = {self.e_max}")
        for i, v in enumerate(self.values):
            sig = self.significands[i]
            lines.append(
                f"  value {v!r}: s={self.signs[i]} e={self.exponents[i]} "
                f"sig53={sig:053b}"
            )
            lines.append(
                f"    k={self.e_max - self.exponents[i]} shift={self.shifts[i]} "
                f"-> c={self.compressed[i]:0{bit_length}b} "
                f"-> {self.decompressed[i]!r}"
            )
        return "\n".join(lines)


def trace_block_compression(
    values: Sequence[float], bit_length: int, rounding: bool = False
) -> CompressionTrace:
    """Run block compression while recording every intermediate step."""
    trace = CompressionTrace()
    trace.values = [float(v) for v in values]
    for v in trace.values:
        s, e, sig = _split(v)
        trace.signs.append(s)
        trace.exponents.append(e)
        trace.significands.append(sig)
    trace.e_max = max(trace.exponents)
    for v, e in zip(trace.values, trace.exponents):
        trace.shifts.append((54 - bit_length) + (trace.e_max - e))
        trace.compressed.append(compress_value(v, trace.e_max, bit_length, rounding))
    trace.decompressed = decompress_block(trace.e_max, trace.compressed, bit_length)
    return trace
