"""FRSZ2 core: the paper's in-register block compressor and its substrates.

Public entry points:

* :class:`repro.core.frsz2.FRSZ2` — the vectorized production codec.
* :class:`repro.core.blocks.BlockLayout` — block geometry and Eq. 3 storage.
* :mod:`repro.core.reference` — scalar oracle implementation.
* :mod:`repro.core.ieee754` / :mod:`repro.core.bitpack` — bit-level substrates.
"""

from .blocks import DEFAULT_BLOCK_SIZE, BlockLayout
from .frsz2 import FRSZ2, Frsz2Compressed
from .serialize import dump_bytes, dump_file, load_bytes, load_file

__all__ = [
    "FRSZ2",
    "Frsz2Compressed",
    "BlockLayout",
    "DEFAULT_BLOCK_SIZE",
    "dump_bytes",
    "dump_file",
    "load_bytes",
    "load_file",
]
