"""Binary serialization of FRSZ2-compressed arrays.

A small self-describing container so compressed Krylov data (or any
FRSZ2-compressed array) can be written to disk or shipped over a wire
and decompressed elsewhere without out-of-band metadata.

Layout (little endian):

    magic   4 bytes  b"FRZ2"
    version u16      2 (v1 containers remain readable)
    l       u16      bit length
    bs      u32      block size
    n       u64      element count
    exponents: num_blocks * i32
    payload:   value stream (dtype implied by l / alignment)
    crc     u32      (v2 only) CRC32 over header+exponents+payload

The version-2 CRC32 trailer covers every preceding byte, so any
single-bit corruption of the stream — header, exponents, payload or the
trailer itself — is detected at load time with a ``ValueError`` instead
of silently decompressing garbage into a solver.  Header fields are
validated *before* any size arithmetic, so hostile containers (zero
block size, unsupported bit length, absurd element counts) fail with a
precise error naming the bad field rather than a downstream
division-by-zero or overflow.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from .blocks import BlockLayout
from .frsz2 import _ALIGNED_DTYPES, Frsz2Compressed

__all__ = ["dump_bytes", "load_bytes", "dump_file", "load_file", "CONTAINER_VERSION"]

_MAGIC = b"FRZ2"
#: current (checksummed) container version
CONTAINER_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct("<4sHHIQ")
_CRC = struct.Struct("<I")


def dump_bytes(comp: Frsz2Compressed, version: int = CONTAINER_VERSION) -> bytes:
    """Serialize a compressed array to bytes.

    ``version=1`` writes the legacy container without the CRC32 trailer
    (for interoperability with pre-v2 readers).
    """
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"cannot write FRSZ2 container version {version}; "
            f"supported: {_SUPPORTED_VERSIONS}"
        )
    layout = comp.layout
    header = _HEADER.pack(
        _MAGIC, version, layout.bit_length, layout.block_size, layout.n
    )
    body = header + comp.exponents.tobytes() + comp.payload.tobytes()
    if version == 1:
        return body
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def load_bytes(data: bytes) -> Frsz2Compressed:
    """Reconstruct a compressed array from :func:`dump_bytes` output.

    Raises ``ValueError`` naming the offending field for any malformed,
    truncated or (v2) corrupted container.
    """
    if len(data) < _HEADER.size:
        raise ValueError(
            f"truncated FRSZ2 container: {len(data)} bytes < "
            f"{_HEADER.size}-byte header"
        )
    magic, version, l, bs, n = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("not an FRSZ2 container (bad magic)")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported FRSZ2 container version {version}")
    # Validate header fields before any size arithmetic touches them.
    if bs == 0:
        raise ValueError("invalid FRSZ2 container header: block_size must be positive, got 0")
    if not 2 <= l <= 64:
        raise ValueError(
            f"invalid FRSZ2 container header: bit_length must be in [2, 64], got {l}"
        )
    layout = BlockLayout(n, bs, l)
    off = _HEADER.size
    exp_bytes = layout.num_blocks * 4
    trailer = _CRC.size if version >= 2 else 0
    body_size = _HEADER.size + exp_bytes + _payload_nbytes(layout)
    expected = body_size + trailer
    if len(data) != expected:
        # Python ints don't overflow, so a hostile element count simply
        # produces an expected size the data can't match.
        raise ValueError(
            f"FRSZ2 container size mismatch for n={n}, block_size={bs}, "
            f"bit_length={l}: expected {expected} bytes, got {len(data)}"
        )
    if version >= 2:
        stored = _CRC.unpack_from(data, body_size)[0]
        actual = zlib.crc32(data[:body_size]) & 0xFFFFFFFF
        if stored != actual:
            raise ValueError(
                f"FRSZ2 container checksum mismatch: stored 0x{stored:08x}, "
                f"computed 0x{actual:08x} (corrupted stream)"
            )
    exponents = np.frombuffer(data, dtype=np.int32, count=layout.num_blocks, offset=off).copy()
    off += exp_bytes
    if layout.is_aligned:
        dtype = _ALIGNED_DTYPES[l]
        count = layout.num_blocks * bs
    else:
        dtype = np.uint32
        count = layout.value_words
    payload = np.frombuffer(data, dtype=dtype, count=count, offset=off).copy()
    return Frsz2Compressed(layout=layout, exponents=exponents, payload=payload)


def _payload_nbytes(layout: BlockLayout) -> int:
    if layout.is_aligned:
        return layout.num_blocks * layout.block_size * (layout.bit_length // 8)
    return layout.value_words * 4


def dump_file(path, comp: Frsz2Compressed, version: int = CONTAINER_VERSION) -> None:
    """Write a compressed array to ``path``."""
    with open(path, "wb") as fh:
        fh.write(dump_bytes(comp, version=version))


def load_file(path) -> Frsz2Compressed:
    """Read a compressed array written by :func:`dump_file`."""
    with open(path, "rb") as fh:
        return load_bytes(fh.read())
