"""Binary serialization of FRSZ2-compressed arrays.

A small self-describing container so compressed Krylov data (or any
FRSZ2-compressed array) can be written to disk or shipped over a wire
and decompressed elsewhere without out-of-band metadata.

Layout (little endian):

    magic   4 bytes  b"FRZ2"
    version u16      currently 1
    l       u16      bit length
    bs      u32      block size
    n       u64      element count
    exponents: num_blocks * i32
    payload:   value stream (dtype implied by l / alignment)
"""

from __future__ import annotations

import struct

import numpy as np

from .blocks import BlockLayout
from .frsz2 import _ALIGNED_DTYPES, Frsz2Compressed

__all__ = ["dump_bytes", "load_bytes", "dump_file", "load_file"]

_MAGIC = b"FRZ2"
_VERSION = 1
_HEADER = struct.Struct("<4sHHIQ")


def dump_bytes(comp: Frsz2Compressed) -> bytes:
    """Serialize a compressed array to bytes."""
    layout = comp.layout
    header = _HEADER.pack(
        _MAGIC, _VERSION, layout.bit_length, layout.block_size, layout.n
    )
    return header + comp.exponents.tobytes() + comp.payload.tobytes()


def load_bytes(data: bytes) -> Frsz2Compressed:
    """Reconstruct a compressed array from :func:`dump_bytes` output."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated FRSZ2 container")
    magic, version, l, bs, n = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("not an FRSZ2 container (bad magic)")
    if version != _VERSION:
        raise ValueError(f"unsupported FRSZ2 container version {version}")
    layout = BlockLayout(n, bs, l)
    off = _HEADER.size
    exp_bytes = layout.num_blocks * 4
    expected = _HEADER.size + exp_bytes + _payload_nbytes(layout)
    if len(data) != expected:
        raise ValueError(
            f"FRSZ2 container size mismatch: expected {expected}, got {len(data)}"
        )
    exponents = np.frombuffer(data, dtype=np.int32, count=layout.num_blocks, offset=off).copy()
    off += exp_bytes
    if layout.is_aligned:
        dtype = _ALIGNED_DTYPES[l]
        count = layout.num_blocks * bs
    else:
        dtype = np.uint32
        count = layout.value_words
    payload = np.frombuffer(data, dtype=dtype, count=count, offset=off).copy()
    return Frsz2Compressed(layout=layout, exponents=exponents, payload=payload)


def _payload_nbytes(layout: BlockLayout) -> int:
    if layout.is_aligned:
        return layout.num_blocks * layout.block_size * (layout.bit_length // 8)
    return layout.value_words * 4


def dump_file(path, comp: Frsz2Compressed) -> None:
    """Write a compressed array to ``path``."""
    with open(path, "wb") as fh:
        fh.write(dump_bytes(comp))


def load_file(path) -> Frsz2Compressed:
    """Read a compressed array written by :func:`dump_file`."""
    with open(path, "rb") as fh:
        return load_bytes(fh.read())
