"""Vectorized IEEE 754 binary64 field manipulation.

FRSZ2 (paper Section IV) operates directly on the bit-level fields of
IEEE 754 double-precision values: the sign ``s``, the 11-bit biased
exponent ``e`` and the 52-bit stored significand ``b51..b0``, combined as

    value = (-1)^s * (1.b51..b0)_2 * 2^(e - 1023)          (paper Eq. 1)

This module provides the NumPy equivalents of the CUDA intrinsics the
paper relies on: reinterpret casts between ``float64`` and ``uint64``
(``__double_as_longlong``), field extraction/assembly, and a vectorized
count-leading-zeros (``__clzll``).

All functions are pure and operate on arrays without copying where a view
suffices (reinterpret casts are views).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SIGN_SHIFT",
    "EXPONENT_SHIFT",
    "EXPONENT_MASK",
    "EXPONENT_BIAS",
    "MANTISSA_BITS",
    "MANTISSA_MASK",
    "IMPLICIT_BIT",
    "MAX_BIASED_EXPONENT",
    "to_bits",
    "from_bits",
    "sign_bit",
    "biased_exponent",
    "mantissa",
    "significand53",
    "effective_biased_exponent",
    "assemble",
    "is_nonfinite",
    "highest_set_bit",
    "count_leading_zeros",
]

SIGN_SHIFT = 63
EXPONENT_SHIFT = 52
EXPONENT_MASK = np.uint64(0x7FF)
EXPONENT_BIAS = 1023
MANTISSA_BITS = 52
MANTISSA_MASK = np.uint64((1 << 52) - 1)
IMPLICIT_BIT = np.uint64(1 << 52)
#: Biased exponent reserved for Inf/NaN.
MAX_BIASED_EXPONENT = 0x7FF

_U64 = np.uint64
_ONE = np.uint64(1)


def to_bits(x: np.ndarray) -> np.ndarray:
    """Reinterpret a ``float64`` array as ``uint64`` (zero-copy view).

    Equivalent to CUDA's ``__double_as_longlong`` applied element-wise.
    """
    x = np.asarray(x)
    if x.dtype != np.float64:
        raise TypeError(f"expected float64 input, got {x.dtype}")
    return x.view(np.uint64)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a ``uint64`` array as ``float64`` (zero-copy view)."""
    bits = np.asarray(bits)
    if bits.dtype != np.uint64:
        raise TypeError(f"expected uint64 input, got {bits.dtype}")
    return bits.view(np.float64)


def sign_bit(bits: np.ndarray) -> np.ndarray:
    """Extract the sign bit (0 or 1) as ``uint64``."""
    return bits >> np.uint64(SIGN_SHIFT)


def biased_exponent(bits: np.ndarray) -> np.ndarray:
    """Extract the 11-bit biased exponent as ``uint64`` (0..2047)."""
    return (bits >> np.uint64(EXPONENT_SHIFT)) & EXPONENT_MASK


def mantissa(bits: np.ndarray) -> np.ndarray:
    """Extract the 52 stored significand bits as ``uint64``."""
    return bits & MANTISSA_MASK


def significand53(bits: np.ndarray) -> np.ndarray:
    """Return the full 53-bit significand including the implicit leading 1.

    For normal numbers this is ``mantissa | 2^52`` (paper compression
    step 2: "add the usually implicit 1 bit").  For subnormals and zeros
    (biased exponent 0) there is no implicit bit, so the raw mantissa is
    returned; together with :func:`effective_biased_exponent` this gives
    the uniform representation ``value = sig53 * 2^(e_eff - 1075)``.
    """
    exp = biased_exponent(bits)
    implicit = np.where(exp != 0, IMPLICIT_BIT, _U64(0))
    return mantissa(bits) | implicit


def effective_biased_exponent(bits: np.ndarray) -> np.ndarray:
    """Biased exponent with subnormals mapped to 1.

    With ``sig53 = significand53(bits)`` every finite double satisfies
    exactly ``value = (-1)^s * sig53 * 2^(e_eff - 1075)``.
    """
    return np.maximum(biased_exponent(bits), _ONE)


def assemble(sign: np.ndarray, exponent: np.ndarray, mant: np.ndarray) -> np.ndarray:
    """Assemble sign/biased-exponent/mantissa fields into float64 values.

    This mirrors decompression step 4 of the paper ("merge s, e, and the
    corrected significand back to an IEEE double-precision value").
    Inputs are taken modulo their field widths.
    """
    sign = np.asarray(sign, dtype=np.uint64)
    exponent = np.asarray(exponent, dtype=np.uint64)
    mant = np.asarray(mant, dtype=np.uint64)
    bits = (
        ((sign & _ONE) << np.uint64(SIGN_SHIFT))
        | ((exponent & EXPONENT_MASK) << np.uint64(EXPONENT_SHIFT))
        | (mant & MANTISSA_MASK)
    )
    return from_bits(bits)


def is_nonfinite(x: np.ndarray) -> np.ndarray:
    """Boolean mask of NaN/Inf entries (biased exponent == 0x7FF)."""
    return biased_exponent(to_bits(np.asarray(x, dtype=np.float64))) == EXPONENT_MASK


def _highest_set_bit_le32(v: np.ndarray) -> np.ndarray:
    """Highest set bit index for values < 2^32 (internal helper).

    Uses exact float64 conversion: every integer below 2^53 converts
    exactly, so ``frexp`` yields ``floor(log2 v) + 1``.  Returns -1 for 0.
    """
    _, e = np.frexp(v.astype(np.float64))
    return e.astype(np.int64) - 1


def highest_set_bit(v: np.ndarray) -> np.ndarray:
    """Vectorized index of the most significant set bit of ``uint64`` values.

    Returns -1 for zero inputs.  Exact for the full 64-bit range (the
    naive float conversion trick is only exact below 2^53, so the high
    and low 32-bit halves are handled separately).
    """
    v = np.asarray(v, dtype=np.uint64)
    hi = v >> np.uint64(32)
    lo = v & np.uint64(0xFFFFFFFF)
    return np.where(
        hi != 0,
        _highest_set_bit_le32(hi) + 32,
        _highest_set_bit_le32(lo),
    )


def count_leading_zeros(v: np.ndarray, width: int = 64) -> np.ndarray:
    """Vectorized count-leading-zeros within a ``width``-bit field.

    NumPy analog of CUDA's ``__clz``/``__clzll`` intrinsics, which the
    paper lists as "mandatory for good performance" (Section IV-C).
    Zero inputs return ``width``.  Raises if any value needs more than
    ``width`` bits.
    """
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    v = np.asarray(v, dtype=np.uint64)
    hsb = highest_set_bit(v)
    if np.any(hsb >= width):
        raise ValueError(f"value exceeds {width}-bit field")
    return (width - 1) - hsb
