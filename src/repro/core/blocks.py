"""Block layout and storage accounting for FRSZ2 (paper Eq. 3).

FRSZ2 groups ``BS`` consecutive values into a block that shares one
maximum exponent.  Blocks are aligned so that every block starts at a
32-bit word boundary, which keeps index computations cheap (paper
Section IV-C, optimization 4/5).  The exponents live in a *separate*
stream of one ``int32`` per block (optimization 5), so the total storage
for ``n`` values is

    ceil(n / BS) * ceil(BS * l / 32) * 4   bytes of compressed values
  + ceil(n / BS) * 4                       bytes of exponents

which is Eq. (3) of the paper specialised to a 4-byte word type.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlockLayout", "DEFAULT_BLOCK_SIZE"]

#: The paper mandates BS = 32 on NVIDIA GPUs so a block maps onto a warp.
DEFAULT_BLOCK_SIZE = 32


@dataclass(frozen=True)
class BlockLayout:
    """Geometry of an FRSZ2-compressed array.

    Parameters mirror the two optimization parameters of the format:
    ``block_size`` (BS) and ``bit_length`` (l), plus the element count.
    """

    n: int
    block_size: int = DEFAULT_BLOCK_SIZE
    bit_length: int = 32

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be non-negative, got {self.n}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        # l includes the sign bit and at least the integer significand bit.
        if not 2 <= self.bit_length <= 64:
            raise ValueError(f"bit_length must be in [2, 64], got {self.bit_length}")

    @property
    def num_blocks(self) -> int:
        """Number of blocks, ``ceil(n / BS)``."""
        return -(-self.n // self.block_size)

    @property
    def words_per_block(self) -> int:
        """32-bit words holding one block's compressed values."""
        return -(-(self.block_size * self.bit_length) // 32)

    @property
    def value_words(self) -> int:
        """Total 32-bit words in the compressed-value stream."""
        return self.num_blocks * self.words_per_block

    @property
    def value_nbytes(self) -> int:
        """Bytes of compressed values (first term of Eq. 3)."""
        return self.value_words * 4

    @property
    def exponent_nbytes(self) -> int:
        """Bytes of the per-block exponent stream (second term of Eq. 3)."""
        return self.num_blocks * 4

    @property
    def total_nbytes(self) -> int:
        """Total storage in bytes (Eq. 3)."""
        return self.value_nbytes + self.exponent_nbytes

    @property
    def bits_per_value(self) -> float:
        """Average storage bits per value, including the exponent stream.

        For BS=32, l=32 this is (32*32 + 32)/32 = 33 bits — the figure the
        paper uses to explain why frsz2_32 trails float32 slightly.
        """
        if self.n == 0:
            return 0.0
        return self.total_nbytes * 8 / self.n

    @property
    def is_aligned(self) -> bool:
        """True when l is a power of two >= 8, i.e. fields never straddle.

        The paper keeps separate, simpler kernels for this case
        (Section IV-C, optimization 3).
        """
        l = self.bit_length
        return l in (8, 16, 32, 64)

    def block_bit_start(self, block: int) -> int:
        """Bit offset of a block's first field in the value stream."""
        return block * self.words_per_block * 32

    def value_bit_position(self, index) -> "tuple":
        """(block, bit offset) of the field holding value ``index``."""
        block = index // self.block_size
        within = index % self.block_size
        return block, block * self.words_per_block * 32 + within * self.bit_length

    def block_range(self, block: int) -> range:
        """Indices of the values stored in ``block`` (last may be short)."""
        start = block * self.block_size
        return range(start, min(start + self.block_size, self.n))
