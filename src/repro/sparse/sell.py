"""SELL-C-σ (sliced ELLPACK) storage with per-slice padded width.

SELL-C-σ groups rows into slices of ``C`` consecutive rows and pads
each slice only to *its own* longest row, which bounds the padding that
plain ELLPACK pays on matrices with a few long rows.  The σ parameter
optionally sorts rows by descending length inside windows of ``sigma``
rows before slicing, so similar-length rows share a slice and the
per-slice widths drop further; the permutation and its inverse are
stored so the matrix still acts on unpermuted vectors (Kreutzer et al.'s
SELL-C-σ; Ginkgo's SELL-P variant of it is one of the two SpMV kernels
the Aliaga et al. CB-GMRES paper selects between).

The NumPy kernel groups slices *by width* so one gather + multiply +
``np.add.reduce`` pass covers every slice of equal width — a handful of
fully vectorized passes instead of a Python loop over slices.  As in
:mod:`repro.sparse.ell`, each row's entries accumulate left-to-right in
CSR entry order, so row sums match the CSR kernel bit-for-bit; only the
row *ordering* inside the stored arrays is permuted.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER
from .csr import CSRMatrix, SpmvCounter

__all__ = ["SELLMatrix", "DEFAULT_SLICE_SIZE", "DEFAULT_SIGMA", "sell_padded_entries"]


@_dispatch.register("spmv.sell_group_matvec", "numpy")
def sell_group_matvec_numpy(
    rows: np.ndarray,
    cols_t: np.ndarray,
    vals_t: np.ndarray,
    x: np.ndarray,
    work: "np.ndarray | None",
    y: np.ndarray,
) -> None:
    """Reference SELL SpMV for one width group; writes ``y[rows]``.

    ``np.add.reduce`` over the outer axis accumulates each row's slots
    sequentially in CSR entry order — the order the jit kernel replays.
    """
    if work is None:
        work = np.empty(cols_t.shape)
    # mode="clip" skips per-element bounds checking; the matrix
    # constructor already validated every column index
    np.take(x, cols_t, out=work, mode="clip")
    np.multiply(vals_t, work, out=work)
    y[rows] = np.add.reduce(work, axis=0)

#: GPU-warp-sized slices (Ginkgo's SELL-P default)
DEFAULT_SLICE_SIZE = 32
#: default σ sorting window, in rows (8 slices)
DEFAULT_SIGMA = 256


def _entry_slots(lens: np.ndarray) -> np.ndarray:
    """Per-entry slot index within its row: ``[0..l0), [0..l1), ...``."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lens)


def _length_sort_permutation(lengths: np.ndarray, sigma: int) -> np.ndarray:
    """Row permutation sorting by descending length within σ-row windows.

    ``sigma <= 1`` disables sorting (identity).  The sort is stable so
    equal-length rows keep their relative order — the permutation is a
    pure function of the row-length vector.
    """
    m = lengths.size
    perm = np.arange(m, dtype=np.int64)
    if sigma <= 1:
        return perm
    for start in range(0, m, sigma):
        window = slice(start, min(start + sigma, m))
        order = np.argsort(-lengths[window], kind="stable")
        perm[window] = start + order
    return perm


def sell_padded_entries(
    lengths: np.ndarray,
    slice_size: int = DEFAULT_SLICE_SIZE,
    sigma: int = DEFAULT_SIGMA,
) -> int:
    """Stored slots of a SELL-C-σ layout for the given row lengths.

    Counts the device layout: every slice is padded to ``slice_size``
    rows times its own width (the tail slice included), the quantity the
    per-format roofline model charges as SpMV traffic.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    m = int(lengths.size)
    if m == 0:
        return 0
    perm = _length_sort_permutation(lengths, sigma)
    sorted_lengths = lengths[perm]
    n_slices = (m + slice_size - 1) // slice_size
    widths = np.zeros(n_slices, dtype=np.int64)
    np.maximum.at(widths, np.arange(m) // slice_size, sorted_lengths)
    return int(slice_size * widths.sum())


class SELLMatrix:
    """Sliced-ELLPACK matrix with per-slice width and σ-window sorting.

    Built via :meth:`from_csr`; the constructor wires the width-grouped
    kernel arrays.  ``perm`` maps storage position -> original row,
    ``inv_perm`` is its inverse.
    """

    #: engine-facing format tag
    format = "sell"

    def __init__(
        self,
        shape: "tuple[int, int]",
        groups: "List[Tuple[np.ndarray, np.ndarray, np.ndarray]]",
        row_lengths: np.ndarray,
        perm: np.ndarray,
        slice_size: int,
        sigma: int,
        slice_widths: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        m, n = self.shape
        #: (original-row indices, cols_t, vals_t) per distinct slice width
        self._groups = [
            (
                np.asarray(rows, dtype=np.int64),
                np.ascontiguousarray(cols_t, dtype=np.int64),
                np.ascontiguousarray(vals_t, dtype=np.float64),
                np.empty(cols_t.shape),
            )
            for rows, cols_t, vals_t in groups
        ]
        for _, cols_t, _, _ in self._groups:
            # the kernel gathers with mode="clip" (no per-element bounds
            # checking), so indices must be proven in range up front
            if cols_t.size and (cols_t.min() < 0 or cols_t.max() >= max(n, 1)):
                raise ValueError("column index out of range")
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        self.perm = np.asarray(perm, dtype=np.int64)
        self.inv_perm = np.empty_like(self.perm)
        self.inv_perm[self.perm] = np.arange(m, dtype=np.int64)
        self.slice_size = int(slice_size)
        self.sigma = int(sigma)
        self.slice_widths = np.asarray(slice_widths, dtype=np.int64)
        self.nnz_ = int(self.row_lengths.sum())
        self.counter = SpmvCounter()
        self.counter.format = self.format
        #: kernel backend; see :meth:`set_backend`
        self.backend = "numpy"
        self._group_kernel = sell_group_matvec_numpy
        self.tracer = NULL_TRACER

    def set_backend(self, backend: "str | None") -> str:
        """Select the SpMV kernel backend (``"numpy"`` or ``"jit"``)."""
        self.backend = _dispatch.resolve_backend(backend)
        self._group_kernel = _dispatch.get_kernel(
            "spmv.sell_group_matvec", self.backend
        )
        return self.backend

    # ------------------------------------------------------------------

    @classmethod
    def from_csr(
        cls,
        a: CSRMatrix,
        slice_size: int = DEFAULT_SLICE_SIZE,
        sigma: int = DEFAULT_SIGMA,
    ) -> "SELLMatrix":
        """Lossless conversion from CSR.

        Parameters
        ----------
        a : CSRMatrix
            Source matrix; per-row entry order is preserved.
        slice_size : int, default 32
            Rows per slice (``C``); warp-sized on GPUs.
        sigma : int, default 256
            Length-sorting window in rows; ``<= 1`` keeps the natural
            row order (``perm`` is then the identity).
        """
        if slice_size < 1:
            raise ValueError("slice_size must be positive")
        m, n = a.shape
        lengths = np.diff(a.indptr)
        perm = _length_sort_permutation(lengths, sigma)
        pad_col = np.minimum(np.arange(m, dtype=np.int64), max(n - 1, 0))

        n_slices = (m + slice_size - 1) // slice_size
        slice_widths = np.zeros(n_slices, dtype=np.int64)
        slice_of = np.arange(m) // slice_size  # storage position -> slice
        sorted_lengths = lengths[perm]
        np.maximum.at(slice_widths, slice_of, sorted_lengths)

        groups = []
        for width in np.unique(slice_widths):
            members = np.flatnonzero(slice_widths == width)
            # storage positions of every row in these slices
            pos = (
                members[:, None] * slice_size + np.arange(slice_size)
            ).ravel()
            pos = pos[pos < m]
            rows = perm[pos]
            if width == 0:
                continue  # all-empty slices contribute nothing
            w = int(width)
            r = rows.size
            cols_t = np.broadcast_to(pad_col[rows], (w, r)).copy()
            vals_t = np.zeros((w, r))
            lens = lengths[rows]
            src_rows = np.repeat(np.arange(r, dtype=np.int64), lens)
            slot = _entry_slots(lens)
            flat = np.repeat(a.indptr[rows], lens) + slot
            cols_t[slot, src_rows] = a.indices[flat]
            vals_t[slot, src_rows] = a.data[flat]
            groups.append((rows, cols_t, vals_t))
        return cls(
            a.shape, groups, lengths, perm, slice_size, sigma, slice_widths
        )

    def to_csr(self) -> CSRMatrix:
        """Lossless conversion back to CSR (exact round trip)."""
        m, n = self.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(self.row_lengths, out=indptr[1:])
        indices = np.empty(self.nnz_, dtype=np.int64)
        data = np.empty(self.nnz_)
        for rows, cols_t, vals_t, _ in self._groups:
            lens = self.row_lengths[rows]
            src_rows = np.repeat(np.arange(rows.size, dtype=np.int64), lens)
            slot = _entry_slots(lens)
            dest = np.repeat(indptr[rows], lens) + slot
            indices[dest] = cols_t[slot, src_rows]
            data[dest] = vals_t[slot, src_rows]
        return CSRMatrix(self.shape, indptr, indices, data)

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.nnz_

    @property
    def n(self) -> int:
        """Row count (square systems use this as the problem size)."""
        return self.shape[0]

    @property
    def permuted(self) -> bool:
        """True when σ sorting actually moved rows."""
        return bool(np.any(self.perm != np.arange(self.perm.size)))

    @property
    def padded_entries(self) -> int:
        """Stored slots including padding (slices padded to ``C`` rows)."""
        return int(self.slice_size * self.slice_widths.sum())

    @property
    def padding_ratio(self) -> float:
        """Padded slots per nonzero (1.0 = no padding overhead)."""
        return self.padded_entries / self.nnz_ if self.nnz_ else 1.0

    def matvec(self, x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """y = A @ x; per-row accumulation order matches the CSR kernel."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected x of shape ({self.shape[1]},)")
        with self.tracer.span("sell.matvec"):
            y = out if out is not None else np.empty(self.shape[0])
            y[...] = 0.0
            # padding slots multiply a gathered x entry by 0.0; when x
            # carries Inf/NaN that product is an invalid operation (the
            # NaN it yields is the documented propagation behaviour, see
            # test_nonfinite_inputs_are_never_silently_lost), so the
            # warning — not the arithmetic — is suppressed here
            with np.errstate(invalid="ignore"):
                for rows, cols_t, vals_t, work in self._groups:
                    self._group_kernel(rows, cols_t, vals_t, x, work, y)
        self._count_spmv()
        return y

    def matmat(self, X: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """``Y = A @ X`` for an ``(n, k)`` block of vectors.

        Column ``c`` of the result is bit-identical to
        ``self.matvec(X[:, c])``: each width group accumulates its slots
        sequentially (the same left-to-right entry order the
        single-vector ``np.add.reduce`` performs), vectorized over the
        ``k`` columns.  Each column is billed as one SpMV call so the
        per-column accounting matches a loop over :meth:`matvec`.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise ValueError(f"expected X of shape ({self.shape[1]}, k)")
        k = X.shape[1]
        if out is None:
            out = np.empty((self.shape[0], k), order="F")
        elif out.shape != (self.shape[0], k):
            raise ValueError(f"out must have shape ({self.shape[0]}, {k})")
        if self.backend == "jit":
            # the compiled group kernel has no cross-column temporaries,
            # so a per-column sweep is already optimal — and trivially
            # bit-identical to matvec of each column
            with self.tracer.span("sell.matmat", columns=k):
                out[...] = 0.0
                for c in range(k):
                    col = out[:, c]
                    y = col if col.flags.c_contiguous else np.zeros(self.shape[0])
                    xc = np.ascontiguousarray(X[:, c])
                    for rows, cols_t, vals_t, work in self._groups:
                        self._group_kernel(rows, cols_t, vals_t, xc, work, y)
                    if y is not col:
                        col[:] = y
            for _ in range(k):
                self._count_spmv()
            return out
        with self.tracer.span("sell.matmat", columns=k):
            out[...] = 0.0
            # gather from a C-contiguous copy so each gathered row is
            # one cache line for all k columns (exact copy: result bits
            # unchanged)
            Xc = np.ascontiguousarray(X)
            with np.errstate(invalid="ignore"):
                for rows, cols_t, vals_t, _ in self._groups:
                    w, r = cols_t.shape
                    acc = np.take(Xc, cols_t[0], axis=0, mode="clip")
                    np.multiply(vals_t[0][:, None], acc, out=acc)
                    g = np.empty_like(acc)
                    for s in range(1, w):
                        np.take(Xc, cols_t[s], axis=0, out=g, mode="clip")
                        np.multiply(vals_t[s][:, None], g, out=g)
                        np.add(acc, g, out=acc)
                    out[rows, :] = acc
        for _ in range(k):
            self._count_spmv()
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A.T @ y, vectorized (padding contributes exact zeros)."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ValueError(f"expected y of shape ({self.shape[0]},)")
        x = np.zeros(self.shape[1])
        for rows, cols_t, vals_t, _ in self._groups:
            weights = vals_t * y[rows][np.newaxis, :]
            x += np.bincount(
                cols_t.ravel(), weights=weights.ravel(), minlength=self.shape[1]
            )
        self._count_spmv()
        return x

    def _count_spmv(self) -> None:
        c = self.counter
        p = self.padded_entries
        m = self.shape[0]
        n_slices = self.slice_widths.size
        # padded values + column indices + x gather, slice pointers, the
        # row permutation read, and the y write
        nbytes = p * (8 + 4) + p * 8 + (n_slices + 1) * 4 + m * 4 + m * 8
        c.calls += 1
        c.flops += 2 * p
        c.bytes_moved += nbytes
        if self.tracer.enabled:
            self.tracer.count("spmv.calls")
            self.tracer.count("spmv.flops", 2 * p)
            self.tracer.count("spmv.bytes", nbytes)
            self.tracer.count("spmv.padded_entries", p)
            self.tracer.count("spmv.format.sell")

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SELLMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz_} "
            f"C={self.slice_size} sigma={self.sigma} "
            f"padding={self.padding_ratio:.2f}x>"
        )
