"""Matrix/unknown reordering.

The paper's Section VI-A observation that motivates this module: PR02R
and HV15R have nearly identical value distributions, but "the ordering
of non-zero values in HV15R may lead neighboring Krylov vector values to
have a similar magnitude, mitigating the effects observed in PR02R".
In other words, FRSZ2's block-floating-point quality is an *ordering*
property of the unknowns — so a reordering pass can rescue FRSZ2 on
hostile problems.

Provided orderings:

* reverse Cuthill-McKee (:func:`reverse_cuthill_mckee`) — the classic
  bandwidth-reducing BFS ordering; clusters strongly coupled (and hence
  similarly scaled) unknowns.
* magnitude grouping (:func:`magnitude_ordering`) — sorts unknowns by
  the log-magnitude of a scale vector (e.g. the matrix row norms or a
  prototype residual), directly packing same-exponent values into the
  same FRSZ2 blocks.  This is the idealized "friendly ordering" that
  turns a PR02R into an HV15R.
* :func:`permute_system` / :class:`Permutation` — apply a symmetric
  permutation to ``A``, ``b`` and back-permute the solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = [
    "Permutation",
    "reverse_cuthill_mckee",
    "magnitude_ordering",
    "permute_system",
]


@dataclass(frozen=True)
class Permutation:
    """A permutation of the unknowns: ``new[i] = old[perm[i]]``."""

    perm: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.perm, dtype=np.int64)
        object.__setattr__(self, "perm", p)
        if p.ndim != 1:
            raise ValueError("permutation must be 1-D")
        check = np.zeros(p.size, dtype=bool)
        if p.size:
            if p.min() < 0 or p.max() >= p.size:
                raise ValueError("permutation indices out of range")
            check[p] = True
            if not check.all():
                raise ValueError("not a permutation (duplicate indices)")

    @property
    def n(self) -> int:
        return self.perm.size

    @property
    def inverse(self) -> "Permutation":
        inv = np.empty(self.n, dtype=np.int64)
        inv[self.perm] = np.arange(self.n)
        return Permutation(inv)

    def apply_vector(self, v: np.ndarray) -> np.ndarray:
        """Reorder a vector into the new numbering."""
        v = np.asarray(v)
        if v.shape != (self.n,):
            raise ValueError(f"expected vector of length {self.n}")
        return v[self.perm]

    def apply_matrix(self, a: CSRMatrix) -> CSRMatrix:
        """Symmetric permutation ``P A P^T`` of a square matrix."""
        if a.shape[0] != a.shape[1] or a.shape[0] != self.n:
            raise ValueError("matrix shape does not match the permutation")
        inv = self.inverse.perm
        coo = a.to_coo()
        from .coo import COOMatrix

        return COOMatrix(
            a.shape, inv[coo.rows], inv[coo.cols], coo.data
        ).to_csr()


def _adjacency(a: CSRMatrix):
    """Symmetrized adjacency as (indptr, indices) without self loops."""
    coo = a.to_coo()
    rows = np.concatenate([coo.rows, coo.cols])
    cols = np.concatenate([coo.cols, coo.rows])
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    if rows.size:
        uniq = np.empty(rows.size, dtype=bool)
        uniq[0] = True
        uniq[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        rows, cols = rows[uniq], cols[uniq]
    n = a.shape[0]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols


def reverse_cuthill_mckee(a: CSRMatrix) -> Permutation:
    """Reverse Cuthill-McKee ordering of a square sparse matrix.

    BFS from a minimum-degree start node within each connected
    component, visiting neighbours in increasing-degree order; the final
    order is reversed (the "R" in RCM).
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("RCM requires a square matrix")
    n = a.shape[0]
    indptr, indices = _adjacency(a)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # deterministic component starts: lowest degree, ties by index
    start_order = np.lexsort((np.arange(n), degree))
    for start in start_order:
        if visited[start]:
            continue
        visited[start] = True
        order[pos] = start
        pos += 1
        head = pos - 1
        while head < pos:
            u = order[head]
            head += 1
            nbrs = indices[indptr[u] : indptr[u + 1]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = fresh[np.lexsort((fresh, degree[fresh]))]
                visited[fresh] = True
                order[pos : pos + fresh.size] = fresh
                pos += fresh.size
    return Permutation(order[::-1].copy())


def magnitude_ordering(scale: np.ndarray) -> Permutation:
    """Order unknowns by log-magnitude of a scale vector.

    Zeros sort first; ties keep their original relative order (stable),
    so a well-scaled problem is left essentially untouched.  Grouping by
    magnitude is precisely what FRSZ2's shared block exponent wants: the
    values inside each 32-element block then span few binades.
    """
    scale = np.asarray(scale, dtype=np.float64)
    if scale.ndim != 1:
        raise ValueError("scale must be a vector")
    mag = np.abs(scale)
    key = np.where(mag > 0, np.log2(np.where(mag > 0, mag, 1.0)), -np.inf)
    return Permutation(np.argsort(key, kind="stable"))


def permute_system(
    a: CSRMatrix, b: np.ndarray, perm: Permutation
) -> "tuple[CSRMatrix, np.ndarray]":
    """Apply a symmetric permutation to the system ``A x = b``.

    Returns ``(P A P^T, P b)``; solve that system for ``y`` and recover
    ``x = perm.inverse.apply_vector(y)``... i.e. ``x[perm] = y``.
    """
    return perm.apply_matrix(a), perm.apply_vector(b)
