"""CSR sparse matrix with vectorized SpMV.

The sparse matrix–vector product is the other memory-bound kernel in
GMRES besides the orthogonalization (paper Section I).  This CSR
implementation keeps a precomputed expanded row-index array so SpMV is a
gather + multiply + segmented sum (``np.bincount``) — fully vectorized
and robust to empty rows.

The matrix also carries an operation counter so the GPU timing model can
account the bytes and flops a CUDA SpMV kernel would move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER

__all__ = ["CSRMatrix", "SpmvCounter"]


@_dispatch.register("spmv.csr_matvec", "numpy")
def csr_matvec_numpy(
    rows: np.ndarray, cols: np.ndarray, data: np.ndarray, x: np.ndarray, m: int
) -> np.ndarray:
    """Reference CSR SpMV: gather + multiply + segmented sum.

    ``np.bincount`` accumulates the products strictly sequentially in
    stored-entry order, the order the jit kernel replays.
    """
    prod = data * x[cols]
    return np.bincount(rows, weights=prod, minlength=m)


@dataclass
class SpmvCounter:
    """Accumulated SpMV work, consumed by :mod:`repro.gpu.timing`.

    ``format`` names the storage layout whose traffic model produced
    ``bytes_moved``/``flops`` (padded layouts charge their padding), so
    per-format accounting survives aggregation.
    """

    calls: int = 0
    flops: int = 0
    bytes_moved: int = 0
    format: str = "csr"

    def reset(self) -> None:
        self.calls = 0
        self.flops = 0
        self.bytes_moved = 0


class CSRMatrix:
    """Compressed sparse row matrix (float64 values, int64 indices)."""

    def __init__(
        self,
        shape: "tuple[int, int]",
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ValueError(f"indptr must have shape ({m + 1},)")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have the same length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("column index out of range")
        # expanded row index per stored entry: makes SpMV a bincount
        self._rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr))
        self.counter = SpmvCounter()
        #: kernel backend; see :meth:`set_backend`
        self.backend = "numpy"
        self._matvec_kernel = csr_matvec_numpy
        #: observe-layer tracer; the null tracer keeps matvec overhead-free
        self.tracer = NULL_TRACER

    def set_backend(self, backend: "str | None") -> str:
        """Select the SpMV kernel backend (``"numpy"`` or ``"jit"``).

        The jit kernel is bit-identical to the numpy reference; an
        unavailable jit engine degrades to numpy with a warning.
        Returns the resolved backend.
        """
        self.backend = _dispatch.resolve_backend(backend)
        self._matvec_kernel = _dispatch.get_kernel("spmv.csr_matvec", self.backend)
        return self.backend

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def n(self) -> int:
        """Row count (square systems use this as the problem size)."""
        return self.shape[0]

    def matvec(self, x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """y = A @ x, vectorized."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected x of shape ({self.shape[1]},)")
        with self.tracer.span("csr.matvec"):
            y = self._matvec_kernel(
                self._rows, self.indices, self.data, x, self.shape[0]
            )
        self._count_spmv()
        if out is not None:
            out[:] = y
            return out
        return y

    def matmat(self, X: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """``Y = A @ X`` for an ``(n, k)`` block of vectors.

        Runs :meth:`matvec` once per column over a contiguous copy of
        it, so column ``c`` is trivially bit-identical to
        ``self.matvec(X[:, c])`` and billed exactly like it.  (A shared
        ``(nnz, k)`` gather was measured slower here: its temporaries
        fall out of cache, while per-column passes stay resident.)
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise ValueError(f"expected X of shape ({self.shape[1]}, k)")
        m = self.shape[0]
        k = X.shape[1]
        if out is None:
            out = np.empty((m, k), order="F")
        elif out.shape != (m, k):
            raise ValueError(f"out must have shape ({m}, {k})")
        for c in range(k):
            self.matvec(np.ascontiguousarray(X[:, c]), out=out[:, c])
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A.T @ y, vectorized."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ValueError(f"expected y of shape ({self.shape[0]},)")
        prod = self.data * y[self._rows]
        self._count_spmv()
        return np.bincount(self.indices, weights=prod, minlength=self.shape[1])

    def _count_spmv(self) -> None:
        c = self.counter
        c.calls += 1
        c.flops += 2 * self.nnz
        # CSR kernel traffic: values + column indices + indptr + x gather
        # (+ y write); the x gather is counted once per nonzero, the
        # standard pessimistic CSR model
        c.bytes_moved += self.nnz * (8 + 4) + (self.shape[0] + 1) * 4
        c.bytes_moved += self.nnz * 8 + self.shape[0] * 8
        if self.tracer.enabled:
            self.tracer.count("spmv.calls")
            self.tracer.count("spmv.flops", 2 * self.nnz)
            self.tracer.count(
                "spmv.bytes",
                self.nnz * (8 + 4) + (self.shape[0] + 1) * 4
                + self.nnz * 8 + self.shape[0] * 8,
            )
            self.tracer.count("spmv.format.csr")

    # ------------------------------------------------------------------

    def diagonal(self) -> np.ndarray:
        """Main-diagonal entries (zeros where absent)."""
        m, n = self.shape
        d = np.zeros(min(m, n))
        on_diag = self.indices == self._rows
        d_rows = self._rows[on_diag]
        keep = d_rows < d.size
        d[d_rows[keep]] = self.data[on_diag][keep]
        return d

    def row_norms(self, ord: float = np.inf) -> np.ndarray:
        """Per-row norms of the stored values."""
        mags = np.abs(self.data)
        if ord == np.inf:
            out = np.zeros(self.shape[0])
            np.maximum.at(out, self._rows, mags)
            return out
        if ord == 1:
            return np.bincount(self._rows, weights=mags, minlength=self.shape[0])
        if ord == 2:
            sq = np.bincount(self._rows, weights=mags**2, minlength=self.shape[0])
            return np.sqrt(sq)
        raise ValueError("ord must be 1, 2 or inf")

    def scale_rows_cols(self, dr: np.ndarray, dc: np.ndarray) -> "CSRMatrix":
        """Return ``diag(dr) @ A @ diag(dc)`` (used by the hard-matrix
        generators to inject huge dynamic range)."""
        dr = np.asarray(dr, dtype=np.float64)
        dc = np.asarray(dc, dtype=np.float64)
        if dr.shape != (self.shape[0],) or dc.shape != (self.shape[1],):
            raise ValueError("scaling vectors must match the matrix shape")
        data = self.data * dr[self._rows] * dc[self.indices]
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(), data)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        out[self._rows, self.indices] = self.data
        return out

    def to_coo(self):
        from .coo import COOMatrix

        return COOMatrix(self.shape, self._rows.copy(), self.indices.copy(), self.data.copy())

    def transpose(self) -> "CSRMatrix":
        return self.to_coo().transpose().to_csr()

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"
