"""MatrixMarket coordinate-format I/O.

SuiteSparse (paper ref [11]) distributes matrices as MatrixMarket files;
this reader/writer lets users run the solvers on the paper's actual
matrices when they have them, and lets the test suite round-trip the
synthetic analogs.  Supports ``matrix coordinate real/integer
general/symmetric/skew-symmetric`` and ``pattern`` headers.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def _open(path: Union[str, Path], mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: Union[str, Path]) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into CSR."""
    with _open(path, "r") as fh:
        header = fh.readline().strip().split()
        if (
            len(header) != 5
            or header[0] != "%%MatrixMarket"
            or header[1] != "matrix"
            or header[2] != "coordinate"
        ):
            raise ValueError("not a MatrixMarket coordinate file")
        field, symmetry = header[3].lower(), header[4].lower()
        if field not in _FIELDS:
            raise ValueError(f"unsupported field {field!r}")
        if symmetry not in _SYMMETRIES:
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        m, n, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            data[k] = 1.0 if field == "pattern" else float(parts[2])
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows, cols, data = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([data, sign * data[off]]),
        )
    return COOMatrix((m, n), rows, cols, data).to_csr()


def write_matrix_market(path: Union[str, Path], matrix: CSRMatrix) -> None:
    """Write a CSR matrix as ``matrix coordinate real general``."""
    coo = matrix.to_coo()
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write("% written by repro (FRSZ2 reproduction)\n")
        fh.write(f"{matrix.shape[0]} {matrix.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.data):
            # repr of a Python float round-trips the value exactly
            fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
