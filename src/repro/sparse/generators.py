"""Deterministic synthetic analogs of the SuiteSparse CFD matrices.

The paper evaluates on eleven computational-fluid-dynamics matrices from
SuiteSparse (Table I).  Those files are not redistributable here, so each
matrix gets a generator that reproduces the *properties the paper
identifies as causal* for CB-GMRES behaviour:

* ``atmosmod{d,j,l,m}`` — atmospheric modeling: large nonsymmetric 3-D
  convection–diffusion stencils, well-scaled entries, tight 4e-16
  targets.  These are the problems where storage-format precision
  visibly separates the convergence curves (Fig. 8/9a).
* ``cfd2`` — symmetric positive-definite pressure matrix.
* ``lung2`` — small nonsymmetric coupled-transport problem.
* ``parabolic_fem`` — parabolic FEM: mass + diffusion (``I + tau*L``),
  very well conditioned.
* ``PR02R`` / ``RM07R`` / ``HV15R`` — reactive-flow matrices whose
  non-zeros span a huge dynamic range (Fig. 10: base-2 exponents from
  −178 to 36 for PR02R).  We inject the range with row/column diagonal
  scalings; the *spatial roughness* of the scaling differentiates PR02R
  (i.i.d. rough → neighbouring Krylov entries differ wildly in
  magnitude, FRSZ2's worst case) from HV15R (spatially smooth → block
  exponents stay tight, FRSZ2 unaffected), matching the paper's
  explanation of why PR02R hurts FRSZ2 while HV15R does not.
* ``StocF-1465`` — porous-media flow with log-normal coefficient field;
  ill-conditioned enough that a float16 basis cannot reach the target
  (Fig. 7).

Every generator is deterministic (seeded from the matrix name) and
scalable; see :mod:`repro.sparse.suite` for the named size presets.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "rng_for",
    "stencil_3d",
    "stencil_2d",
    "convection_diffusion_3d",
    "poisson_3d",
    "coupled_transport_1d",
    "parabolic_fem_2d",
    "scaled_reactive_flow",
    "porous_media_3d",
    "aniso_jump_3d",
    "convection_dominated_3d",
    "bem_dense_blocks",
]


def rng_for(name: str) -> np.random.Generator:
    """Deterministic RNG derived from a matrix name."""
    digest = hashlib.sha256(name.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _grid_index_3d(nx: int, ny: int, nz: int):
    i, j, k = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    return (i * ny + j) * nz + k, i, j, k


def stencil_3d(
    nx: int,
    ny: int,
    nz: int,
    center: np.ndarray,
    offsets: Dict[str, np.ndarray],
) -> CSRMatrix:
    """Assemble a 7-point stencil with per-point coefficient fields.

    ``offsets`` maps direction names (``xm, xp, ym, yp, zm, zp``) to
    coefficient arrays of shape (nx, ny, nz); boundary entries are
    dropped (homogeneous Dirichlet).
    """
    n = nx * ny * nz
    idx, i, j, k = _grid_index_3d(nx, ny, nz)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    data = [np.broadcast_to(center, (nx, ny, nz)).ravel()]
    shifts = {
        "xm": (-1, 0, 0),
        "xp": (1, 0, 0),
        "ym": (0, -1, 0),
        "yp": (0, 1, 0),
        "zm": (0, 0, -1),
        "zp": (0, 0, 1),
    }
    for name, (di, dj, dk) in shifts.items():
        if name not in offsets:
            continue
        coef = np.broadcast_to(offsets[name], (nx, ny, nz))
        ii, jj, kk = i + di, j + dj, k + dk
        inside = (
            (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny) & (kk >= 0) & (kk < nz)
        )
        nbr = (ii * ny + jj) * nz + kk
        rows.append(idx[inside].ravel())
        cols.append(nbr[inside].ravel())
        data.append(coef[inside].ravel())
    return COOMatrix(
        (n, n),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(data),
    ).to_csr()


def stencil_2d(nx: int, ny: int, center: float, off: float) -> CSRMatrix:
    """Simple 5-point 2-D stencil (uniform coefficients)."""
    n = nx * ny
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    idx = i * ny + j
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    data = [np.full(n, center)]
    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        ii, jj = i + di, j + dj
        inside = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        rows.append(idx[inside].ravel())
        cols.append((ii * ny + jj)[inside].ravel())
        data.append(np.full(int(inside.sum()), off))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(data)
    ).to_csr()


def convection_diffusion_3d(
    nx: int,
    ny: int,
    nz: int,
    peclet: "tuple[float, float, float]" = (0.4, 0.2, 0.1),
    shift: float = 0.4,
    name: str = "atmosmod",
) -> CSRMatrix:
    """Nonsymmetric convection–diffusion operator (atmosmod* analog).

    Discretizes ``-lap(u) + v . grad(u) + shift*u`` with central
    differences; ``peclet`` is the cell Peclet number per direction
    (upstream/downstream asymmetry), ``shift`` a zeroth-order reaction
    term that keeps the spectrum away from the origin, controlling the
    unpreconditioned GMRES iteration count.  A mild smooth coefficient
    variation makes the problem less of a textbook Laplacian.
    """
    rng = rng_for(name)
    _, i, j, k = _grid_index_3d(nx, ny, nz)
    # smooth diffusion-coefficient field in [0.8, 1.2]
    phase = rng.uniform(0, 2 * np.pi, 3)
    kap = 1.0 + 0.2 * np.sin(2 * np.pi * i / nx + phase[0]) * np.sin(
        2 * np.pi * j / max(ny, 1) + phase[1]
    ) * np.sin(2 * np.pi * k / max(nz, 1) + phase[2])
    px, py, pz = peclet
    offsets = {
        "xm": -kap * (1.0 + px),
        "xp": -kap * (1.0 - px),
        "ym": -kap * (1.0 + py),
        "yp": -kap * (1.0 - py),
        "zm": -kap * (1.0 + pz),
        "zp": -kap * (1.0 - pz),
    }
    center = 6.0 * kap + shift
    return stencil_3d(nx, ny, nz, center, offsets)


def poisson_3d(nx: int, ny: int, nz: int, shift: float = 0.0) -> CSRMatrix:
    """SPD 7-point Laplacian (cfd2 pressure-matrix analog)."""
    ones = np.ones((nx, ny, nz))
    offsets = {d: -ones for d in ("xm", "xp", "ym", "yp", "zm", "zp")}
    return stencil_3d(nx, ny, nz, 6.0 + shift, offsets)


def coupled_transport_1d(n: int, species: int = 2, name: str = "lung2") -> CSRMatrix:
    """Small nonsymmetric coupled-transport chain (lung2 analog).

    ``species`` interleaved 1-D advection–diffusion chains with weak
    cross-species coupling; pentadiagonal-ish, strongly diagonally
    dominant, converges quickly like lung2 does.
    """
    rng = rng_for(name)
    rows, cols, data = [], [], []
    idx = np.arange(n)
    adv = 0.5 + 0.3 * np.sin(2 * np.pi * idx / n)
    rows.append(idx)
    cols.append(idx)
    data.append(np.full(n, 4.0) + 0.5 * rng.random(n))
    # within-chain neighbours at distance `species`
    left = idx - species
    ok = left >= 0
    rows.append(idx[ok])
    cols.append(left[ok])
    data.append(-(1.0 + adv[ok]))
    right = idx + species
    ok = right < n
    rows.append(idx[ok])
    cols.append(right[ok])
    data.append(-(1.0 - adv[ok]))
    # weak cross-species coupling at distance 1
    nxt = idx + 1
    ok = nxt < n
    rows.append(idx[ok])
    cols.append(nxt[ok])
    data.append(np.full(int(ok.sum()), -0.1))
    prv = idx - 1
    ok = prv >= 0
    rows.append(idx[ok])
    cols.append(prv[ok])
    data.append(np.full(int(ok.sum()), -0.1))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(data)
    ).to_csr()


def parabolic_fem_2d(nx: int, ny: int, tau: float = 0.1) -> CSRMatrix:
    """Implicit-Euler parabolic operator ``I + tau * L`` (parabolic_fem
    analog): SPD and very well conditioned, so every storage format
    converges in nearly the same iterations."""
    lap = stencil_2d(nx, ny, 4.0, -1.0)
    data = lap.data * tau
    diag_mask = lap.indices == lap._rows
    data[diag_mask] += 1.0
    return CSRMatrix(lap.shape, lap.indptr.copy(), lap.indices.copy(), data)


def spike_scaling_masks(
    n: int,
    frac: float,
    clustered: bool,
    rng: np.random.Generator,
    cluster_len: int = 256,
) -> "tuple[np.ndarray, np.ndarray]":
    """Two disjoint row subsets carrying the extreme scale spikes.

    ``clustered=False`` scatters the subsets i.i.d. over the unknowns;
    ``clustered=True`` places them in contiguous runs of ``cluster_len``
    (so that, after normalization, neighbouring Krylov entries share a
    magnitude — the HV15R "friendly ordering" of the paper's Section
    VI-A discussion).
    """
    if clustered:
        m1 = np.zeros(n, dtype=bool)
        m2 = np.zeros(n, dtype=bool)
        period = max(int(cluster_len / frac), 3 * cluster_len)
        for start in range(0, n, period):
            m1[start : start + cluster_len] = True
            m2[start + 2 * cluster_len : start + 3 * cluster_len] = True
    else:
        u = rng.random(n)
        m1 = u < frac
        m2 = (u >= frac) & (u < 2 * frac)
    return m1, m2


def scaled_reactive_flow(
    nx: int,
    ny: int,
    nz: int,
    spike1: float = 1e9,
    spike2: float = 1e8,
    frac: float = 1.0 / 16.0,
    roughness: str = "rough",
    peclet: "tuple[float, float, float]" = (0.5, 0.3, 0.2),
    shift: float = 0.02,
    name: str = "PR02R",
) -> CSRMatrix:
    """Reactive-flow analog with huge entry dynamic range (PR02R family).

    A convection–diffusion core is scaled ``diag(dr) A diag(1/dr)`` where
    ``dr`` carries two disjoint spike subsets of magnitudes ``spike1``
    and ``spike2`` (each on a ``frac`` fraction of rows).  The inverse
    column scaling keeps the system solvable in float64 while the Krylov
    vectors mix magnitudes separated by up to ``spike1``:

    * ``roughness="rough"`` (PR02R) — spikes scattered i.i.d.: most
      32-element FRSZ2 blocks contain a dominant entry whose shared
      exponent wipes out the neighbours' significands (``spike1 >
      2^31``), producing the Fig. 9b stagnation; float32's per-value
      exponents are unaffected; float16's narrow range loses the small
      magnitudes entirely and never converges (Fig. 7).
    * ``roughness="smooth"`` (HV15R) — spikes in contiguous clusters:
      the same value histogram, but block exponents stay tight and
      FRSZ2 matches float64, reproducing the paper's PR02R-vs-HV15R
      contrast.
    * ``roughness="medium"`` (RM07R) — scattered but moderate spikes
      (scaled down 1000x): every storage format converges with modest
      overhead.
    """
    if roughness not in ("rough", "smooth", "medium"):
        raise ValueError("roughness must be rough, smooth or medium")
    core = convection_diffusion_3d(nx, ny, nz, peclet=peclet, shift=shift, name=name)
    rng = rng_for(name)
    n = core.shape[0]
    if roughness == "medium":
        spike1, spike2 = spike1 / 1000.0, spike2 / 1000.0
    m1, m2 = spike_scaling_masks(n, frac, roughness == "smooth", rng)
    dr = np.where(m1, spike1, np.where(m2, spike2, 1.0))
    return core.scale_rows_cols(dr, 1.0 / dr)


def porous_media_3d(
    nx: int,
    ny: int,
    nz: int,
    sigma: float = 2.0,
    spike: float = 0.0,
    frac: float = 1.0 / 16.0,
    name: str = "StocF-1465",
) -> CSRMatrix:
    """Porous-media flow analog (StocF-1465): diffusion with a log-normal
    permeability field (harmonic-mean face coefficients, SPD core).

    An optional scattered spike scaling (``spike > 0``) mimics the
    extreme local permeability contrasts of the real reservoir problem;
    it is what defeats the float16 Krylov basis in Fig. 7 while float64,
    float32 and frsz2_32 all reach the 4e-6 target."""
    rng = rng_for(name)
    logk = rng.normal(0.0, sigma, (nx, ny, nz))
    # mild spatial smoothing for a correlated permeability field
    for axis in range(3):
        logk = 0.5 * logk + 0.25 * (np.roll(logk, 1, axis) + np.roll(logk, -1, axis))
    kfield = np.exp(logk)

    def face(axis: int, direction: int) -> np.ndarray:
        shifted = np.roll(kfield, -direction, axis)
        return 2.0 * kfield * shifted / (kfield + shifted)

    offsets = {}
    center = np.zeros((nx, ny, nz))
    for ax, (mname, pname) in enumerate((("xm", "xp"), ("ym", "yp"), ("zm", "zp"))):
        fm = face(ax, -1)
        fp = face(ax, 1)
        offsets[mname] = -fm
        offsets[pname] = -fp
        center = center + fm + fp
    # small reaction term for definiteness at the boundary
    core = stencil_3d(nx, ny, nz, center + 1e-3, offsets)
    if spike <= 0.0:
        return core
    srng = rng_for(name + "-scale")
    mask = srng.random(core.shape[0]) < frac
    dr = np.where(mask, spike, 1.0)
    return core.scale_rows_cols(dr, 1.0 / dr)


# ----------------------------------------------------------------------
# preconditioning-tier scenarios: problems where *unpreconditioned*
# GMRES stagnates (they are not Table I analogs — the paper's suite is
# chosen to converge unpreconditioned, Section V-C — but exercising
# M^-1 needs matrices where the iteration count is the bottleneck)
# ----------------------------------------------------------------------


def aniso_jump_3d(
    nx: int,
    ny: int,
    nz: int,
    contrast: float = 1e4,
    aniso: "tuple[float, float, float]" = (1.0, 0.02, 0.02),
    slab: int = 4,
    shift: float = 1e-6,
    name: str = "aniso_jump",
) -> CSRMatrix:
    """Anisotropic diffusion with slab-jumping coefficients.

    The permeability jumps between 1 and ``contrast`` across slabs of
    ``slab`` grid planes in x (harmonic-mean face coefficients), and the
    y/z conductivities are scaled down by ``aniso`` — the classic
    jumping-coefficient + anisotropy combination whose small eigenvalues
    scale like ``aniso/contrast``.  Unpreconditioned GMRES stagnates for
    hundreds of iterations per digit; ILU(0) captures the strong
    x-coupling and restores mesh-like convergence.
    """
    rng = rng_for(name)
    _, i, j, k = _grid_index_3d(nx, ny, nz)
    kfield = np.where((i // max(slab, 1)) % 2 == 0, 1.0, float(contrast))
    # per-plane wobble so slabs are not exactly self-similar
    kfield = kfield * (1.0 + 0.1 * rng.random(nx)[i])
    offsets = {}
    center = np.zeros((nx, ny, nz))
    axes = (("xm", "xp"), ("ym", "yp"), ("zm", "zp"))
    for ax, (mname, pname) in enumerate(axes):
        a = aniso[ax]
        shm = np.roll(kfield, 1, ax)
        shp = np.roll(kfield, -1, ax)
        fm = a * 2.0 * kfield * shm / (kfield + shm)
        fp = a * 2.0 * kfield * shp / (kfield + shp)
        offsets[mname] = -fm
        offsets[pname] = -fp
        center = center + fm + fp
    return stencil_3d(nx, ny, nz, center + shift, offsets)


def convection_dominated_3d(
    nx: int,
    ny: int,
    nz: int,
    peclet: float = 10.0,
    shift: float = 0.01,
    name: str = "conv_dom",
) -> CSRMatrix:
    """Convection-dominated recirculating flow (cell Peclet > 1).

    Central differencing of ``-lap(u) + v . grad(u)`` with a cell Peclet
    number above 1 flips the downstream stencil coefficients positive,
    destroying diagonal dominance and the M-matrix property; the
    velocity field recirculates (x-velocity varies with y and vice
    versa) so no reordering makes the operator triangular-ish.  The
    resulting highly nonnormal spectrum stalls unpreconditioned GMRES;
    ILU(0) follows the flow like an upwind sweep and collapses the
    iteration count.
    """
    _, i, j, k = _grid_index_3d(nx, ny, nz)
    px = peclet * np.cos(2 * np.pi * j / max(ny, 1))
    py = peclet * np.sin(2 * np.pi * i / max(nx, 1))
    pz = 0.4 * peclet * np.cos(2 * np.pi * k / max(nz, 1))
    offsets = {
        "xm": -(1.0 + px),
        "xp": -(1.0 - px),
        "ym": -(1.0 + py),
        "yp": -(1.0 - py),
        "zm": -(1.0 + pz),
        "zp": -(1.0 - pz),
    }
    return stencil_3d(nx, ny, nz, 6.0 + shift, offsets)


def bem_dense_blocks(
    n: int,
    block: int = 32,
    decay: float = 0.5,
    far_diags: int = 8,
    coupling: float = 0.1,
    strength_range: float = 5.0,
    name: str = "bem_dense",
) -> CSRMatrix:
    """First-kind boundary-integral-style operator with dense panels.

    Discretizes a smoothing kernel ``K(i, j) = 1 / (1 + |i - j|)^decay``
    the way fast BEM codes store it: panels of ``block`` unknowns
    interact densely (near field) while distinct panels couple through
    ``far_diags`` banded far-field diagonals per side, damped by
    ``coupling``.  A first-kind operator has no identity part, so its
    singular values decay toward zero; on top of that, panel strengths
    vary log-uniformly over ``2^(+-strength_range)`` (mimicking wildly
    non-uniform panel sizes), and the combination stalls
    unpreconditioned GMRES.  Block-Jacobi over the panels inverts the
    dominant near-field — strength contrast included — and converges.
    """
    if block < 1 or n < block:
        raise ValueError("need block >= 1 and n >= block")
    rng = rng_for(name)
    nb = -(-n // block)
    idx = np.arange(n)
    panel = idx // block
    strength = np.exp2(rng.uniform(-strength_range, strength_range, nb))[panel]
    rows, cols, data = [], [], []
    # near field: dense panel blocks of the kernel
    oi, oj = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    kern = 1.0 / (1.0 + np.abs(oi - oj).astype(float)) ** decay
    for b in range(nb):
        lo = b * block
        hi = min(lo + block, n)
        m = hi - lo
        r = (lo + oi[:m, :m]).ravel()
        c = (lo + oj[:m, :m]).ravel()
        rows.append(r)
        cols.append(c)
        data.append((kern[:m, :m] * strength[lo]).ravel())
    # far field: banded panel-to-panel couplings, kernel-decayed and
    # scaled by the *row* panel's strength so every row's far field is
    # O(coupling) relative to its own near-field block
    for d in range(1, far_diags + 1):
        sep = d * block
        src = idx[idx + sep < n]
        kval = coupling / (1.0 + sep) ** decay
        rows.extend([src, src + sep])
        cols.extend([src + sep, src])
        data.extend([kval * strength[src], kval * strength[src + sep]])
    return COOMatrix(
        (n, n),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(data),
    ).to_csr()
