"""Structure-driven SpMV engine: format selection + unified front end.

The predecessor CB-GMRES GPU paper (Aliaga et al., "Compressed Basis
GMRES on High Performance GPUs") obtains its SpMV numbers by switching
between Ginkgo's CSR and sliced-ELLPACK kernels depending on matrix
structure; this module reproduces that decision as a deterministic rule
table over row-length statistics:

======  ===========================================================
format  chosen when
======  ===========================================================
ell     ``max_len <= ELL_MAX_WIDTH`` and ``ell_padding <=
        ELL_MAX_PADDING`` — near-uniform rows (stencils, banded
        matrices): the dense rectangle wastes little traffic and the
        kernel is a single gather/multiply/reduce pass.
sell    ``sell_padding <= SELL_MAX_PADDING`` — irregular rows that a
        per-slice width (plus σ-window sorting) repairs.
csr     everything else — long-tail row-length distributions where
        any padded layout would multiply the traffic.
======  ===========================================================

Ties are impossible (rules are checked in order), and every statistic
is a pure function of the sparsity pattern, so the same matrix always
selects the same format — the reproducibility contract
``python -m repro bench --spmv-format auto`` relies on.

:class:`SpmvEngine` wraps a :class:`~repro.sparse.csr.CSRMatrix` and
presents the same operator interface (``matvec``/``rmatvec``/``shape``/
``nnz``/``tracer``), routing ``matvec`` through the selected format's
kernel.  The ELL and SELL kernels accumulate each row in CSR entry
order, so the engine's results are bit-identical to the CSR path on
finite inputs (see :mod:`repro.sparse.ell`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix
from .ell import ELLMatrix
from .sell import DEFAULT_SIGMA, DEFAULT_SLICE_SIZE, SELLMatrix, sell_padded_entries

__all__ = [
    "SPMV_FORMATS",
    "ELL_MAX_WIDTH",
    "ELL_MAX_PADDING",
    "SELL_MAX_PADDING",
    "RowStats",
    "row_stats",
    "choose_format",
    "SpmvEngine",
]

#: accepted values for every ``spmv_format=`` knob
SPMV_FORMATS = ("auto", "csr", "ell", "sell")

#: rule table: widest row ELL will pad every row to
ELL_MAX_WIDTH = 64
#: rule table: maximum padded-slots-per-nonzero ELL may cost
ELL_MAX_PADDING = 1.5
#: rule table: maximum padded-slots-per-nonzero SELL-C-σ may cost
SELL_MAX_PADDING = 2.5


@dataclass(frozen=True)
class RowStats:
    """Row-length statistics of a sparsity pattern (autotuner features)."""

    rows: int
    cols: int
    nnz: int
    min_len: int
    max_len: int
    mean_len: float
    std_len: float
    #: coefficient of variation (std / mean; 0 for perfectly uniform rows)
    cv: float
    empty_rows: int
    #: ELLPACK padded slots per nonzero (``rows * max_len / nnz``)
    ell_padding: float
    #: SELL-C-σ padded slots per nonzero at the default (C, σ)
    sell_padding: float


def row_stats(
    a: CSRMatrix,
    slice_size: int = DEFAULT_SLICE_SIZE,
    sigma: int = DEFAULT_SIGMA,
) -> RowStats:
    """Compute the autotuner's feature vector for a CSR matrix."""
    lengths = np.diff(a.indptr)
    m, n = a.shape
    nnz = int(a.nnz)
    if m == 0 or nnz == 0:
        return RowStats(m, n, nnz, 0, 0, 0.0, 0.0, 0.0, m, 1.0, 1.0)
    mean = float(lengths.mean())
    std = float(lengths.std())
    max_len = int(lengths.max())
    return RowStats(
        rows=m,
        cols=n,
        nnz=nnz,
        min_len=int(lengths.min()),
        max_len=max_len,
        mean_len=mean,
        std_len=std,
        cv=std / mean if mean else 0.0,
        empty_rows=int(np.count_nonzero(lengths == 0)),
        ell_padding=m * max_len / nnz,
        sell_padding=sell_padded_entries(lengths, slice_size, sigma) / nnz,
    )


def choose_format(
    a: CSRMatrix,
    slice_size: int = DEFAULT_SLICE_SIZE,
    sigma: int = DEFAULT_SIGMA,
) -> str:
    """Deterministic rule table: pick ``csr`` / ``ell`` / ``sell``.

    A pure function of the sparsity pattern (see the module docstring's
    rule table), so repeated calls on the same matrix always agree.
    """
    s = row_stats(a, slice_size, sigma)
    if s.nnz == 0 or s.rows < slice_size:
        return "csr"  # degenerate or too small for padded layouts to pay
    if s.max_len <= ELL_MAX_WIDTH and s.ell_padding <= ELL_MAX_PADDING:
        return "ell"
    if s.sell_padding <= SELL_MAX_PADDING:
        return "sell"
    return "csr"


class SpmvEngine:
    """Format-selecting SpMV front end over a CSR matrix.

    Parameters
    ----------
    a : CSRMatrix
        The source matrix (kept as the ``csr`` attribute; non-matvec
        operator queries delegate to it).
    format : {"auto", "csr", "ell", "sell"}, default "auto"
        ``auto`` applies :func:`choose_format`; anything else forces
        the named storage format.
    slice_size, sigma : int
        SELL-C-σ construction parameters (see
        :class:`~repro.sparse.sell.SELLMatrix`).
    backend : {"numpy", "jit"}, optional
        Kernel backend applied to the wrapped CSR matrix *and* the
        selected format's implementation (see :meth:`set_backend`).

    Notes
    -----
    The engine reads ``a.tracer`` on every matvec, so assigning a tracer
    to the wrapped CSR matrix (the bench harness does this) also traces
    the engine's kernel.
    """

    def __init__(
        self,
        a: CSRMatrix,
        format: str = "auto",
        slice_size: int = DEFAULT_SLICE_SIZE,
        sigma: int = DEFAULT_SIGMA,
        backend: "str | None" = None,
    ) -> None:
        if not isinstance(a, CSRMatrix):
            raise TypeError(
                "SpmvEngine wraps a CSRMatrix; wrap fault injectors and other "
                "operator decorators around the engine, not inside it"
            )
        if format not in SPMV_FORMATS:
            raise ValueError(
                f"unknown SpMV format {format!r}; expected one of {SPMV_FORMATS}"
            )
        self.csr = a
        self.requested_format = format
        self.slice_size = int(slice_size)
        self.sigma = int(sigma)
        resolved = choose_format(a, slice_size, sigma) if format == "auto" else format
        self.resolved_format = resolved
        if resolved == "ell":
            self.impl = ELLMatrix.from_csr(a)
        elif resolved == "sell":
            self.impl = SELLMatrix.from_csr(a, slice_size, sigma)
        else:
            self.impl = a
        self.backend = self.set_backend(backend)

    def set_backend(self, backend: "str | None") -> str:
        """Select the SpMV kernel backend on the wrapped matrices.

        Applies to both the source CSR matrix (``rmatvec`` and direct
        CSR use) and the selected format implementation.  The jit
        kernels are bit-identical to numpy, so switching backends never
        changes a result bit.  Returns the resolved backend.
        """
        # resolve once on the CSR matrix, then pin the resolved name on
        # the impl so an unavailable-jit warning fires at most once
        self.backend = self.csr.set_backend(backend)
        if self.impl is not self.csr:
            self.impl.set_backend(self.backend)
        return self.backend

    # -- operator interface -------------------------------------------

    @property
    def shape(self) -> "tuple[int, int]":
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def n(self) -> int:
        return self.csr.shape[0]

    @property
    def tracer(self):
        return self.csr.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.csr.tracer = value

    @property
    def counter(self):
        """The active kernel's :class:`~repro.sparse.csr.SpmvCounter`."""
        return self.impl.counter

    @property
    def padded_entries(self) -> int:
        """Stored slots of the selected layout (``nnz`` for CSR)."""
        if self.impl is self.csr:
            return self.csr.nnz
        return self.impl.padded_entries

    @property
    def padding_ratio(self) -> float:
        """Padded slots per nonzero of the selected layout."""
        if self.impl is self.csr:
            return 1.0
        return self.impl.padding_ratio

    def stats(self) -> RowStats:
        """The row statistics the selection was based on."""
        return row_stats(self.csr, self.slice_size, self.sigma)

    def matvec(self, x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """y = A @ x through the selected format's kernel."""
        impl = self.impl
        if impl is not self.csr:
            impl.tracer = self.csr.tracer  # follow late tracer assignment
        return impl.matvec(x, out=out)

    def matmat(self, X: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """Y = A @ X (multi-vector) through the selected format's kernel.

        Every format's ``matmat`` is bit-identical per column to its own
        ``matvec``, so the engine's multi-vector results inherit the
        same cross-format bit-identity guarantees as the single-vector
        path.
        """
        impl = self.impl
        if impl is not self.csr:
            impl.tracer = self.csr.tracer
        return impl.matmat(X, out=out)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A.T @ y through the selected format's kernel."""
        impl = self.impl
        if impl is not self.csr:
            impl.tracer = self.csr.tracer
        return impl.rmatvec(y)

    # -- CSR-only queries delegate to the source matrix ----------------

    def diagonal(self) -> np.ndarray:
        return self.csr.diagonal()

    def row_norms(self, ord: float = np.inf) -> np.ndarray:
        return self.csr.row_norms(ord)

    def to_dense(self) -> np.ndarray:
        return self.csr.to_dense()

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpmvEngine {self.requested_format}->{self.resolved_format} "
            f"{self.shape[0]}x{self.shape[1]} nnz={self.nnz} "
            f"padding={self.padding_ratio:.2f}x>"
        )
