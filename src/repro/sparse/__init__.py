"""Sparse-matrix substrate: CSR/COO/ELL/SELL-C-σ containers, the
structure-driven SpMV engine, MatrixMarket I/O and the Table I
synthetic matrix suite."""

from .coo import COOMatrix
from .csr import CSRMatrix, SpmvCounter
from .ell import ELLMatrix
from .engine import (
    SPMV_FORMATS,
    RowStats,
    SpmvEngine,
    choose_format,
    row_stats,
)
from .io import read_matrix_market, write_matrix_market
from .sell import DEFAULT_SIGMA, DEFAULT_SLICE_SIZE, SELLMatrix
from .reorder import (
    Permutation,
    magnitude_ordering,
    permute_system,
    reverse_cuthill_mckee,
)
from .suite import SUITE, MatrixSpec, build_matrix, resolve_scale, suite_names

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "SpmvCounter",
    "ELLMatrix",
    "SELLMatrix",
    "SpmvEngine",
    "SPMV_FORMATS",
    "RowStats",
    "row_stats",
    "choose_format",
    "DEFAULT_SLICE_SIZE",
    "DEFAULT_SIGMA",
    "Permutation",
    "magnitude_ordering",
    "permute_system",
    "reverse_cuthill_mckee",
    "read_matrix_market",
    "write_matrix_market",
    "SUITE",
    "MatrixSpec",
    "build_matrix",
    "resolve_scale",
    "suite_names",
]
