"""Sparse-matrix substrate: CSR/COO containers, vectorized SpMV,
MatrixMarket I/O and the Table I synthetic matrix suite."""

from .coo import COOMatrix
from .csr import CSRMatrix, SpmvCounter
from .io import read_matrix_market, write_matrix_market
from .reorder import (
    Permutation,
    magnitude_ordering,
    permute_system,
    reverse_cuthill_mckee,
)
from .suite import SUITE, MatrixSpec, build_matrix, resolve_scale, suite_names

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "SpmvCounter",
    "Permutation",
    "magnitude_ordering",
    "permute_system",
    "reverse_cuthill_mckee",
    "read_matrix_market",
    "write_matrix_market",
    "SUITE",
    "MatrixSpec",
    "build_matrix",
    "resolve_scale",
    "suite_names",
]
