"""ELLPACK storage with a fully vectorized SpMV kernel.

ELLPACK pads every row to the longest row length and stores the matrix
as two dense ``(width, rows)`` arrays — the layout GPU SpMV kernels use
for stencil/banded matrices because every thread executes the same
number of iterations and all memory accesses are coalesced (the
predecessor paper "Compressed Basis GMRES on High Performance GPUs",
Aliaga et al., switches Ginkgo between CSR and sliced-ELLPACK kernels
on exactly this structure criterion).

The NumPy analog of that kernel comes in two strategies, selected by
problem size:

* **reduce** (small matrices): a ``(width, rows)`` gather + elementwise
  multiply + ``np.add.reduce`` over the padded axis.  Minimal NumPy
  call count, so fixed per-call overhead dominates least.
* **slot-wise** (``rows >= _SLOTWISE_MIN_ROWS``): accumulate one padded
  slot at a time into the output vector, so the per-slot temporaries
  are single ``rows``-length arrays that stay cache-resident instead
  of a ``width x rows`` rectangle streamed through memory three times.

Both strategies accumulate each row's entries sequentially in
left-to-right entry order — the same order ``np.bincount`` uses on the
CSR path — so for matrices without padding-aliasing the ELL matvec is
*bit-identical* to the CSR matvec while avoiding the bincount scatter
entirely.

Padding entries store a zero value and a column index pointing at the
row's own index (clipped to the column count), so padded lanes gather a
value that is live in cache and multiply it by ``0.0``.
"""

from __future__ import annotations

import numpy as np

from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER
from .csr import CSRMatrix, SpmvCounter

__all__ = ["ELLMatrix"]

#: row count above which the slot-wise kernel beats the fused reduce —
#: the crossover where cache residency of the per-slot temporaries
#: outweighs the extra NumPy call per padded slot
_SLOTWISE_MIN_ROWS = 4096


@_dispatch.register("spmv.ell_matvec", "numpy")
def ell_matvec_numpy(
    cols_t: np.ndarray,
    vals_t: np.ndarray,
    x: np.ndarray,
    work: "np.ndarray | None",
    out: "np.ndarray | None",
) -> np.ndarray:
    """Reference ELL SpMV over the transposed ``(width, m)`` layout.

    Both strategies accumulate each row's entries sequentially in slot
    (= CSR entry) order, so they are bit-identical to each other and to
    the jit kernel.  ``_SLOTWISE_MIN_ROWS`` is read at call time so the
    strategy crossover stays monkeypatchable.
    """
    width, m = cols_t.shape
    if work is None:
        work = np.empty_like(vals_t)
    if width > 0 and m >= _SLOTWISE_MIN_ROWS:
        # slot-wise: per-slot temporaries stay cache-resident
        y = np.empty(m) if out is None else out
        np.take(x, cols_t[0], out=y, mode="clip")
        np.multiply(vals_t[0], y, out=y)
        tmp = work[0]
        for k in range(1, width):
            np.take(x, cols_t[k], out=tmp, mode="clip")
            np.multiply(vals_t[k], tmp, out=tmp)
            np.add(y, tmp, out=y)
        return y
    # mode="clip" skips per-element bounds checking; the matrix
    # constructor already validated every column index
    np.take(x, cols_t, out=work, mode="clip")
    np.multiply(vals_t, work, out=work)
    # reducing over the outer axis accumulates sequentially in row-entry
    # order (bit-identical to the CSR bincount path); an empty axis
    # yields the additive identity, so width == 0 needs no special case
    return np.add.reduce(work, axis=0, out=out)


class ELLMatrix:
    """ELLPACK matrix (float64 values, int64 indices, transposed layout).

    Parameters
    ----------
    shape : tuple of int
        Matrix dimensions ``(rows, cols)``.
    cols_t, vals_t : ndarray, shape (width, rows)
        Column indices and values, one padded row per *column* of the
        arrays (transposed so each padded "diagonal" is contiguous).
    row_lengths : ndarray, shape (rows,)
        True (unpadded) entry count of every row; entries ``k >=
        row_lengths[i]`` of row ``i`` are padding.
    """

    #: engine-facing format tag
    format = "ell"

    def __init__(
        self,
        shape: "tuple[int, int]",
        cols_t: np.ndarray,
        vals_t: np.ndarray,
        row_lengths: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        m, n = self.shape
        self.cols_t = np.ascontiguousarray(cols_t, dtype=np.int64)
        self.vals_t = np.ascontiguousarray(vals_t, dtype=np.float64)
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if self.cols_t.shape != self.vals_t.shape:
            raise ValueError("cols_t and vals_t must have the same shape")
        if self.cols_t.ndim != 2 or self.cols_t.shape[1] != m:
            raise ValueError(f"expected (width, {m}) arrays")
        if self.row_lengths.shape != (m,):
            raise ValueError(f"row_lengths must have shape ({m},)")
        if np.any(self.row_lengths < 0) or np.any(self.row_lengths > self.cols_t.shape[0]):
            raise ValueError("row_lengths out of range for the padded width")
        if self.cols_t.size and (
            self.cols_t.min() < 0 or self.cols_t.max() >= max(n, 1)
        ):
            raise ValueError("column index out of range")
        self.width = int(self.cols_t.shape[0])
        self.nnz_ = int(self.row_lengths.sum())
        #: scratch for the gather/multiply passes (never escapes matvec)
        self._work = np.empty_like(self.vals_t)
        self.counter = SpmvCounter()
        self.counter.format = self.format
        #: kernel backend; see :meth:`set_backend`
        self.backend = "numpy"
        self._matvec_kernel = ell_matvec_numpy
        self.tracer = NULL_TRACER

    def set_backend(self, backend: "str | None") -> str:
        """Select the SpMV kernel backend (``"numpy"`` or ``"jit"``)."""
        self.backend = _dispatch.resolve_backend(backend)
        self._matvec_kernel = _dispatch.get_kernel("spmv.ell_matvec", self.backend)
        return self.backend

    # ------------------------------------------------------------------

    @classmethod
    def from_csr(cls, a: CSRMatrix) -> "ELLMatrix":
        """Lossless conversion from CSR (row entry order is preserved)."""
        m, n = a.shape
        lengths = np.diff(a.indptr)
        width = int(lengths.max()) if m else 0
        # padding gathers the row's own x entry (always finite alongside
        # the row's real gathers) and multiplies it by zero
        pad_col = np.minimum(np.arange(m, dtype=np.int64), max(n - 1, 0))
        cols_t = np.broadcast_to(pad_col, (width, m)).copy()
        vals_t = np.zeros((width, m))
        rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
        slot = np.arange(a.nnz, dtype=np.int64) - np.repeat(a.indptr[:-1], lengths)
        cols_t[slot, rows] = a.indices
        vals_t[slot, rows] = a.data
        return cls(a.shape, cols_t, vals_t, lengths)

    def to_csr(self) -> CSRMatrix:
        """Lossless conversion back to CSR (exact round trip)."""
        m, n = self.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(self.row_lengths, out=indptr[1:])
        rows = np.repeat(np.arange(m, dtype=np.int64), self.row_lengths)
        slot = np.arange(self.nnz_, dtype=np.int64) - np.repeat(
            indptr[:-1], self.row_lengths
        )
        return CSRMatrix(
            self.shape, indptr, self.cols_t[slot, rows], self.vals_t[slot, rows]
        )

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.nnz_

    @property
    def n(self) -> int:
        """Row count (square systems use this as the problem size)."""
        return self.shape[0]

    @property
    def padded_entries(self) -> int:
        """Stored slots including padding (the dense rectangle)."""
        return self.shape[0] * self.width

    @property
    def padding_ratio(self) -> float:
        """Padded slots per nonzero (1.0 = no padding overhead)."""
        return self.padded_entries / self.nnz_ if self.nnz_ else 1.0

    def matvec(self, x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """y = A @ x; per-row accumulation order matches the CSR kernel.

        ``out``, when given, must not alias ``x`` (the slot-wise kernel
        writes partial sums into it while ``x`` is still being read).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected x of shape ({self.shape[1]},)")
        with self.tracer.span("ell.matvec"):
            # padding slots multiply their gathered x entry by 0.0; on
            # non-finite x that product is an invalid operation whose NaN
            # result is the intended propagation semantics — suppress the
            # RuntimeWarning, not the arithmetic
            with np.errstate(invalid="ignore"):
                y = self._matvec_kernel(
                    self.cols_t, self.vals_t, x, self._work, out
                )
        self._count_spmv()
        return y

    def matmat(self, X: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """``Y = A @ X`` for an ``(n, k)`` block of vectors.

        Runs :meth:`matvec` once per column over a contiguous copy of
        it, so column ``c`` is trivially bit-identical to
        ``self.matvec(X[:, c])`` and billed exactly like it.  (A
        column-vectorized slot sweep was measured slower here: its
        ``(n, k)`` temporaries fall out of cache, while per-column
        passes stay resident.)
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise ValueError(f"expected X of shape ({self.shape[1]}, k)")
        k = X.shape[1]
        if out is None:
            out = np.empty((self.shape[0], k), order="F")
        elif out.shape != (self.shape[0], k):
            raise ValueError(f"out must have shape ({self.shape[0]}, {k})")
        for c in range(k):
            col = out[:, c]
            if col.flags.c_contiguous:
                self.matvec(np.ascontiguousarray(X[:, c]), out=col)
            else:
                col[:] = self.matvec(np.ascontiguousarray(X[:, c]))
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """x = A.T @ y, vectorized (padding contributes exact zeros)."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ValueError(f"expected y of shape ({self.shape[0]},)")
        weights = self.vals_t * y[np.newaxis, :]
        self._count_spmv()
        return np.bincount(
            self.cols_t.ravel(), weights=weights.ravel(), minlength=self.shape[1]
        )

    def _count_spmv(self) -> None:
        c = self.counter
        p = self.padded_entries
        m = self.shape[0]
        c.calls += 1
        # the padded rectangle is executed in full: values + column
        # indices + x gather per slot, plus the y write
        c.flops += 2 * p
        c.bytes_moved += p * (8 + 4) + p * 8 + m * 8
        if self.tracer.enabled:
            self.tracer.count("spmv.calls")
            self.tracer.count("spmv.flops", 2 * p)
            self.tracer.count("spmv.bytes", p * (8 + 4) + p * 8 + m * 8)
            self.tracer.count("spmv.padded_entries", p)
            self.tracer.count("spmv.format.ell")

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ELLMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz_} "
            f"width={self.width} padding={self.padding_ratio:.2f}x>"
        )
