"""The Table I matrix suite: names, paper metadata, synthetic analogs.

Each entry records the paper's reported size/nnz/target-RRN (Table I)
and builds the corresponding synthetic analog at one of three scales:

* ``smoke``   — seconds-scale CI runs,
* ``default`` — the scale the bundled benchmarks use,
* ``paper``   — dimensions near the SuiteSparse originals (expensive).

The scale is chosen with the ``REPRO_SCALE`` environment variable or the
``scale=`` argument.  ``target_rrn`` at non-paper scales is recalibrated
with the paper's own procedure (Section V-C, see
:mod:`repro.solvers.calibration`); the registry stores precalibrated
defaults so benches don't pay a 20k-iteration float64 solve every run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .csr import CSRMatrix
from . import generators as gen

__all__ = ["MatrixSpec", "SUITE", "suite_names", "build_matrix", "resolve_scale"]

SCALES = ("smoke", "default", "paper")


@dataclass(frozen=True)
class MatrixSpec:
    """One row of Table I plus the analog generator."""

    name: str
    paper_size: int
    paper_nnz: int
    paper_target_rrn: float
    #: scale name -> generator kwargs (grid dims etc.)
    dims: Dict[str, dict]
    builder: Callable[..., CSRMatrix]
    #: precalibrated target RRN per scale (None -> use paper target)
    target_rrn: Dict[str, float] = field(default_factory=dict)
    description: str = ""

    def build(self, scale: str = "default") -> CSRMatrix:
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}")
        return self.builder(**self.dims[scale])

    def target_for(self, scale: str) -> float:
        return self.target_rrn.get(scale, self.paper_target_rrn)


def _dims3(smoke, default, paper, **extra):
    return {
        "smoke": {"nx": smoke[0], "ny": smoke[1], "nz": smoke[2], **extra},
        "default": {"nx": default[0], "ny": default[1], "nz": default[2], **extra},
        "paper": {"nx": paper[0], "ny": paper[1], "nz": paper[2], **extra},
    }


SUITE: Dict[str, MatrixSpec] = {}


def _register(spec: MatrixSpec) -> None:
    SUITE[spec.name] = spec


_register(MatrixSpec(
    name="atmosmodd",
    paper_size=1_270_432,
    paper_nnz=8_814_880,
    paper_target_rrn=4.0e-16,
    dims=_dims3((10, 10, 10), (24, 24, 24), (108, 108, 108),
                peclet=(0.45, 0.25, 0.10), shift=0.02, name="atmosmodd"),
    builder=gen.convection_diffusion_3d,
    description="atmospheric model, strong x-convection",
))
_register(MatrixSpec(
    name="atmosmodj",
    paper_size=1_270_432,
    paper_nnz=8_814_880,
    paper_target_rrn=4.0e-16,
    dims=_dims3((10, 10, 10), (24, 24, 24), (108, 108, 108),
                peclet=(0.25, 0.45, 0.15), shift=0.02, name="atmosmodj"),
    builder=gen.convection_diffusion_3d,
    description="atmospheric model, strong y-convection",
))
_register(MatrixSpec(
    name="atmosmodl",
    paper_size=1_489_752,
    paper_nnz=10_319_760,
    paper_target_rrn=4.0e-16,
    dims=_dims3((11, 10, 10), (26, 25, 24), (114, 114, 114),
                peclet=(0.35, 0.35, 0.20), shift=0.02, name="atmosmodl"),
    builder=gen.convection_diffusion_3d,
    description="atmospheric model, larger grid",
))
_register(MatrixSpec(
    name="atmosmodm",
    paper_size=1_489_752,
    paper_nnz=10_319_760,
    paper_target_rrn=4.0e-16,
    dims=_dims3((11, 10, 10), (26, 25, 24), (114, 114, 114),
                peclet=(0.20, 0.20, 0.45), shift=0.02, name="atmosmodm"),
    builder=gen.convection_diffusion_3d,
    description="atmospheric model, strong z-convection",
))
_register(MatrixSpec(
    name="cfd2",
    paper_size=123_440,
    paper_nnz=3_085_406,
    paper_target_rrn=1.8e-10,
    dims=_dims3((8, 8, 8), (20, 20, 20), (50, 50, 50), shift=0.05),
    builder=gen.poisson_3d,
    description="SPD pressure matrix",
))
_register(MatrixSpec(
    name="HV15R",
    paper_size=2_017_169,
    paper_nnz=283_073_458,
    paper_target_rrn=1.6e-2,
    dims=_dims3((10, 10, 10), (24, 24, 24), (126, 126, 127),
                spike1=3e9, spike2=1e8, roughness="smooth", name="HV15R"),
    builder=gen.scaled_reactive_flow,
    description="reactive flow, huge range, smooth ordering",
))
_register(MatrixSpec(
    name="lung2",
    paper_size=109_460,
    paper_nnz=492_564,
    paper_target_rrn=1.8e-8,
    dims={
        "smoke": {"n": 1_000},
        "default": {"n": 12_000},
        "paper": {"n": 109_460},
    },
    builder=gen.coupled_transport_1d,
    # recalibrated: at analog scale the paper's 1.8e-8 sits in the
    # regime where every format needs identical iterations anyway
    target_rrn={"smoke": 1e-6, "default": 1e-6, "paper": 1e-6},
    description="coupled transport chains",
))
_register(MatrixSpec(
    name="parabolic_fem",
    paper_size=525_825,
    paper_nnz=3_674_625,
    paper_target_rrn=4.0e-16,
    dims={
        "smoke": {"nx": 30, "ny": 30},
        "default": {"nx": 110, "ny": 110},
        "paper": {"nx": 725, "ny": 725},
    },
    builder=gen.parabolic_fem_2d,
    target_rrn={"smoke": 2e-14, "default": 2e-14, "paper": 2e-14},
    description="implicit parabolic FEM step",
))
_register(MatrixSpec(
    name="PR02R",
    paper_size=161_070,
    paper_nnz=8_185_136,
    paper_target_rrn=4.0e-3,
    dims=_dims3((9, 9, 9), (22, 22, 22), (55, 55, 54),
                spike1=1e9, spike2=1e8, roughness="rough", name="PR02R"),
    builder=gen.scaled_reactive_flow,
    target_rrn={"smoke": 1e-6, "default": 1e-6, "paper": 1e-6},
    description="reactive flow, huge range, rough ordering (FRSZ2 worst case)",
))
_register(MatrixSpec(
    name="RM07R",
    paper_size=381_689,
    paper_nnz=37_464_962,
    paper_target_rrn=8.0e-3,
    dims=_dims3((9, 9, 9), (23, 23, 22), (73, 73, 72),
                spike1=1e9, spike2=1e8, roughness="medium", shift=0.1, name="RM07R"),
    builder=gen.scaled_reactive_flow,
    target_rrn={"smoke": 1e-6, "default": 1e-6, "paper": 1e-6},
    description="reactive flow, huge range, mixed ordering",
))
_register(MatrixSpec(
    name="StocF-1465",
    paper_size=1_465_137,
    paper_nnz=21_005_389,
    paper_target_rrn=4.0e-6,
    dims=_dims3((9, 9, 9), (22, 22, 22), (114, 114, 113),
                sigma=2.4, spike=1e6, name="StocF-1465"),
    builder=gen.porous_media_3d,
    description="porous media flow, log-normal permeability",
))

# -- preconditioning scenarios (not Table I: the paper's suite converges
# unpreconditioned by design, Section V-C; these stall without M^-1).
# The "paper" metadata records the default-scale operator since there
# is no SuiteSparse original.
_register(MatrixSpec(
    name="aniso_jump",
    paper_size=13_824,
    paper_nnz=93_312,
    paper_target_rrn=1.0e-8,
    dims=_dims3((10, 10, 10), (24, 24, 24), (64, 64, 64),
                contrast=1e6, aniso=(1.0, 0.02, 0.02), name="aniso_jump"),
    builder=gen.aniso_jump_3d,
    target_rrn={"smoke": 1e-8, "default": 1e-8, "paper": 1e-8},
    description="anisotropic diffusion, slab-jumping coefficients (stalls unpreconditioned)",
))
_register(MatrixSpec(
    name="conv_dom",
    paper_size=13_824,
    paper_nnz=93_312,
    paper_target_rrn=1.0e-12,
    dims=_dims3((10, 10, 10), (24, 24, 24), (64, 64, 64),
                peclet=10.0, shift=0.01, name="conv_dom"),
    builder=gen.convection_dominated_3d,
    target_rrn={"smoke": 1e-12, "default": 1e-12, "paper": 1e-12},
    description="convection-dominated recirculating flow (stalls unpreconditioned)",
))
_register(MatrixSpec(
    name="bem_dense",
    paper_size=8_192,
    paper_nnz=390_912,
    paper_target_rrn=1.0e-7,
    dims={
        "smoke": {"n": 1_024},
        "default": {"n": 8_192},
        "paper": {"n": 32_768},
    },
    builder=gen.bem_dense_blocks,
    target_rrn={"smoke": 1e-7, "default": 1e-7, "paper": 1e-7},
    description="boundary-integral panels, dense blocks (stalls unpreconditioned)",
))


def suite_names() -> List[str]:
    """Matrix names: Table I order, then the preconditioning scenarios."""
    return [
        "atmosmodd",
        "atmosmodj",
        "atmosmodl",
        "atmosmodm",
        "cfd2",
        "HV15R",
        "lung2",
        "parabolic_fem",
        "PR02R",
        "RM07R",
        "StocF-1465",
        "aniso_jump",
        "conv_dom",
        "bem_dense",
    ]


def resolve_scale(scale: Optional[str] = None) -> str:
    """Scale from the argument or the ``REPRO_SCALE`` env var."""
    s = scale or os.environ.get("REPRO_SCALE", "default")
    if s not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {SCALES}, got {s!r}")
    return s


def build_matrix(name: str, scale: Optional[str] = None) -> CSRMatrix:
    """Build a suite matrix analog by name at the requested scale."""
    if name not in SUITE:
        raise KeyError(f"unknown matrix {name!r}; suite: {', '.join(suite_names())}")
    return SUITE[name].build(resolve_scale(scale))
