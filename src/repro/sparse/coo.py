"""COO (triplet) sparse-matrix builder.

The assembly format used by the stencil generators and the MatrixMarket
reader: unordered ``(row, col, value)`` triplets with duplicate entries
summed on conversion — the usual finite-element/finite-volume assembly
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """Sparse matrix in coordinate form."""

    shape: "tuple[int, int]"
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ValueError("rows, cols and data must have the same length")
        m, n = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= m:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= n:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Stored triplets (before duplicate summing)."""
        return self.data.size

    def sum_duplicates(self) -> "COOMatrix":
        """Return a canonical COO: sorted by (row, col), duplicates summed,
        explicit zeros kept (they are structurally meaningful)."""
        if self.nnz == 0:
            return COOMatrix(self.shape, self.rows, self.cols, self.data)
        order = np.lexsort((self.cols, self.rows))
        r, c, d = self.rows[order], self.cols[order], self.data[order]
        # group boundaries where (row, col) changes
        new_group = np.empty(r.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        starts = np.flatnonzero(new_group)
        summed = np.add.reduceat(d, starts)
        return COOMatrix(self.shape, r[starts], c[starts], summed)

    def to_csr(self):
        """Convert to CSR (duplicates summed)."""
        from .csr import CSRMatrix

        coo = self.sum_duplicates()
        m, _ = self.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, coo.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, coo.cols.copy(), coo.data.copy())

    def to_dense(self) -> np.ndarray:
        """Dense equivalent (tests / tiny examples only)."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def transpose(self) -> "COOMatrix":
        return COOMatrix((self.shape[1], self.shape[0]), self.cols, self.rows, self.data)
