"""Chaos hooks: seeded failure plans for whole *processes*, not just bits.

:mod:`repro.robust.faults` injects data-level faults (bit flips, NaN
readouts, poisoned SpMV outputs) *inside* a solve.  A service dies in
coarser ways too: worker processes crash mid-solve, hang without
progress, or crawl past their deadlines.  A :class:`ChaosSpec` is a
declarative, seeded plan for exactly one such failure mode, serializable
(``to_dict``/``from_dict``) so the :mod:`repro.serve` job engine can
ship it to a worker process as part of a job spec and the soak harness
can replay a campaign bit-for-bit.

Process-level kinds (interpreted by :func:`chaos_monitor`):

* ``worker_crash`` — ``os._exit`` at a chosen iteration: the worker
  process dies without a traceback, exactly like a segfault or an OOM
  kill.  Exercises crash detection + retry with backoff.
* ``worker_hang``  — sleep (effectively) forever at a chosen iteration:
  no progress events, no return.  Exercises heartbeat hang detection.
* ``slowdown``     — ``delay_s`` of sleep per monitor tick from the
  chosen iteration on.  Exercises deadlines and cancellation grace.
* ``solve_error``  — raise :class:`ChaosError` at a chosen iteration.
  Exercises the job-level retry/degradation path for in-process errors.

Data-level kinds (every entry of
:data:`repro.robust.faults.FAULT_KINDS`) are delegated to the existing
seeded injectors via :func:`chaos_accessor_factory` /
:func:`chaos_spmv_wrapper`, so a chaos plan can also subject a job to
the classic bit-flip campaign conditions.

``only_attempt`` (default 1) arms the plan for a single job attempt:
a crash plan armed for attempt 1 kills the first try and lets the
retry succeed — the canonical "transient fault" the retry machinery
exists for.  ``None`` arms every attempt (a persistent fault).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from ..accessor import VectorAccessor, make_accessor
from .faults import FAULT_KINDS, FaultInjector, FaultyAccessor, FaultySpmvMatrix

__all__ = [
    "CHAOS_KINDS",
    "PROCESS_CHAOS_KINDS",
    "ChaosError",
    "ChaosSpec",
    "chaos_accessor_factory",
    "chaos_monitor",
    "chaos_spmv_wrapper",
]

#: process-level chaos kinds (interpreted by :func:`chaos_monitor`)
PROCESS_CHAOS_KINDS = ("worker_crash", "worker_hang", "slowdown", "solve_error")

#: every chaos kind: process-level plus the data-level fault kinds
CHAOS_KINDS = PROCESS_CHAOS_KINDS + FAULT_KINDS

_SPMV_KINDS = ("spmv_nan", "spmv_inf")
_ACCESSOR_KINDS = tuple(k for k in FAULT_KINDS if k not in _SPMV_KINDS)

#: "forever" for ``worker_hang`` — long past any sane deadline, while
#: still unwinding cleanly if a test's cleanup outlives the supervisor
_HANG_SECONDS = 3600.0

#: exit code used by ``worker_crash`` (recognizable in pool exit codes)
CHAOS_EXIT_CODE = 101


class ChaosError(RuntimeError):
    """The planned in-process failure of a ``solve_error`` chaos plan."""


@dataclass(frozen=True)
class ChaosSpec:
    """A declarative, seeded plan for one failure mode.

    Parameters
    ----------
    kind : str
        One of :data:`CHAOS_KINDS`.
    at_iteration : int, default 5
        Trigger point for the process-level kinds, in solver iterations
        (monitor ticks).  Ignored by the data-level kinds, whose rate
        applies throughout.
    rate : float, default 0.02
        Per-operation fault probability for the data-level kinds.
    seed : int, default 0
        Seed for the data-level injectors (deterministic replay).
    delay_s : float, default 0.05
        Per-tick sleep of ``slowdown``.
    only_attempt : int or None, default 1
        Arm the plan only on this (1-based) job attempt; ``None`` arms
        every attempt.
    """

    kind: str
    at_iteration: int = 5
    rate: float = 0.02
    seed: int = 0
    delay_s: float = 0.05
    only_attempt: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.at_iteration < 0:
            raise ValueError("at_iteration must be non-negative")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    # -- arming ---------------------------------------------------------

    def armed(self, attempt: int) -> bool:
        """True when the plan applies to this (1-based) job attempt."""
        return self.only_attempt is None or attempt == self.only_attempt

    @property
    def is_process_kind(self) -> bool:
        return self.kind in PROCESS_CHAOS_KINDS

    @property
    def is_accessor_kind(self) -> bool:
        return self.kind in _ACCESSOR_KINDS

    @property
    def is_spmv_kind(self) -> bool:
        return self.kind in _SPMV_KINDS

    # -- serialization (job specs cross process boundaries as dicts) ----

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        return cls(**data)


def chaos_accessor_factory(
    spec: ChaosSpec,
) -> Callable[[str, int], VectorAccessor]:
    """An accessor factory wrapping every basis in a seeded injector.

    Shaped for :class:`repro.robust.RobustCbGmres`'s
    ``accessor_factory`` / for currying into
    :class:`~repro.solvers.gmres.CbGmres`'s single-format factory.
    """
    if not spec.is_accessor_kind:
        raise ValueError(f"{spec.kind!r} is not an accessor fault kind")
    injector = FaultInjector(spec.rate, spec.seed)

    def factory(storage: str, n: int) -> VectorAccessor:
        return FaultyAccessor(make_accessor(storage, n), injector, spec.kind)

    return factory


def chaos_spmv_wrapper(spec: ChaosSpec, a) -> FaultySpmvMatrix:
    """Wrap an operator so its matvec outputs are seeded-poisoned."""
    if not spec.is_spmv_kind:
        raise ValueError(f"{spec.kind!r} is not an SpMV fault kind")
    return FaultySpmvMatrix(a, FaultInjector(spec.rate, spec.seed), spec.kind)


def chaos_monitor(spec: ChaosSpec) -> Callable[..., None]:
    """A solver ``monitor`` callback executing a process-level plan.

    The returned callable matches
    :meth:`repro.solvers.gmres.CbGmres.solve`'s monitor signature
    ``(iteration, j, basis, implicit_rrn)`` and fires once the solve
    reaches ``spec.at_iteration``:

    * ``worker_crash`` exits the process immediately (no cleanup, no
      exception — indistinguishable from a hardware-level death);
    * ``worker_hang`` stops emitting progress and never returns;
    * ``slowdown`` sleeps ``delay_s`` on every subsequent tick;
    * ``solve_error`` raises :class:`ChaosError`.
    """
    if not spec.is_process_kind:
        raise ValueError(f"{spec.kind!r} is not a process-level chaos kind")

    def monitor(iteration: int, j: int, basis=None, implicit_rrn=None) -> None:
        if iteration < spec.at_iteration:
            return
        if spec.kind == "worker_crash":
            os._exit(CHAOS_EXIT_CODE)
        elif spec.kind == "worker_hang":
            time.sleep(_HANG_SECONDS)
        elif spec.kind == "slowdown":
            time.sleep(spec.delay_s)
        elif spec.kind == "solve_error":
            raise ChaosError(
                f"planned chaos failure at iteration {iteration}"
            )

    return monitor
