"""Automatic precision fallback for CB-GMRES.

The compressed-basis trade-off is probabilistic: a lossy storage format
usually converges like float64 (the paper's headline result), but on a
hostile spectrum — or under hardware faults — it can stall or exhaust
its recovery budget.  :class:`RobustCbGmres` turns that into a
guarantee: storage formats are tried cheapest-first along a
``FallbackPolicy`` chain, escalating whenever an attempt fails, with
uncompressed ``float64`` as the correctness-guaranteeing terminal.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..accessor import VectorAccessor, make_accessor
from ..jit import dispatch as _dispatch
from ..sparse.csr import CSRMatrix
from ..sparse.engine import SpmvEngine
from ..solvers.adaptive import ADAPTIVE_STORAGE, ControllerConfig
from ..solvers.gmres import (
    DEFAULT_MAX_ITER,
    DEFAULT_MAX_RECOVERIES,
    DEFAULT_RESTART,
    CbGmres,
    GmresResult,
)
from ..solvers.orthogonal import DEFAULT_ETA
from ..solvers.preconditioner import Preconditioner

__all__ = ["FallbackPolicy", "RobustResult", "RobustCbGmres"]

#: lossy-first default chain ending in the exact float64 terminal
DEFAULT_CHAIN = ("frsz2_16", "frsz2_32", "float64")


@dataclass(frozen=True)
class FallbackPolicy:
    """When and how to escalate the Krylov-basis storage format.

    ``chain`` is tried in order; an attempt that converges ends the
    solve.  An attempt fails — and the next format is tried — when it
    stalls, exhausts its ``max_recoveries`` budget, or hits its
    iteration cap.  ``carry_solution`` warm-starts each escalation from
    the best finite iterate found so far, so work done in a lossy format
    is never thrown away.
    """

    chain: Tuple[str, ...] = DEFAULT_CHAIN
    max_recoveries: int = DEFAULT_MAX_RECOVERIES
    #: stall window per attempt (tighter than CbGmres' default of 8 so
    #: hopeless formats hand over quickly)
    stall_restarts: Optional[int] = 4
    carry_solution: bool = True

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("fallback chain must name at least one storage format")

    def chain_from(self, storage: str) -> "FallbackPolicy":
        """This policy with ``chain`` starting at ``storage``.

        If ``storage`` is in the chain, the chain is truncated to start
        there; otherwise the format escalates straight to the chain's
        terminal (the correctness guarantee).
        """
        if storage in self.chain:
            chain = self.chain[self.chain.index(storage):]
        elif storage == self.chain[-1]:
            chain = (storage,)
        else:
            chain = (storage, self.chain[-1])
        return FallbackPolicy(
            chain=chain,
            max_recoveries=self.max_recoveries,
            stall_restarts=self.stall_restarts,
            carry_solution=self.carry_solution,
        )


@dataclass
class RobustResult:
    """Outcome of a fallback-chain solve.

    ``attempts`` holds one :class:`GmresResult` per storage format
    tried, in chain order; ``result`` is the last (authoritative) one.
    """

    result: GmresResult
    attempts: List[GmresResult]

    @property
    def x(self) -> np.ndarray:
        return self.result.x

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def final_rrn(self) -> float:
        return self.result.final_rrn

    @property
    def storage_used(self) -> str:
        """The storage format of the attempt that produced ``x``."""
        return self.result.storage

    @property
    def fell_back(self) -> bool:
        """True when at least one escalation was needed."""
        return len(self.attempts) > 1

    @property
    def total_iterations(self) -> int:
        return sum(a.iterations for a in self.attempts)

    @property
    def total_recoveries(self) -> int:
        return sum(a.recoveries for a in self.attempts)

    @property
    def outcome(self) -> str:
        """``converged`` | ``fell_back`` | ``failed`` (for reports)."""
        if self.converged:
            return "fell_back" if self.fell_back else "converged"
        return "failed"


class RobustCbGmres:
    """CB-GMRES with breakdown recovery and automatic precision fallback.

    Parameters mirror :class:`~repro.solvers.gmres.CbGmres`, with the
    storage format replaced by a :class:`FallbackPolicy`.
    ``accessor_factory``, when given, maps ``(storage, n)`` to an
    accessor — the hook the fault-injection campaign uses to wrap every
    attempt's basis in a :class:`~repro.robust.faults.FaultyAccessor`.
    ``spmv_format`` (default ``"csr"``) wraps ``a`` in a
    :class:`~repro.sparse.engine.SpmvEngine` *once*, so every attempt
    of the chain reuses the same converted layout.  ``backend``
    (``"numpy"``/``"jit"``) is resolved once and threaded into every
    attempt's solver; the jit kernels are bit-identical to numpy, so
    the fallback decisions are unaffected.
    """

    def __init__(
        self,
        a,
        policy: Optional[FallbackPolicy] = None,
        m: int = DEFAULT_RESTART,
        eta: float = DEFAULT_ETA,
        max_iter: int = DEFAULT_MAX_ITER,
        accessor_factory: "Callable[[str, int], VectorAccessor] | None" = None,
        preconditioner: Optional[Preconditioner] = None,
        orthogonalization: str = "cgs",
        spmv_format: str = "csr",
        basis_mode: str = "cached",
        tile_elems: Optional[int] = None,
        precision: Optional[ControllerConfig] = None,
        backend: "str | None" = None,
    ) -> None:
        # resolve once so every attempt of the chain shares one resolved
        # backend (and any unavailable-jit warning fires exactly once)
        self.backend = (
            _dispatch.resolve_backend(backend) if backend is not None else None
        )
        if spmv_format != "csr" and isinstance(a, CSRMatrix):
            a = SpmvEngine(a, format=spmv_format, backend=self.backend)
        elif backend is not None and hasattr(a, "set_backend"):
            a.set_backend(self.backend)
        self.spmv_format = spmv_format
        self.a = a
        self.policy = policy or FallbackPolicy()
        self.m = int(m)
        self.eta = float(eta)
        self.max_iter = int(max_iter)
        self._factory = accessor_factory
        self.preconditioner = preconditioner
        self.orthogonalization = orthogonalization
        self.basis_mode = basis_mode
        self.tile_elems = tile_elems
        self.precision = precision
        if accessor_factory is None:
            # fail fast on unknown format names in the chain (adaptive
            # expands to its ladder, validated by ControllerConfig)
            for storage in self.policy.chain:
                if storage != ADAPTIVE_STORAGE:
                    make_accessor(storage, 0)

    def attempt_plan(self) -> "List[Tuple[str, Optional[str]]]":
        """The ``(storage, adaptive_floor)`` sequence :meth:`solve` walks.

        Fixed chain entries map to ``(storage, None)``.  An
        ``"adaptive"`` entry expands into one adaptive attempt per
        non-terminal ladder rung with the escalation floor raised one
        rung each time — so after a fault-driven escalation the
        controller can never downshift back below the level the chain
        has moved past — followed by the ladder's terminal as a plain
        fixed attempt (the correctness guarantee).  Consecutive
        duplicates are collapsed.
        """
        cfg = self.precision or ControllerConfig()
        plan: List[Tuple[str, Optional[str]]] = []
        for storage in self.policy.chain:
            if storage == ADAPTIVE_STORAGE:
                for floor in cfg.ladder[:-1]:
                    plan.append((ADAPTIVE_STORAGE, floor))
                plan.append((cfg.ladder[-1], None))
            else:
                plan.append((storage, None))
        deduped: List[Tuple[str, Optional[str]]] = []
        for step in plan:
            if not deduped or deduped[-1] != step:
                deduped.append(step)
        return deduped

    def solve(
        self,
        b: np.ndarray,
        target_rrn: float,
        x0: Optional[np.ndarray] = None,
        record_history: bool = False,
    ) -> RobustResult:
        """Walk the fallback chain until an attempt converges."""
        attempts: List[GmresResult] = []
        x_start = x0
        best_rrn = np.inf
        for storage, floor in self.attempt_plan():
            adaptive = storage == ADAPTIVE_STORAGE
            factory = None
            if self._factory is not None and not adaptive:
                factory = (lambda n, s=storage: self._factory(s, n))
            precision = None
            if adaptive:
                precision = dataclasses.replace(
                    self.precision or ControllerConfig(), floor=floor
                )
            solver = CbGmres(
                self.a,
                storage,
                m=self.m,
                eta=self.eta,
                max_iter=self.max_iter,
                stall_restarts=self.policy.stall_restarts,
                accessor_factory=factory,
                # adaptive attempts keep wrapping accessors (fault
                # injectors) across the controller's format switches
                storage_factory=self._factory if adaptive else None,
                precision=precision,
                preconditioner=self.preconditioner,
                orthogonalization=self.orthogonalization,
                recovery=True,
                max_recoveries=self.policy.max_recoveries,
                basis_mode=self.basis_mode,
                backend=self.backend,
                **(
                    {"tile_elems": self.tile_elems}
                    if self.tile_elems is not None
                    else {}
                ),
            )
            res = solver.solve(
                b, target_rrn, x0=x_start, record_history=record_history
            )
            attempts.append(res)
            if res.converged:
                break
            if (
                self.policy.carry_solution
                and np.all(np.isfinite(res.x))
                and res.final_rrn < best_rrn
            ):
                best_rrn = res.final_rrn
                x_start = res.x
        return RobustResult(result=attempts[-1], attempts=attempts)
