"""Seeded, deterministic fault injection for CB-GMRES robustness studies.

The paper's compressed-basis argument is an accuracy/robustness trade
(Aliaga et al.; Fox et al.'s ZFP stability analysis): a lossy Krylov
basis is *safe* as long as errors stay bounded.  This module stresses
that assumption with the fault classes a deployed solver actually sees:

* **storage bit flips** — a flipped bit in an FRSZ2 payload word
  perturbs one value; a flipped bit in the shared block exponent scales
  (or denormalizes to Inf) all ``BS`` values of the block at once;
* **readout corruption** — NaN/Inf appearing in a decompressed vector
  (in-register corruption on the accessor round trip);
* **SpMV corruption** — NaN/Inf injected into matvec outputs;
* **container damage** — bit flips and truncation of the serialized
  stream (detected by the v2 CRC32, see :mod:`repro.core.serialize`).

Every injector draws from its own ``numpy`` Generator seeded from an
explicit integer (or seed sequence), so campaigns replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..accessor import VectorAccessor
from ..accessor.frsz2_accessor import Frsz2Accessor
from ..core.frsz2 import Frsz2Compressed

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultyAccessor",
    "FaultySpmvMatrix",
    "flip_array_bit",
    "flip_payload_bit",
    "flip_exponent_bit",
    "flip_container_bit",
    "truncate_container",
]

#: fault kinds understood by :class:`FaultyAccessor` / :class:`FaultySpmvMatrix`
FAULT_KINDS = (
    "payload_bitflip",
    "exponent_bitflip",
    "readout_nan",
    "readout_inf",
    "spmv_nan",
    "spmv_inf",
)

_ACCESSOR_KINDS = ("payload_bitflip", "exponent_bitflip", "readout_nan", "readout_inf")
_SPMV_KINDS = ("spmv_nan", "spmv_inf")

Seed = Union[int, Sequence[int]]


# ----------------------------------------------------------------------
# deterministic low-level mutators
# ----------------------------------------------------------------------

def flip_array_bit(arr: np.ndarray, bit: int) -> None:
    """Flip bit ``bit`` of ``arr``'s underlying bytes, in place."""
    if not 0 <= bit < arr.nbytes * 8:
        raise IndexError(f"bit {bit} out of range for {arr.nbytes}-byte array")
    view = arr.reshape(-1).view(np.uint8)
    view[bit // 8] ^= np.uint8(1 << (bit % 8))


def flip_payload_bit(comp: Frsz2Compressed, bit: int) -> None:
    """Flip one bit of the compressed-value stream, in place."""
    flip_array_bit(comp.payload, bit)


def flip_exponent_bit(comp: Frsz2Compressed, bit: int) -> None:
    """Flip one bit of the per-block exponent stream, in place."""
    flip_array_bit(comp.exponents, bit)


def flip_container_bit(data: bytes, bit: int) -> bytes:
    """A serialized container with bit ``bit`` flipped."""
    if not 0 <= bit < len(data) * 8:
        raise IndexError(f"bit {bit} out of range for {len(data)}-byte container")
    buf = bytearray(data)
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


def truncate_container(data: bytes, length: int) -> bytes:
    """The first ``length`` bytes of a serialized container."""
    if not 0 <= length <= len(data):
        raise ValueError(f"length {length} out of range for {len(data)} bytes")
    return data[:length]


# ----------------------------------------------------------------------
# seeded fault source
# ----------------------------------------------------------------------

@dataclass
class FaultInjector:
    """Bernoulli fault source: fires with probability ``rate`` per trial.

    One injector is shared by all wrappers of a single solve so the
    global fault sequence is a pure function of ``(rate, seed)``.
    """

    rate: float
    seed: Seed = 0
    injected: int = field(default=0, init=False)
    trials: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        self.rng = np.random.default_rng(self.seed)

    def fire(self) -> bool:
        """Decide one trial (advances the stream deterministically)."""
        self.trials += 1
        hit = bool(self.rng.random() < self.rate)
        if hit:
            self.injected += 1
        return hit

    def choose(self, limit: int) -> int:
        """A uniform index in ``[0, limit)`` for placing a fired fault."""
        return int(self.rng.integers(limit))


# ----------------------------------------------------------------------
# accessor and matrix wrappers
# ----------------------------------------------------------------------

class FaultyAccessor(VectorAccessor):
    """Wrap a storage accessor and corrupt it at a seeded rate.

    ``kind`` selects the corruption site: ``payload_bitflip`` /
    ``exponent_bitflip`` mutate the *stored* representation right after
    each write (FRSZ2 streams when available, raw storage bytes
    otherwise), ``readout_nan`` / ``readout_inf`` poison one element of
    the decompressed vector on read.
    """

    def __init__(self, inner: VectorAccessor, injector: FaultInjector, kind: str) -> None:
        if kind not in _ACCESSOR_KINDS:
            raise ValueError(
                f"unknown accessor fault kind {kind!r}; expected one of {_ACCESSOR_KINDS}"
            )
        super().__init__(inner.n)
        self.inner = inner
        self.injector = injector
        self.kind = kind
        self.name = f"{inner.name}+{kind}"

    # -- corruption sites -------------------------------------------------

    def _stored_stream(self) -> Optional[np.ndarray]:
        """The array backing the stored representation, if reachable."""
        if isinstance(self.inner, Frsz2Accessor) and self.inner.compressed is not None:
            comp = self.inner.compressed
            return comp.exponents if self.kind == "exponent_bitflip" else comp.payload
        # precision / round-trip accessors keep a dense ``_data`` array
        return getattr(self.inner, "_data", None)

    def _corrupt_storage(self) -> None:
        arr = self._stored_stream()
        if arr is None or arr.nbytes == 0:
            return
        flip_array_bit(arr, self.injector.choose(arr.nbytes * 8))
        if isinstance(self.inner, Frsz2Accessor):
            # the flip bypassed the accessor: decoded blocks cached
            # before it are stale now
            self.inner.invalidate_cache()

    def write(self, values: np.ndarray) -> None:
        self.inner.write(values)
        if self.kind in ("payload_bitflip", "exponent_bitflip") and self.injector.fire():
            self._corrupt_storage()

    def read(self) -> np.ndarray:
        out = self.inner.read()
        if self.kind in ("readout_nan", "readout_inf") and self.injector.fire():
            out = np.array(out, dtype=np.float64)
            poison = np.nan if self.kind == "readout_nan" else np.inf
            if out.size:
                out[self.injector.choose(out.size)] = poison
        return out

    def stored_nbytes(self) -> int:
        return self.inner.stored_nbytes()

    def clear(self) -> None:
        # clearing is bookkeeping, not a storage access: no fault trial
        self.inner.clear()

    @property
    def tile_granularity(self) -> int:
        return self.inner.tile_granularity

    @property
    def traffic(self):  # delegate so accounting stays on the real format
        return self.inner.traffic

    @traffic.setter
    def traffic(self, value):  # the base __init__ assigns a fresh counter
        pass


class FaultySpmvMatrix:
    """Wrap a SpMV operator; inject NaN/Inf into matvec outputs.

    Presents the subset of the operator interface the solvers use
    (``shape``, ``nnz``, ``matvec``); each matvec is one injector trial,
    and a fired trial poisons one output element.  The inner operator
    may be a plain :class:`~repro.sparse.csr.CSRMatrix` or a
    :class:`~repro.sparse.engine.SpmvEngine` (the fault campaign wraps
    the engine so faults land on the *selected* format's output);
    ``resolved_format``/``padded_entries`` pass through so the solver's
    per-format accounting survives the wrapper.
    """

    def __init__(self, inner, injector: FaultInjector, kind: str = "spmv_nan") -> None:
        if kind not in _SPMV_KINDS:
            raise ValueError(
                f"unknown SpMV fault kind {kind!r}; expected one of {_SPMV_KINDS}"
            )
        self.inner = inner
        self.injector = injector
        self.kind = kind

    @property
    def shape(self):
        return self.inner.shape

    @property
    def nnz(self):
        return self.inner.nnz

    @property
    def n(self):
        return self.inner.shape[0]

    @property
    def resolved_format(self) -> str:
        return getattr(self.inner, "resolved_format", "csr")

    @property
    def padded_entries(self) -> int:
        return int(getattr(self.inner, "padded_entries", self.inner.nnz))

    def matvec(self, x: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        y = self.inner.matvec(x) if out is None else self.inner.matvec(x, out=out)
        if self.injector.fire() and y.size:
            if out is None:
                y = np.array(y, dtype=np.float64)
            y[self.injector.choose(y.size)] = (
                np.nan if self.kind == "spmv_nan" else np.inf
            )
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultySpmvMatrix {self.kind} rate={self.injector.rate} over {self.inner!r}>"
