"""Fault tolerance for CB-GMRES: injection, recovery, and fallback.

The compressed-basis argument of the paper is an accuracy/robustness
trade; this subsystem makes the robustness side measurable and then
closes it:

faults
    Seeded, deterministic injectors — FRSZ2 payload/exponent bit flips,
    accessor round-trip corruption, NaN/Inf in SpMV outputs, serialized
    container bit flips and truncation.
fallback
    :class:`FallbackPolicy` / :class:`RobustCbGmres`: storage formats
    tried lossy-first and escalated on stall or recovery exhaustion,
    with uncompressed float64 as the correctness-guaranteeing terminal.
campaign
    A survival-rate sweep over fault kind × storage format × rate,
    rendered with :mod:`repro.bench.report`.
chaos
    Seeded *process-level* failure plans (worker crash / hang /
    slowdown / in-process error) plus delegation to the data-level
    injectors — the fault model of the :mod:`repro.serve` job engine
    and its soak harness.

Solver-side breakdown *detection* (non-finite Arnoldi quantities, loss
of orthogonality) lives in :mod:`repro.solvers`; this package builds the
injection and escalation machinery on top of it.
"""

from .chaos import (
    CHAOS_KINDS,
    PROCESS_CHAOS_KINDS,
    ChaosError,
    ChaosSpec,
    chaos_accessor_factory,
    chaos_monitor,
    chaos_spmv_wrapper,
)
from .campaign import (
    DEFAULT_FAULTS,
    DEFAULT_RATES,
    DEFAULT_STORAGES,
    SURVIVING_OUTCOMES,
    CampaignCell,
    CampaignResult,
    run_campaign,
)
from .fallback import DEFAULT_CHAIN, FallbackPolicy, RobustCbGmres, RobustResult
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultyAccessor,
    FaultySpmvMatrix,
    flip_array_bit,
    flip_container_bit,
    flip_exponent_bit,
    flip_payload_bit,
    truncate_container,
)

__all__ = [
    "CHAOS_KINDS",
    "PROCESS_CHAOS_KINDS",
    "ChaosError",
    "ChaosSpec",
    "chaos_accessor_factory",
    "chaos_monitor",
    "chaos_spmv_wrapper",
    "DEFAULT_CHAIN",
    "DEFAULT_FAULTS",
    "DEFAULT_RATES",
    "DEFAULT_STORAGES",
    "SURVIVING_OUTCOMES",
    "CampaignCell",
    "CampaignResult",
    "run_campaign",
    "FallbackPolicy",
    "RobustCbGmres",
    "RobustResult",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultyAccessor",
    "FaultySpmvMatrix",
    "flip_array_bit",
    "flip_container_bit",
    "flip_exponent_bit",
    "flip_payload_bit",
    "truncate_container",
]
