"""Fault-injection campaign: fault kind × storage format × rate sweep.

Each campaign cell runs one CB-GMRES solve under a seeded fault
injector and classifies the outcome:

* ``converged``  — the first-choice storage format survived the faults;
* ``fell_back``  — recovery escalated along the fallback chain and a
  later format (float64 at the latest) converged;
* ``failed``     — no format in the chain converged (should not happen
  with the hardened solver on the bundled problems);
* ``crashed``    — an exception escaped the solve (only reachable with
  ``hardened=False``: the unhardened baseline the campaign exists to
  measure against), or the cell's worker *process* died outright —
  parallel sweeps run with ``on_error="collect"``, so one dead worker
  costs one cell, never the campaign;
* ``diverged``   — unhardened solve finished with a non-finite or
  worse-than-initial residual.

The sweep is a pure function of its seed: per-cell injectors are seeded
with ``(seed, fault index, storage index, rate index)`` spawn keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..accessor import make_accessor
from ..bench.report import format_table
from ..jit import dispatch as _dispatch
from ..parallel import WorkerCrashError, run_grid
from ..sparse.engine import SPMV_FORMATS, SpmvEngine
from ..solvers.adaptive import ADAPTIVE_STORAGE
from ..solvers.gmres import CbGmres
from ..solvers.preconditioner import (
    PRECONDITIONERS,
    PREC_STORAGES,
    make_preconditioner,
)
from ..solvers.problems import Problem, make_problem
from .fallback import FallbackPolicy, RobustCbGmres
from .faults import FaultInjector, FaultyAccessor, FaultySpmvMatrix

__all__ = [
    "DEFAULT_FAULTS",
    "DEFAULT_STORAGES",
    "DEFAULT_RATES",
    "SURVIVING_OUTCOMES",
    "CampaignCell",
    "CampaignResult",
    "run_campaign",
]

DEFAULT_FAULTS = ("payload_bitflip", "exponent_bitflip", "readout_nan", "spmv_nan")
DEFAULT_STORAGES = ("frsz2_16", "frsz2_32", "float32")
DEFAULT_RATES = (0.02, 0.05)

#: outcomes that count as surviving the injected faults
SURVIVING_OUTCOMES = ("converged", "fell_back")

_SPMV_FAULTS = ("spmv_nan", "spmv_inf")


@dataclass(frozen=True)
class CampaignCell:
    """One (fault, storage, rate) cell of the sweep."""

    fault: str
    storage: str
    rate: float
    outcome: str
    #: storage format of the attempt that produced the reported x
    storage_used: str
    #: fallback-chain attempts consumed (1 = no fallback)
    attempts: int
    iterations: int
    recoveries: int
    breakdowns: int
    #: faults the injector actually fired during the solve
    faults_injected: int
    final_rrn: float

    @property
    def survived(self) -> bool:
        return self.outcome in SURVIVING_OUTCOMES


@dataclass
class CampaignResult:
    """All cells of a sweep plus the knobs that produced them."""

    matrix: str
    scale: str
    seed: int
    hardened: bool
    fallback: bool
    cells: List[CampaignCell]

    @property
    def survival_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.survived for c in self.cells) / len(self.cells)

    def survival_by_fault(self) -> List[Tuple[str, int, int, float]]:
        """Rows ``(fault, cells, survived, rate)`` aggregated per kind."""
        rows = []
        for fault in dict.fromkeys(c.fault for c in self.cells):
            group = [c for c in self.cells if c.fault == fault]
            hits = sum(c.survived for c in group)
            rows.append((fault, len(group), hits, hits / len(group)))
        return rows

    def table(self) -> str:
        """The full survival-rate table (one row per cell)."""
        mode = "hardened" if self.hardened else "unhardened"
        rows = [
            (c.fault, c.storage, c.rate, c.outcome, c.storage_used,
             c.attempts, c.iterations, c.recoveries, c.breakdowns,
             c.faults_injected, c.final_rrn)
            for c in self.cells
        ]
        return format_table(
            f"fault-injection campaign — {self.matrix} ({self.scale}, {mode}, "
            f"seed {self.seed})",
            ["fault", "storage", "rate", "outcome", "used", "attempts",
             "iters", "recov", "brkdwn", "faults", "final rrn"],
            rows,
        )

    def summary(self) -> str:
        """Per-fault survival rates plus the overall rate."""
        rows = [
            (fault, cells, survived, f"{rate:.0%}")
            for fault, cells, survived, rate in self.survival_by_fault()
        ]
        rows.append(("overall", len(self.cells),
                     sum(c.survived for c in self.cells),
                     f"{self.survival_rate:.0%}"))
        return format_table(
            "survival rates", ["fault", "cells", "survived", "rate"], rows
        )


def _run_cell(
    problem: Problem,
    fault: str,
    storage: str,
    rate: float,
    seed_key: Sequence[int],
    m: int,
    max_iter: int,
    hardened: bool,
    fallback: bool,
    policy: FallbackPolicy,
    spmv_format: str = "csr",
    basis_mode: str = "cached",
    backend: "str | None" = None,
    preconditioner: str = "none",
    prec_storage: str = "float64",
) -> CampaignCell:
    injector = FaultInjector(rate, seed_key)
    a = problem.a
    # factor the *raw* operator: injected faults poison the solve's
    # SpMV and basis traffic, never the preconditioner setup
    prec = None
    if preconditioner != "none":
        prec = make_preconditioner(
            preconditioner, problem.a, storage=prec_storage, backend=backend,
        )
    if spmv_format != "csr":
        # build the engine first so SpMV faults poison the *selected*
        # format's output, exactly as they would the CSR kernel's
        a = SpmvEngine(a, format=spmv_format, backend=backend)
    if fault in _SPMV_FAULTS:
        a = FaultySpmvMatrix(a, injector, fault)
        wrap = None
    else:
        def wrap(fmt: str, n: int):
            return FaultyAccessor(
                make_accessor(fmt, n, backend=backend), injector, fault
            )

    try:
        if hardened and fallback:
            solver = RobustCbGmres(
                a,
                policy.chain_from(storage),
                m=m,
                max_iter=max_iter,
                accessor_factory=wrap,
                preconditioner=prec,
                basis_mode=basis_mode,
                backend=backend,
            )
            rr = solver.solve(problem.b, problem.target_rrn)
            return CampaignCell(
                fault=fault, storage=storage, rate=rate,
                outcome=rr.outcome, storage_used=rr.storage_used,
                attempts=len(rr.attempts),
                iterations=rr.total_iterations,
                recoveries=rr.total_recoveries,
                breakdowns=sum(len(x.breakdown_events) for x in rr.attempts),
                faults_injected=injector.injected,
                final_rrn=rr.final_rrn,
            )
        adaptive = storage == ADAPTIVE_STORAGE
        factory = None
        storage_factory = None
        if wrap is not None:
            if adaptive:
                # the controller rebuilds accessors on format switches;
                # the (storage, n) factory keeps every rebuild faulty
                storage_factory = wrap
            else:
                factory = (lambda n: wrap(storage, n))
        solver = CbGmres(
            a, storage, m=m, max_iter=max_iter,
            accessor_factory=factory, storage_factory=storage_factory,
            recovery=hardened, basis_mode=basis_mode, backend=backend,
            preconditioner=prec,
        )
        res = solver.solve(problem.b, problem.target_rrn)
        if res.converged:
            outcome = "converged"
        elif not np.isfinite(res.final_rrn) or res.final_rrn > 1.0:
            outcome = "diverged"
        elif res.recovery_exhausted:
            outcome = "failed"
        else:
            outcome = "stalled" if res.stalled else "capped"
        return CampaignCell(
            fault=fault, storage=storage, rate=rate,
            outcome=outcome, storage_used=res.storage, attempts=1,
            iterations=res.iterations, recoveries=res.recoveries,
            breakdowns=len(res.breakdown_events),
            faults_injected=injector.injected,
            final_rrn=res.final_rrn,
        )
    except Exception as exc:  # the unhardened baseline crashes; report it
        return CampaignCell(
            fault=fault, storage=storage, rate=rate,
            outcome="crashed", storage_used=storage, attempts=1,
            iterations=0, recoveries=0, breakdowns=0,
            faults_injected=injector.injected,
            final_rrn=float("nan"),
        )


def run_campaign(
    matrix: str = "atmosmodd",
    scale: Optional[str] = None,
    faults: Sequence[str] = DEFAULT_FAULTS,
    storages: Sequence[str] = DEFAULT_STORAGES,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    m: int = 50,
    max_iter: int = 2000,
    hardened: bool = True,
    fallback: bool = True,
    policy: Optional[FallbackPolicy] = None,
    target_rrn: Optional[float] = None,
    jobs: int = 1,
    spmv_format: str = "csr",
    basis_mode: str = "cached",
    backend: "str | None" = None,
    preconditioner: str = "none",
    prec_storage: str = "float64",
) -> CampaignResult:
    """Sweep fault kind × storage format × rate on one suite matrix.

    ``preconditioner``/``prec_storage`` apply a right preconditioner to
    every cell's solver (hardened and baseline alike); the factors are
    built per cell from the raw operator, so injected faults never
    corrupt the factorization itself.

    Deterministic: identical arguments (including ``seed``) reproduce
    every injected fault and therefore every cell bit-for-bit.  Each
    cell's injector is seeded from its grid coordinates ``(seed, fault
    index, storage index, rate index)``, so fanning the grid out over
    ``jobs`` worker processes (:mod:`repro.parallel`) cannot reorder
    any random stream: any ``jobs`` value yields identical cells, in
    identical order.  ``jobs=1`` keeps the historical serial path.
    """
    from ..accessor import list_storage_formats
    from .faults import FAULT_KINDS

    for fault in faults:
        if fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {fault!r}; expected one of {FAULT_KINDS}"
            )
    known = tuple(list_storage_formats()) + (ADAPTIVE_STORAGE,)
    for storage in storages:
        if storage not in known:
            raise ValueError(
                f"unknown storage format {storage!r}; expected one of {known}"
            )
    for rate in rates:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    if spmv_format not in SPMV_FORMATS:
        raise ValueError(
            f"unknown SpMV format {spmv_format!r}; expected one of {SPMV_FORMATS}"
        )
    if preconditioner not in PRECONDITIONERS:
        raise ValueError(
            f"unknown preconditioner {preconditioner!r}; "
            f"expected one of {PRECONDITIONERS}"
        )
    if prec_storage not in PREC_STORAGES:
        raise ValueError(
            f"unknown prec_storage {prec_storage!r}; "
            f"expected one of {PREC_STORAGES}"
        )
    # resolve the backend once in the parent so an unavailable-jit
    # warning fires a single time, not once per grid cell or worker;
    # the jit kernels are bit-identical, so fault reproduction is
    # unchanged across backends
    backend = _dispatch.resolve_backend(backend)
    problem = make_problem(matrix, scale, target_rrn=target_rrn)
    policy = policy or FallbackPolicy()
    tasks = [
        dict(
            problem=problem, fault=fault, storage=storage, rate=float(rate),
            seed_key=(seed, i_f, i_s, i_r), m=m, max_iter=max_iter,
            hardened=hardened, fallback=fallback, policy=policy,
            spmv_format=spmv_format, basis_mode=basis_mode,
            backend=backend, preconditioner=preconditioner,
            prec_storage=prec_storage,
        )
        for i_f, fault in enumerate(faults)
        for i_s, storage in enumerate(storages)
        for i_r, rate in enumerate(rates)
    ]
    # collect mode: a worker that dies outright (OOM kill, segfault)
    # becomes a "crashed" cell with its grid coordinates intact instead
    # of aborting the whole sweep — the campaign exists to *measure*
    # failure, so it must survive it too
    raw = run_grid(
        _run_cell,
        tasks,
        jobs=jobs,
        labels=[
            f"faults[{t['fault']}/{t['storage']}@{t['rate']}]" for t in tasks
        ],
        on_error="collect",
    )
    cells = [
        CampaignCell(
            fault=t["fault"], storage=t["storage"], rate=t["rate"],
            outcome="crashed", storage_used=t["storage"], attempts=1,
            iterations=0, recoveries=0, breakdowns=0, faults_injected=0,
            final_rrn=float("nan"),
        )
        if isinstance(cell, WorkerCrashError)
        else cell
        for t, cell in zip(tasks, raw)
    ]
    return CampaignResult(
        matrix=matrix,
        scale=problem.scale,
        seed=seed,
        hardened=hardened,
        fallback=fallback,
        cells=cells,
    )
