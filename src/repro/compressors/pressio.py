"""Compressor registry with the paper's Table II configurations.

LibPressio (paper ref [10]) gives every compressor a name + options
dictionary; experiments refer to configurations like ``sz3_08`` or
``zfp_fr_32``.  This module reproduces that: a registry of named
configurations (exactly Table II, plus the FRSZ2 formats wrapped in the
same interface for uniform metrics) and a factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..core import FRSZ2
from .base import CompressedBuffer, Compressor, ErrorBoundMode
from .cuszplike import CuSZpLike
from .szlike import SZLike
from .zfplike import ZFPLike

__all__ = [
    "CompressorSpec",
    "TABLE_II",
    "FRSZ2_CONFIGS",
    "EXTRA_CONFIGS",
    "list_compressors",
    "make_compressor",
    "Frsz2CompressorAdapter",
]


class Frsz2CompressorAdapter(Compressor):
    """FRSZ2 behind the generic compressor interface (for metrics benches).

    FRSZ2 is fixed-rate by construction: ``l`` bits per value plus one
    exponent per block.
    """

    kind = "frsz2"

    def __init__(self, bit_length: int = 32, block_size: int = 32) -> None:
        self.codec = FRSZ2(bit_length=bit_length, block_size=block_size)

    @property
    def mode(self) -> ErrorBoundMode:
        return ErrorBoundMode.FIXED_RATE

    def compress(self, x: np.ndarray) -> CompressedBuffer:
        x = self._check_input(x)
        comp = self.codec.compress(x)
        return CompressedBuffer(
            compressor=f"frsz2_{self.codec.bit_length}",
            n=x.size,
            streams={
                "values": comp.payload.tobytes(),
                "exponents": comp.exponents.tobytes(),
            },
            meta={"compressed": comp},
            header_nbytes=0,  # Eq. 3 counts exactly these two streams
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        return self.codec.decompress(buf.meta["compressed"])


@dataclass(frozen=True)
class CompressorSpec:
    """A named compressor configuration (one row of Table II)."""

    name: str
    error_bound_type: str
    error_bound: str
    factory: Callable[[], Compressor]

    def build(self) -> Compressor:
        return self.factory()


def _spec(name, ebt, eb, factory) -> CompressorSpec:
    return CompressorSpec(name=name, error_bound_type=ebt, error_bound=eb, factory=factory)


#: Table II of the paper: compressor name and requested bounds.
TABLE_II: Dict[str, CompressorSpec] = {
    s.name: s
    for s in [
        _spec("sz3_06", "absolute", "1e-06",
              lambda: SZLike(1e-6, ErrorBoundMode.ABSOLUTE, variant="sz3")),
        _spec("sz3_07", "absolute", "1e-07",
              lambda: SZLike(1e-7, ErrorBoundMode.ABSOLUTE, variant="sz3")),
        _spec("sz3_08", "absolute", "1e-08",
              lambda: SZLike(1e-8, ErrorBoundMode.ABSOLUTE, variant="sz3")),
        _spec("zfp_06", "absolute", "1.4e-06",
              lambda: ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=1.4e-6)),
        _spec("zfp_10", "absolute", "4.0e-10",
              lambda: ZFPLike(ErrorBoundMode.ABSOLUTE, tolerance=4.0e-10)),
        _spec("sz_pwrel_04", "relative", "1e-04",
              lambda: SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE, variant="sz")),
        _spec("sz3_pwrel_04", "relative", "1e-04",
              lambda: SZLike(1e-4, ErrorBoundMode.POINTWISE_RELATIVE, variant="sz3")),
        _spec("zfp_fr_16", "fixed rate", "16 bits",
              lambda: ZFPLike(ErrorBoundMode.FIXED_RATE, rate=16)),
        _spec("zfp_fr_32", "fixed rate", "32 bits",
              lambda: ZFPLike(ErrorBoundMode.FIXED_RATE, rate=32)),
    ]
}

#: FRSZ2 configurations used throughout the evaluation.
FRSZ2_CONFIGS: Dict[str, CompressorSpec] = {
    s.name: s
    for s in [
        _spec("frsz2_16", "fixed rate", "16 bits", lambda: Frsz2CompressorAdapter(16)),
        _spec("frsz2_21", "fixed rate", "21 bits", lambda: Frsz2CompressorAdapter(21)),
        _spec("frsz2_32", "fixed rate", "32 bits", lambda: Frsz2CompressorAdapter(32)),
    ]
}

#: extra configurations beyond Table II: the cuSZp2-analog comparator
#: (the paper compares against cuSZp2 on throughput only, Section III-B)
EXTRA_CONFIGS: Dict[str, CompressorSpec] = {
    s.name: s
    for s in [
        _spec("cuszp_06", "absolute", "1e-06", lambda: CuSZpLike(1e-6)),
        _spec("cuszp_08", "absolute", "1e-08", lambda: CuSZpLike(1e-8)),
    ]
}

_ALL: Dict[str, CompressorSpec] = {**TABLE_II, **FRSZ2_CONFIGS, **EXTRA_CONFIGS}


def list_compressors() -> List[str]:
    """Names of every registered compressor configuration."""
    return sorted(_ALL)


def make_compressor(name: str) -> Compressor:
    """Instantiate a registered configuration by its Table II name."""
    try:
        return _ALL[name].build()
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {', '.join(list_compressors())}"
        ) from None
