"""Comparator compressors (SZ-like, ZFP-like) behind a LibPressio-style
registry, plus quality/size metrics.

These reproduce the error-injection role the paper gives SZ/SZ3/ZFP in
Section V-D: CB-GMRES compresses and immediately decompresses Krylov
vectors through this interface to study information loss without GPU
implementations of each scheme.
"""

from .base import CompressedBuffer, Compressor, ErrorBoundMode
from .metrics import CompressionReport, evaluate
from .cuszplike import CuSZpLike
from .pressio import (
    EXTRA_CONFIGS,
    FRSZ2_CONFIGS,
    TABLE_II,
    CompressorSpec,
    Frsz2CompressorAdapter,
    list_compressors,
    make_compressor,
)
from .szlike import SZLike
from .zfplike import ZFPLike

__all__ = [
    "CompressedBuffer",
    "Compressor",
    "ErrorBoundMode",
    "CompressionReport",
    "evaluate",
    "SZLike",
    "ZFPLike",
    "CuSZpLike",
    "EXTRA_CONFIGS",
    "CompressorSpec",
    "TABLE_II",
    "FRSZ2_CONFIGS",
    "Frsz2CompressorAdapter",
    "list_compressors",
    "make_compressor",
]
