"""ZFP-like transform-based lossy compressor (from scratch).

Reproduces the decorrelation strategy of ZFP (paper ref [6]): values are
grouped into fixed blocks, converted to block-floating-point integers
against the block's maximum exponent, passed through an exactly
invertible integer decorrelating transform, and the transform
coefficients are truncated to a bit budget.

Modes (Table II):

* fixed rate  — ``rate`` bits per value, whatever error results
  (``zfp_fr_16``, ``zfp_fr_32``).
* fixed accuracy — absolute tolerance; the truncation level per block is
  chosen so the reconstruction error stays below it (``zfp_06``,
  ``zfp_10``).

The transform is a two-level integer S-transform (Haar-style lifting),
which is exactly invertible like ZFP's non-orthogonal lift.  On
uncorrelated Krylov data the transform *spreads* information across
coefficients instead of concentrating it, so at equal storage it retains
less information than FRSZ2's plain block format — the effect behind
Fig. 5/6, where no ZFP setting matches float32's convergence.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..core import bitpack
from .base import CompressedBuffer, Compressor, ErrorBoundMode

__all__ = ["ZFPLike", "BLOCK", "forward_transform", "inverse_transform"]

#: values per block, as in 1-D ZFP
BLOCK = 4
#: fixed-point fraction bits (2 guard bits below int64's 63 usable)
_F = 60
#: bits for the per-block exponent field
_EXP_BITS = 16
#: worst-case error amplification of the inverse transform, in grid units
#: (floor-truncation bias plus lifting propagation, with safety margin)
_AMPLIFY = 8


def _s_forward(a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Integer S-transform pair step: exactly invertible average/difference."""
    d = a - b
    s = b + (d >> 1)  # == floor((a + b) / 2), overflow-safe
    return s, d


def _s_inverse(s: np.ndarray, d: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    b = s - (d >> 1)
    a = b + d
    return a, b


def forward_transform(y: np.ndarray) -> np.ndarray:
    """Two-level decorrelating transform on (nb, 4) int64 blocks."""
    a, b, c, d = y[:, 0], y[:, 1], y[:, 2], y[:, 3]
    s0, d0 = _s_forward(a, b)
    s1, d1 = _s_forward(c, d)
    ss, ds = _s_forward(s0, s1)
    return np.stack([ss, ds, d0, d1], axis=1)


def inverse_transform(t: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`forward_transform`."""
    ss, ds, d0, d1 = t[:, 0], t[:, 1], t[:, 2], t[:, 3]
    s0, s1 = _s_inverse(ss, ds)
    a, b = _s_inverse(s0, d0)
    c, d = _s_inverse(s1, d1)
    return np.stack([a, b, c, d], axis=1)


class ZFPLike(Compressor):
    """Block-transform compressor with fixed-rate / fixed-accuracy modes."""

    kind = "zfplike"

    def __init__(
        self,
        mode: ErrorBoundMode = ErrorBoundMode.FIXED_RATE,
        rate: float = 32.0,
        tolerance: float = 0.0,
    ) -> None:
        if mode is ErrorBoundMode.FIXED_RATE:
            if not 4 <= rate <= 64:
                raise ValueError("rate must be in [4, 64] bits per value")
        elif mode is ErrorBoundMode.ABSOLUTE:
            if tolerance <= 0:
                raise ValueError("tolerance must be positive")
        else:
            raise ValueError("ZFPLike supports fixed-rate and absolute modes")
        self._mode = mode
        self.rate = float(rate)
        self.tolerance = float(tolerance)

    @property
    def mode(self) -> ErrorBoundMode:
        return self._mode

    # ------------------------------------------------------------------

    @staticmethod
    def _block_exponents(xb: np.ndarray) -> np.ndarray:
        """Per-block exponent e with |x| < 2^e for all block values."""
        _, e = np.frexp(xb)
        e = np.where(xb == 0.0, -1074, e)
        emax = e.max(axis=1).astype(np.int64)
        # keep the fixed-point scale 2^(_F - emax) finite: values below
        # ~2^-963 quantize to zero, far under any usable tolerance
        return np.maximum(emax, _F - 1023)

    def _coeff_width(self, emax: np.ndarray) -> np.ndarray:
        """Stored bits per transform coefficient, per block."""
        if self._mode is ErrorBoundMode.FIXED_RATE:
            budget = int(round(self.rate * BLOCK)) - _EXP_BITS
            w = max(budget // BLOCK, 0)
            return np.full(emax.shape, min(w, 62), dtype=np.int64)
        # fixed accuracy: coefficient grid g = 2^(emax - _F); after the
        # inverse transform errors amplify by at most _AMPLIFY grid units,
        # so keep sh low enough that _AMPLIFY * 2^sh * g <= tolerance.
        log_tol = math.log2(self.tolerance / _AMPLIFY)
        sh = np.floor(log_tol - (emax - _F)).astype(np.int64)
        sh = np.clip(sh, 0, 63)
        return np.clip(63 - sh, 0, 62)

    def compress(self, x: np.ndarray) -> CompressedBuffer:
        x = self._check_input(x)
        if self._mode is ErrorBoundMode.FIXED_RATE:
            name = f"zfp_fr_{int(self.rate)}"
        else:
            name = f"zfp(abs={self.tolerance:g})"
        n = x.size
        if n == 0:
            return CompressedBuffer(compressor=name, n=0)
        nb = -(-n // BLOCK)
        xb = np.zeros(nb * BLOCK)
        xb[:n] = x
        xb = xb.reshape(nb, BLOCK)
        emax = self._block_exponents(xb)
        # block floating point: |y| < 2^_F
        scale = np.ldexp(1.0, (_F - emax).astype(np.int64))[:, None]
        y = np.round(xb * scale).astype(np.int64)
        t = forward_transform(y)
        width = self._coeff_width(emax)
        sh = (63 - width).astype(np.int64)
        # truncate LSBs (arithmetic shift keeps two's-complement sign)
        tq = t >> sh[:, None]
        # serialize: exponent field + four two's-complement coefficients
        widths = np.repeat(width, BLOCK)
        enc = (tq.reshape(-1) & ((np.int64(1) << widths) - 1)).astype(np.uint64)
        active = widths > 0
        words = np.zeros(bitpack.words_needed(int(widths.sum())), dtype=np.uint32)
        if np.any(active):
            starts = np.concatenate([[0], np.cumsum(widths)[:-1]])
            bitpack.pack_at(words, starts[active], enc[active], widths[active])
        streams: Dict[str, bytes] = {
            "coefficients": words.tobytes(),
            "exponents": emax.astype(np.int16).tobytes(),
        }
        meta = {
            "emax": emax,
            "width": width,
            "sh": sh,
            "_tq_cache": tq,
        }
        return CompressedBuffer(compressor=name, n=n, streams=streams, meta=meta)

    def decompress(self, buf: CompressedBuffer, strict: bool = False) -> np.ndarray:
        """Reconstruct; ``strict=True`` re-reads the packed coefficient
        stream instead of the cached quantized transform (both paths are
        byte-identical; see :class:`SZLike` for the rationale)."""
        if buf.n == 0:
            return np.zeros(0)
        emax = buf.meta["emax"]
        width = buf.meta["width"]
        sh = buf.meta["sh"]
        nb = emax.size
        if strict or "_tq_cache" not in buf.meta:
            words = np.frombuffer(buf.streams["coefficients"], dtype=np.uint32)
            widths = np.repeat(width, BLOCK)
            starts = np.concatenate([[0], np.cumsum(widths)[:-1]])
            active = widths > 0
            enc = np.zeros(nb * BLOCK, dtype=np.uint64)
            if np.any(active):
                enc[active] = bitpack.unpack_at(words, starts[active], widths[active])
            # sign-extend two's complement of per-block width
            w64 = widths.astype(np.uint64)
            signbit = np.where(
                w64 > 0, (enc >> np.maximum(w64 - 1, 0).astype(np.uint64)) & 1, 0
            )
            full = enc.astype(np.int64) - (signbit.astype(np.int64) << w64.astype(np.int64))
            tq = full.reshape(nb, BLOCK)
        else:
            tq = buf.meta["_tq_cache"]
        t = tq << sh[:, None]
        y = inverse_transform(t)
        inv_scale = np.ldexp(1.0, (emax - _F).astype(np.int64))[:, None]
        out = (y.astype(np.float64) * inv_scale).reshape(-1)[: buf.n]
        return out
