"""Canonical Huffman coding over integer symbol streams.

SZ-family compressors finish with an entropy-coding stage (paper
Section III-A: "decorrelation, quantization, and encoding").  This is a
real, self-contained Huffman implementation — codebook construction,
canonical code assignment, vectorized bitstream emission via
:mod:`repro.core.bitpack`, and decoding — used by the SZ-like comparator
to produce honest compressed sizes.

Symbols are arbitrary int64 values (quantization codes / deltas); the
codebook stores the distinct symbols alongside canonical code lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List

import numpy as np

from ..core import bitpack

__all__ = ["HuffmanCode", "encode", "decode", "encoded_nbytes"]

_MAX_CODE_LEN = 32  # emission uses 32-bit packing chunks


@dataclass
class HuffmanCode:
    """A canonical Huffman codebook for a set of int64 symbols."""

    symbols: np.ndarray  # distinct symbols, canonical order
    lengths: np.ndarray  # code length per symbol
    codes: np.ndarray  # canonical code values (MSB-first semantics)

    @property
    def table_nbytes(self) -> int:
        """Serialized codebook size: symbol (8B) + length (1B) each."""
        return self.symbols.size * 9

    def lookup(self) -> Dict[int, "tuple[int, int]"]:
        return {
            int(s): (int(c), int(l))
            for s, c, l in zip(self.symbols, self.codes, self.lengths)
        }


def _code_lengths(counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths via the standard two-queue/heap algorithm."""
    k = counts.size
    if k == 1:
        return np.array([1], dtype=np.int64)
    heap: List["tuple[int, int]"] = [(int(c), i) for i, c in enumerate(counts)]
    heapify(heap)
    parent = np.full(2 * k - 1, -1, dtype=np.int64)
    next_node = k
    while len(heap) > 1:
        c1, n1 = heappop(heap)
        c2, n2 = heappop(heap)
        parent[n1] = next_node
        parent[n2] = next_node
        heappush(heap, (c1 + c2, next_node))
        next_node += 1
    depths = np.zeros(2 * k - 1, dtype=np.int64)
    # nodes were created in increasing order; parents have larger ids
    for node in range(next_node - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:k]


def _limit_lengths(lengths: np.ndarray, limit: int) -> np.ndarray:
    """Clamp code lengths to ``limit`` while keeping Kraft <= 1.

    Simple heuristic rebalancing (adequate for our symbol counts): clamp,
    then repeatedly lengthen the shortest fixable codes until the Kraft
    sum is valid again.
    """
    lengths = np.minimum(lengths, limit).astype(np.int64)

    def kraft(ls: np.ndarray) -> float:
        return float(np.sum(2.0 ** (-ls.astype(np.float64))))

    while kraft(lengths) > 1.0 + 1e-12:
        # lengthen the currently-shortest code that can still grow
        candidates = np.where(lengths < limit)[0]
        if candidates.size == 0:  # pragma: no cover - cannot happen for k <= 2^limit
            raise ValueError("cannot satisfy Kraft inequality within limit")
        i = candidates[np.argmin(lengths[candidates])]
        lengths[i] += 1
    return lengths


def build_code(symbols_stream: np.ndarray) -> HuffmanCode:
    """Build a canonical Huffman code from a symbol stream."""
    syms, counts = np.unique(np.asarray(symbols_stream, dtype=np.int64), return_counts=True)
    if syms.size == 0:
        return HuffmanCode(
            symbols=np.zeros(0, dtype=np.int64),
            lengths=np.zeros(0, dtype=np.int64),
            codes=np.zeros(0, dtype=np.uint64),
        )
    lengths = _limit_lengths(_code_lengths(counts), _MAX_CODE_LEN)
    # canonical ordering: by (length, symbol)
    order = np.lexsort((syms, lengths))
    syms, lengths = syms[order], lengths[order]
    codes = np.zeros(syms.size, dtype=np.uint64)
    code = 0
    prev_len = int(lengths[0])
    for i in range(syms.size):
        code <<= int(lengths[i]) - prev_len
        prev_len = int(lengths[i])
        codes[i] = code
        code += 1
    return HuffmanCode(symbols=syms, lengths=lengths, codes=codes)


def encoded_nbytes(code: HuffmanCode, symbols_stream: np.ndarray) -> int:
    """Size in bytes of the bitstream + codebook for a symbol stream."""
    lut = {int(s): int(l) for s, l in zip(code.symbols, code.lengths)}
    total_bits = int(sum(lut[int(s)] for s in symbols_stream))
    return (total_bits + 7) // 8 + code.table_nbytes


def encode(symbols_stream: np.ndarray) -> "tuple[HuffmanCode, bytes, int]":
    """Huffman-encode a stream; returns (code, bitstream bytes, nbits).

    Emission is vectorized: per-symbol code lengths are gathered, bit
    offsets come from a cumulative sum, and the (MSB-first) codes are
    written with :func:`repro.core.bitpack.pack_at`.
    """
    stream = np.asarray(symbols_stream, dtype=np.int64)
    code = build_code(stream)
    if stream.size == 0:
        return code, b"", 0
    # map stream symbols -> index in the canonical table (the table is
    # ordered by (length, symbol), so sort by symbol for the lookup)
    order = np.argsort(code.symbols, kind="stable")
    idx = order[np.searchsorted(code.symbols[order], stream)]
    lens = code.lengths[idx]
    vals = code.codes[idx]
    starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    total_bits = int(starts[-1] + lens[-1])
    words = np.zeros(bitpack.words_needed(total_bits), dtype=np.uint32)
    # Canonical codes are prefix-free when read MSB-first, but fields are
    # stored LSB-first: emit each code bit-reversed so a sequential
    # low-to-high bit read sees the canonical MSB-first order.
    bitpack.pack_at(words, starts, _reverse_bits(vals, lens), lens)
    return code, words.tobytes(), total_bits


def _reverse_bits(vals: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Reverse the low ``lens`` bits of each value (vectorized)."""
    v = vals.astype(np.uint64)
    out = np.zeros_like(v)
    max_len = int(lens.max()) if lens.size else 0
    for j in range(max_len):
        bit = (v >> np.uint64(j)) & np.uint64(1)
        dest = lens.astype(np.int64) - 1 - j
        active = dest >= 0
        shift = np.where(active, dest, 0).astype(np.uint64)
        out |= np.where(active, bit << shift, np.uint64(0))
    return out


def decode(code: HuffmanCode, bitstream: bytes, n: int) -> np.ndarray:
    """Decode ``n`` symbols from a bitstream produced by :func:`encode`.

    Sequential bit-by-bit tree walk (decoding speed is irrelevant to the
    reproduction — LibPressio round trips are about error injection).
    """
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    words = np.frombuffer(bitstream, dtype=np.uint32)
    # rebuild the prefix table: code value (as emitted, LSB-first) -> symbol
    by_len: Dict[int, Dict[int, int]] = {}
    for s, c, l in zip(code.symbols, code.codes, code.lengths):
        by_len.setdefault(int(l), {})[int(c)] = int(s)
    out = np.empty(n, dtype=np.int64)
    bitpos = 0

    def read_bit(p: int) -> int:
        return (int(words[p >> 5]) >> (p & 31)) & 1

    max_len = int(code.lengths.max())
    for i in range(n):
        acc = 0
        length = 0
        while True:
            acc = (acc << 1) | read_bit(bitpos + length)
            length += 1
            table = by_len.get(length)
            if table is not None and acc in table:
                out[i] = table[acc]
                bitpos += length
                break
            if length > max_len:
                raise ValueError("corrupt Huffman bitstream")
    return out
