"""Compressor interface and error-bound modes (LibPressio-style).

The paper evaluates SZ, SZ3 and ZFP purely as *error injectors*: Krylov
vectors are compressed and immediately decompressed through LibPressio
(Section V-D) so the information loss — not the GPU speed — of each
scheme enters CB-GMRES.  This module defines the common interface our
from-scratch comparator compressors implement, mirroring LibPressio's
compressor/options/metrics split.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["ErrorBoundMode", "CompressedBuffer", "Compressor"]


class ErrorBoundMode(enum.Enum):
    """Error-bound families of Table II."""

    #: |x - x'| <= bound for every value
    ABSOLUTE = "absolute"
    #: x(1-eps) <= x' <= x(1+eps) pointwise (paper Section VI-A)
    POINTWISE_RELATIVE = "relative"
    #: fixed bits per value, error falls where it may (ZFP fixed-rate)
    FIXED_RATE = "fixed rate"


@dataclass
class CompressedBuffer:
    """Opaque compressed representation plus size accounting.

    ``streams`` maps stream names to byte payloads (e.g. Huffman bits,
    outlier values, block exponents); ``meta`` holds small header fields.
    ``nbytes`` — the honest compressed size including all streams and the
    header — is what the bits-per-value numbers in the paper's discussion
    (e.g. "sz3_08 uses 46 bits per value") correspond to.
    """

    compressor: str
    n: int
    streams: Dict[str, bytes] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    header_nbytes: int = 16

    @property
    def nbytes(self) -> int:
        return self.header_nbytes + sum(len(v) for v in self.streams.values())

    @property
    def bits_per_value(self) -> float:
        return self.nbytes * 8 / self.n if self.n else 0.0


class Compressor(abc.ABC):
    """A lossy floating-point compressor.

    Implementations must be deterministic and must honour their declared
    error bound (verified by the test suite across the whole input
    domain they accept).
    """

    #: registry key, e.g. ``"szlike"``
    kind: str = "abstract"

    @property
    @abc.abstractmethod
    def mode(self) -> ErrorBoundMode:
        """The error-bound family this instance is configured for."""

    @abc.abstractmethod
    def compress(self, x: np.ndarray) -> CompressedBuffer:
        """Compress a 1-D float64 array."""

    @abc.abstractmethod
    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        """Reconstruct the float64 array from a compressed buffer."""

    def roundtrip(self, x: np.ndarray) -> np.ndarray:
        """Compress then decompress — the Section V-D injection path."""
        return self.decompress(self.compress(x))

    def roundtrip_with_size(self, x: np.ndarray) -> "tuple[np.ndarray, int]":
        """Round trip returning (reconstruction, compressed bytes)."""
        buf = self.compress(x)
        return self.decompress(buf), buf.nbytes

    @staticmethod
    def _check_input(x: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("compressors operate on 1-D arrays")
        if not np.all(np.isfinite(x)):
            raise ValueError("non-finite values are not supported")
        return x
