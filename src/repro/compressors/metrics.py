"""Compression quality and size metrics (LibPressio-metrics analog)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import CompressedBuffer, Compressor, ErrorBoundMode

__all__ = [
    "max_abs_error",
    "max_pointwise_relative_error",
    "psnr",
    "bits_per_value",
    "compression_ratio",
    "CompressionReport",
    "evaluate",
]


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute reconstruction error."""
    if original.size == 0:
        return 0.0
    return float(np.abs(original - reconstructed).max())


def max_pointwise_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest |x' - x| / |x| over non-zero originals.

    Zero originals must be reconstructed exactly; otherwise the error is
    infinite (matching the pointwise-relative bound definition of [12]).
    """
    if original.size == 0:
        return 0.0
    zero = original == 0.0
    if np.any(reconstructed[zero] != 0.0):
        return math.inf
    nz = ~zero
    if not np.any(nz):
        return 0.0
    return float((np.abs(reconstructed[nz] - original[nz]) / np.abs(original[nz])).max())


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for exact reconstruction)."""
    if original.size == 0:
        return math.inf
    mse = float(np.mean((original - reconstructed) ** 2))
    if mse == 0.0:
        return math.inf
    peak = float(np.abs(original).max())
    if peak == 0.0:
        return -math.inf
    return 20.0 * math.log10(peak) - 10.0 * math.log10(mse)


def bits_per_value(buf: CompressedBuffer) -> float:
    """Average stored bits per value for a compressed buffer."""
    return buf.bits_per_value


def compression_ratio(buf: CompressedBuffer) -> float:
    """Uncompressed float64 bytes over compressed bytes."""
    if buf.nbytes == 0:
        return math.inf
    return buf.n * 8 / buf.nbytes


@dataclass
class CompressionReport:
    """One compressor evaluated on one dataset."""

    compressor: str
    n: int
    bits_per_value: float
    compression_ratio: float
    max_abs_error: float
    max_pw_rel_error: float
    psnr_db: float
    bound_satisfied: bool


def evaluate(comp: Compressor, x: np.ndarray) -> CompressionReport:
    """Round-trip ``x`` and report quality/size, checking the bound.

    ``bound_satisfied`` verifies the compressor's declared error bound
    (with a 1e-9 relative slack for float arithmetic in the bound
    arithmetic itself); fixed-rate compressors have no bound to check.
    """
    buf = comp.compress(x)
    y = comp.decompress(buf)
    abs_err = max_abs_error(x, y)
    rel_err = max_pointwise_relative_error(x, y)
    slack = 1.0 + 1e-9
    if comp.mode is ErrorBoundMode.ABSOLUTE:
        ok = abs_err <= getattr(comp, "error_bound", getattr(comp, "tolerance", 0.0)) * slack
    elif comp.mode is ErrorBoundMode.POINTWISE_RELATIVE:
        ok = rel_err <= comp.error_bound * slack
    else:
        ok = True
    return CompressionReport(
        compressor=buf.compressor,
        n=x.size,
        bits_per_value=bits_per_value(buf),
        compression_ratio=compression_ratio(buf),
        max_abs_error=abs_err,
        max_pw_rel_error=rel_err,
        psnr_db=psnr(x, y),
        bound_satisfied=bool(ok),
    )
