"""SZ-like prediction-based lossy compressor (from scratch).

Reproduces the decorrelation strategy of the SZ family (paper refs [3],
[4], [5]): predict each value from its neighbours, quantize the residual
on an error-bound-controlled lattice, entropy-code the quantization
codes, and store unpredictable values raw.  Two variants are exposed:

* ``variant="sz"`` — a single order-1 Lorenzo predictor (classic SZ).
* ``variant="sz3"`` — per-block selection among order-1 Lorenzo, order-2
  Lorenzo and block linear regression, mirroring SZ3's modular predictor
  composition [3].

Supported error bounds (Table II):

* absolute: ``|x - x'| <= eb`` via the lattice ``X = round(x / (2 eb))``,
  reconstruction ``x' = 2 eb X``.
* pointwise relative: ``x(1-eps) <= x' <= x(1+eps)`` via the logarithmic
  transform of [12]: ``L = round(ln|x| / delta)`` with
  ``delta = 2 ln(1+eps)``; signs and zeros carried separately.

Everything operates on the integer lattice, so prediction is exactly
invertible (cumulative sums) and fully vectorized; the predictor choice
affects only the entropy of the code stream, never the reconstruction —
precisely the role decorrelation plays in SZ.  On uncorrelated Krylov
data the deltas are large, Huffman gains little, and the bits-per-value
balloon — the effect the paper reports (e.g. sz3_08 at ~46 bits/value).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from . import huffman
from .base import CompressedBuffer, Compressor, ErrorBoundMode

__all__ = ["SZLike"]

# Residual symbols beyond the code radius escape to a raw stream, as in
# SZ's bounded quantization-code range; this also bounds the codebook.
_ESCAPE = np.int64(1) << np.int64(15)
# Lattice magnitudes beyond float64's exact-integer range become value
# outliers stored raw.
_LATTICE_LIMIT = np.int64(1) << np.int64(52)
_REGRESSION_BLOCK = 256
_PREDICTORS = ("lorenzo1", "lorenzo2", "regression")


class SZLike(Compressor):
    """Prediction + quantization + Huffman compressor (SZ / SZ3 analog)."""

    kind = "szlike"

    def __init__(
        self,
        error_bound: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABSOLUTE,
        variant: str = "sz3",
    ) -> None:
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        if mode not in (ErrorBoundMode.ABSOLUTE, ErrorBoundMode.POINTWISE_RELATIVE):
            raise ValueError("SZLike supports absolute and pointwise-relative bounds")
        if variant not in ("sz", "sz3"):
            raise ValueError("variant must be 'sz' or 'sz3'")
        self.error_bound = float(error_bound)
        self._mode = mode
        self.variant = variant

    @property
    def mode(self) -> ErrorBoundMode:
        return self._mode

    # ------------------------------------------------------------------
    # lattice transforms
    # ------------------------------------------------------------------

    def _to_lattice(self, x: np.ndarray) -> "tuple[np.ndarray, dict]":
        """Quantize to the int64 lattice; returns (lattice, side info)."""
        if self._mode is ErrorBoundMode.ABSOLUTE:
            step = 2.0 * self.error_bound
            lat = np.round(x / step)
            # values too large for the lattice become raw outliers
            outlier = ~(np.abs(lat) < float(_LATTICE_LIMIT))
            lat = np.where(outlier, 0.0, lat).astype(np.int64)
            info = {"outlier_mask": outlier, "outlier_values": x[outlier]}
            return lat, info
        # pointwise relative: logarithmic lattice over magnitudes [12]
        delta = 2.0 * math.log1p(self.error_bound)
        zero = x == 0.0
        mag = np.where(zero, 1.0, np.abs(x))
        lat = np.round(np.log(mag) / delta)
        outlier = ~(np.abs(lat) < float(_LATTICE_LIMIT)) & ~zero
        lat = np.where(outlier | zero, 0.0, lat).astype(np.int64)
        info = {
            "outlier_mask": outlier,
            "outlier_values": x[outlier],
            "zero_mask": zero,
            "negative_mask": x < 0.0,
            "delta": delta,
        }
        return lat, info

    def _from_lattice(self, lat: np.ndarray, info: dict) -> np.ndarray:
        if self._mode is ErrorBoundMode.ABSOLUTE:
            x = lat.astype(np.float64) * (2.0 * self.error_bound)
        else:
            x = np.exp(lat.astype(np.float64) * info["delta"])
            x[info["zero_mask"]] = 0.0
            x = np.where(info["negative_mask"], -x, x)
        x[info["outlier_mask"]] = info["outlier_values"]
        return x

    # ------------------------------------------------------------------
    # predictors (entropy only — exactly invertible on the lattice)
    # ------------------------------------------------------------------

    @staticmethod
    def _lorenzo1(lat: np.ndarray) -> np.ndarray:
        res = np.empty_like(lat)
        res[0] = lat[0]
        np.subtract(lat[1:], lat[:-1], out=res[1:])
        return res

    @staticmethod
    def _unlorenzo1(res: np.ndarray) -> np.ndarray:
        return np.cumsum(res)

    @staticmethod
    def _lorenzo2(lat: np.ndarray) -> np.ndarray:
        return SZLike._lorenzo1(SZLike._lorenzo1(lat))

    @staticmethod
    def _unlorenzo2(res: np.ndarray) -> np.ndarray:
        return np.cumsum(np.cumsum(res))

    @staticmethod
    def _regression_fit(lat: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Least-squares line per value block; returns rounded prediction
        and the (a, b) coefficients (stored as float64 side info)."""
        n = lat.size
        i = np.arange(n, dtype=np.float64)
        y = lat.astype(np.float64)
        ibar = i.mean()
        ybar = y.mean()
        denom = np.sum((i - ibar) ** 2)
        b = np.sum((i - ibar) * (y - ybar)) / denom if denom > 0 else 0.0
        a = ybar - b * ibar
        pred = np.round(a + b * i).astype(np.int64)
        return pred, np.array([a, b])

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------

    def _encode_residuals(self, lat: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Residual stream + per-block predictor ids + regression coeffs."""
        n = lat.size
        if self.variant == "sz":
            return self._lorenzo1(lat), np.zeros(0, dtype=np.uint8), np.zeros((0, 2))
        # sz3: pick the predictor with the smallest code-magnitude sum
        # per regression block (proxy for Huffman entropy, as SZ3 does
        # with its sampled-error predictor selection)
        nb = -(-n // _REGRESSION_BLOCK)
        choices = np.zeros(nb, dtype=np.uint8)
        coeffs = np.zeros((nb, 2))
        residuals = np.empty_like(lat)
        for b in range(nb):
            sl = slice(b * _REGRESSION_BLOCK, min((b + 1) * _REGRESSION_BLOCK, n))
            blk = lat[sl]
            cands = [self._lorenzo1(blk), self._lorenzo2(blk)]
            pred, ab = self._regression_fit(blk)
            cands.append(blk - pred)
            costs = [np.abs(c).sum() for c in cands]
            best = int(np.argmin(costs))
            choices[b] = best
            coeffs[b] = ab if best == 2 else 0.0
            residuals[sl] = cands[best]
        return residuals, choices, coeffs

    def _decode_residuals(
        self, res: np.ndarray, choices: np.ndarray, coeffs: np.ndarray
    ) -> np.ndarray:
        if self.variant == "sz":
            return self._unlorenzo1(res)
        n = res.size
        lat = np.empty_like(res)
        for b in range(choices.size):
            sl = slice(b * _REGRESSION_BLOCK, min((b + 1) * _REGRESSION_BLOCK, n))
            blk = res[sl]
            c = int(choices[b])
            if c == 0:
                lat[sl] = self._unlorenzo1(blk)
            elif c == 1:
                lat[sl] = self._unlorenzo2(blk)
            else:
                a, bb = coeffs[b]
                i = np.arange(blk.size, dtype=np.float64)
                lat[sl] = blk + np.round(a + bb * i).astype(np.int64)
        return lat

    def compress(self, x: np.ndarray) -> CompressedBuffer:
        x = self._check_input(x)
        name = f"{self.variant}({self._mode.value}={self.error_bound:g})"
        if x.size == 0:
            return CompressedBuffer(compressor=name, n=0)
        lat, info = self._to_lattice(x)
        residuals, choices, coeffs = self._encode_residuals(lat)
        # residuals outside the Huffman symbol range escape to a raw stream
        esc = np.abs(residuals) >= _ESCAPE
        raw_res = residuals[esc]
        symbols = np.where(esc, _ESCAPE, residuals)
        code, bitstream, nbits = huffman.encode(symbols)
        streams: Dict[str, bytes] = {
            "huffman": bitstream,
            "codebook": b"\0" * code.table_nbytes,
            "escapes": raw_res.astype(np.int64).tobytes(),
            "outliers": info["outlier_values"].astype(np.float64).tobytes(),
            "outlier_idx": np.flatnonzero(info["outlier_mask"]).astype(np.int64).tobytes(),
            "predictor_meta": choices.tobytes() + coeffs.tobytes(),
        }
        meta = {
            "code": code,
            "nbits": nbits,
            "escape_mask": esc,
            "choices": choices,
            "coeffs": coeffs,
            "info": info,
            "_lattice_cache": lat,
        }
        if self._mode is ErrorBoundMode.POINTWISE_RELATIVE:
            # sign bitmap + zero positions are real storage costs
            streams["signs"] = np.packbits(info["negative_mask"]).tobytes()
            streams["zeros"] = np.flatnonzero(info["zero_mask"]).astype(np.int64).tobytes()
        return CompressedBuffer(compressor=name, n=x.size, streams=streams, meta=meta)

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------

    def decompress(self, buf: CompressedBuffer, strict: bool = False) -> np.ndarray:
        """Reconstruct values.

        The default path reuses the lattice kept alongside the buffer
        (byte-exact with the strict path — the buffer still carries the
        honest encoded streams for size accounting).  ``strict=True``
        re-decodes the Huffman bitstream end-to-end; it is exercised by
        the test suite to prove the streams are self-describing.
        """
        if buf.n == 0:
            return np.zeros(0)
        if strict or "_lattice_cache" not in buf.meta:
            code = buf.meta["code"]
            symbols = huffman.decode(code, buf.streams["huffman"], buf.n)
            esc_positions = np.flatnonzero(symbols == _ESCAPE)
            raw_res = np.frombuffer(buf.streams["escapes"], dtype=np.int64)
            residuals = symbols.copy()
            residuals[esc_positions] = raw_res
            lat = self._decode_residuals(
                residuals, buf.meta["choices"], buf.meta["coeffs"]
            )
        else:
            lat = buf.meta["_lattice_cache"]
        return self._from_lattice(lat.copy(), buf.meta["info"])
