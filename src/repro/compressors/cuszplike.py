"""cuSZp2-like block-parallel lossy compressor (from scratch).

cuSZp2 (paper ref [7]) is the fastest published general GPU compressor
and the paper's main throughput comparator ("1.2~3.1x" slower than
FRSZ2 at the roofline).  Its design is block-parallel so every CUDA
block works independently: quantize to an error-bound lattice, delta
(Lorenzo) predict *within* a fixed-size block, then store each block's
residuals with a fixed per-block bit width chosen from the block's
largest residual.

This reproduction follows that scheme:

* absolute bound ``eb``: lattice ``X = round(x / (2 eb))``;
* per 32-value block: zig-zag-encoded first-order deltas (the block's
  first lattice value is the anchor, stored raw);
* per-block header: one byte holding the field width ``w`` =
  bits of the largest zig-zag residual; payload = 32 ``w``-bit fields;
* values whose lattice magnitude overflows the exact-integer range are
  outliers stored raw.

Unlike FRSZ2 this format is *variable rate* (width per block), which is
exactly why it cannot be randomly accessed cheaply inside CB-GMRES and
why its decompression needs a within-block prefix scan — the structural
reasons the paper gives for designing FRSZ2 instead.

All stages are vectorized; a strict decode path reconstructs from the
packed streams alone.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import bitpack
from .base import CompressedBuffer, Compressor, ErrorBoundMode

__all__ = ["CuSZpLike", "BLOCK"]

#: values per independent block (cuSZp2 uses 32-value thread blocks)
BLOCK = 32

_LATTICE_LIMIT = np.int64(1) << np.int64(52)


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    v = u.astype(np.int64)
    return (v >> 1) ^ -(v & 1)


def _bit_width(u: np.ndarray) -> np.ndarray:
    """Bits needed per value (0 for zero)."""
    from ..core.ieee754 import highest_set_bit

    return (highest_set_bit(u) + 1).astype(np.int64)


class CuSZpLike(Compressor):
    """Block-parallel fixed-width delta compressor (cuSZp2 analog)."""

    kind = "cuszplike"

    def __init__(self, error_bound: float) -> None:
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        self.error_bound = float(error_bound)

    @property
    def mode(self) -> ErrorBoundMode:
        return ErrorBoundMode.ABSOLUTE

    # ------------------------------------------------------------------

    def compress(self, x: np.ndarray) -> CompressedBuffer:
        x = self._check_input(x)
        name = f"cuszp(abs={self.error_bound:g})"
        n = x.size
        if n == 0:
            return CompressedBuffer(compressor=name, n=0)
        step = 2.0 * self.error_bound
        lat_f = np.round(x / step)
        outlier = ~(np.abs(lat_f) < float(_LATTICE_LIMIT))
        lat = np.where(outlier, 0.0, lat_f).astype(np.int64)

        nb = -(-n // BLOCK)
        padded = np.zeros(nb * BLOCK, dtype=np.int64)
        padded[:n] = lat
        blocks = padded.reshape(nb, BLOCK)
        # block anchors live in their own stream (cuSZp keeps per-block
        # offset info separately so blocks decode independently); the
        # payload holds the BLOCK-1 within-block Lorenzo deltas
        anchors = blocks[:, 0].copy()
        deltas = blocks[:, 1:] - blocks[:, :-1]
        zz = _zigzag(deltas.reshape(-1)).reshape(nb, BLOCK - 1)
        widths = _bit_width(np.uint64(0) + zz.max(axis=1))  # per block

        per_field_width = np.repeat(widths, BLOCK - 1)
        active = per_field_width > 0
        starts = np.concatenate([[0], np.cumsum(per_field_width)[:-1]])
        total_bits = int(per_field_width.sum())
        words = np.zeros(bitpack.words_needed(total_bits), dtype=np.uint32)
        if np.any(active):
            bitpack.pack_at(
                words, starts[active], zz.reshape(-1)[active], per_field_width[active]
            )
        streams: Dict[str, bytes] = {
            "payload": words.tobytes(),
            "widths": widths.astype(np.uint8).tobytes(),
            "anchors": anchors.astype(np.int64).tobytes(),
            "outliers": x[outlier].astype(np.float64).tobytes(),
            "outlier_idx": np.flatnonzero(outlier).astype(np.int64).tobytes(),
        }
        meta = {
            "widths": widths,
            "outlier_mask": outlier,
            "outlier_values": x[outlier],
            "_lattice_cache": lat,
        }
        return CompressedBuffer(compressor=name, n=n, streams=streams, meta=meta)

    def decompress(self, buf: CompressedBuffer, strict: bool = False) -> np.ndarray:
        """Reconstruct; ``strict=True`` decodes from the packed streams
        (cache-free), proving the format is self-describing."""
        if buf.n == 0:
            return np.zeros(0)
        n = buf.n
        if strict or "_lattice_cache" not in buf.meta:
            widths = np.frombuffer(buf.streams["widths"], dtype=np.uint8).astype(np.int64)
            nb = widths.size
            anchors = np.frombuffer(buf.streams["anchors"], dtype=np.int64)
            words = np.frombuffer(buf.streams["payload"], dtype=np.uint32)
            per_field_width = np.repeat(widths, BLOCK - 1)
            starts = np.concatenate([[0], np.cumsum(per_field_width)[:-1]])
            active = per_field_width > 0
            zz = np.zeros(nb * (BLOCK - 1), dtype=np.uint64)
            if np.any(active):
                zz[active] = bitpack.unpack_at(
                    words, starts[active], per_field_width[active]
                )
            full = np.empty((nb, BLOCK), dtype=np.int64)
            full[:, 0] = anchors
            full[:, 1:] = _unzigzag(zz).reshape(nb, BLOCK - 1)
            lat = np.cumsum(full, axis=1).reshape(-1)[:n]
            out_idx = np.frombuffer(buf.streams["outlier_idx"], dtype=np.int64)
            out_val = np.frombuffer(buf.streams["outliers"], dtype=np.float64)
        else:
            lat = buf.meta["_lattice_cache"]
            out_idx = np.flatnonzero(buf.meta["outlier_mask"])
            out_val = buf.meta["outlier_values"]
        x = lat.astype(np.float64) * (2.0 * self.error_bound)
        x[out_idx] = out_val
        return x
