"""GPU device catalog for the performance model.

The paper's performance argument (Section I) is arithmetic on published
device numbers: the H100 PCIe moves ~2 TB/s from HBM while executing
25.6 double-precision TFLOP/s, i.e. ~100 flops per double read — leaving
~46 "spare" instructions for decompression once the payload shrinks to
32 bits.  The :class:`DeviceSpec` captures exactly the quantities that
argument needs; all roofline/timing predictions derive from them.

Integer/logic operations (the FRSZ2 decompression work) execute on the
INT32 pipe, which on Hopper issues at the FP32 rate — twice the FP64
rate — and independently of the FP64 pipe, which is why decompression
can hide behind memory access at all.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "H100_PCIE", "A100_SXM", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Published performance envelope of one GPU."""

    name: str
    #: peak HBM bandwidth in bytes/s
    mem_bandwidth: float
    #: peak FP64 throughput in flop/s
    fp64_flops: float
    #: peak FP32 throughput in flop/s
    fp32_flops: float
    #: peak INT32/logic throughput in op/s (decompression instructions)
    int_ops: float
    #: L2 cache in bytes (problems must exceed this, paper Section V-B)
    l2_bytes: int
    #: fraction of peak bandwidth a tuned streaming kernel reaches
    streaming_efficiency: float = 0.92
    #: bandwidth derate for unaligned (straddling) accesses, the
    #: frsz2_21 penalty of Section IV-C
    unaligned_efficiency: float = 0.55

    @property
    def flops_per_double_read(self) -> float:
        """The paper's 100:1 compute-to-read headline ratio."""
        return self.fp64_flops / (self.mem_bandwidth / 8.0)

    def spare_ops_budget(self, stored_bits: float, used_flops: int = 4) -> float:
        """Instructions available per value for (de)compression.

        Reproduces the Section I calculation: reading ``stored_bits``
        per value at peak bandwidth leaves ``fp64_flops * t - used``
        operation slots, where ``t`` is the per-value read time.
        """
        t = (stored_bits / 8.0) / self.mem_bandwidth
        return self.fp64_flops * t - used_flops


H100_PCIE = DeviceSpec(
    name="H100-PCIe",
    mem_bandwidth=2000e9,
    fp64_flops=25.6e12,
    fp32_flops=51.2e12,
    int_ops=51.2e12,
    l2_bytes=50 * 1024 * 1024,
)

A100_SXM = DeviceSpec(
    name="A100-SXM",
    mem_bandwidth=1555e9,
    fp64_flops=9.7e12,
    fp32_flops=19.5e12,
    int_ops=19.5e12,
    l2_bytes=40 * 1024 * 1024,
)

DEVICES = {d.name: d for d in (H100_PCIE, A100_SXM)}
