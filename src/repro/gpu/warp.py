"""Warp-level SIMT executor running the FRSZ2 GPU kernels.

Python cannot express CUDA's register-level programming model (the
repro gate of this reproduction), so this module builds the closest
equivalent: a 32-lane :class:`Warp` that executes the FRSZ2 compression
and decompression kernels lane-by-lane in lockstep, using the same
primitives the CUDA code uses — ``__shfl_xor_sync`` butterfly
reductions for ``e_max`` (paper Section IV-C optimization 2),
``__double_as_longlong`` reinterpretation, and ``__clz`` leading-zero
counts.

Two purposes:

* **validation** — the kernels must produce bit-identical results to the
  vectorized NumPy codec (enforced by the test suite), demonstrating the
  warp algorithm is the one the paper describes;
* **measurement** — every lane instruction is counted by category, and
  the counts parameterize the instruction-cost side of the performance
  model (:mod:`repro.gpu.kernels`), replacing measurements we cannot
  take on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict

import numpy as np

from ..core import ieee754
from ..core.frsz2 import FRSZ2

__all__ = ["Warp", "WarpKernelReport", "warp_compress_block", "warp_decompress_block"]

WARP_SIZE = 32
_U64 = np.uint64


class Warp:
    """32 SIMT lanes with instruction accounting.

    Values live in numpy arrays of length 32 (one element per lane).
    Every method models one hardware instruction per lane (a few model
    short fixed sequences and count accordingly).  ``counts`` maps
    instruction categories (``alu``, ``shuffle``, ``clz``, ``convert``)
    to the number of instructions *each lane* executed — directly
    comparable to the paper's "46 spare operations" budget.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {"alu": 0, "shuffle": 0, "clz": 0, "convert": 0}

    # -- accounting --------------------------------------------------------

    def _tick(self, category: str, n: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + n

    @property
    def total_instructions(self) -> int:
        """Instructions per lane (== per value for one-value-per-lane)."""
        return sum(self.counts.values())

    def reset(self) -> None:
        for k in self.counts:
            self.counts[k] = 0

    # -- data movement / conversion ----------------------------------------

    def double_as_uint64(self, x: np.ndarray) -> np.ndarray:
        """``__double_as_longlong`` — free reinterpret, 0 instructions."""
        return ieee754.to_bits(np.ascontiguousarray(x, dtype=np.float64))

    def uint64_as_double(self, bits: np.ndarray) -> np.ndarray:
        """``__longlong_as_double`` — free reinterpret."""
        return ieee754.from_bits(np.ascontiguousarray(bits, dtype=np.uint64))

    # -- ALU ------------------------------------------------------------

    def alu(self, result: np.ndarray, ops: int = 1) -> np.ndarray:
        """Count ``ops`` ALU instructions producing ``result``."""
        self._tick("alu", ops)
        return result

    def shift_right(self, v: np.ndarray, s: np.ndarray) -> np.ndarray:
        self._tick("alu")
        return v >> s.astype(np.uint64)

    def shift_left(self, v: np.ndarray, s: np.ndarray) -> np.ndarray:
        self._tick("alu")
        return v << s.astype(np.uint64)

    def band(self, a: np.ndarray, b) -> np.ndarray:
        self._tick("alu")
        return a & b

    def bor(self, a: np.ndarray, b) -> np.ndarray:
        self._tick("alu")
        return a | b

    def add(self, a, b) -> np.ndarray:
        self._tick("alu")
        return a + b

    def sub(self, a, b) -> np.ndarray:
        self._tick("alu")
        return a - b

    def maximum(self, a, b) -> np.ndarray:
        self._tick("alu")
        return np.maximum(a, b)

    def select(self, cond: np.ndarray, a, b) -> np.ndarray:
        """Predicated select (SEL) — one instruction, no divergence."""
        self._tick("alu")
        return np.where(cond, a, b)

    def compare(self, result: np.ndarray) -> np.ndarray:
        self._tick("alu")
        return result

    # -- special units -------------------------------------------------

    def clz(self, v: np.ndarray, width: int = 64) -> np.ndarray:
        """``__clz``/``__clzll`` — the intrinsic the paper calls
        "mandatory for good performance" (Section IV-C)."""
        self._tick("clz")
        return ieee754.count_leading_zeros(v, width)

    def shfl_xor(self, v: np.ndarray, lane_mask: int) -> np.ndarray:
        """``__shfl_xor_sync``: lane i receives the value of lane
        ``i ^ lane_mask`` — the butterfly step of the e_max reduction."""
        self._tick("shuffle")
        idx = np.arange(WARP_SIZE) ^ lane_mask
        return v[idx]

    def shfl(self, v: np.ndarray, src_lane: int) -> np.ndarray:
        """``__shfl_sync``: broadcast one lane's value to all lanes."""
        self._tick("shuffle")
        return np.full(WARP_SIZE, v[src_lane], dtype=v.dtype)

    def ballot(self, pred: np.ndarray) -> int:
        """``__ballot_sync``: 32-bit mask of lanes with a true predicate."""
        self._tick("shuffle")
        return int(np.packbits(pred.astype(np.uint8)[::-1]).view(">u4")[0])


@dataclass
class WarpKernelReport:
    """Result + instruction counts of one warp-kernel execution."""

    output: np.ndarray
    e_max: int
    instructions_per_value: int
    counts: Dict[str, int] = field(default_factory=dict)


def warp_compress_block(values: np.ndarray, bit_length: int, warp: "Warp | None" = None) -> WarpKernelReport:
    """FRSZ2 compression of one BS=32 block, one value per lane.

    Implements compression steps 1-6 of Section IV-A with the warp-level
    ``e_max`` butterfly reduction of Section IV-C.
    """
    if values.shape != (WARP_SIZE,):
        raise ValueError(f"warp kernel needs exactly {WARP_SIZE} values")
    l = bit_length
    w = warp or Warp()
    bits = w.double_as_uint64(values)
    if np.any(ieee754.biased_exponent(bits) == ieee754.EXPONENT_MASK):
        raise ValueError("FRSZ2 does not support NaN or Inf inputs")

    # step 2: split fields (shift/mask ALU ops)
    sign = w.shift_right(bits, np.full(WARP_SIZE, 63))
    e_raw = w.band(w.shift_right(bits, np.full(WARP_SIZE, 52)), _U64(0x7FF))
    mant = w.band(bits, ieee754.MANTISSA_MASK)
    is_normal = w.compare(e_raw != 0)
    e_eff = w.select(is_normal, e_raw, _U64(1))
    sig53 = w.select(is_normal, w.bor(mant, ieee754.IMPLICIT_BIT), mant)
    # zeros must not dominate the block exponent
    e_for_max = w.select(w.compare(sig53 == 0), _U64(1), e_eff)

    # step 1: warp butterfly max-reduction (5 shuffle+max rounds)
    e_max = e_for_max
    for mask in (16, 8, 4, 2, 1):
        other = w.shfl_xor(e_max, mask)
        e_max = w.maximum(e_max, other)

    # step 3-5: normalize and cut to l bits
    k = w.sub(e_max.astype(np.int64), e_eff.astype(np.int64))
    shift = w.add(k, np.int64(54 - l))
    pos = np.minimum(np.maximum(shift, 0), 63)
    neg = np.minimum(np.maximum(-shift, 0), 63)
    c_sig = w.shift_left(w.shift_right(sig53, pos), neg)
    c = w.bor(w.shift_left(sign, np.full(WARP_SIZE, l - 1)), c_sig)

    report = WarpKernelReport(
        output=c,
        e_max=int(e_max[0]),
        instructions_per_value=w.total_instructions,
        counts=dict(w.counts),
    )
    return report


def warp_decompress_block(
    e_max: int, fields: np.ndarray, bit_length: int, warp: "Warp | None" = None
) -> WarpKernelReport:
    """FRSZ2 decompression of one block (Section IV-B steps 1-4).

    ``e_max`` is broadcast once per block (the cached read the paper's
    BS=32 choice guarantees); each lane then decodes independently —
    no inter-lane communication, which is why decompression fits the
    random-access Accessor interface.
    """
    if fields.shape != (WARP_SIZE,):
        raise ValueError(f"warp kernel needs exactly {WARP_SIZE} fields")
    l = bit_length
    w = warp or Warp()
    c = np.ascontiguousarray(fields, dtype=np.uint64)

    sign = w.shift_right(c, np.full(WARP_SIZE, l - 1))
    sig_mask = (_U64(1) << np.uint64(l - 1)) - _U64(1)
    c_sig = w.band(c, sig_mask)
    # step 2: count inserted zeros via clz on the (l-1)-bit field
    k = w.clz(c_sig, width=l - 1)
    nonzero = w.compare(c_sig != 0)
    e = w.sub(np.int64(e_max), k)
    normal = w.compare(nonzero & (e >= 1))
    # step 3: drop the zeros and the explicit 1, realign to 52 bits
    hsb = (l - 2) - k
    up = np.clip(52 - hsb, 0, 63)
    down = np.clip(hsb - 52, 0, 63)
    sig53 = w.shift_left(w.shift_right(c_sig, down), up)
    mant = w.band(sig53, ieee754.MANTISSA_MASK)
    # step 4: merge s, e and the mantissa
    e_field = w.select(normal, e, 0).astype(np.uint64)
    bits = w.bor(
        w.bor(
            w.shift_left(sign, np.full(WARP_SIZE, 63)),
            w.shift_left(w.band(e_field, _U64(0x7FF)), np.full(WARP_SIZE, 52)),
        ),
        w.select(normal, mant, _U64(0)),
    )
    out = w.uint64_as_double(bits)

    return WarpKernelReport(
        output=out,
        e_max=int(e_max),
        instructions_per_value=w.total_instructions,
        counts=dict(w.counts),
    )


@lru_cache(maxsize=None)
def measured_instruction_counts(bit_length: int = 32) -> "tuple[int, int]":
    """(compress, decompress) instructions per value from the executor.

    Memoized on ``bit_length``: the counts are a pure function of it
    (fixed seed, fixed warp width), and the timing model asks for the
    same handful of lengths once per solve it prices.
    """
    rng = np.random.default_rng(0)
    x = rng.standard_normal(WARP_SIZE)
    comp = warp_compress_block(x, bit_length)
    dec = warp_decompress_block(comp.e_max, comp.output, bit_length)
    return comp.instructions_per_value, dec.instructions_per_value
