"""H100 performance-model substrate.

Replaces the hardware the paper measures on (repro substitution, see
DESIGN.md): a device catalog with published H100/A100 envelopes, a
warp-level SIMT executor that runs the FRSZ2 kernels with instruction
accounting, roofline kernel models (Fig. 4) and the end-to-end CB-GMRES
timing model (Fig. 11).
"""

from .device import A100_SXM, DEVICES, H100_PCIE, DeviceSpec
from .kernels import (
    FORMATS,
    FormatCost,
    KernelCost,
    format_cost,
    fused_axpy_cost,
    fused_dot_cost,
    read_kernel_cost,
    spmv_kernel_cost,
)
from .roofline import (
    DEFAULT_FORMATS,
    DEFAULT_INTENSITIES,
    RooflinePoint,
    SpmvRooflinePoint,
    achieved_bandwidth,
    bandwidth_efficiency,
    cuszp2_bandwidth_range,
    frsz2_vs_cuszp2_speedup,
    roofline_series,
    spmv_roofline,
)
from .timing import GmresTimingModel, SolveTiming, speedup_table
from .warp import Warp, WarpKernelReport, warp_compress_block, warp_decompress_block

__all__ = [
    "DeviceSpec",
    "H100_PCIE",
    "A100_SXM",
    "DEVICES",
    "FormatCost",
    "KernelCost",
    "FORMATS",
    "format_cost",
    "read_kernel_cost",
    "spmv_kernel_cost",
    "fused_dot_cost",
    "fused_axpy_cost",
    "RooflinePoint",
    "SpmvRooflinePoint",
    "DEFAULT_FORMATS",
    "DEFAULT_INTENSITIES",
    "roofline_series",
    "spmv_roofline",
    "achieved_bandwidth",
    "bandwidth_efficiency",
    "cuszp2_bandwidth_range",
    "frsz2_vs_cuszp2_speedup",
    "GmresTimingModel",
    "SolveTiming",
    "speedup_table",
    "Warp",
    "WarpKernelReport",
    "warp_compress_block",
    "warp_decompress_block",
]
