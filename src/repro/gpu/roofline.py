"""Roofline study of the storage formats (paper Fig. 4).

Reproduces the synthetic benchmark of Section IV-C: a kernel reads 2^28
consecutive stored values and executes a configurable number of
double-precision operations per value; 27 arithmetic-intensity settings
sweep the kernel from bandwidth-bound to compute-bound.  The paper's
observations this model reproduces:

* the Accessor is a zero-cost abstraction (``Acc<float64>`` == native
  ``float64`` while memory-bound);
* ``frsz2_16`` is fastest per value but not 2x float32 and loses its
  edge as intensity grows;
* ``frsz2_32`` sits just below ``Acc<float32>`` (33 vs 32 stored
  bits/value) and reaches ~99.6% of achievable bandwidth;
* ``frsz2_21`` matches ``frsz2_32`` despite 33% less data — the
  straddling-access and index-computation overhead eats the savings.

A cuSZp2 model entry carries the paper's published throughputs (Section
III-B: 1241 GB/s best case, ~500 GB/s typical on an A100) scaled to the
target device, supporting the paper's claim 4 (1.2-3.1x slower than
FRSZ2 at the roofline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .device import A100_SXM, DeviceSpec, H100_PCIE
from .kernels import FormatCost, format_cost, read_kernel_cost, spmv_kernel_cost

__all__ = [
    "DEFAULT_FORMATS",
    "DEFAULT_INTENSITIES",
    "RooflinePoint",
    "SpmvRooflinePoint",
    "roofline_series",
    "spmv_roofline",
    "achieved_bandwidth",
    "bandwidth_efficiency",
    "cuszp2_bandwidth_range",
    "frsz2_vs_cuszp2_speedup",
]

#: the formats Fig. 4 plots
DEFAULT_FORMATS = (
    "float64",
    "float32",
    "Acc<float64>",
    "Acc<float32>",
    "Acc<frsz2_16>",
    "Acc<frsz2_21>",
    "Acc<frsz2_32>",
)

#: 27 arithmetic-intensity settings (paper Section IV-C)
DEFAULT_INTENSITIES = tuple(float(v) for v in np.unique(np.round(np.logspace(0, 3, 27))))

#: paper Section IV-C array size: 2^28 elements
DEFAULT_N = 2**28


@dataclass(frozen=True)
class RooflinePoint:
    """One (format, intensity) sample of the Fig. 4 study."""

    storage: str
    arithmetic_intensity: float
    gflops: float
    values_per_second: float
    seconds: float


def roofline_series(
    device: DeviceSpec = H100_PCIE,
    formats: Sequence[str] = DEFAULT_FORMATS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    n: int = DEFAULT_N,
) -> Dict[str, List[RooflinePoint]]:
    """Predicted Fig. 4 performance curves."""
    out: Dict[str, List[RooflinePoint]] = {}
    for name in formats:
        fmt = format_cost(name)
        series = []
        for k in intensities:
            t = read_kernel_cost(fmt, n, k).time_on(device)
            series.append(
                RooflinePoint(
                    storage=name,
                    arithmetic_intensity=k,
                    gflops=n * k / t / 1e9,
                    values_per_second=n / t,
                    seconds=t,
                )
            )
        out[name] = series
    return out


@dataclass(frozen=True)
class SpmvRooflinePoint:
    """Modeled per-matvec cost of one SpMV storage format on a matrix."""

    format: str
    bytes_moved: float
    flops: float
    padded_entries: int
    padding_ratio: float
    seconds: float
    effective_gbps: float


def spmv_roofline(a, device: DeviceSpec = H100_PCIE) -> Dict[str, SpmvRooflinePoint]:
    """Per-format SpMV roofline for a concrete matrix.

    Models one matvec of ``a`` (a :class:`~repro.sparse.csr.CSRMatrix`)
    in each of the engine's storage formats, charging padded layouts
    their padding traffic — the quantity the autotuner's rule table
    trades against the padded kernels' regular access pattern.  The
    ``auto`` entry duplicates whichever format
    :func:`~repro.sparse.engine.choose_format` selects.
    """
    from ..sparse.engine import choose_format, row_stats
    from ..sparse.sell import DEFAULT_SLICE_SIZE

    s = row_stats(a)
    n, nnz = a.shape[0], a.nnz
    padded = {
        "csr": nnz,
        "ell": int(round(s.ell_padding * nnz)),
        "sell": int(round(s.sell_padding * nnz)),
    }
    out: Dict[str, SpmvRooflinePoint] = {}
    for fmt, p in padded.items():
        cost = spmv_kernel_cost(n, nnz, fmt, p, DEFAULT_SLICE_SIZE)
        t = cost.time_on(device)
        out[fmt] = SpmvRooflinePoint(
            format=fmt,
            bytes_moved=cost.bytes_moved,
            flops=cost.fp64_flops,
            padded_entries=p,
            padding_ratio=p / nnz if nnz else 1.0,
            seconds=t,
            effective_gbps=cost.bytes_moved / t / 1e9 if t else 0.0,
        )
    out["auto"] = out[choose_format(a)]
    return out


def achieved_bandwidth(storage: str, device: DeviceSpec = H100_PCIE, n: int = DEFAULT_N) -> float:
    """Stored-payload bandwidth (bytes/s) at minimal arithmetic intensity."""
    fmt = format_cost(storage)
    t = read_kernel_cost(fmt, n, 1.0).time_on(device)
    return n * fmt.stored_bits / 8.0 / t


def bandwidth_efficiency(storage: str, device: DeviceSpec = H100_PCIE) -> float:
    """Fraction of the *reachable* streaming bandwidth the format attains.

    The paper reports 99.6% for frsz2_32 (1991 of ~2000 GB/s reachable).
    """
    reachable = device.mem_bandwidth * device.streaming_efficiency
    return achieved_bandwidth(storage, device) / reachable


def cuszp2_bandwidth_range(device: DeviceSpec = H100_PCIE) -> "tuple[float, float]":
    """cuSZp2 decompression bandwidth (typical, best) scaled to ``device``.

    The paper quotes 1241 GB/s best-case and ~500 GB/s typical on an
    A100 (Section III-B); we scale by peak-bandwidth ratio.
    """
    scale = device.mem_bandwidth / A100_SXM.mem_bandwidth
    return 500e9 * scale, 1241e9 * scale


def frsz2_vs_cuszp2_speedup(device: DeviceSpec = H100_PCIE) -> "tuple[float, float]":
    """(best-case, worst-case for cuSZp2) FRSZ2 throughput advantage.

    Supports the paper's claim of being 1.2~3.1x faster than the next
    fastest compressor at the roofline.
    """
    frsz2 = achieved_bandwidth("Acc<frsz2_32>", device)
    typical, best = cuszp2_bandwidth_range(device)
    return frsz2 / best, frsz2 / typical
