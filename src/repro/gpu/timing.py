"""End-to-end CB-GMRES timing model (paper Fig. 11).

Combines the *measured* iteration structure of a solve (the
:class:`~repro.solvers.gmres.SolveStats` work log: how many SpMVs,
basis-vector reads/writes and dense vector operations actually happened)
with the *modeled* per-kernel costs on a GPU (:mod:`repro.gpu.kernels`)
to predict the wall-clock a CUDA implementation would take — the
quantity Fig. 11 reports as speedup over float64 storage.

This split mirrors the paper's own reasoning: convergence (iterations)
comes from the numerics, runtime per iteration comes from bytes moved,
and the Krylov-basis traffic is the only term the storage format
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from .device import DeviceSpec, H100_PCIE
from .kernels import (
    KernelCost,
    format_cost,
    fused_axpy_cost,
    fused_dot_cost,
    spmv_kernel_cost,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (solvers uses gpu)
    from ..solvers.gmres import GmresResult, SolveStats

__all__ = ["GmresTimingModel", "SolveTiming", "speedup_table"]


@dataclass(frozen=True)
class SolveTiming:
    """Predicted device runtime of one solve, broken down by kernel."""

    storage: str
    spmv_seconds: float
    basis_read_seconds: float
    basis_write_seconds: float
    vector_ops_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.spmv_seconds
            + self.basis_read_seconds
            + self.basis_write_seconds
            + self.vector_ops_seconds
        )


class GmresTimingModel:
    """Predict CB-GMRES runtime from a solve's work log."""

    def __init__(self, device: DeviceSpec = H100_PCIE) -> None:
        self.device = device

    # -- kernel building blocks ---------------------------------------

    def spmv_cost(
        self,
        n: int,
        nnz: int,
        fmt: str = "csr",
        padded_entries: "int | None" = None,
    ) -> KernelCost:
        """SpMV in the given storage format (padded layouts charge
        their padding as traffic; see
        :func:`repro.gpu.kernels.spmv_kernel_cost`)."""
        return spmv_kernel_cost(n, nnz, fmt, padded_entries)

    def basis_read_cost(self, n: int, storage: str) -> KernelCost:
        """Read one stored basis vector (dot-product side: 2 flops/value)."""
        fmt = format_cost(storage)
        return KernelCost(
            bytes_moved=n * fmt.stored_bits / 8.0,
            fp64_flops=2 * n,
            int_ops=n * fmt.decompress_ops,
            aligned=fmt.aligned,
            bw_derate=fmt.bandwidth_derate,
        )

    def basis_write_cost(self, n: int, storage: str) -> KernelCost:
        """Compress + store one basis vector (reads it in double first)."""
        fmt = format_cost(storage)
        return KernelCost(
            bytes_moved=n * 8 + n * fmt.stored_bits / 8.0,
            fp64_flops=n,
            int_ops=n * fmt.compress_ops,
            aligned=fmt.aligned,
            bw_derate=fmt.bandwidth_derate,
        )

    def dense_vector_cost(self, n: int) -> KernelCost:
        """One float64 streaming vector op (axpy/norm/copy)."""
        return KernelCost(bytes_moved=3 * n * 8, fp64_flops=2 * n, int_ops=0)

    def prec_apply_cost(self, n: int, info: Dict) -> KernelCost:
        """One ``M^-1 v`` apply from a preconditioner's ``cost_info()``.

        Streams the stored factor/block values at their *stored* width
        (``stored_bytes`` — the term the compression ladder shrinks),
        plus the float64 read of ``v`` and write of the result; each
        stored entry costs a multiply-add and, for compressed storages,
        its decode integer ops.  Triangular solves are sequential along
        rows on a GPU, but level-scheduled implementations stay
        memory-bound, so the roofline over these terms is the right
        first-order price.
        """
        fmt = format_cost(info.get("storage", "float64"))
        entries = int(info.get("entries", 0))
        return KernelCost(
            bytes_moved=float(info.get("stored_bytes", 8 * entries)) + 16.0 * n,
            fp64_flops=2 * entries,
            int_ops=entries * fmt.decompress_ops + entries,
            aligned=fmt.aligned,
            bw_derate=fmt.bandwidth_derate,
        )

    # -- end-to-end -----------------------------------------------------

    def time_stats(self, stats: "SolveStats", storage: str) -> SolveTiming:
        """Predicted runtime for a recorded work log.

        Adaptive-precision solves populate
        ``SolveStats.reads_by_storage`` / ``writes_by_storage``; when
        present, each bucket is priced at its own format's width and the
        scalar ``storage`` label (``"adaptive"``) is only cosmetic —
        this is how the bytes-moved savings of mixed-storage bases reach
        the model instead of being flattened to one width.
        """
        n = stats.n
        d = self.device
        reads_by = getattr(stats, "reads_by_storage", None) or {}
        writes_by = getattr(stats, "writes_by_storage", None) or {}
        if reads_by:
            basis_read_s = sum(
                count * self.basis_read_cost(n, self._model_storage_name(f)).time_on(d)
                for f, count in reads_by.items()
            )
        else:
            basis_read_s = stats.basis_reads * self.basis_read_cost(
                n, self._model_storage_name(storage)
            ).time_on(d)
        if writes_by:
            basis_write_s = sum(
                count * self.basis_write_cost(n, self._model_storage_name(f)).time_on(d)
                for f, count in writes_by.items()
            )
        else:
            basis_write_s = stats.basis_writes * self.basis_write_cost(
                n, self._model_storage_name(storage)
            ).time_on(d)
        # FGMRES-style solvers stream an uncompressed V basis as well
        uncompressed = getattr(stats, "uncompressed_basis_reads", 0)
        if uncompressed:
            basis_read_s += uncompressed * self.basis_read_cost(n, "float64").time_on(d)
        spmv_fmt = getattr(stats, "spmv_format", "csr")
        spmv_padded = getattr(stats, "spmv_padded_entries", 0) or stats.nnz
        return SolveTiming(
            storage=storage,
            spmv_seconds=stats.spmv_calls
            * self.spmv_cost(n, stats.nnz, spmv_fmt, spmv_padded).time_on(d),
            basis_read_seconds=basis_read_s,
            basis_write_seconds=basis_write_s,
            vector_ops_seconds=stats.dense_vector_ops * self.dense_vector_cost(n).time_on(d),
        )

    def basis_bytes_moved(self, stats: "SolveStats", storage: str) -> float:
        """Modeled stored-basis bytes a GPU would move for this work log.

        Sums ``reads + writes`` at each format's stored width (write
        traffic includes the float64 source read, matching
        :meth:`basis_write_cost`).  Adaptive solves price each
        per-storage bucket at its own width — the quantity the bench
        ``precision`` block reports savings on.
        """
        n = stats.n
        reads_by = getattr(stats, "reads_by_storage", None) or {}
        writes_by = getattr(stats, "writes_by_storage", None) or {}
        if not reads_by:
            reads_by = {storage: stats.basis_reads}
        if not writes_by:
            writes_by = {storage: stats.basis_writes}
        total = 0.0
        for f, count in reads_by.items():
            total += count * self.basis_read_cost(
                n, self._model_storage_name(f)
            ).bytes_moved
        for f, count in writes_by.items():
            total += count * self.basis_write_cost(
                n, self._model_storage_name(f)
            ).bytes_moved
        return total

    def phase_times(
        self,
        stats: "SolveStats",
        storage: str,
        prec_info: "Dict | None" = None,
    ) -> Dict[str, float]:
        """Predicted seconds per solver phase, keyed by the observe-layer
        span names (``spmv`` / ``orthogonalize`` / ``basis_read`` /
        ``basis_write`` / ``update`` / ``preconditioner`` / ``other``).

        The dense-vector-op budget of :meth:`time_stats` is apportioned
        by where the work log accrued it: 4 ops per Arnoldi step belong
        to the orthogonalization, 1 per restart to the solution update,
        and the remainder (the explicit-residual recomputations) to
        ``other``.  ``prec_info`` (a preconditioner's ``cost_info()``)
        prices the logged ``preconditioner_applies``; without it the
        ``preconditioner`` phase is 0, keeping the key set uniform.
        """
        t = self.time_stats(stats, self._model_storage_name(storage))
        vec = self.dense_vector_cost(stats.n).time_on(self.device)
        ortho_vec = 4 * stats.iterations * vec
        update_vec = stats.restarts * vec
        residual_vec = max(
            t.vector_ops_seconds - ortho_vec - update_vec, 0.0
        )
        prec_s = 0.0
        applies = getattr(stats, "preconditioner_applies", 0)
        if prec_info and applies:
            prec_s = applies * self.prec_apply_cost(
                stats.n, prec_info
            ).time_on(self.device)
        return {
            "spmv": t.spmv_seconds,
            "orthogonalize": ortho_vec,
            "basis_read": t.basis_read_seconds,
            "basis_write": t.basis_write_seconds,
            "update": update_vec,
            "preconditioner": prec_s,
            "other": residual_vec,
        }

    def fused_kernel_seconds(self, stats: "SolveStats", storage: str) -> float:
        """Predicted seconds of the *fused* basis kernels of a solve.

        Prices the logged fused-kernel work (``SolveStats.fused_*``)
        with :func:`~repro.gpu.kernels.fused_dot_cost` /
        :func:`~repro.gpu.kernels.fused_axpy_cost`, i.e. reading the
        basis at its compressed width instead of the float64 width the
        materialized structure streams.  Each kind is modeled as
        ``calls`` launches of an average-width (``vectors / calls``)
        kernel — the roofline is near-linear in the vector count, so the
        average-width launch is an accurate stand-in for the exact
        per-``j`` sequence.

        Adaptive solves carry per-format read buckets
        (``SolveStats.reads_by_storage``): the fused time is then the
        read-share-weighted mix of the per-format predictions, since
        every fused kernel's traffic is dominated by the stored-basis
        reads the buckets count.
        """
        reads_by = getattr(stats, "reads_by_storage", None) or {}
        if reads_by:
            total_reads = sum(reads_by.values())
            if not total_reads:
                return 0.0
            return sum(
                count / total_reads * self._fused_seconds_at(stats, f)
                for f, count in reads_by.items()
            )
        return self._fused_seconds_at(stats, storage)

    def _fused_seconds_at(self, stats: "SolveStats", storage: str) -> float:
        """Fused-kernel prediction with the whole log priced at one format."""
        fmt = format_cost(self._model_storage_name(storage))
        n = stats.n
        d = self.device
        total = 0.0
        dot_calls = getattr(stats, "fused_dot_calls", 0)
        if dot_calls:
            avg_j = getattr(stats, "fused_dot_vectors", 0) / dot_calls
            total += dot_calls * fused_dot_cost(fmt, n, avg_j).time_on(d)
        axpy_calls = getattr(stats, "fused_axpy_calls", 0) + getattr(
            stats, "fused_combine_calls", 0
        )
        if axpy_calls:
            axpy_vectors = getattr(stats, "fused_axpy_vectors", 0) + getattr(
                stats, "fused_combine_vectors", 0
            )
            total += axpy_calls * fused_axpy_cost(
                fmt, n, axpy_vectors / axpy_calls
            ).time_on(d)
        return total

    def time_result(self, result: "GmresResult") -> SolveTiming:
        """Predicted runtime for a finished :class:`GmresResult`."""
        storage = self._model_storage_name(result.storage)
        return self.time_stats(result.stats, storage)

    @staticmethod
    def _model_storage_name(storage: str) -> str:
        """Map solver storage names onto modeled format profiles.

        Round-trip comparator formats (sz3_08, zfp_fr_32, ...) have no
        GPU implementation — the paper injects their error through
        LibPressio precisely to avoid one — so their *hypothetical*
        timing uses the stored-size-equivalent dense profile (float32
        bits as a stand-in is wrong; we charge full float64 traffic,
        matching the paper's practice of not reporting their runtime).
        """
        try:
            format_cost(storage)
            return storage
        except KeyError:
            return "float64"


def speedup_table(
    results: "Sequence[GmresResult]", device: DeviceSpec = H100_PCIE
) -> Dict[str, float]:
    """Fig. 11: speedup of each storage format over float64.

    ``results`` must contain a float64 run (the baseline); formats that
    did not converge are omitted, matching the removed bars of Fig. 11.
    """
    model = GmresTimingModel(device)
    baseline = next((r for r in results if r.storage == "float64"), None)
    if baseline is None:
        raise ValueError("speedup_table needs a float64 baseline result")
    if not baseline.converged:
        raise ValueError("the float64 baseline did not converge")
    base_t = model.time_result(baseline).total_seconds
    out: Dict[str, float] = {}
    for r in results:
        if not r.converged:
            continue
        out[r.storage] = base_t / model.time_result(r).total_seconds
    return out
