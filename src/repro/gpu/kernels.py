"""Kernel cost models: bytes, flops and instructions per GPU kernel.

Each storage format is summarized by what its load/store path costs
(paper Section IV-C): stored bits per value, decompression instructions
per value (measured on the SIMT warp executor, plus a surcharge for the
straddling-layout bit gymnastics of non-power-of-two ``l``), and the
alignment class that determines achievable bandwidth.

The GMRES kernels (SpMV, orthogonalization reads/writes, vector updates)
are composed from the same primitives by :mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from .device import DeviceSpec

__all__ = [
    "FormatCost",
    "format_cost",
    "KernelCost",
    "read_kernel_cost",
    "spmv_kernel_cost",
    "fused_dot_cost",
    "fused_axpy_cost",
    "FORMATS",
]

#: extra per-value instructions for fields straddling 32-bit words
#: (two-word read, double shift, merge — Section IV-C optimization 3)
_UNALIGNED_SURCHARGE = 18
#: instructions per value for precision converts (cvt.f64.f32 etc.)
_CONVERT_OPS = 1


@lru_cache(maxsize=None)
def _warp_counts(bit_length: int) -> "tuple[int, int]":
    from .warp import measured_instruction_counts

    return measured_instruction_counts(bit_length)


@dataclass(frozen=True)
class FormatCost:
    """Per-value cost profile of a storage format's load/store path."""

    name: str
    stored_bits: float
    decompress_ops: float
    compress_ops: float
    aligned: bool
    #: True when reads/writes bypass the Accessor (plain float64)
    native: bool = False
    #: residual bandwidth derate: FRSZ2 streams values and block
    #: exponents from two locations (Section IV-C optimization 5), which
    #: costs a sliver of streaming efficiency — the paper measures
    #: 1991/2000 GB/s = 99.6% for frsz2_32
    bandwidth_derate: float = 1.0


def _frsz2_cost(bit_length: int, block_size: int = 32) -> FormatCost:
    comp_ops, dec_ops = _warp_counts(bit_length)
    aligned = bit_length in (8, 16, 32, 64)
    if not aligned:
        comp_ops += _UNALIGNED_SURCHARGE
        dec_ops += _UNALIGNED_SURCHARGE
    stored = (block_size * bit_length + 32) / block_size  # Eq. 3, incl. exponent
    return FormatCost(
        name=f"frsz2_{bit_length}",
        stored_bits=stored,
        decompress_ops=dec_ops,
        compress_ops=comp_ops,
        aligned=aligned,
        bandwidth_derate=0.996,
    )


def _precision_cost(name: str, bits: int, native: bool = False) -> FormatCost:
    ops = 0 if bits == 64 else _CONVERT_OPS
    return FormatCost(
        name=name,
        stored_bits=bits,
        decompress_ops=ops,
        compress_ops=ops,
        aligned=True,
        native=native,
    )


FORMATS: Dict[str, FormatCost] = {
    "float64": _precision_cost("float64", 64, native=True),
    "float32": _precision_cost("float32", 32, native=True),
    "float16": _precision_cost("float16", 16),
    "Acc<float64>": _precision_cost("Acc<float64>", 64),
    "Acc<float32>": _precision_cost("Acc<float32>", 32),
    "Acc<float16>": _precision_cost("Acc<float16>", 16),
}


def format_cost(name: str) -> FormatCost:
    """Cost profile for a storage-format name (frsz2_* computed lazily)."""
    if name in FORMATS:
        return FORMATS[name]
    if name.startswith("Acc<frsz2_") and name.endswith(">"):
        return _frsz2_cost(int(name[len("Acc<frsz2_") : -1]))
    if name.startswith("frsz2_"):
        return _frsz2_cost(int(name.split("_")[1]))
    raise KeyError(f"unknown storage format {name!r}")


@dataclass(frozen=True)
class KernelCost:
    """Resource demand of one kernel launch."""

    bytes_moved: float
    fp64_flops: float
    int_ops: float
    aligned: bool = True
    bw_derate: float = 1.0

    def time_on(self, device: DeviceSpec) -> float:
        """Predicted runtime: the roofline maximum over the three pipes.

        Memory, FP64 and INT32 pipes overlap on modern GPUs, so the
        kernel finishes when the busiest pipe drains.
        """
        eff = (
            device.streaming_efficiency
            if self.aligned
            else device.unaligned_efficiency
        ) * self.bw_derate
        mem_t = self.bytes_moved / (device.mem_bandwidth * eff)
        flop_t = self.fp64_flops / device.fp64_flops
        int_t = self.int_ops / device.int_ops
        return max(mem_t, flop_t, int_t)


def read_kernel_cost(fmt: FormatCost, n: int, arithmetic_intensity: float) -> KernelCost:
    """The Fig. 4 synthetic benchmark: stream ``n`` stored values and run
    ``arithmetic_intensity`` double-precision operations on each."""
    return KernelCost(
        bytes_moved=n * fmt.stored_bits / 8.0,
        fp64_flops=n * arithmetic_intensity,
        int_ops=n * fmt.decompress_ops,
        aligned=fmt.aligned,
        bw_derate=fmt.bandwidth_derate,
    )


def fused_dot_cost(fmt: FormatCost, n: int, j: float) -> KernelCost:
    """Fused ``V_j^T w`` kernel: decompress-in-register dot products.

    The paper's Fig. 4 argument made concrete: the kernel streams the
    ``j`` stored basis vectors at their *compressed* width (plus ``w``
    once in float64 and the ``j`` partial results), runs 2 flops per
    decoded value, and pays the format's decode instructions in the INT
    pipe — where they hide under the memory latency ("46 spare
    instructions").  The kernel is bandwidth-bound on compressed
    traffic, so frsz2_32 moves half the bytes the float64 basis would.
    """
    return KernelCost(
        bytes_moved=j * n * fmt.stored_bits / 8.0 + n * 8 + j * 8,
        fp64_flops=2 * j * n,
        int_ops=j * n * fmt.decompress_ops,
        aligned=fmt.aligned,
        bw_derate=fmt.bandwidth_derate,
    )


def fused_axpy_cost(fmt: FormatCost, n: int, j: float) -> KernelCost:
    """Fused ``w -= V_j y`` (or ``V_j y``) kernel.

    Streams the ``j`` stored vectors compressed and ``w`` twice
    (read-modify-write), with the ``y`` coefficients register-resident;
    2 flops per decoded value and the decode instructions on the INT
    pipe, exactly like :func:`fused_dot_cost`.
    """
    return KernelCost(
        bytes_moved=j * n * fmt.stored_bits / 8.0 + 2 * n * 8 + j * 8,
        fp64_flops=2 * j * n,
        int_ops=j * n * fmt.decompress_ops,
        aligned=fmt.aligned,
        bw_derate=fmt.bandwidth_derate,
    )


def spmv_kernel_cost(
    n: int,
    nnz: int,
    fmt: str = "csr",
    padded_entries: "int | None" = None,
    slice_size: int = 32,
) -> KernelCost:
    """SpMV launch cost per storage format (mirrors the SpmvCounter
    byte/flop models of :mod:`repro.sparse`).

    * ``csr`` streams values + column indices + row pointers and gathers
      ``x`` once per nonzero;
    * ``ell`` executes the full padded rectangle (``padded_entries``
      slots): values + indices + gather per slot, no row pointers;
    * ``sell`` adds the slice-pointer array and the σ row permutation to
      the padded-rectangle traffic.

    Padding shows up as real traffic and real flops — the reason the
    autotuner's rule table bounds the padding ratio before switching a
    matrix off CSR.
    """
    if fmt == "csr":
        return KernelCost(
            bytes_moved=nnz * (8 + 4) + (n + 1) * 4 + nnz * 8 + n * 8,
            fp64_flops=2 * nnz,
            int_ops=nnz,  # index arithmetic
        )
    p = int(padded_entries) if padded_entries is not None else nnz
    if fmt == "ell":
        return KernelCost(
            bytes_moved=p * (8 + 4) + p * 8 + n * 8,
            fp64_flops=2 * p,
            int_ops=p,
        )
    if fmt == "sell":
        n_slices = (n + slice_size - 1) // slice_size
        return KernelCost(
            bytes_moved=p * (8 + 4) + p * 8 + (n_slices + 1) * 4 + n * 4 + n * 8,
            fp64_flops=2 * p,
            int_ops=p,
        )
    raise KeyError(f"unknown SpMV format {fmt!r}")
