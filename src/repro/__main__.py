"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show the matrix suite, storage formats and compressor registry.
solve MATRIX
    Run CB-GMRES on a Table I analog with chosen basis storage.
compress
    Compress a ``.npy`` float64 array (or random data) with any
    registered compressor and report quality/size.
experiment ID
    Regenerate a paper table/figure (table1, table2, fig2, fig4, fig7,
    fig8, fig10, fig11) on the terminal.
calibrate
    Run the Section V-C target-accuracy calibration over the suite.
predict MATRIX
    Recommend a basis storage format (the §VIII future-work predictor).
faults
    Run the seeded fault-injection campaign (fault kind × storage
    format × rate) and print the survival-rate table.  ``--jobs N``
    fans the grid over worker processes with identical results.
bench
    Run the traced matrix × storage performance grid and emit a
    schema-versioned ``BENCH_gmres.json`` (``--compare OLD NEW`` diffs
    two bench files and exits nonzero on regressions; ``--check FILE``
    validates a file against the schema).  ``--jobs N`` fans the grid
    over worker processes; deterministic metrics are identical for any
    job count.
throughput
    Time the batched multi-RHS solve path against a loop of independent
    solves over a matrix × storage grid and emit a schema-versioned
    ``BENCH_throughput.json`` with per-entry and aggregate
    solves-per-second (``--check FILE`` validates a file and
    ``--min-speedup X`` gates on its aggregate speedup).
serve
    Submit solve jobs to the hardened job engine (supervised workers,
    deadlines, retries, backpressure) and stream per-restart progress
    events while they run; drains and prints the health block.
soak
    Run the serve soak: hundreds of mixed jobs + seeded chaos
    (crashes, hangs, solve errors, bit flips), invariants asserted,
    serve health written to ``BENCH_serve.json``.  ``--check FILE``
    validates an existing report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict

import numpy as np

_SCALES = ["smoke", "default", "paper"]
_SPMV_CHOICES = ["auto", "csr", "ell", "sell"]
_BASIS_MODES = ["cached", "streaming"]
_BACKENDS = ["numpy", "jit"]
_PRECONDITIONERS = ["none", "jacobi", "block_jacobi", "ilu0"]
_PREC_STORAGES = ["float64", "float32", "frsz2_32", "frsz2_16"]

#: single source of truth for options shared across subcommands.
#: ``build_parser`` registers each subcommand's flags from this table
#: *and* generates the subcommand epilog from the same rows, so the
#: help text can no longer drift from the accepted flags (asserted by
#: the CLI test suite).
SHARED_OPTIONS: "Dict[str, Dict[str, Any]]" = {
    "storage": dict(
        default="frsz2_32",
        help="Krylov-basis storage format (see `list`), or 'adaptive' "
             "for the per-restart precision controller",
    ),
    "storages": dict(
        nargs="*", default=None, metavar="FMT",
        help="storage formats for the grid",
    ),
    "scale": dict(
        default=None, choices=[None] + _SCALES,
        help="problem scale (default: suite default / $REPRO_SCALE)",
    ),
    "restart": dict(type=int, default=50, help="GMRES restart length m"),
    "max-iter": dict(type=int, default=2000, help="global iteration cap"),
    "jobs": dict(
        type=int, default=1,
        help="worker processes for the grid (default 1 = serial; "
             "0 = all cores; results are identical for any value)",
    ),
    "spmv-format": dict(
        default="csr", choices=_SPMV_CHOICES,
        help="SpMV storage format (auto = structure-driven selection)",
    ),
    "basis-mode": dict(
        default="cached", choices=_BASIS_MODES,
        help="Krylov-basis working-set mode: cached keeps a dense "
             "float64 mirror; streaming decodes compressed tiles "
             "on the fly (O(tile) instead of O(n*m) float64)",
    ),
    "backend": dict(
        default="numpy", choices=_BACKENDS,
        help="kernel backend: numpy reference or jit-compiled kernels "
             "(bit-identical results; jit falls back to numpy with a "
             "warning when no engine is available — install the [jit] "
             "extra or a C compiler)",
    ),
    "preconditioner": dict(
        default="none", choices=_PRECONDITIONERS,
        help="right preconditioner built from the operator: jacobi "
             "(diagonal), block_jacobi (inverted diagonal blocks), "
             "ilu0 (incomplete LU on the sparsity pattern)",
    ),
    "prec-storage": dict(
        default="float64", choices=_PREC_STORAGES,
        help="storage rung for the preconditioner's factor values "
             "(frsz2_* store compressed and decode per apply, "
             "like the Krylov basis)",
    ),
}

#: which shared options each subcommand takes, with the per-command
#: default/help overrides (the only differences allowed).  Commands
#: not listed here take no shared options.
SHARED_BY_COMMAND: "Dict[str, Dict[str, Dict[str, Any]]]" = {
    "solve": {
        "storage": {},
        "scale": {},
        "restart": dict(default=100),
        "max-iter": dict(default=20_000),
        "spmv-format": dict(default="auto"),
        "basis-mode": {},
        "backend": {},
        "preconditioner": {},
        "prec-storage": {},
    },
    "experiment": {"scale": {}},
    "calibrate": {"scale": {}, "max-iter": {}},
    "predict": {"scale": {}},
    "faults": {
        "scale": {},
        "storages": dict(
            help="basis storage formats to stress (default: frsz2_16 "
                 "frsz2_32 float32; 'adaptive' runs the precision "
                 "controller under fault injection)",
        ),
        "restart": {},
        "max-iter": {},
        "jobs": {},
        "spmv-format": dict(
            help="SpMV storage format under fault injection "
                 "(default csr, the historical campaign baseline)",
        ),
        "basis-mode": {},
        "backend": {},
        "preconditioner": dict(
            help="right preconditioner for every campaign cell "
                 "(factored from the raw operator; faults never "
                 "corrupt the factorization)",
        ),
        "prec-storage": {},
    },
    "bench": {
        "storages": dict(
            help="storage formats (default: float64 float32 frsz2_32 "
                 "adaptive)",
        ),
        "scale": dict(
            default="default", choices=_SCALES,
            help="problem scale (default: 'default' — smoke-scale "
                 "matrices are too small for meaningful SpMV "
                 "wall-clock measurements)",
        ),
        "restart": {},
        "max-iter": {},
        "jobs": {},
        "spmv-format": dict(
            default="auto",
            help="SpMV engine format for every grid cell "
                 "(auto = structure-driven selection per matrix)",
        ),
        "basis-mode": dict(
            help="basis mode of the primary traced solve (the "
                 "per-entry basis block always compares both modes)",
        ),
        "backend": {},
        "preconditioner": dict(
            help="right preconditioner for every grid cell (the "
                 "default 'none' with the default matrix grid also "
                 "appends the preconditioned tier entries)",
        ),
        "prec-storage": {},
    },
    "throughput": {
        "storages": dict(
            help="storage formats (default: frsz2_16 frsz2_32; "
                 "'adaptive' is not batchable)",
        ),
        "scale": dict(
            default="smoke", choices=_SCALES,
            help="problem scale (default: smoke — the batched path "
                 "amortizes per-call codec overhead, which is largest "
                 "at small scale)",
        ),
        "restart": dict(default=30),
        "max-iter": dict(default=400),
        "spmv-format": {},
        "basis-mode": {},
        "backend": {},
    },
    "serve": {
        "storage": {},
        "scale": dict(default="smoke", choices=_SCALES),
        "restart": dict(default=30),
        "max-iter": dict(default=400),
        "spmv-format": {},
        "basis-mode": {},
        "backend": {},
        "preconditioner": dict(
            help="right preconditioner applied worker-side to every "
                 "job (part of the batch-coalescing key)",
        ),
        "prec-storage": {},
    },
}


def shared_option_kwargs(command: str, name: str) -> "Dict[str, Any]":
    """Resolved ``add_argument`` kwargs for one shared option.

    Parameters
    ----------
    command : str
        Subcommand name (a key of :data:`SHARED_BY_COMMAND`).
    name : str
        Shared option name (a key of :data:`SHARED_OPTIONS`).

    Returns
    -------
    dict
        The registry kwargs with the command's overrides applied.
    """
    return {**SHARED_OPTIONS[name], **SHARED_BY_COMMAND[command][name]}


def shared_epilog(command: str) -> str:
    """Generated help epilog listing a subcommand's shared options.

    One row per shared option with its resolved default — rendered
    from :data:`SHARED_BY_COMMAND`, the same table the flags are
    registered from, so flags and epilog cannot disagree.
    """
    rows = []
    for name in SHARED_BY_COMMAND.get(command, {}):
        kwargs = shared_option_kwargs(command, name)
        default = kwargs.get("default")
        shown = "suite default" if default is None else default
        rows.append(f"  --{name:<13} default: {shown}")
    if not rows:
        return ""
    return "shared options (registry-generated):\n" + "\n".join(rows)


def _add_shared(p: argparse.ArgumentParser, command: str) -> None:
    for name in SHARED_BY_COMMAND.get(command, {}):
        p.add_argument(f"--{name}", **shared_option_kwargs(command, name))


def _cmd_list(args) -> int:
    from .accessor import list_storage_formats
    from .bench import format_table
    from .compressors import list_compressors
    from .sparse import SUITE, suite_names

    rows = [
        (n, SUITE[n].paper_size, SUITE[n].paper_nnz, SUITE[n].description)
        for n in suite_names()
    ]
    print(format_table("matrix suite (Table I analogs)", ["name", "paper size", "paper nnz", "description"], rows))
    print()
    print("Krylov-basis storage formats:", ", ".join(list_storage_formats()))
    print("compressor registry:", ", ".join(list_compressors()))
    return 0


def _cmd_solve(args) -> int:
    from .gpu import GmresTimingModel
    from .solvers import CbGmres, FlexibleGmres, make_preconditioner, make_problem
    from .sparse import SpmvEngine

    from .jit import dispatch as _dispatch

    p = make_problem(args.matrix, args.scale)
    target = args.target if args.target is not None else p.target_rrn
    # resolve once so an unavailable-jit warning prints a single time,
    # not once from the engine and again from the solver
    backend = _dispatch.resolve_backend(args.backend)
    prec_name = args.preconditioner
    if args.jacobi and prec_name == "none":
        prec_name = "jacobi"  # deprecated alias
    prec = None
    if prec_name != "none":
        prec = make_preconditioner(
            prec_name, p.a, storage=args.prec_storage, backend=backend
        )
        info = prec.cost_info()
        print(f"preconditioner: {prec_name} ({args.prec_storage} factors, "
              f"{info['stored_bytes']} bytes stored"
              + (f", {1 - info['stored_bytes'] / info['float64_bytes']:.0%} "
                 f"below float64" if info["stored_bytes"] < info["float64_bytes"]
                 else "")
              + ")")
    a = p.a
    if args.spmv_format != "csr":
        a = SpmvEngine(a, format=args.spmv_format, backend=backend)
        print(f"SpMV engine: {args.spmv_format} -> {a.resolved_format} "
              f"(padding {a.padding_ratio:.2f}x)")
    solver_cls = FlexibleGmres if args.solver == "fgmres" else CbGmres
    solver = solver_cls(
        a,
        args.storage,
        m=args.restart,
        max_iter=args.max_iter,
        preconditioner=prec,
        basis_mode=args.basis_mode,
        backend=backend,
    )
    res = solver.solve(p.b, target)
    status = "converged" if res.converged else ("stalled" if res.stalled else "hit cap")
    print(f"{args.matrix} (n={p.a.n}, nnz={p.a.nnz}) with {args.storage} basis:")
    print(f"  {status} after {res.iterations} iterations "
          f"({res.stats.restarts} restarts)")
    print(f"  final RRN {res.final_rrn:.3e} (target {target:.1e})")
    print(f"  basis footprint {res.stats.bits_per_value:.1f} bits/value")
    print(f"  basis mode {res.stats.basis_mode} "
          f"(peak float64 working set {res.stats.basis_peak_float64_bytes} bytes, "
          f"tile {res.stats.basis_tile_elems} elems)")
    t = GmresTimingModel().time_result(res)
    print(f"  modeled H100 time {t.total_seconds * 1e3:.2f} ms "
          f"(spmv {t.spmv_seconds*1e3:.2f}, basis reads {t.basis_read_seconds*1e3:.2f}, "
          f"writes {t.basis_write_seconds*1e3:.2f})")
    return 0 if res.converged else 1


def _cmd_compress(args) -> int:
    from .compressors import evaluate, make_compressor

    if args.input:
        x = np.load(args.input).astype(np.float64).ravel()
    else:
        rng = np.random.default_rng(args.seed)
        x = rng.standard_normal(args.n)
        x /= np.linalg.norm(x)
    r = evaluate(make_compressor(args.format), x)
    print(f"{r.compressor} on {r.n} values:")
    print(f"  {r.bits_per_value:.2f} bits/value (ratio {r.compression_ratio:.2f}x)")
    print(f"  max abs error {r.max_abs_error:.3e}")
    print(f"  max pointwise-relative error {r.max_pw_rel_error:.3e}")
    print(f"  PSNR {r.psnr_db:.1f} dB")
    print(f"  declared bound satisfied: {r.bound_satisfied}")
    return 0


def _cmd_experiment(args) -> int:
    from .bench import (
        FIG7_FORMATS,
        figure7_rows,
        figure8_rows,
        figure11_rows,
        format_histogram,
        format_series,
        format_table,
        krylov_histograms,
        matrix_exponent_histogram,
        table1_rows,
        table2_rows,
    )

    ident = args.id.lower()
    if ident == "table1":
        print(format_table(
            "Table I", ["matrix", "size", "nnz", "paper size", "paper nnz", "target", "paper target"],
            table1_rows(args.scale)))
    elif ident == "table2":
        print(format_table("Table II", ["name", "bound type", "bound"], table2_rows()))
    elif ident == "fig2":
        for j, (hist, edges, ev, ec) in sorted(krylov_histograms(scale=args.scale).items()):
            print(format_histogram(f"values, iteration {j}",
                                   [f"{c:+.2e}" for c in (edges[:-1] + edges[1:]) / 2], hist))
            print(format_histogram(f"exponents, iteration {j}", ev.tolist(), ec))
    elif ident == "fig4":
        from .gpu import roofline_series

        series = roofline_series()
        print(format_series(
            "Fig. 4 (modeled H100 GFLOP/s)", "flops/value",
            {k: [(p.arithmetic_intensity, p.gflops) for p in v] for k, v in series.items()},
            max_points=14))
    elif ident == "fig7":
        print(format_table("Fig. 7", ["matrix", "target"] + list(FIG7_FORMATS),
                           figure7_rows(args.scale)))
    elif ident == "fig8":
        print(format_table("Fig. 8", ["matrix", "f64 iters"] + [f"{f}/f64" for f in FIG7_FORMATS],
                           figure8_rows(args.scale)))
    elif ident == "fig10":
        edges, hist = matrix_exponent_histogram(scale=args.scale)
        print(format_histogram("Fig. 10 (PR02R exponents)", [int(e) for e in edges], hist))
    elif ident == "fig11":
        s = figure11_rows(args.scale)
        print(format_table("Fig. 11", ["matrix"] + list(FIG7_FORMATS), s.per_matrix))
        print(format_table("Fig. 11 averages", ["format", "mean", "mean w/o PR02R"],
                           [(f, s.mean_speedup[f], s.mean_speedup_without_pr02r[f])
                            for f in FIG7_FORMATS]))
    else:
        print(f"unknown experiment {args.id!r}; see python -m repro experiment --help",
              file=sys.stderr)
        return 2
    return 0


def _cmd_calibrate(args) -> int:
    from .bench import format_table
    from .solvers import calibrate_suite

    results = calibrate_suite(scale=args.scale, max_iter=args.max_iter)
    rows = [
        (name, c.iterations, c.achieved_rrn, c.target_rrn)
        for name, c in results.items()
    ]
    print(format_table(
        "Section V-C calibration (float64 reference solves)",
        ["matrix", "iterations", "achieved RRN", "suggested target"],
        rows,
    ))
    return 0


def _cmd_predict(args) -> int:
    from .solvers import make_problem, predict_format

    p = make_problem(args.matrix, args.scale)
    rec = predict_format(p.a, p.b)
    print(f"recommended storage for {args.matrix}: {rec.storage}")
    print(f"  features: frsz2 block-kill fraction {rec.features.frsz2_kill_fraction:.1%}, "
          f"float16 range loss {rec.features.float16_loss_fraction:.1%}, "
          f"{rec.features.exponent_concentration} exponents cover 90% of values")
    for fmt, reason in rec.rejected.items():
        print(f"  screened out {fmt}: {reason}")
    for fmt, score in sorted(rec.probe_scores.items(), key=lambda kv: -kv[1]):
        print(f"  probe score {fmt}: {score:.3g} (residual decades per modeled second)")
    return 0


def _cmd_faults(args) -> int:
    from .parallel import WorkerCrashError
    from .robust import DEFAULT_FAULTS, DEFAULT_RATES, DEFAULT_STORAGES, run_campaign

    try:
        camp = run_campaign(
            matrix=args.matrix,
            scale=args.scale,
            faults=args.kinds or DEFAULT_FAULTS,
            storages=args.storages or DEFAULT_STORAGES,
            rates=args.rates or DEFAULT_RATES,
            seed=args.seed,
            m=args.restart,
            max_iter=args.max_iter,
            hardened=not args.unhardened,
            fallback=not args.no_fallback,
            jobs=args.jobs,
            spmv_format=args.spmv_format,
            basis_mode=args.basis_mode,
            backend=args.backend,
            preconditioner=args.preconditioner,
            prec_storage=args.prec_storage,
        )
    except (KeyError, ValueError, WorkerCrashError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(camp.table())
    print()
    print(camp.summary())
    return 0 if camp.survival_rate == 1.0 else 1


def _cmd_bench(args) -> int:
    from .bench import format_table
    from .parallel import WorkerCrashError
    from .bench.perf import (
        BENCH_PHASES,
        compare_bench,
        load_bench,
        run_bench,
        validate_bench,
        write_bench,
    )

    if args.compare:
        base_path, new_path = args.compare
        try:
            base, new = load_bench(base_path), load_bench(new_path)
            regressions = compare_bench(base, new, tolerance=args.tolerance)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if regressions:
            print(f"{len(regressions)} regression(s) beyond "
                  f"tolerance {args.tolerance:.0%}:")
            for reg in regressions:
                print(f"  {reg}")
            return 1
        print(f"no regressions beyond tolerance {args.tolerance:.0%} "
              f"({len(base['entries'])} entries compared)")
        return 0

    if args.check:
        try:
            validate_bench(load_bench(args.check))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{args.check}: valid bench document")
        return 0

    try:
        doc = run_bench(
            matrices=args.matrices,
            storages=args.storages,
            scale=args.scale,
            m=args.restart,
            max_iter=args.max_iter,
            jobs=args.jobs,
            spmv_format=args.spmv_format,
            basis_mode=args.basis_mode,
            backend=args.backend,
            preconditioner=args.preconditioner,
            prec_storage=args.prec_storage,
        )
    except (KeyError, ValueError, WorkerCrashError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_bench(doc, args.out)
    rows = []
    for e in doc["entries"]:
        total = e["modeled_seconds"] or 1.0
        prec = e.get("preconditioner")
        rows.append(
            (
                e["matrix"],
                e["storage"],
                prec["name"] if prec else "-",
                "yes" if e["converged"] else "no",
                e["iterations"],
                e["spmv"]["format"],
                f"{e['spmv']['speedup_vs_csr']:.2f}x",
                f"{e['wall_seconds'] * 1e3:.1f}",
                f"{e['modeled_seconds'] * 1e3:.3f}",
            )
            + tuple(
                f"{e['phases'][p]['modeled_seconds'] / total:.0%}"
                for p in BENCH_PHASES
            )
        )
    print(format_table(
        f"bench grid ({doc['scale']} scale, modeled on {doc['device']})",
        ["matrix", "storage", "prec", "conv", "iters", "spmv", "spmv x",
         "wall ms", "model ms"]
        + [f"{p}%" for p in BENCH_PHASES],
        rows,
    ))
    bk = doc["backend"]
    line = f"\nbackend: {bk['resolved']}"
    if bk["engine"]:
        line += f" ({bk['engine']})"
    if bk["codec_speedup_geomean"] is not None:
        line += (f", codec speedup geomean "
                 f"{bk['codec_speedup_geomean']:.2f}x vs numpy")
    print(line)
    print(f"wrote {args.out} ({len(doc['entries'])} entries)")
    return 0


def _cmd_throughput(args) -> int:
    from .bench import format_table
    from .bench.throughput import (
        load_throughput,
        run_throughput,
        write_throughput,
    )

    if args.check:
        try:
            doc = load_throughput(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        speedup = doc["aggregate"]["speedup"]
        if args.min_speedup is not None and speedup < args.min_speedup:
            print(
                f"{args.check}: aggregate speedup {speedup:.2f}x is below "
                f"the required {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"{args.check}: valid throughput document "
              f"(aggregate speedup {speedup:.2f}x)")
        return 0

    try:
        doc = run_throughput(
            matrices=args.matrices,
            storages=args.storages,
            scale=args.scale,
            m=args.restart,
            max_iter=args.max_iter,
            batch=args.batch,
            rounds=args.rounds,
            spmv_format=args.spmv_format,
            basis_mode=args.basis_mode,
            backend=args.backend,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_throughput(doc, args.out)
    rows = [
        (
            e["matrix"],
            e["storage"],
            e["batch"],
            "yes" if all(e["converged"]) else "no",
            f"{e['loop_solves_per_second']:.1f}",
            f"{e['batch_solves_per_second']:.1f}",
            f"{e['speedup']:.2f}x",
        )
        for e in doc["entries"]
    ]
    agg = doc["aggregate"]
    print(format_table(
        f"throughput grid ({doc['scale']} scale, B={doc['batch']}, "
        f"{doc['spmv_format']}/{doc['basis_mode']})",
        ["matrix", "storage", "B", "conv", "loop/s", "batch/s", "speedup"],
        rows,
    ))
    print(
        f"\naggregate: {agg['solves']} solves, "
        f"loop {agg['loop_solves_per_second']:.1f}/s vs "
        f"batch {agg['batch_solves_per_second']:.1f}/s "
        f"({agg['speedup']:.2f}x)"
    )
    print(f"wrote {args.out} ({len(doc['entries'])} entries)")
    if args.min_speedup is not None and agg["speedup"] < args.min_speedup:
        print(
            f"aggregate speedup {agg['speedup']:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json

    from .bench import format_table
    from .robust.chaos import ChaosSpec
    from .serve import (
        JobSpec,
        JobState,
        RejectedError,
        ServeConfig,
        SolveEngine,
        build_serve_health,
    )

    chaos = None
    if args.chaos:
        chaos = ChaosSpec(args.chaos, at_iteration=args.chaos_at).to_dict()
    specs = []
    for matrix in args.matrices:
        for i in range(args.count):
            specs.append(JobSpec(
                matrix=matrix,
                storage=args.storage,
                scale=args.scale,
                m=args.restart,
                max_iter=args.max_iter,
                rhs_seed=None if args.rhs_seed is None else args.rhs_seed + i,
                spmv_format=args.spmv_format,
                basis_mode=args.basis_mode,
                backend=args.backend,
                preconditioner=args.preconditioner,
                prec_storage=args.prec_storage,
                deadline_s=args.deadline,
                progress_every=args.progress_every,
                chaos=chaos,
            ))

    config = ServeConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        max_retries=args.max_retries,
        heartbeat_timeout_s=args.heartbeat_timeout,
        default_deadline_s=args.deadline,
    )

    def show(event) -> None:
        if event.kind == "progress":
            payload = event.payload
            print(f"  {event.job_id}: iter {payload['iteration']:4d} "
                  f"rrn {payload['implicit_rrn']:.3e}")
        elif event.kind in ("state", "attempt") and not args.quiet:
            print(f"  {event.job_id}: {event.kind} {event.payload}")

    records = []
    with SolveEngine(config) as engine:
        if args.follow:
            engine.subscribe(show)
        for spec in specs:
            try:
                records.append(engine.submit(spec))
            except RejectedError as exc:
                print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
        drained = engine.drain(timeout=args.drain_timeout)
        health = build_serve_health(engine)
        if not drained:
            print("drain timed out; forcing shutdown", file=sys.stderr)
            engine.close(force=True)

    rows = []
    for record in records:
        snap = record.snapshot()
        result = snap["result"] or {}
        rows.append((
            record.job_id, record.spec.matrix, snap["storage_used"],
            record.state, snap["attempts"], snap["retries"],
            result.get("iterations", "-"),
            f"{result['final_rrn']:.2e}" if result else "-",
            f"{snap['queue_wait_s'] * 1e3:.1f}" if snap["queue_wait_s"] is not None else "-",
        ))
    print(format_table(
        f"serve run ({config.workers} workers, queue bound {config.max_queue})",
        ["job", "matrix", "storage", "state", "att", "retry", "iters",
         "rrn", "wait ms"],
        rows,
    ))
    print()
    print(json.dumps(health, indent=2, sort_keys=True))
    bad = sum(1 for r in records if r.state != JobState.DONE)
    return 0 if (drained and bad == 0) else 1


def _cmd_soak(args) -> int:
    import json

    from .serve import SoakError, run_soak, validate_serve_health

    if args.check:
        try:
            with open(args.check) as fh:
                doc = json.load(fh)
            validate_serve_health(doc["serve"])
        except (OSError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{args.check}: valid serve report")
        return 0

    try:
        report = run_soak(
            jobs=args.jobs,
            workers=args.workers,
            seed=args.seed,
            max_queue=args.max_queue,
            verify_every=args.verify_every,
            heartbeat_timeout_s=args.heartbeat_timeout,
            out=args.out,
            check=True,
            log=print,
        )
    except SoakError as exc:
        print(f"SOAK FAILED:\n{exc}", file=sys.stderr)
        return 1
    summary = report["soak"]
    jobs = report["serve"]["jobs"]
    print(f"soak passed: {summary['jobs']} jobs in "
          f"{summary['wall_seconds']:.1f}s — "
          f"{jobs['done']} done, {jobs['cancelled']} cancelled, "
          f"{jobs['retried']} retried, {jobs['degraded']} degraded, "
          f"{summary['backpressure_rejections']} backpressure rejections, "
          f"bit-identity on {summary['bit_identity_checked']} jobs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser.

    Per-subcommand flags that exist on more than one subcommand come
    from the :data:`SHARED_OPTIONS` registry (with
    :data:`SHARED_BY_COMMAND` overrides); each subcommand's epilog is
    generated from the same rows by :func:`shared_epilog`.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FRSZ2 / CB-GMRES reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help: str) -> argparse.ArgumentParser:
        return sub.add_parser(
            name,
            help=help,
            epilog=shared_epilog(name),
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )

    add_command("list", "show matrices, storage formats, compressors")

    p = add_command("solve", "run CB-GMRES on a suite matrix")
    p.add_argument("matrix")
    p.add_argument("--target", type=float, default=None)
    p.add_argument("--jacobi", action="store_true",
                   help="deprecated alias for --preconditioner jacobi")
    p.add_argument("--solver", default="cb", choices=["cb", "fgmres"],
                   help="cb = CB-GMRES (compress V); fgmres = ref [17] (compress Z)")
    _add_shared(p, "solve")

    p = add_command("compress", "evaluate a compressor on data")
    p.add_argument("--format", default="frsz2_32")
    p.add_argument("--input", default=None, help=".npy file of float64 values")
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)

    p = add_command("experiment", "regenerate a paper table/figure")
    p.add_argument("id", help="table1|table2|fig2|fig4|fig7|fig8|fig10|fig11")
    _add_shared(p, "experiment")

    p = add_command("calibrate", "run the Section V-C calibration")
    _add_shared(p, "calibrate")

    p = add_command("predict", "recommend a basis storage format")
    p.add_argument("matrix")
    _add_shared(p, "predict")

    p = add_command("faults", "run the fault-injection survival campaign")
    p.add_argument("--matrix", default="atmosmodd")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kinds", nargs="*", default=None,
                   help="fault kinds (default: payload/exponent bit flips, readout NaN, SpMV NaN)")
    p.add_argument("--rates", nargs="*", type=float, default=None,
                   help="per-operation fault probabilities (default: 0.02 0.05)")
    p.add_argument("--unhardened", action="store_true",
                   help="disable recovery+fallback (the crash/diverge baseline)")
    p.add_argument("--no-fallback", action="store_true",
                   help="recovery only, no storage-format escalation")
    _add_shared(p, "faults")

    p = add_command(
        "bench",
        "run the traced perf grid / compare or validate bench files",
    )
    p.add_argument("--out", default="BENCH_gmres.json",
                   help="output path for the bench document")
    p.add_argument("--matrices", nargs="*", default=None,
                   help="suite matrices (default: atmosmodd cfd2 lung2)")
    p.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"), default=None,
                   help="diff two bench files; exit 1 on regressions")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative regression tolerance for --compare")
    p.add_argument("--check", default=None, metavar="FILE",
                   help="validate an existing bench file against the schema")
    _add_shared(p, "bench")

    p = add_command("serve", "run solve jobs through the hardened job engine")
    p.add_argument("matrices", nargs="+", help="suite matrices to solve")
    p.add_argument("--count", type=int, default=1,
                   help="jobs per matrix (RHS seed advances per copy)")
    p.add_argument("--rhs-seed", type=int, default=None,
                   help="base seed for random RHS (default: paper RHS)")
    p.add_argument("--workers", type=int, default=2,
                   help="supervised worker processes")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission bound (beyond it: reject queue_full)")
    p.add_argument("--max-retries", type=int, default=2)
    p.add_argument("--deadline", type=float, default=None,
                   help="per-job wall deadline in seconds")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   help="kill a worker silent for this many seconds")
    p.add_argument("--progress-every", type=int, default=25)
    p.add_argument("--drain-timeout", type=float, default=600.0)
    p.add_argument("--follow", action="store_true",
                   help="stream progress events to stdout")
    p.add_argument("--quiet", action="store_true",
                   help="with --follow, print only progress events")
    p.add_argument("--chaos", default=None,
                   help="arm a chaos kind on every job (testing), e.g. "
                        "worker_crash, worker_hang, solve_error")
    p.add_argument("--chaos-at", type=int, default=5,
                   help="solver iteration at which the chaos fires")
    _add_shared(p, "serve")

    p = add_command(
        "throughput",
        "time batched multi-RHS solves vs a loop of independent "
        "solves; write BENCH_throughput.json",
    )
    p.add_argument("--out", default="BENCH_throughput.json",
                   help="output path for the throughput document")
    p.add_argument("--matrices", nargs="*", default=None,
                   help="suite matrices (default: cfd2 lung2 — the "
                        "codec-bound cells batching targets)")
    p.add_argument("--batch", type=int, default=8,
                   help="simultaneous right-hand sides per batch")
    p.add_argument("--rounds", type=int, default=3,
                   help="timing rounds per cell (best-of wins)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="exit 1 unless the aggregate speedup reaches "
                        "this factor (also applies to --check)")
    p.add_argument("--check", default=None, metavar="FILE",
                   help="validate an existing throughput document")
    _add_shared(p, "throughput")

    p = add_command(
        "soak",
        "run the serve soak with seeded chaos; write BENCH_serve.json",
    )
    p.add_argument("--jobs", type=int, default=200,
                   help="solve jobs to queue (mixed configs)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-queue", type=int, default=32)
    p.add_argument("--verify-every", type=int, default=10,
                   help="bit-identity-check every n-th clean job")
    p.add_argument("--heartbeat-timeout", type=float, default=2.0)
    p.add_argument("--out", default="BENCH_serve.json",
                   help="serve health report path")
    p.add_argument("--check", default=None, metavar="FILE",
                   help="validate an existing serve report")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "solve": _cmd_solve,
    "compress": _cmd_compress,
    "experiment": _cmd_experiment,
    "calibrate": _cmd_calibrate,
    "predict": _cmd_predict,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
    "throughput": _cmd_throughput,
    "serve": _cmd_serve,
    "soak": _cmd_soak,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
