"""Serve health block: the engine's trajectory metric across PRs.

The bench reports track solver quality (iterations, storage traffic,
convergence); this module adds the *service* dimension — how the job
engine behaved under load: jobs accepted vs rejected (and why), how
many retried / degraded / crashed / hung, and the p50/p95 queue wait
that quantifies backpressure.  The block is its own small
schema-versioned document (``repro.serve.health`` v1) written to
``BENCH_serve.json`` by the soak harness, so the service health is
diffable across PRs exactly like ``BENCH.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "SERVE_HEALTH_SCHEMA",
    "SERVE_HEALTH_VERSION",
    "build_serve_health",
    "validate_serve_health",
    "write_serve_report",
]

SERVE_HEALTH_SCHEMA = "repro.serve.health"
SERVE_HEALTH_VERSION = 1

_TERMINAL_KEYS = ("done", "failed", "cancelled", "timed_out")
_REJECT_KEYS = ("queue_full", "draining", "closed")


def build_serve_health(engine) -> Dict[str, Any]:
    """Snapshot a :class:`~repro.serve.engine.SolveEngine`'s health.

    Safe to call at any point; the canonical moment is after
    :meth:`~repro.serve.engine.SolveEngine.drain`.
    """
    jobs = engine.jobs()
    states = {key: 0 for key in _TERMINAL_KEYS}
    for job in jobs:
        if job.state in states:
            states[job.state] += 1
    admission = engine.admission
    return {
        "schema": SERVE_HEALTH_SCHEMA,
        "schema_version": SERVE_HEALTH_VERSION,
        "config": {
            "workers": engine.config.workers,
            "max_queue": engine.config.max_queue,
            "max_retries": engine.config.max_retries,
            "heartbeat_timeout_s": engine.config.heartbeat_timeout_s,
            "degrade_on_retry": engine.config.degrade_on_retry,
        },
        "jobs": {
            "accepted": admission.accepted,
            "rejected": dict(admission.rejected),
            "rejected_total": admission.rejected_total,
            **states,
            "retried": sum(1 for j in jobs if j.retries > 0),
            "retries_total": sum(j.retries for j in jobs),
            "degraded": sum(1 for j in jobs if j.degradations > 0),
            "degradations_total": sum(j.degradations for j in jobs),
        },
        "incidents": {
            "worker_crashes": engine.crashes_observed,
            "hangs_detected": engine.hangs_detected,
            "deadline_timeouts": engine.timeouts_enforced,
        },
        "queue_wait_s": admission.wait_percentiles(),
        "bus": {
            "events_published": engine.bus.published,
            "poisoned_subscribers": engine.bus.poisoned_subscribers,
        },
    }


def _expect(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid serve health block: {message}")


def validate_serve_health(doc: Dict[str, Any]) -> None:
    """Raise :class:`ValueError` if ``doc`` is not a well-formed v1
    serve health block (same spirit as the bench schema validator)."""
    _expect(isinstance(doc, dict), "not a mapping")
    _expect(doc.get("schema") == SERVE_HEALTH_SCHEMA,
            f"schema must be {SERVE_HEALTH_SCHEMA!r}")
    _expect(doc.get("schema_version") == SERVE_HEALTH_VERSION,
            f"schema_version must be {SERVE_HEALTH_VERSION}")
    jobs = doc.get("jobs")
    _expect(isinstance(jobs, dict), "missing 'jobs' section")
    for key in ("accepted", "rejected_total", "retried", "retries_total",
                "degraded", "degradations_total", *_TERMINAL_KEYS):
        _expect(isinstance(jobs.get(key), int) and jobs[key] >= 0,
                f"jobs.{key} must be a non-negative int")
    rejected = jobs.get("rejected")
    _expect(isinstance(rejected, dict), "jobs.rejected must be a mapping")
    for key in _REJECT_KEYS:
        _expect(isinstance(rejected.get(key), int) and rejected[key] >= 0,
                f"jobs.rejected.{key} must be a non-negative int")
    _expect(sum(rejected.values()) == jobs["rejected_total"],
            "rejected_total must equal the sum of rejected reasons")
    terminal = sum(jobs[key] for key in _TERMINAL_KEYS)
    _expect(terminal == jobs["accepted"],
            f"terminal states ({terminal}) must account for every "
            f"accepted job ({jobs['accepted']})")
    incidents = doc.get("incidents")
    _expect(isinstance(incidents, dict), "missing 'incidents' section")
    for key in ("worker_crashes", "hangs_detected", "deadline_timeouts"):
        _expect(isinstance(incidents.get(key), int) and incidents[key] >= 0,
                f"incidents.{key} must be a non-negative int")
    wait = doc.get("queue_wait_s")
    _expect(isinstance(wait, dict), "missing 'queue_wait_s' section")
    for key in ("p50", "p95", "max"):
        value = wait.get(key, "absent")
        _expect(value is None or (isinstance(value, (int, float))
                                  and value >= 0),
                f"queue_wait_s.{key} must be null or a non-negative number")


def write_serve_report(
    path: str,
    health: Dict[str, Any],
    soak: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Validate ``health``, wrap it (optionally with the soak summary)
    and write JSON to ``path``; returns the written document."""
    validate_serve_health(health)
    doc: Dict[str, Any] = {"serve": health}
    if soak is not None:
        doc["soak"] = soak
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
