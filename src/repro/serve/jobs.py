"""Job specs and the hardened job state machine.

A *job* is one solve request: a matrix reference (suite name + scale),
a right-hand side (the paper's deterministic RHS, or a seeded random
one), and a solver configuration.  The engine tracks each admitted job
through an explicit state machine whose transitions are **validated** —
an illegal transition is a bug in the engine, not a condition to paper
over, so :meth:`JobRecord.transition` raises on one.

::

    QUEUED ──────────► RUNNING ─────────► DONE
      │                  │ │ │
      │ cancel           │ │ └──────────► FAILED      (retries exhausted)
      ├────► CANCELLED ◄─┘ │
      │                    └────────────► TIMED_OUT   (deadline blown)
      │     RETRY_WAIT ◄── RUNNING           ▲
      │         │   (crash/hang/error,       │
      │         │    backoff + degrade)      │
      │         ├──► QUEUED  (backoff done)  │
      │         ├──► CANCELLED               │
      │         └────────────────────────────┘

Terminal states are exactly ``DONE`` / ``FAILED`` / ``CANCELLED`` /
``TIMED_OUT``: every admitted job reaches one of them — the invariant
the soak harness asserts.  Rejected submissions (backpressure, drain)
never become jobs at all; they are counted by the admission controller.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "JobSpec",
    "AttemptRecord",
    "JobRecord",
    "IllegalTransition",
]


class JobState:
    """Job lifecycle states (plain strings for painless serialization)."""

    QUEUED = "queued"
    RUNNING = "running"
    RETRY_WAIT = "retry_wait"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"

    ALL = (QUEUED, RUNNING, RETRY_WAIT, DONE, FAILED, CANCELLED, TIMED_OUT)


#: states no job ever leaves
TERMINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT)
)

#: the validated transition relation of the state machine above
_ALLOWED = {
    JobState.QUEUED: frozenset(
        (JobState.RUNNING, JobState.CANCELLED, JobState.TIMED_OUT)
    ),
    JobState.RUNNING: frozenset(
        (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
            JobState.RETRY_WAIT,
        )
    ),
    JobState.RETRY_WAIT: frozenset(
        (JobState.QUEUED, JobState.CANCELLED, JobState.TIMED_OUT, JobState.FAILED)
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMED_OUT: frozenset(),
}


class IllegalTransition(RuntimeError):
    """The engine attempted a transition the state machine forbids."""


@dataclass(frozen=True)
class JobSpec:
    """One solve request.  Everything here must be picklable: the spec
    (as a dict) is what crosses the process boundary to a worker.

    Parameters
    ----------
    matrix, scale : str
        Suite matrix reference (``python -m repro list``) and problem
        scale.
    storage : str
        Requested Krylov-basis storage format.  On repeated attempt
        failures the engine may *degrade* it along the
        :data:`repro.robust.fallback.DEFAULT_CHAIN`
        (frsz2_16 → frsz2_32 → float64); the per-attempt storage is
        recorded in each :class:`AttemptRecord`.
    m, max_iter : int
        Restart length and iteration cap.
    target_rrn : float, optional
        Override the matrix's calibrated convergence target.
    rhs_seed : int, optional
        ``None`` uses the paper's deterministic RHS; an integer builds a
        seeded random unit-norm RHS instead (``b = A x_rand``).
    spmv_format, basis_mode, backend : str
        Forwarded to :class:`~repro.solvers.gmres.CbGmres` (``backend``
        selects the numpy or jit kernel backend; bit-identical).
    preconditioner, prec_storage : str
        Right preconditioner built worker-side from the raw operator
        (``none``/``jacobi``/``block_jacobi``/``ilu0``) and its factor
        storage rung.  Part of the batch-coalescing key: jobs only
        coalesce when they share the whole preconditioner config.
    deadline_s : float, optional
        Whole-job wall deadline, counted from the job's *first* dispatch
        to a worker (queue wait does not consume it); spans retries and
        backoff waits.  ``None`` falls back to the engine default.
    max_retries : int, optional
        Per-job override of the engine's retry budget.
    progress_every : int
        Emit a progress event every this-many solver iterations (plus
        always at iteration 0).  Progress events double as heartbeats.
    chaos : dict, optional
        A serialized :class:`repro.robust.chaos.ChaosSpec` the worker
        arms for the matching attempt (fault-injection campaigns and
        the soak harness; production jobs leave it ``None``).
    """

    matrix: str
    storage: str = "frsz2_32"
    scale: str = "smoke"
    m: int = 30
    max_iter: int = 400
    target_rrn: Optional[float] = None
    rhs_seed: Optional[int] = None
    spmv_format: str = "csr"
    basis_mode: str = "cached"
    backend: str = "numpy"
    preconditioner: str = "none"
    prec_storage: str = "float64"
    deadline_s: Optional[float] = None
    max_retries: Optional[int] = None
    progress_every: int = 25
    chaos: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matrix": self.matrix,
            "storage": self.storage,
            "scale": self.scale,
            "m": self.m,
            "max_iter": self.max_iter,
            "target_rrn": self.target_rrn,
            "rhs_seed": self.rhs_seed,
            "spmv_format": self.spmv_format,
            "basis_mode": self.basis_mode,
            "backend": self.backend,
            "preconditioner": self.preconditioner,
            "prec_storage": self.prec_storage,
            "deadline_s": self.deadline_s,
            "max_retries": self.max_retries,
            "progress_every": self.progress_every,
            "chaos": dict(self.chaos) if self.chaos else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(**data)


@dataclass
class AttemptRecord:
    """One dispatch of a job to a worker."""

    index: int  # 1-based
    storage: str
    started_at: float
    ended_at: Optional[float] = None
    #: how the attempt ended: done/error/crashed/hung/cancelled/timed_out
    outcome: Optional[str] = None
    error: Optional[str] = None


@dataclass
class JobRecord:
    """Engine-side record of one admitted job.

    Thread-safety: all mutation happens on the engine's supervisor
    thread; readers on other threads see consistent snapshots because
    state changes are single attribute writes and ``finished`` is a
    :class:`threading.Event`.
    """

    job_id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    #: first dispatch (starts the deadline clock + ends the queue wait)
    first_started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: worker result payload of the successful attempt (``None`` until
    #: DONE): x, converged, iterations, final_rrn, storage_used, ...
    result: Optional[Dict[str, Any]] = None
    #: human-readable reason for FAILED / CANCELLED / TIMED_OUT
    reason: Optional[str] = None
    #: times this job was retried (attempts - 1, counted explicitly)
    retries: int = 0
    #: times the storage format was degraded along the fallback chain
    degradations: int = 0
    cancel_requested: bool = False
    finished: threading.Event = field(default_factory=threading.Event)
    #: monotonic timestamp to leave RETRY_WAIT (engine-managed)
    retry_at: Optional[float] = None
    #: last heartbeat/progress observation while RUNNING
    last_event_at: Optional[float] = None
    #: cancel grace bookkeeping
    cancel_requested_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds from admission to first dispatch (``None`` if the
        job never started)."""
        if self.first_started_at is None:
            return None
        return self.first_started_at - self.submitted_at

    @property
    def current_storage(self) -> str:
        """Storage of the latest attempt (the degraded one, if any)."""
        if self.attempts:
            return self.attempts[-1].storage
        return self.spec.storage

    def transition(self, new_state: str, reason: Optional[str] = None) -> None:
        """Move to ``new_state``; raises :class:`IllegalTransition` if
        the state machine forbids it."""
        if new_state not in _ALLOWED[self.state]:
            raise IllegalTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state
        if reason is not None:
            self.reason = reason
        if new_state in TERMINAL_STATES:
            self.finished_at = time.monotonic()
            self.finished.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True if it finished."""
        return self.finished.wait(timeout)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly view (numpy payloads summarized, not dumped)."""
        result = None
        if self.result is not None:
            result = {
                k: v for k, v in self.result.items() if k not in ("x",)
            }
        return {
            "job_id": self.job_id,
            "state": self.state,
            "matrix": self.spec.matrix,
            "storage": self.spec.storage,
            "storage_used": self.current_storage,
            "attempts": len(self.attempts),
            "retries": self.retries,
            "degradations": self.degradations,
            "queue_wait_s": self.queue_wait_s,
            "reason": self.reason,
            "result": result,
        }
