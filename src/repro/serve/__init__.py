"""repro.serve — the solver-as-a-service job engine.

The service layer from the ROADMAP: an async job engine that accepts
solve requests (matrix reference + RHS + solver config), runs them on a
supervised worker pool, and streams per-restart progress events to
subscribers.  The lifecycle follows the WebCodecs encoder shape —
configure (:class:`ServeConfig`) → enqueue (:meth:`SolveEngine.submit`)
→ callback per output (:class:`ProgressBus`) → flush
(:meth:`SolveEngine.drain`) — with a hardened robustness contract:

* bounded admission queue with explicit reject-with-reason
  (:class:`QueueFullError` / :class:`DrainingError` /
  :class:`ClosedError`);
* per-job wall deadlines and heartbeat-based hang detection;
* bounded retry with exponential backoff + deterministic jitter on
  worker crashes, hangs, and solve errors;
* automatic precision degradation along the fallback chain
  (frsz2_16 → frsz2_32 → float64) on repeated failure;
* cooperative cancellation that always reclaims the worker;
* per-job state isolation, asserted in-worker and verified
  bit-for-bit by the soak harness (:func:`run_soak`).

See ``docs/ARCHITECTURE.md`` (serve section) for the state machine and
data flow, and ``docs/EXPERIMENTS.md`` for the soak guide.
"""

from .bus import ProgressBus, ProgressEvent
from .engine import ServeConfig, SolveEngine
from .health import (
    SERVE_HEALTH_SCHEMA,
    SERVE_HEALTH_VERSION,
    build_serve_health,
    validate_serve_health,
    write_serve_report,
)
from .jobs import (
    TERMINAL_STATES,
    AttemptRecord,
    IllegalTransition,
    JobRecord,
    JobSpec,
    JobState,
)
from .queue import (
    AdmissionController,
    ClosedError,
    DrainingError,
    QueueFullError,
    RejectedError,
)
from .soak import SoakError, build_soak_specs, run_soak
from .worker import IsolationError, run_solve_batch_job, run_solve_job

__all__ = [
    "AdmissionController",
    "AttemptRecord",
    "ClosedError",
    "DrainingError",
    "IllegalTransition",
    "IsolationError",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ProgressBus",
    "ProgressEvent",
    "QueueFullError",
    "RejectedError",
    "SERVE_HEALTH_SCHEMA",
    "SERVE_HEALTH_VERSION",
    "ServeConfig",
    "SoakError",
    "SolveEngine",
    "TERMINAL_STATES",
    "build_serve_health",
    "build_soak_specs",
    "run_solve_batch_job",
    "run_solve_job",
    "run_soak",
    "validate_serve_health",
    "write_serve_report",
]
