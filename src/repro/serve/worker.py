"""Worker-side job execution: one solve per task, fresh state per job.

This module is the code that actually runs inside a
:class:`repro.parallel.pool.SupervisedPool` worker process.  Its
contract with the engine:

* **Isolation, asserted.**  Every job builds its *own* problem, tracer,
  accessors and solver — nothing is reused across jobs.  A module-level
  sentinel (:data:`_ACTIVE_JOB`) makes the claim checkable: if a
  previous job's cleanup ever leaked (its ``finally`` skipped, its
  state left armed), the next job on that worker raises
  :class:`IsolationError` instead of silently computing on dirty state.
  The definitive check is external: the soak harness asserts non-faulted
  jobs' results are bit-identical to direct ``CbGmres.solve`` calls.
* **Progress = heartbeat.**  The injected ``emit`` callback publishes a
  per-restart progress event (iteration, implicit residual, phase
  seconds from the job's own :class:`repro.observe.Tracer`).  The
  engine treats the event stream as the liveness signal, so a worker
  that stops emitting is declared hung and killed; ``emit`` is also the
  cooperative-cancellation point (it raises
  :class:`repro.parallel.TaskCancelled` when the engine asked).
* **Chaos is opt-in and attempt-scoped.**  A job spec may carry a
  serialized :class:`repro.robust.chaos.ChaosSpec`; the worker arms it
  only for the attempt it targets, so a crash plan for attempt 1 lets
  the retry succeed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..accessor import make_accessor
from ..observe import Tracer
from ..robust.chaos import (
    ChaosSpec,
    chaos_accessor_factory,
    chaos_monitor,
    chaos_spmv_wrapper,
)
from ..solvers.gmres import CbGmres
from ..solvers.preconditioner import make_preconditioner
from ..solvers.problems import make_problem

__all__ = ["IsolationError", "run_solve_job", "run_solve_batch_job"]


class IsolationError(RuntimeError):
    """Cross-job state leakage detected inside a worker process."""


#: job currently executing in this worker process (isolation sentinel)
_ACTIVE_JOB: Optional[str] = None
#: jobs completed by this worker process (diagnostic; proves reuse)
_JOBS_RUN = 0

#: tracer phases snapshotted into progress events
_PROGRESS_PHASES = ("spmv", "orthogonalize", "basis_read", "basis_write")


def _make_rhs(problem, rhs_seed: Optional[int]) -> np.ndarray:
    if rhs_seed is None:
        return problem.b
    rng = np.random.default_rng(rhs_seed)
    x = rng.standard_normal(problem.a.shape[1])
    x /= np.linalg.norm(x)
    return problem.a.matvec(x)


def run_solve_job(
    spec: Dict[str, Any],
    job_id: str,
    attempt: int,
    storage: str,
    emit: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run one solve attempt; returns the result payload.

    Parameters
    ----------
    spec : dict
        A serialized :class:`repro.serve.jobs.JobSpec`.
    job_id : str
        Engine-assigned identity (isolation sentinel + event tagging).
    attempt : int
        1-based attempt number (chaos arming, diagnostics).
    storage : str
        Storage format for *this* attempt — the engine may have degraded
        it below ``spec["storage"]`` along the fallback chain.
    emit : callable, optional
        Progress channel injected by the pool; ``None`` (direct calls
        in tests) disables event emission.
    """
    global _ACTIVE_JOB, _JOBS_RUN
    if _ACTIVE_JOB is not None:
        raise IsolationError(
            f"worker started job {job_id} while job {_ACTIVE_JOB} "
            "still owns this process — per-job state leaked"
        )
    _ACTIVE_JOB = job_id
    try:
        t0 = time.perf_counter()
        problem = make_problem(
            spec["matrix"], spec["scale"], target_rrn=spec.get("target_rrn")
        )
        b = _make_rhs(problem, spec.get("rhs_seed"))
        target = (
            spec["target_rrn"]
            if spec.get("target_rrn") is not None
            else problem.target_rrn
        )

        chaos = None
        if spec.get("chaos"):
            chaos = ChaosSpec.from_dict(spec["chaos"])
            if not chaos.armed(attempt):
                chaos = None

        # the preconditioner factors the *raw* operator — chaos wrappers
        # poison the solve's SpMV, never the factorization
        prec = None
        if spec.get("preconditioner", "none") != "none":
            prec = make_preconditioner(
                spec["preconditioner"],
                problem.a,
                storage=spec.get("prec_storage", "float64"),
                backend=spec.get("backend", "numpy"),
            )

        a = problem.a
        accessor_factory = None
        storage_factory = None
        chaos_tick = None
        if chaos is not None:
            if chaos.is_spmv_kind:
                a = chaos_spmv_wrapper(chaos, a)
            elif chaos.is_accessor_kind:
                factory = chaos_accessor_factory(chaos)
                if storage == "adaptive":
                    # adaptive solves rebuild accessors on every format
                    # switch; the (storage, n) factory keeps the chaos
                    # wrapper attached across switches
                    storage_factory = factory
                else:
                    accessor_factory = lambda n, _s=storage: factory(_s, n)
            else:
                chaos_tick = chaos_monitor(chaos)

        tracer = Tracer()
        progress_every = max(int(spec.get("progress_every", 25)), 1)
        emitted = 0

        def monitor(iteration, j, basis, implicit_rrn) -> None:
            nonlocal emitted
            if chaos_tick is not None:
                chaos_tick(iteration, j, basis, implicit_rrn)
            if emit is None:
                return
            if iteration % progress_every != 0 and j != 0:
                return
            emitted += 1
            emit({
                "kind": "progress",
                "iteration": int(iteration),
                "restart_slot": int(j),
                "implicit_rrn": float(implicit_rrn),
                # the format the basis is *currently* stored in — under
                # adaptive precision this moves between restarts
                "basis_storage": getattr(basis, "storage", storage),
                "phase_seconds": {
                    phase: tracer.total_seconds(phase)
                    for phase in _PROGRESS_PHASES
                },
            })

        solver = CbGmres(
            a,
            storage,
            m=spec["m"],
            max_iter=spec["max_iter"],
            spmv_format=spec.get("spmv_format", "csr"),
            basis_mode=spec.get("basis_mode", "cached"),
            backend=spec.get("backend", "numpy"),
            preconditioner=prec,
            accessor_factory=accessor_factory,
            storage_factory=storage_factory,
            tracer=tracer,
        )
        result = solver.solve(b, target, record_history=False, monitor=monitor)

        _JOBS_RUN += 1
        return {
            "job_id": job_id,
            "attempt": int(attempt),
            "x": result.x,
            "converged": bool(result.converged),
            "stalled": bool(result.stalled),
            "iterations": int(result.iterations),
            "final_rrn": float(result.final_rrn),
            "target_rrn": float(result.target_rrn),
            "storage_used": storage,
            "recoveries": int(result.recoveries),
            "breakdowns": len(result.breakdown_events),
            "wall_seconds": float(time.perf_counter() - t0),
            "progress_events": int(emitted),
            "worker_jobs_run": int(_JOBS_RUN),
            "counters": {
                str(k): (float(v) if isinstance(v, float) else int(v))
                for k, v in sorted(tracer.counters.items())
            },
        }
    finally:
        _ACTIVE_JOB = None


def run_solve_batch_job(
    specs: Sequence[Dict[str, Any]],
    job_ids: Sequence[str],
    attempt: int,
    storage: str,
    emit: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run one *batched* solve attempt over jobs sharing a matrix key.

    The engine coalesces queued jobs whose specs differ only in
    ``rhs_seed`` (same matrix, scale, solver configuration) into a
    single worker task: the problem is built **once**, every job
    contributes one right-hand-side column, and the whole block runs
    through :meth:`~repro.solvers.gmres.CbGmres.solve_batch` — so the
    matrix structure, FRSZ2 codec passes and tile sweeps are paid once
    per batch instead of once per job.  Each job's numbers stay
    bit-identical to what its own solo :func:`run_solve_job` attempt
    would have produced (the ``solve_batch`` contract).

    Parameters
    ----------
    specs : sequence of dict
        Serialized :class:`repro.serve.jobs.JobSpec` per batch member;
        all members must agree on everything except ``rhs_seed`` and
        ``progress_every`` (the engine's batch key guarantees it).
        Chaos plans are never batched.
    job_ids : sequence of str
        Engine identities aligned with ``specs``; progress events carry
        the member's ``job_id`` so the engine can route them.
    attempt : int
        1-based attempt number (batched attempts are always first
        attempts — retries run solo).
    storage : str
        Storage format shared by the whole batch.
    emit : callable, optional
        Progress channel injected by the pool.

    Returns
    -------
    dict
        ``{"results": {job_id: payload}}`` with one solo-shaped result
        payload per member, plus batch-level bookkeeping.
    """
    global _ACTIVE_JOB, _JOBS_RUN
    specs = list(specs)
    job_ids = list(job_ids)
    if not specs or len(specs) != len(job_ids):
        raise ValueError("specs and job_ids must be equal-length and non-empty")
    batch_tag = "+".join(job_ids)
    if _ACTIVE_JOB is not None:
        raise IsolationError(
            f"worker started batch {batch_tag} while job {_ACTIVE_JOB} "
            "still owns this process — per-job state leaked"
        )
    _ACTIVE_JOB = batch_tag
    try:
        t0 = time.perf_counter()
        lead = specs[0]
        problem = make_problem(
            lead["matrix"], lead["scale"], target_rrn=lead.get("target_rrn")
        )
        columns = [_make_rhs(problem, spec.get("rhs_seed")) for spec in specs]
        target = (
            lead["target_rrn"]
            if lead.get("target_rrn") is not None
            else problem.target_rrn
        )

        tracer = Tracer()
        every: List[int] = [
            max(int(spec.get("progress_every", 25)), 1) for spec in specs
        ]
        emitted = 0

        def monitor(col, iteration, j, basis, implicit_rrn) -> None:
            nonlocal emitted
            if emit is None:
                return
            if iteration % every[col] != 0 and j != 0:
                return
            emitted += 1
            emit({
                "kind": "progress",
                "job_id": job_ids[col],
                "iteration": int(iteration),
                "restart_slot": int(j),
                "implicit_rrn": float(implicit_rrn),
                "basis_storage": getattr(basis, "storage", storage),
                "phase_seconds": {
                    phase: tracer.total_seconds(phase)
                    for phase in _PROGRESS_PHASES
                },
            })

        # batch members share the whole preconditioner config (it is
        # part of the engine's batch key), so one factorization serves
        # every column
        prec = None
        if lead.get("preconditioner", "none") != "none":
            prec = make_preconditioner(
                lead["preconditioner"],
                problem.a,
                storage=lead.get("prec_storage", "float64"),
                backend=lead.get("backend", "numpy"),
            )

        solver = CbGmres(
            problem.a,
            storage,
            m=lead["m"],
            max_iter=lead["max_iter"],
            spmv_format=lead.get("spmv_format", "csr"),
            basis_mode=lead.get("basis_mode", "cached"),
            backend=lead.get("backend", "numpy"),
            preconditioner=prec,
            tracer=tracer,
        )
        batch = solver.solve_batch(
            np.stack(columns, axis=1),
            target,
            record_history=False,
            monitor=monitor,
        )

        _JOBS_RUN += 1
        wall = float(time.perf_counter() - t0)
        counters = {
            str(k): (float(v) if isinstance(v, float) else int(v))
            for k, v in sorted(tracer.counters.items())
        }
        results: Dict[str, Any] = {}
        for job_id, result in zip(job_ids, batch.results):
            results[job_id] = {
                "job_id": job_id,
                "attempt": int(attempt),
                "x": result.x,
                "converged": bool(result.converged),
                "stalled": bool(result.stalled),
                "iterations": int(result.iterations),
                "final_rrn": float(result.final_rrn),
                "target_rrn": float(result.target_rrn),
                "storage_used": storage,
                "recoveries": int(result.recoveries),
                "breakdowns": len(result.breakdown_events),
                # wall clock + tracer are per-batch, shared by members
                "wall_seconds": wall,
                "progress_events": int(emitted),
                "worker_jobs_run": int(_JOBS_RUN),
                "batch_columns": len(job_ids),
                "counters": counters,
            }
        return {
            "results": results,
            "batch_columns": len(job_ids),
            "batched_spmv_calls": int(batch.batched_spmv_calls),
            "batched_basis_writes": int(batch.batched_basis_writes),
            "batched_ortho_steps": int(batch.batched_ortho_steps),
            "wall_seconds": wall,
        }
    finally:
        _ACTIVE_JOB = None


def _leak_state_for_tests(job_id: str) -> None:
    """Deliberately arm the isolation sentinel (tests only): the next
    job on this worker must fail with :class:`IsolationError`."""
    global _ACTIVE_JOB
    _ACTIVE_JOB = job_id
