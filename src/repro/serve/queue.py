"""Bounded admission with explicit backpressure.

The submission queue is the one place a service can trade latency for
survival, and the trade must be *explicit*: a full queue rejects new
work with a machine-readable reason — it never grows without bound, and
it never silently drops a job that was admitted.  The
:class:`AdmissionController` owns that policy for the engine: the bound
check, the drain/closed gates, the rejection taxonomy, and the
queue-wait statistics (p50/p95) that make backpressure *measurable* in
the serve health block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_DRAINING",
    "REJECT_CLOSED",
    "RejectedError",
    "QueueFullError",
    "DrainingError",
    "ClosedError",
    "AdmissionController",
]

REJECT_QUEUE_FULL = "queue_full"
REJECT_DRAINING = "draining"
REJECT_CLOSED = "closed"


class RejectedError(RuntimeError):
    """A submission was rejected; ``reason`` is machine-readable."""

    reason = "rejected"

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


class QueueFullError(RejectedError):
    """Backpressure: the bounded queue is at capacity."""

    reason = REJECT_QUEUE_FULL


class DrainingError(RejectedError):
    """The engine is draining and refuses new work."""

    reason = REJECT_DRAINING


class ClosedError(RejectedError):
    """The engine is shut down."""

    reason = REJECT_CLOSED


@dataclass
class AdmissionController:
    """Admission policy + accounting for the bounded submission queue.

    Not a container: the engine owns the actual job records; this class
    answers "may this job be admitted?" and keeps the tallies
    (accepted / rejected-by-reason / queue waits) the health block
    reports.  All calls happen under the engine lock.
    """

    max_queue: int
    accepted: int = 0
    rejected: Dict[str, int] = field(
        default_factory=lambda: {
            REJECT_QUEUE_FULL: 0,
            REJECT_DRAINING: 0,
            REJECT_CLOSED: 0,
        }
    )
    queue_waits_s: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")

    def admit(self, queued_now: int, draining: bool, closed: bool) -> None:
        """Raise the matching :class:`RejectedError` or count an accept.

        ``queued_now`` is the number of admitted-but-not-yet-running
        jobs (QUEUED + RETRY_WAIT); running jobs occupy workers, not
        queue slots.
        """
        if closed:
            self.rejected[REJECT_CLOSED] += 1
            raise ClosedError("engine is shut down")
        if draining:
            self.rejected[REJECT_DRAINING] += 1
            raise DrainingError("engine is draining; refusing new work")
        if queued_now >= self.max_queue:
            self.rejected[REJECT_QUEUE_FULL] += 1
            raise QueueFullError(
                f"submission queue is full ({queued_now}/{self.max_queue}); "
                "retry after in-flight jobs finish"
            )
        self.accepted += 1

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_waits_s.append(float(seconds))

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def wait_percentiles(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "max": ...}`` of observed queue
        waits (``None`` values before any job started)."""
        if not self.queue_waits_s:
            return {"p50": None, "p95": None, "max": None}
        waits = np.asarray(self.queue_waits_s, dtype=np.float64)
        return {
            "p50": float(np.percentile(waits, 50)),
            "p95": float(np.percentile(waits, 95)),
            "max": float(waits.max()),
        }
