"""Progress bus: per-job event streams for subscribers.

The WebCodecs shape named in the ROADMAP — configure → enqueue →
*callback per output* → flush — needs a delivery substrate: every job
emits a stream of :class:`ProgressEvent`s (state changes, per-restart
residuals and phase timings, terminal summaries) and subscribers tap
either one job's stream or the whole engine's.

Delivery is synchronous on the engine's supervisor thread (callbacks
must be quick and must not call back into the engine — same rule as any
event-loop callback).  A subscriber exception is contained: it detaches
that subscriber rather than poisoning the engine.  Each job also keeps
a bounded ring of its most recent events so late observers can catch
up, and :meth:`ProgressBus.flush` marks streams closed so a drained
engine's subscribers get a definitive end-of-stream signal.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["ProgressEvent", "ProgressBus"]


@dataclass(frozen=True)
class ProgressEvent:
    """One observation about one job (or the engine itself).

    ``kind`` vocabulary: ``state`` (lifecycle transition), ``progress``
    (per-restart residual/phase data from the worker), ``attempt``
    (dispatch/retry/degradation), ``result`` (terminal summary), and
    ``stream_closed`` (flush marker — the last event a subscriber sees).
    """

    seq: int
    job_id: Optional[str]
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    ts: float = field(default_factory=time.monotonic)


class _Subscription:
    __slots__ = ("token", "callback", "job_id")

    def __init__(self, token: int, callback, job_id: Optional[str]) -> None:
        self.token = token
        self.callback = callback
        self.job_id = job_id


class ProgressBus:
    """Publish/subscribe hub with bounded per-job replay buffers."""

    def __init__(self, buffer_events: int = 256) -> None:
        if buffer_events < 1:
            raise ValueError("buffer_events must be at least 1")
        self._seq = itertools.count()
        self._tokens = itertools.count()
        self._subs: Dict[int, _Subscription] = {}
        self._buffers: Dict[str, Deque[ProgressEvent]] = {}
        self._buffer_events = buffer_events
        self._closed = False
        #: events published (delivery-independent; health accounting)
        self.published = 0
        #: subscribers detached because their callback raised
        self.poisoned_subscribers = 0

    # -- subscription ---------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[ProgressEvent], None],
        job_id: Optional[str] = None,
    ) -> int:
        """Register ``callback``; ``job_id=None`` receives every event.

        Returns an opaque token for :meth:`unsubscribe`.
        """
        token = next(self._tokens)
        self._subs[token] = _Subscription(token, callback, job_id)
        return token

    def unsubscribe(self, token: int) -> bool:
        return self._subs.pop(token, None) is not None

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    # -- publishing -----------------------------------------------------

    def publish(
        self,
        job_id: Optional[str],
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> ProgressEvent:
        """Deliver an event to matching subscribers and buffer it."""
        event = ProgressEvent(
            seq=next(self._seq), job_id=job_id, kind=kind,
            payload=payload or {},
        )
        self.published += 1
        if job_id is not None:
            buf = self._buffers.setdefault(
                job_id, deque(maxlen=self._buffer_events)
            )
            buf.append(event)
        for sub in list(self._subs.values()):
            if sub.job_id is not None and sub.job_id != job_id:
                continue
            try:
                sub.callback(event)
            except Exception:
                # a broken subscriber must not poison the engine loop
                self._subs.pop(sub.token, None)
                self.poisoned_subscribers += 1
        return event

    def events(self, job_id: str) -> List[ProgressEvent]:
        """The buffered (most recent) events of one job."""
        return list(self._buffers.get(job_id, ()))

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self, job_ids: Optional[List[str]] = None) -> None:
        """End-of-stream: publish ``stream_closed`` per job, then one
        engine-level marker, and mark the bus closed.  Idempotent."""
        if self._closed:
            return
        for job_id in (job_ids if job_ids is not None else list(self._buffers)):
            self.publish(job_id, "stream_closed")
        self.publish(None, "stream_closed", {"scope": "engine"})
        self._closed = True
