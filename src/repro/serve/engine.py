"""The solve-service engine: supervised workers + hardened job lifecycle.

:class:`SolveEngine` is the ROADMAP's "solver-as-a-service" layer with
the robustness contract as the headline.  The shape follows the
WebCodecs encoder pattern (configure → enqueue → callback per output →
flush):

* **configure** — :class:`ServeConfig` fixes the worker count, queue
  bound, retry/backoff policy, deadlines and heartbeat windows;
* **enqueue** — :meth:`SolveEngine.submit` admits a
  :class:`~repro.serve.jobs.JobSpec` or rejects it *with a reason*
  (bounded queue: ``queue_full`` / ``draining`` / ``closed`` — the
  queue never grows without bound);
* **callback** — subscribers on the :class:`~repro.serve.bus.ProgressBus`
  receive per-restart progress events (residual + phase timings from
  the worker's own tracer), lifecycle transitions and terminal results;
* **flush** — :meth:`SolveEngine.drain` refuses new work, finishes every
  admitted job, flushes the progress streams, and shuts the pool down.

Hardening mechanisms, all engine-side (workers stay dumb):

* **deadlines** — a per-job wall budget counted from first dispatch;
  blown deadlines kill the worker (slot reclaimed) and end the job
  ``TIMED_OUT``;
* **hang detection** — progress events double as heartbeats; a running
  job whose worker goes silent past ``heartbeat_timeout_s`` is killed
  and treated as a crash (retryable);
* **bounded retry with backoff + jitter** — worker crashes, hangs and
  in-process solve errors are retried up to ``max_retries`` times with
  exponential backoff and deterministic, per-job seeded jitter;
* **precision degradation** — each retry escalates the attempt's
  storage format one step along the
  :data:`repro.robust.fallback.DEFAULT_CHAIN`
  (frsz2_16 → frsz2_32 → float64): degraded-precision results beat no
  results, and float64 is the correctness-guaranteeing terminal;
* **cooperative cancellation** — :meth:`SolveEngine.cancel` asks the
  worker to stop at its next progress tick and force-kills after a
  grace window, so cancellation always reclaims the worker;
* **supervised pool** — a worker process that dies is respawned by
  :class:`repro.parallel.SupervisedPool`; the pool never shrinks.

Threading model: one supervisor thread owns the pool and every state
transition; public methods only flip flags / append to the admission
queue under the engine lock, so there is exactly one writer to the
state machine and the bus.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..observe import NULL_TRACER, ScopedTracer
from ..parallel.pool import PoolTask, SupervisedPool
from ..robust.fallback import FallbackPolicy
from .bus import ProgressBus, ProgressEvent
from .jobs import AttemptRecord, JobRecord, JobSpec, JobState, TERMINAL_STATES
from .queue import AdmissionController, RejectedError
from .worker import run_solve_batch_job, run_solve_job

__all__ = ["ServeConfig", "SolveEngine"]

#: attempt outcomes that consume a retry instead of ending the job
_RETRYABLE_OUTCOMES = ("crashed", "hung", "error")


@dataclass(frozen=True)
class ServeConfig:
    """Engine configuration (the WebCodecs "configure" step).

    Parameters
    ----------
    workers : int
        Supervised worker processes.
    max_queue : int
        Bound on admitted-but-not-running jobs; submissions beyond it
        are rejected with ``queue_full`` (explicit backpressure).
    max_retries : int
        Retry budget per job for crashes/hangs/solve errors.
    backoff_base_s, backoff_cap_s : float
        Retry n waits ``base * 2**(n-1) + jitter`` seconds, jittered
        uniformly in ``[0, base)`` from a per-job seeded stream, capped
        at ``backoff_cap_s``.
    heartbeat_timeout_s : float
        A running job silent for this long is declared hung and killed.
        Must comfortably exceed the worker's inter-progress interval.
    default_deadline_s : float or None
        Whole-job wall deadline (from first dispatch) for specs that do
        not set their own; ``None`` = no deadline.
    cancel_grace_s : float
        After a cooperative cancel request, how long a worker may keep
        running before it is force-killed.
    degrade_on_retry : bool
        Escalate the storage format one fallback-chain step per retry.
    seed : int
        Root seed of the backoff jitter streams (determinism).
    coalesce : bool
        Opt-in throughput mode: queued jobs whose specs differ only in
        ``rhs_seed`` (same matrix, scale, solver configuration) are
        dispatched as **one** multi-RHS worker task running
        :meth:`~repro.solvers.gmres.CbGmres.solve_batch` — matrix build
        and FRSZ2 codec passes are paid once per batch.  Per-job results
        stay bit-identical to solo runs.  Chaos jobs, deadline jobs and
        retry attempts never coalesce; a cancelled batch member is
        finished engine-side while its peers keep computing.
    max_batch : int
        Largest coalesced batch (right-hand-side columns per task).
    """

    workers: int = 2
    max_queue: int = 64
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    heartbeat_timeout_s: float = 10.0
    default_deadline_s: Optional[float] = None
    cancel_grace_s: float = 0.5
    degrade_on_retry: bool = True
    seed: int = 0
    coalesce: bool = False
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.cancel_grace_s < 0:
            raise ValueError("cancel_grace_s must be non-negative")


class SolveEngine:
    """Accepts solve jobs, runs them on a supervised pool, streams
    progress, and guarantees every admitted job reaches a terminal
    state.  See the module docstring for the full contract."""

    def __init__(self, config: Optional[ServeConfig] = None, tracer=None) -> None:
        self.config = config or ServeConfig()
        self.tracer = tracer or NULL_TRACER
        self._scope = ScopedTracer(self.tracer, "serve")
        self.bus = ProgressBus()
        self.admission = AdmissionController(self.config.max_queue)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        self._ready: Deque[JobRecord] = deque()
        #: task id -> member jobs (singleton list for solo dispatches)
        self._by_task: Dict[int, List[JobRecord]] = {}
        self._task_of: Dict[str, PoolTask] = {}
        self._ids = itertools.count(1)
        self._draining = False
        self._closed = False
        self._stop = False
        # health tallies (supervisor-thread writes only)
        self.crashes_observed = 0
        self.hangs_detected = 0
        self.timeouts_enforced = 0
        self._pool = SupervisedPool(self.config.workers)
        self._thread = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # public API (any thread)
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit a job or raise a :class:`~repro.serve.queue.RejectedError`.

        Raises
        ------
        QueueFullError, DrainingError, ClosedError
            Backpressure / lifecycle rejections, each carrying a
            machine-readable ``reason``.
        """
        if not isinstance(spec, JobSpec):
            raise TypeError(f"expected a JobSpec, got {type(spec).__name__}")
        with self._lock:
            queued_now = sum(
                1 for j in self._jobs.values()
                if j.state in (JobState.QUEUED, JobState.RETRY_WAIT)
            )
            try:
                self.admission.admit(queued_now, self._draining, self._closed)
            except RejectedError as exc:
                self._scope.count(f"rejected.{exc.reason}")
                raise
            job = JobRecord(job_id=f"job-{next(self._ids):05d}", spec=spec)
            self._jobs[job.job_id] = job
            self._ready.append(job)
            self._scope.count("accepted")
            self.bus.publish(job.job_id, "state", {"state": JobState.QUEUED})
            self._cond.notify_all()
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job can still be cancelled.

        Queued and backoff-waiting jobs cancel immediately; running jobs
        are asked cooperatively and force-killed after the grace window.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return False
            if job.state in (JobState.QUEUED, JobState.RETRY_WAIT):
                if job in self._ready:
                    self._ready.remove(job)
                self._finish(job, JobState.CANCELLED, "cancelled before start")
                return True
            job.cancel_requested = True
            self._cond.notify_all()
            return True

    def subscribe(
        self,
        callback: Callable[[ProgressEvent], None],
        job_id: Optional[str] = None,
    ) -> int:
        with self._lock:
            return self.bus.subscribe(callback, job_id)

    def unsubscribe(self, token: int) -> bool:
        with self._lock:
            return self.bus.unsubscribe(token)

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new work, finish every admitted job, flush streams,
        stop the pool (the WebCodecs "flush").

        Returns True when everything terminated within ``timeout``
        (``None`` = wait indefinitely); on False the engine keeps
        draining — call again, or :meth:`close` with ``force=True``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            while any(not j.terminal for j in self._jobs.values()):
                wait_s = 0.1
                if deadline is not None:
                    wait_s = min(wait_s, deadline - time.monotonic())
                    if wait_s <= 0:
                        return False
                self._cond.wait(wait_s)
        self.close(force=False)
        return True

    def close(self, force: bool = True) -> None:
        """Stop the engine.  ``force=True`` cancels queued jobs and
        kills running ones (state CANCELLED, reason "engine closed");
        ``force=False`` assumes drain already emptied the engine.
        Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)
        # single-threaded from here: the supervisor is gone
        with self._lock:
            for job in self._jobs.values():
                if job.terminal:
                    continue
                if not force:
                    # drain() promised emptiness; a live job here is a bug
                    raise RuntimeError(
                        f"close(force=False) with live job {job.job_id} "
                        f"in state {job.state}"
                    )
                task = self._task_of.pop(job.job_id, None)
                if task is not None and not task.terminal:
                    self._pool.kill(task)
                if job in self._ready:
                    self._ready.remove(job)
                self._finish(job, JobState.CANCELLED, "engine closed")
            self._ready.clear()
            self.bus.flush(sorted(self._jobs))
            self._pool.shutdown()
            self._cond.notify_all()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close(force=True)

    # ------------------------------------------------------------------
    # supervisor thread: the only writer to pool + state machine
    # ------------------------------------------------------------------

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    return
                self._dispatch_locked()
                wait_s = self._next_wait_locked()
            events = self._pool.poll(timeout=wait_s)
            with self._lock:
                if self._stop:
                    return
                for event in events:
                    self._handle_pool_event(event)
                self._enforce_timers_locked()
                self._cond.notify_all()

    def _dispatch_locked(self) -> None:
        # cap by our own in-flight count, not pool.idle_workers: the pool
        # assigns queued tasks lazily, so idle_workers would let the whole
        # backlog flood in and sit pending with the heartbeat clock running
        while self._ready and len(self._by_task) < self.config.workers:
            job = self._ready.popleft()
            if job.terminal:
                continue
            batch = self._gather_batch_locked(job)
            if len(batch) > 1:
                self._start_batch_attempt(batch)
            else:
                self._start_attempt(job)

    def _batchable(self, job: JobRecord) -> bool:
        """Only pristine jobs coalesce: first attempt, no chaos plan, no
        deadline (a shared task cannot honor one member's wall budget),
        no pending cancel, and no adaptive-precision basis (each
        column's controller would diverge from the lockstep, so
        ``solve_batch`` refuses it — adaptive jobs always run solo)."""
        return (
            not job.attempts
            and job.spec.chaos is None
            and job.spec.storage != "adaptive"
            and self._deadline_of(job) is None
            and not job.cancel_requested
        )

    def _batch_key(self, job: JobRecord):
        key = job.spec.to_dict()
        key.pop("rhs_seed")        # the one thing members may vary
        key.pop("progress_every")  # per-column in the batch worker
        return tuple(sorted(key.items()))

    def _gather_batch_locked(self, job: JobRecord) -> List[JobRecord]:
        batch = [job]
        if not self.config.coalesce or not self._batchable(job):
            return batch
        key = self._batch_key(job)
        for peer in list(self._ready):
            if len(batch) >= self.config.max_batch:
                break
            if peer.terminal or not self._batchable(peer):
                continue
            if self._batch_key(peer) == key:
                self._ready.remove(peer)
                batch.append(peer)
        return batch

    def _attempt_storage(self, job: JobRecord, attempt_index: int) -> str:
        if not self.config.degrade_on_retry:
            return job.spec.storage
        chain = FallbackPolicy().chain_from(job.spec.storage).chain
        return chain[min(attempt_index - 1, len(chain) - 1)]

    def _start_attempt(self, job: JobRecord) -> None:
        attempt_index = len(job.attempts) + 1
        storage = self._attempt_storage(job, attempt_index)
        if job.attempts and storage != job.attempts[-1].storage:
            job.degradations += 1
            self._scope.scope(f"job.{job.job_id}").count("degradations")
        task = self._pool.submit(
            run_solve_job,
            dict(
                spec=job.spec.to_dict(),
                job_id=job.job_id,
                attempt=attempt_index,
                storage=storage,
            ),
            label=f"{job.job_id}[attempt {attempt_index}]",
            emit_kwarg="emit",
        )
        now = time.monotonic()
        job.attempts.append(
            AttemptRecord(index=attempt_index, storage=storage, started_at=now)
        )
        if job.first_started_at is None:
            job.first_started_at = now
            self.admission.record_queue_wait(now - job.submitted_at)
        job.last_event_at = now
        job.transition(JobState.RUNNING)
        self._by_task[task.id] = [job]
        self._task_of[job.job_id] = task
        self._scope.scope(f"job.{job.job_id}").count("attempts")
        self.bus.publish(job.job_id, "attempt", {
            "attempt": attempt_index, "storage": storage,
        })
        self.bus.publish(job.job_id, "state", {"state": JobState.RUNNING})

    def _start_batch_attempt(self, batch: List[JobRecord]) -> None:
        # batched attempts are always first attempts (see _batchable),
        # so no degradation bookkeeping applies
        storage = batch[0].spec.storage
        task = self._pool.submit(
            run_solve_batch_job,
            dict(
                specs=[j.spec.to_dict() for j in batch],
                job_ids=[j.job_id for j in batch],
                attempt=1,
                storage=storage,
            ),
            label=f"{batch[0].job_id}+{len(batch) - 1}[batch attempt 1]",
            emit_kwarg="emit",
        )
        now = time.monotonic()
        for job in batch:
            job.attempts.append(
                AttemptRecord(index=1, storage=storage, started_at=now)
            )
            job.first_started_at = now
            self.admission.record_queue_wait(now - job.submitted_at)
            job.last_event_at = now
            job.transition(JobState.RUNNING)
            self._task_of[job.job_id] = task
            self._scope.scope(f"job.{job.job_id}").count("attempts")
            self.bus.publish(job.job_id, "attempt", {
                "attempt": 1, "storage": storage,
                "batched_with": len(batch),
            })
            self.bus.publish(job.job_id, "state", {"state": JobState.RUNNING})
        self._by_task[task.id] = list(batch)
        self._scope.count("batches_dispatched")
        self._scope.count("batched_jobs", len(batch))

    def _next_wait_locked(self) -> float:
        wait_s = 0.05
        now = time.monotonic()
        for job in self._jobs.values():
            if job.terminal:
                continue
            deadline = self._deadline_of(job)
            if deadline is not None and job.first_started_at is not None:
                wait_s = min(wait_s, job.first_started_at + deadline - now)
            if job.state == JobState.RUNNING and job.last_event_at is not None:
                wait_s = min(
                    wait_s,
                    job.last_event_at + self.config.heartbeat_timeout_s - now,
                )
            if job.state == JobState.RETRY_WAIT and job.retry_at is not None:
                wait_s = min(wait_s, job.retry_at - now)
            if job.cancel_requested and job.cancel_requested_at is not None:
                wait_s = min(
                    wait_s,
                    job.cancel_requested_at + self.config.cancel_grace_s - now,
                )
        return max(wait_s, 0.005)

    def _deadline_of(self, job: JobRecord) -> Optional[float]:
        if job.spec.deadline_s is not None:
            return job.spec.deadline_s
        return self.config.default_deadline_s

    # -- pool events ----------------------------------------------------

    def _handle_pool_event(self, event) -> None:
        members = self._by_task.get(event.task.id)
        if members is None:
            return
        live = [j for j in members if not j.terminal]
        now = time.monotonic()
        if event.kind == "started":
            for job in live:
                job.last_event_at = now
        elif event.kind == "progress":
            payload = dict(event.payload or {})
            payload.setdefault("kind", "progress")
            # any member's progress proves the shared worker is alive
            for job in live:
                job.last_event_at = now
            if len(members) == 1:
                targets = live
            else:  # batched events are routed by the job_id they carry
                tid = payload.get("job_id")
                targets = [j for j in live if j.job_id == tid]
            for job in targets:
                self._scope.scope(f"job.{job.job_id}").count("progress_events")
                self.bus.publish(job.job_id, "progress", payload)
        elif event.kind == "done":
            self._release_members(event.task, members)
            if len(members) == 1:
                job = members[0]
                if job.terminal:
                    return
                job.attempts[-1].ended_at = now
                job.attempts[-1].outcome = "done"
                job.result = event.task.result
                self._finish(job, JobState.DONE)
            else:
                payloads = (event.task.result or {}).get("results", {})
                for job in live:
                    job.attempts[-1].ended_at = now
                    payload = payloads.get(job.job_id)
                    if payload is None:
                        self._attempt_failed(
                            job, "error",
                            "batch result missing this job's column",
                        )
                    else:
                        job.attempts[-1].outcome = "done"
                        job.result = payload
                        self._finish(job, JobState.DONE)
        elif event.kind == "cancelled":
            self._release_members(event.task, members)
            for job in live:
                job.attempts[-1].ended_at = now
                job.attempts[-1].outcome = "cancelled"
                self._finish(job, JobState.CANCELLED, "cancelled cooperatively")
        elif event.kind == "error":
            self._release_members(event.task, members)
            for job in live:
                self._attempt_failed(job, "error", repr(event.task.error))
        elif event.kind == "crashed":
            self.crashes_observed += 1
            self._scope.count("worker_crashes")
            self._release_members(event.task, members)
            for job in live:
                self._attempt_failed(
                    job, "crashed",
                    f"worker process died (exit code {event.task.exitcode})",
                )

    def _release_task(self, job: JobRecord) -> Optional[PoolTask]:
        """Detach one job from its task; drops the task's member entry
        when the last member leaves.  Returns the task (if any)."""
        task = self._task_of.pop(job.job_id, None)
        if task is not None:
            members = self._by_task.get(task.id)
            if members is not None:
                remaining = [j for j in members if j is not job]
                if remaining:
                    self._by_task[task.id] = remaining
                else:
                    self._by_task.pop(task.id, None)
        return task

    def _release_members(self, task, members: List[JobRecord]) -> None:
        self._by_task.pop(task.id, None)
        for job in members:
            held = self._task_of.get(job.job_id)
            if held is not None and held.id == task.id:
                self._task_of.pop(job.job_id)

    # -- failure/retry path ---------------------------------------------

    def _backoff_s(self, job: JobRecord, retry_index: int) -> float:
        base = self.config.backoff_base_s
        # deterministic jitter: a per-(engine seed, job, retry) stream
        job_seq = int(job.job_id.rsplit("-", 1)[-1])
        rng = np.random.default_rng((self.config.seed, job_seq, retry_index))
        jitter = float(rng.uniform(0.0, base)) if base > 0 else 0.0
        return min(base * (2 ** (retry_index - 1)) + jitter,
                   self.config.backoff_cap_s)

    def _attempt_failed(self, job: JobRecord, outcome: str, detail: str) -> None:
        attempt = job.attempts[-1]
        attempt.ended_at = time.monotonic()
        attempt.outcome = outcome
        attempt.error = detail
        self.bus.publish(job.job_id, "attempt", {
            "attempt": attempt.index, "storage": attempt.storage,
            "outcome": outcome, "error": detail,
        })
        if job.cancel_requested:
            self._finish(job, JobState.CANCELLED, "cancelled during retry")
            return
        budget = (
            job.spec.max_retries
            if job.spec.max_retries is not None
            else self.config.max_retries
        )
        if outcome in _RETRYABLE_OUTCOMES and job.retries < budget:
            job.retries += 1
            self._scope.count("retries")
            self._scope.scope(f"job.{job.job_id}").count("retries")
            delay = self._backoff_s(job, job.retries)
            job.retry_at = time.monotonic() + delay
            job.transition(JobState.RETRY_WAIT)
            self.bus.publish(job.job_id, "state", {
                "state": JobState.RETRY_WAIT, "retry_in_s": delay,
                "retry": job.retries,
            })
        else:
            self._finish(
                job, JobState.FAILED,
                f"attempt {attempt.index} {outcome}: {detail} "
                f"(retry budget {budget} exhausted)"
                if outcome in _RETRYABLE_OUTCOMES
                else f"attempt {attempt.index} {outcome}: {detail}",
            )

    def _finish(self, job: JobRecord, state: str, reason: Optional[str] = None) -> None:
        job.transition(state, reason)
        self._scope.count(f"jobs.{state}")
        self.bus.publish(job.job_id, "state", {
            "state": state, "reason": reason,
        })
        self.bus.publish(job.job_id, "result", job.snapshot())
        self._cond.notify_all()

    # -- timers ---------------------------------------------------------

    def _enforce_timers_locked(self) -> None:
        now = time.monotonic()
        for job in list(self._jobs.values()):
            if job.terminal:
                continue
            deadline = self._deadline_of(job)
            over_deadline = (
                deadline is not None
                and job.first_started_at is not None
                and now - job.first_started_at > deadline
            )
            if job.state == JobState.RUNNING:
                task = self._task_of.get(job.job_id)
                members = self._by_task.get(task.id) if task is not None else None
                batched = members is not None and len(members) > 1
                if over_deadline:
                    self.timeouts_enforced += 1
                    self._scope.count("deadline_kills")
                    if task is not None:
                        self._pool.kill(task)
                    self._release_task(job)
                    job.attempts[-1].ended_at = now
                    job.attempts[-1].outcome = "timed_out"
                    self._finish(
                        job, JobState.TIMED_OUT,
                        f"exceeded {deadline:g}s deadline",
                    )
                    continue
                if job.cancel_requested:
                    if batched:
                        # detach the member engine-side; the shared task
                        # keeps computing for its peers, and is only
                        # killed when no live member remains
                        self._release_task(job)
                        job.attempts[-1].ended_at = now
                        job.attempts[-1].outcome = "cancelled"
                        self._finish(
                            job, JobState.CANCELLED,
                            "cancelled; batch peers continue",
                        )
                        if (
                            task is not None
                            and task.id not in self._by_task
                            and not task.terminal
                        ):
                            self._pool.kill(task)
                    elif job.cancel_requested_at is None:
                        job.cancel_requested_at = now
                        if task is not None:
                            self._pool.request_cancel(task)
                    elif now - job.cancel_requested_at > self.config.cancel_grace_s:
                        if task is not None:
                            self._pool.kill(task)
                        self._release_task(job)
                        job.attempts[-1].ended_at = now
                        job.attempts[-1].outcome = "cancelled"
                        self._finish(
                            job, JobState.CANCELLED,
                            "cancel grace expired; worker killed",
                        )
                    continue
                if (
                    job.last_event_at is not None
                    and now - job.last_event_at > self.config.heartbeat_timeout_s
                ):
                    self.hangs_detected += 1
                    self._scope.count("hang_kills")
                    if task is not None:
                        self._pool.kill(task)
                    peers = (
                        [m for m in members if not m.terminal]
                        if batched
                        else [job]
                    )
                    for peer in peers:
                        self._release_task(peer)
                        self._attempt_failed(
                            peer, "hung",
                            f"no heartbeat for "
                            f"{self.config.heartbeat_timeout_s:g}s",
                        )
            elif job.state == JobState.RETRY_WAIT:
                if over_deadline:
                    self._finish(
                        job, JobState.TIMED_OUT,
                        f"exceeded {deadline:g}s deadline during backoff",
                    )
                elif job.retry_at is not None and now >= job.retry_at:
                    job.retry_at = None
                    job.transition(JobState.QUEUED)
                    self.bus.publish(job.job_id, "state",
                                     {"state": JobState.QUEUED, "requeue": True})
                    self._ready.append(job)
