"""Soak harness: hundreds of mixed jobs + seeded chaos, invariants asserted.

The robustness contract is only believable under sustained load, so the
soak run queues a few hundred solves with mixed configurations (matrix,
storage format, SpMV format, basis mode, restart length, RHS seed),
injects a deterministic subset of faults (worker crashes, hangs,
in-process solve errors, data-level bit flips), cancels a few jobs
mid-flight, and then checks the invariants that define the contract:

* every admitted job reaches a terminal state — nothing wedges;
* no cross-job state leakage (the worker isolation sentinel never
  fires, and a sample of non-faulted jobs is **bit-identical** to
  direct in-process ``CbGmres.solve`` runs);
* every crash/hang/solve-error chaos job was retried with backoff and
  finished ``DONE`` — faults on one job never abort unrelated jobs;
* backpressure engaged (the bounded queue rejected with
  ``queue_full`` at least once when the submit rate exceeds drain).

The run writes the serve health block (plus the soak summary) to
``BENCH_serve.json`` — the service-side trajectory metric across PRs.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..robust.chaos import ChaosSpec
from .engine import ServeConfig, SolveEngine
from .health import build_serve_health, write_serve_report
from .jobs import JobRecord, JobSpec, JobState
from .queue import QueueFullError
from .worker import run_solve_job

__all__ = ["SoakError", "build_soak_specs", "run_soak"]

#: fast smoke-scale suite matrices used for the job mix
_MATRICES = ("cfd2", "parabolic_fem", "lung2", "atmosmodd")
_STORAGES = ("frsz2_16", "frsz2_32", "float64")
_SPMV_FORMATS = ("csr", "ell", "sell", "auto")
_BASIS_MODES = ("cached", "cached", "cached", "streaming")


class SoakError(AssertionError):
    """A soak invariant failed; the message lists every violation."""


def _chaos_for(index: int) -> Optional[Dict[str, Any]]:
    """Deterministic chaos plan: disjoint residue classes pick the
    fault kind; every plan targets attempt 1 only, so the retry runs
    clean and is expected to succeed."""
    if index % 13 == 5:
        return ChaosSpec("worker_crash", at_iteration=5, only_attempt=1).to_dict()
    if index % 29 == 11:
        return ChaosSpec("solve_error", at_iteration=5, only_attempt=1).to_dict()
    if index % 61 == 17:
        return ChaosSpec("worker_hang", at_iteration=5, only_attempt=1).to_dict()
    if index % 37 == 19:
        # data-level fault: the solver's own recovery path handles it
        return ChaosSpec("payload_bitflip", rate=0.01, seed=index,
                         only_attempt=1).to_dict()
    return None


def build_soak_specs(jobs: int, seed: int = 0) -> List[JobSpec]:
    """The deterministic mixed-config job list for a soak of ``jobs``."""
    specs = []
    for i in range(jobs):
        specs.append(JobSpec(
            matrix=_MATRICES[i % len(_MATRICES)],
            storage=_STORAGES[i % len(_STORAGES)],
            scale="smoke",
            m=20 if i % 2 else 30,
            max_iter=400,
            rhs_seed=seed * 100_000 + i,
            spmv_format=_SPMV_FORMATS[i % len(_SPMV_FORMATS)],
            basis_mode=_BASIS_MODES[i % len(_BASIS_MODES)],
            progress_every=5,
            chaos=_chaos_for(i),
        ))
    return specs


def _is_process_chaos(spec: JobSpec) -> bool:
    return spec.chaos is not None and spec.chaos["kind"] in (
        "worker_crash", "worker_hang", "solve_error"
    )


def run_soak(
    jobs: int = 200,
    workers: int = 4,
    seed: int = 0,
    max_queue: int = 32,
    verify_every: int = 10,
    cancel_every: int = 41,
    heartbeat_timeout_s: float = 2.0,
    deadline_s: float = 120.0,
    out: Optional[str] = None,
    check: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the soak; returns ``{"serve": health, "soak": summary}``.

    ``verify_every`` samples every n-th clean job for the bit-identity
    check against a direct in-process solve.  With ``check=True`` (the
    default) any invariant violation raises :class:`SoakError` after
    the engine is shut down.
    """
    say = log or (lambda _msg: None)
    specs = build_soak_specs(jobs, seed)
    config = ServeConfig(
        workers=workers,
        max_queue=max_queue,
        max_retries=2,
        backoff_base_s=0.02,
        backoff_cap_s=0.5,
        heartbeat_timeout_s=heartbeat_timeout_s,
        default_deadline_s=deadline_s,
        cancel_grace_s=0.5,
        seed=seed,
    )
    t0 = time.perf_counter()
    records: List[JobRecord] = []
    cancelled_ids = []
    say(f"soak: {jobs} jobs on {workers} workers (queue bound {max_queue})")
    with SolveEngine(config) as engine:
        for i, spec in enumerate(specs):
            while True:
                try:
                    record = engine.submit(spec)
                    break
                except QueueFullError:
                    # backpressure engaged: wait for the queue to drain a slot
                    time.sleep(0.005)
            records.append(record)
            if cancel_every and i % cancel_every == cancel_every // 2:
                engine.cancel(record.job_id)
                cancelled_ids.append(record.job_id)
        drained = engine.drain(timeout=600.0)
        health = build_serve_health(engine)
        if not drained:
            engine.close(force=True)
    wall_s = time.perf_counter() - t0
    say(f"soak: drained={drained} in {wall_s:.1f}s; verifying invariants")

    failures: List[str] = []
    if not drained:
        failures.append("drain timed out; engine had non-terminal jobs")
    for record in records:
        if not record.terminal:
            failures.append(f"{record.job_id} not terminal: {record.state}")

    # fault jobs: retried with backoff, then succeeded — and their
    # failure never aborted unrelated jobs (checked by the clean-job
    # invariant below)
    chaos_process = [
        r for r, s in zip(records, specs) if _is_process_chaos(s)
    ]
    for record in chaos_process:
        if record.job_id in cancelled_ids:
            continue
        if record.state != JobState.DONE:
            failures.append(
                f"{record.job_id} (chaos {record.spec.chaos['kind']}) "
                f"ended {record.state}: {record.reason}"
            )
        elif len(record.attempts) < 2 or record.retries < 1:
            failures.append(
                f"{record.job_id} (chaos {record.spec.chaos['kind']}) "
                f"was not retried (attempts={len(record.attempts)})"
            )

    clean = [
        r for r, s in zip(records, specs)
        if s.chaos is None and r.job_id not in cancelled_ids
    ]
    for record in clean:
        if record.state != JobState.DONE:
            failures.append(
                f"{record.job_id} (clean) ended {record.state}: "
                f"{record.reason}"
            )

    for record in records:
        for attempt in record.attempts:
            if attempt.error and "IsolationError" in attempt.error:
                failures.append(
                    f"{record.job_id} attempt {attempt.index}: cross-job "
                    f"state leakage: {attempt.error}"
                )

    # bit-identity: a served clean job's solution must equal a direct
    # in-process run of the identical spec, bit for bit
    verified = mismatched = 0
    # single-attempt jobs only: a retried job may have been degraded to
    # a different storage format, which changes the (correct) bits
    sample = [
        r for r in clean
        if r.state == JobState.DONE and len(r.attempts) == 1
    ][::max(verify_every, 1)]
    for record in sample:
        reference = run_solve_job(
            record.spec.to_dict(), job_id="soak-ref", attempt=1,
            storage=record.spec.storage,
        )
        served = record.result
        if served is None:
            failures.append(f"{record.job_id} done without a result payload")
            continue
        same = (
            np.array_equal(served["x"], reference["x"])
            and served["iterations"] == reference["iterations"]
            and served["final_rrn"] == reference["final_rrn"]
        )
        verified += 1
        if not same:
            mismatched += 1
            failures.append(
                f"{record.job_id} not bit-identical to direct solve "
                f"(iters {served['iterations']} vs "
                f"{reference['iterations']})"
            )
    say(f"soak: bit-identity verified on {verified} jobs "
        f"({mismatched} mismatches)")

    summary = {
        "jobs": jobs,
        "workers": workers,
        "seed": seed,
        "wall_seconds": round(wall_s, 3),
        "chaos_jobs": sum(1 for s in specs if s.chaos is not None),
        "process_chaos_jobs": len(chaos_process),
        "cancel_requests": len(cancelled_ids),
        "backpressure_rejections": health["jobs"]["rejected"]["queue_full"],
        "bit_identity_checked": verified,
        "bit_identity_mismatches": mismatched,
        "invariant_failures": failures,
    }
    report = {"serve": health, "soak": summary}
    if out is not None:
        write_serve_report(out, health, soak=summary)
        say(f"soak: report written to {out}")
    if check and failures:
        raise SoakError(
            "soak invariants violated:\n  " + "\n  ".join(failures)
        )
    return report
