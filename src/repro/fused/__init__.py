"""Fused compressed-basis kernels (tile-streaming ``V^T w`` / ``V y``)."""

from .batch import BatchTileReader, axpy_batch, dot_basis_batch
from .kernels import (
    DEFAULT_TILE_ELEMS,
    CachedTileReader,
    FusedOpLog,
    StreamingTileReader,
    TileReader,
    axpy_fused,
    combine_fused,
    dot_basis_fused,
    norm_fused,
    tile_grid,
)

__all__ = [
    "DEFAULT_TILE_ELEMS",
    "BatchTileReader",
    "CachedTileReader",
    "FusedOpLog",
    "StreamingTileReader",
    "TileReader",
    "axpy_batch",
    "axpy_fused",
    "combine_fused",
    "dot_basis_batch",
    "dot_basis_fused",
    "norm_fused",
    "tile_grid",
]
