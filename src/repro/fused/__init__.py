"""Fused compressed-basis kernels (tile-streaming ``V^T w`` / ``V y``)."""

from .kernels import (
    DEFAULT_TILE_ELEMS,
    CachedTileReader,
    FusedOpLog,
    StreamingTileReader,
    TileReader,
    axpy_fused,
    combine_fused,
    dot_basis_fused,
    norm_fused,
    tile_grid,
)

__all__ = [
    "DEFAULT_TILE_ELEMS",
    "CachedTileReader",
    "FusedOpLog",
    "StreamingTileReader",
    "TileReader",
    "axpy_fused",
    "combine_fused",
    "dot_basis_fused",
    "norm_fused",
    "tile_grid",
]
