"""Batched fused tile kernels for the multi-RHS solve path.

A batched Arnoldi step orthogonalizes one new vector per right-hand
side against that RHS's own stored basis.  All the active bases sit at
the same depth ``j`` (the batch solver runs its columns in lockstep),
so one decoded tile pass can serve every column: the scratch buffer
stacks the per-column ``(j, tile)`` tiles into one C-contiguous
``(C*j, tile)`` rectangle, and — when every basis streams FRSZ2
payloads — the whole stack decodes in a **single**
:meth:`~repro.core.frsz2.FRSZ2.decompress_blocks_batch` codec pass per
tile (via :func:`repro.accessor.frsz2_accessor.read_frsz2_tiles` over
the flattened ``C*j`` accessor list).  That is the throughput claim of
the batched path: the FRSZ2 integer decode is paid once per batch
instead of once per vector.

Bit-identity contract
---------------------
Column ``c`` of every batched kernel is bit-identical to the solo
kernel in :mod:`repro.fused.kernels` run against column ``c`` alone:

* the row block ``scratch[c*j:(c+1)*j, :tl]`` of the stacked scratch
  has exactly the strides of a solo ``(j, tile)`` scratch view (row
  stride = the full tile width), so the per-tile BLAS calls see
  byte-identical operand layouts;
* the right-hand-side block is Fortran-ordered, so each column slice
  ``W[t0:t1, c]`` is contiguous like a solo ``w[t0:t1]``;
* per-tile accumulation order is the solo kernels' fixed tile grid.

Each column also bills its own :class:`~repro.fused.kernels.FusedOpLog`
and tracer counters exactly as a solo call would (including the solo
``j * tile`` scratch share), so per-column work logs — and therefore
the timing model's inputs — match a loop of independent solves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..observe import NULL_TRACER
from .kernels import (
    DEFAULT_TILE_ELEMS,
    FusedOpLog,
    StreamingTileReader,
    TileReader,
    tile_grid,
)

__all__ = [
    "BatchTileReader",
    "dot_basis_batch",
    "axpy_batch",
]


class BatchTileReader:
    """Stacked tile source over one reader per batch column.

    ``load`` fills ``out[c*j:(c+1)*j, :t1-t0]`` with column ``c``'s
    leading-``j`` basis tiles.  When every sub-reader is a
    :class:`~repro.fused.kernels.StreamingTileReader`, the flattened
    ``C*j`` accessor list decodes in one batched codec pass per tile;
    otherwise each sub-reader loads its own row block (bit-identical —
    the batched decode is exchangeable with per-accessor reads).
    """

    def __init__(self, readers: Sequence[TileReader]) -> None:
        readers = list(readers)
        if not readers:
            raise ValueError("BatchTileReader needs at least one reader")
        self.readers = readers
        self.j = int(readers[0].j)
        self.n = int(readers[0].n)
        for r in readers[1:]:
            if r.j != self.j or r.n != self.n:
                raise ValueError("batch readers must share n and j")
        self._flat: "Optional[list]" = None
        if all(isinstance(r, StreamingTileReader) for r in readers):
            self._flat = [a for r in readers for a in r.accessors]
            from ..accessor.frsz2_accessor import read_frsz2_tiles

            self._batched = read_frsz2_tiles

    @property
    def columns(self) -> int:
        return len(self.readers)

    def load(self, t0: int, t1: int, out: np.ndarray) -> None:
        if self._flat is not None and self._batched(self._flat, t0, t1, out):
            return
        j = self.j
        for c, r in enumerate(self.readers):
            r.load(t0, t1, out[c * j:(c + 1) * j])


def _stacked_scratch(
    reader: BatchTileReader, tile_elems: int, logs: Optional[Sequence[FusedOpLog]]
) -> np.ndarray:
    tile = min(tile_elems, max(reader.n, 1))
    scratch = np.empty((reader.columns * reader.j, tile))
    if logs is not None:
        # each column observes its own (j, tile) share — what the solo
        # kernel would have allocated for that column alone
        share = reader.j * tile * 8
        for log in logs:
            if log is not None:
                log.observe_scratch(share)
    return scratch


def _count_batch(
    tracer,
    logs: Optional[Sequence[FusedOpLog]],
    kind: str,
    j: int,
    tiles: int,
    n: int,
    columns: int,
) -> None:
    """Bill each column exactly like one solo fused call."""
    if logs is not None:
        for log in logs:
            if log is None:
                continue
            setattr(log, f"{kind}_calls", getattr(log, f"{kind}_calls") + 1)
            setattr(log, f"{kind}_vectors", getattr(log, f"{kind}_vectors") + j)
            log.tiles += tiles
            log.values += j * n
    if tracer.enabled:
        tracer.count(f"basis.fused.{kind}_calls", columns)
        tracer.count("basis.fused.tiles", tiles * columns)
        tracer.count("basis.fused.values", j * n * columns)


def dot_basis_batch(
    reader: BatchTileReader,
    W: np.ndarray,
    cols: Sequence[int],
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    logs: Optional[Sequence[FusedOpLog]] = None,
) -> np.ndarray:
    """``V_j^T w`` for every batch column in one tile sweep.

    Parameters
    ----------
    reader : BatchTileReader
        Stacked tile source; ``reader.readers[i]`` serves ``cols[i]``.
    W : ndarray, shape (n, B), Fortran order
        Vector block; only columns ``cols`` participate.
    cols : sequence of int
        Column indices into ``W``, aligned with ``reader.readers``.
    tile_elems, tracer, logs
        As the solo kernels; ``logs[i]`` is column ``i``'s work log.

    Returns
    -------
    ndarray, shape (j, C), Fortran order
        ``out[:, i]`` is bit-identical to
        ``dot_basis_fused(reader.readers[i], W[:, cols[i]], ...)``.
    """
    j = reader.j
    C = len(cols)
    H = np.zeros((j, C), order="F")
    if j == 0 or C == 0:
        return H
    grid = tile_grid(reader.n, tile_elems)
    scratch = _stacked_scratch(reader, tile_elems, logs)
    for t0, t1 in grid:
        reader.load(t0, t1, scratch)
        tl = t1 - t0
        for i, col in enumerate(cols):
            # the (j, tl) row-block view has solo-scratch strides, and
            # the F-order column slice is contiguous: same BLAS call,
            # same bits as the solo kernel
            H[:, i] += scratch[i * j:(i + 1) * j, :tl] @ W[t0:t1, col]
    _count_batch(tracer, logs, "dot", j, len(grid), reader.n, C)
    return H


def axpy_batch(
    reader: BatchTileReader,
    Y: np.ndarray,
    W: np.ndarray,
    cols: Sequence[int],
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    logs: Optional[Sequence[FusedOpLog]] = None,
) -> np.ndarray:
    """``W[:, c] -= V_j y_c`` in place for every batch column.

    ``Y`` is the ``(j, C)`` coefficient block from
    :func:`dot_basis_batch`; column ``i`` applies to ``W[:, cols[i]]``.
    Bit-identical per column to the solo
    :func:`~repro.fused.kernels.axpy_fused`.
    """
    j = reader.j
    C = len(cols)
    if j == 0 or C == 0:
        return W
    grid = tile_grid(reader.n, tile_elems)
    scratch = _stacked_scratch(reader, tile_elems, logs)
    yjs: List[np.ndarray] = [
        np.ascontiguousarray(Y[:j, i], dtype=np.float64) for i in range(C)
    ]
    for t0, t1 in grid:
        reader.load(t0, t1, scratch)
        tl = t1 - t0
        for i, col in enumerate(cols):
            W[t0:t1, col] -= yjs[i] @ scratch[i * j:(i + 1) * j, :tl]
    _count_batch(tracer, logs, "axpy", j, len(grid), reader.n, C)
    return W


# Backend-shared registration, mirroring repro.fused.kernels: the
# batched tile kernels are the numpy entries here and the identical
# callables under "jit" (see repro.jit.dispatch._ensure_jit_kernels).
from ..jit import dispatch as _dispatch  # noqa: E402

_dispatch.register_kernel("fused.dot_basis_batch", "numpy", dot_basis_batch)
_dispatch.register_kernel("fused.axpy_batch", "numpy", axpy_batch)
