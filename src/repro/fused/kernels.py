"""Fused compressed-basis kernels (paper Section IV, Fig. 1 steps 4/18).

The paper's central performance claim is *fusion*: FRSZ2 decompression
happens in-register inside the orthogonalization and solution-update
kernels, so the compressed Krylov basis is never materialized as float64
in main memory.  This module reproduces that kernel structure in NumPy:
``dot_basis_fused`` (``V^T w``), ``combine_fused`` (``V y``),
``axpy_fused`` (``w -= V y``) and ``norm_fused`` stream over the stored
basis one *tile* at a time — a tile is a fixed run of storage blocks
decoded for **all** ``j`` vectors at once into a small scratch buffer —
and accumulate the result tile by tile.  The float64 working set is
``O(tile x j)`` instead of the ``O(n x j)`` a materialized basis costs.

Determinism contract
--------------------
Floating-point accumulation order is fixed by the tile grid, the scratch
layout (one C-contiguous ``(j, tile)`` buffer) and the per-tile reduction,
*not* by where the tile's values came from.  A :class:`CachedTileReader`
(slicing a dense decompressed cache) and a :class:`StreamingTileReader`
(decoding compressed payloads on the fly) therefore produce bit-identical
results — the property the ``basis_mode={cached,streaming}`` knob of
:class:`~repro.solvers.basis.KrylovBasis` relies on, and the reason a
full-matrix BLAS call (whose internal blocking differs) is *not* used on
the cached side.

On a GPU each tile maps onto a thread block's registers: the paper's
"46 spare instructions" budget pays for the in-register decode while the
kernel stays bound by *compressed* memory traffic
(:func:`repro.gpu.kernels.fused_dot_cost` models exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER

__all__ = [
    "DEFAULT_TILE_ELEMS",
    "FusedOpLog",
    "TileReader",
    "CachedTileReader",
    "StreamingTileReader",
    "tile_grid",
    "dot_basis_fused",
    "combine_fused",
    "axpy_fused",
    "norm_fused",
]

#: default decoded-tile size in elements (64 FRSZ2 warp blocks); the
#: per-basis value is rounded up to the storage format's block size
DEFAULT_TILE_ELEMS = 2048


@dataclass
class FusedOpLog:
    """Work log of the fused kernels run against one basis.

    Mirrored into :class:`~repro.solvers.gmres.SolveStats` (the
    ``fused_*`` fields) so the GPU timing model can price the fused
    kernels from compressed traffic
    (:meth:`repro.gpu.timing.GmresTimingModel.fused_kernel_seconds`).
    """

    dot_calls: int = 0
    dot_vectors: int = 0
    axpy_calls: int = 0
    axpy_vectors: int = 0
    combine_calls: int = 0
    combine_vectors: int = 0
    norm_calls: int = 0
    tiles: int = 0
    #: decoded values streamed through scratch (sum of tile x j)
    values: int = 0
    #: largest float64 scratch buffer any fused call allocated
    peak_scratch_bytes: int = 0

    def observe_scratch(self, nbytes: int) -> None:
        if nbytes > self.peak_scratch_bytes:
            self.peak_scratch_bytes = int(nbytes)


def tile_grid(n: int, tile_elems: int) -> "List[tuple[int, int]]":
    """The fixed ``[t0, t1)`` tile ranges covering ``n`` elements.

    Both basis modes iterate exactly this grid, which is what pins the
    accumulation order (and hence bit-identity) between them.
    """
    if tile_elems < 1:
        raise ValueError("tile_elems must be positive")
    return [(t0, min(t0 + tile_elems, n)) for t0 in range(0, n, tile_elems)]


class TileReader:
    """Source of decoded basis tiles for the fused kernels.

    A reader exposes ``n`` (vector length), ``j`` (leading vectors) and
    :meth:`load`, which fills ``out[:, :t1 - t0]`` with rows
    ``v_0[t0:t1] ... v_{j-1}[t0:t1]`` in float64.  Subclasses differ only
    in where the values come from; they must deliver bit-identical
    values for the same stored basis.
    """

    n: int
    j: int

    def load(self, t0: int, t1: int, out: np.ndarray) -> None:
        raise NotImplementedError


class CachedTileReader(TileReader):
    """Tiles sliced out of a dense decompressed ``(n, m+1)`` cache."""

    def __init__(self, cache: np.ndarray, j: int) -> None:
        self.cache = cache
        self.n = int(cache.shape[0])
        self.j = int(j)

    def load(self, t0: int, t1: int, out: np.ndarray) -> None:
        out[:, : t1 - t0] = self.cache[t0:t1, : self.j].T


class StreamingTileReader(TileReader):
    """Tiles decoded on the fly from the accessors' compressed payloads.

    When every accessor is an FRSZ2 accessor over the same layout, the
    whole tile — all ``j`` vectors' blocks — decodes in **one** batched
    codec pass (:func:`repro.accessor.frsz2_accessor.read_frsz2_tiles`),
    the Python analog of the paper's warp-per-block fused decode.  Other
    formats fall back to one :meth:`~repro.accessor.base.VectorAccessor.
    read_tile` call per vector.
    """

    def __init__(self, accessors: Sequence, j: int) -> None:
        self.accessors = list(accessors[:j])
        self.j = int(j)
        self.n = int(accessors[0].n) if accessors else 0
        from ..accessor.frsz2_accessor import read_frsz2_tiles

        self._batched: "Callable[..., bool]" = read_frsz2_tiles

    def load(self, t0: int, t1: int, out: np.ndarray) -> None:
        if self._batched(self.accessors, t0, t1, out):
            return
        for row, acc in enumerate(self.accessors):
            out[row, : t1 - t0] = acc.read_tile(t0, t1)


def _scratch_for(reader: TileReader, tile_elems: int, log: Optional[FusedOpLog]) -> np.ndarray:
    scratch = np.empty((reader.j, min(tile_elems, max(reader.n, 1))))
    if log is not None:
        log.observe_scratch(scratch.nbytes)
    return scratch


def _count_call(
    tracer, log: Optional[FusedOpLog], kind: str, vectors: int, tiles: int, values: int
) -> None:
    if log is not None:
        setattr(log, f"{kind}_calls", getattr(log, f"{kind}_calls") + 1)
        if kind != "norm":
            setattr(log, f"{kind}_vectors", getattr(log, f"{kind}_vectors") + vectors)
        log.tiles += tiles
        log.values += values
    if tracer.enabled:
        tracer.count(f"basis.fused.{kind}_calls")
        tracer.count("basis.fused.tiles", tiles)
        tracer.count("basis.fused.values", values)


def dot_basis_fused(
    reader: TileReader,
    w: np.ndarray,
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    log: Optional[FusedOpLog] = None,
) -> np.ndarray:
    """``V_j^T w`` streamed tile-by-tile over the compressed basis.

    Parameters
    ----------
    reader : TileReader
        Decoded-tile source for the leading ``j`` basis vectors.
    w : ndarray, shape (n,), dtype float64
        The vector being orthogonalized (Fig. 1 step 4).
    tile_elems : int
        Tile size in elements; part of the determinism contract — the
        same value must be used by both basis modes.
    tracer, log
        Optional observe-layer tracer and :class:`FusedOpLog`.

    Returns
    -------
    ndarray, shape (j,)
        The projection coefficients, accumulated in tile order.
    """
    j = reader.j
    if j == 0:
        return np.zeros(0)
    grid = tile_grid(reader.n, tile_elems)
    scratch = _scratch_for(reader, tile_elems, log)
    h = np.zeros(j)
    for t0, t1 in grid:
        reader.load(t0, t1, scratch)
        h += scratch[:, : t1 - t0] @ w[t0:t1]
    _count_call(tracer, log, "dot", j, len(grid), j * reader.n)
    return h


def combine_fused(
    reader: TileReader,
    y: np.ndarray,
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    log: Optional[FusedOpLog] = None,
) -> np.ndarray:
    """``V_j y`` assembled tile-by-tile (Fig. 1 step 18).

    Every output element is produced by exactly one per-tile vec-mat
    product, so the result depends only on the tile grid and scratch
    layout — identical across basis modes.
    """
    j = reader.j
    out = np.zeros(reader.n)
    if j == 0:
        return out
    grid = tile_grid(reader.n, tile_elems)
    scratch = _scratch_for(reader, tile_elems, log)
    yj = np.ascontiguousarray(y[:j], dtype=np.float64)
    for t0, t1 in grid:
        reader.load(t0, t1, scratch)
        out[t0:t1] = yj @ scratch[:, : t1 - t0]
    _count_call(tracer, log, "combine", j, len(grid), j * reader.n)
    return out


def axpy_fused(
    reader: TileReader,
    y: np.ndarray,
    w: np.ndarray,
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    log: Optional[FusedOpLog] = None,
) -> np.ndarray:
    """``w -= V_j y`` in place, fused with the basis decode.

    Element-for-element this computes the same update as
    ``w - combine_fused(reader, y)`` (each element is touched once), but
    never materializes the ``(n,)`` product vector: the subtraction
    happens tile-by-tile while the decoded tile is scratch-resident —
    the fused-update kernel of the paper's solution update.
    """
    j = reader.j
    if j == 0:
        return w
    grid = tile_grid(reader.n, tile_elems)
    scratch = _scratch_for(reader, tile_elems, log)
    yj = np.ascontiguousarray(y[:j], dtype=np.float64)
    for t0, t1 in grid:
        reader.load(t0, t1, scratch)
        w[t0:t1] -= yj @ scratch[:, : t1 - t0]
    _count_call(tracer, log, "axpy", j, len(grid), j * reader.n)
    return w


def norm_fused(
    segments: "Callable[[int, int], np.ndarray]",
    n: int,
    tile_elems: int = DEFAULT_TILE_ELEMS,
    tracer=NULL_TRACER,
    log: Optional[FusedOpLog] = None,
) -> float:
    """2-norm of one stored vector, streamed tile-by-tile.

    ``segments(t0, t1)`` returns the decoded values of ``[t0, t1)`` —
    a cache-column slice (cached mode) or a freshly decoded tile
    (streaming mode); both are contiguous float64, so the per-tile
    ``seg @ seg`` reduction and the tile-order accumulation pin the
    result bit-for-bit across modes.
    """
    total = 0.0
    grid = tile_grid(n, tile_elems)
    for t0, t1 in grid:
        seg = segments(t0, t1)
        total += float(seg @ seg)
    _count_call(tracer, log, "norm", 1, len(grid), n)
    return float(np.sqrt(total))


# The fused tile kernels are registered for the numpy backend here; the
# jit backend registers the *same* callables (see
# ``repro.jit.dispatch._ensure_jit_kernels``).  The per-tile BLAS ``@``
# reduction is the determinism contract itself — its internal blocking
# cannot be replayed in scalar compiled code — so ``backend="jit"``
# keeps these kernels and gains its speedup from the engine's compiled
# FRSZ2 decode feeding the tiles (:class:`StreamingTileReader` /
# ``read_frsz2_tiles``), whose outputs are byte-equal to numpy's.
for _name, _fn in (
    ("fused.dot_basis", dot_basis_fused),
    ("fused.combine", combine_fused),
    ("fused.axpy", axpy_fused),
    ("fused.norm", norm_fused),
):
    _dispatch.register_kernel(_name, "numpy", _fn)
del _name, _fn
