"""repro — reproduction of "FRSZ2 for In-Register Block Compression Inside
GMRES on GPUs" (Grützmacher, Underwood, Di, Cappello, Anzt; SC 2024).

Subpackages
-----------
core
    The FRSZ2 fixed-rate block-floating-point codec (the paper's
    contribution) and its bit-level substrates.
accessor
    Ginkgo-style Accessor interface decoupling storage format from
    arithmetic format (float64/32/16, FRSZ2, round-trip compressors).
compressors
    From-scratch SZ-like and ZFP-like comparator compressors behind a
    LibPressio-style registry, with error-bound metrics.
sparse
    CSR/COO sparse-matrix substrate, MatrixMarket I/O, and deterministic
    synthetic analogs of the SuiteSparse CFD matrices of Table I.
solvers
    Restarted CB-GMRES per the paper's Fig. 1, target-RRN calibration
    (Section V-C), and the future-work format predictor.
gpu
    H100 performance-model substrate: device catalog, roofline and
    instruction-cost kernel models, warp-level SIMT executor, and the
    end-to-end solver timing model.
bench
    Experiment drivers that regenerate every table and figure of the
    paper's evaluation section.
robust
    Fault tolerance: seeded fault injectors (bit flips, NaN/Inf, container
    corruption), automatic precision fallback (``RobustCbGmres``), and the
    survival-rate campaign.
"""

from .core import FRSZ2, Frsz2Compressed

__version__ = "1.0.0"

__all__ = ["FRSZ2", "Frsz2Compressed", "__version__"]
