"""The Accessor interface: decouple storage format from arithmetic format.

Ginkgo's *Accessor* (paper refs [1], [9]) lets memory-bound kernels store
data in a reduced format while performing all arithmetic in IEEE double
precision.  Reads decompress to ``float64``; writes compress.  The paper
plugs FRSZ2 decompression into this interface unchanged ("the same
interface is used for reading and decompressing data in FRSZ2"), while
compression bypasses it because it needs the whole block at once
(Section IV-C).

We reproduce that split: :meth:`VectorAccessor.read` has per-element
random-access semantics, while :meth:`VectorAccessor.write` always takes
the full vector (the CB-GMRES access pattern — each Krylov vector is
produced once, whole).

Accessors also keep a :class:`TrafficCounter` recording the *stored*
bytes that the corresponding GPU kernel would move, which feeds the
end-to-end timing model (:mod:`repro.gpu.timing`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..observe import NULL_TRACER

__all__ = ["TrafficCounter", "VectorAccessor"]


@dataclass
class TrafficCounter:
    """Bytes the storage format moves to/from (simulated) main memory."""

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    #: partial (tile-granular) reads; their bytes land in ``bytes_read``
    tile_reads: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        self.tile_reads = 0

    def merge(self, other: "TrafficCounter") -> None:
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.reads += other.reads
        self.writes += other.writes
        self.tile_reads += other.tile_reads


class VectorAccessor(abc.ABC):
    """A length-``n`` float64 vector held in a reduced storage format.

    Subclasses implement the storage behaviour; arithmetic users only see
    float64 arrays.  ``name`` is the storage-format label used throughout
    the paper's plots (``float64``, ``float32``, ``frsz2_32``, ...).
    """

    #: storage-format label; subclasses override
    name: str = "abstract"

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vector length must be non-negative")
        self.n = int(n)
        self.traffic = TrafficCounter()
        self.tracer = NULL_TRACER

    # -- storage interface -------------------------------------------------

    @abc.abstractmethod
    def write(self, values: np.ndarray) -> None:
        """Store the full vector (compressing as needed)."""

    @abc.abstractmethod
    def read(self) -> np.ndarray:
        """Return the stored vector decompressed to float64."""

    @abc.abstractmethod
    def stored_nbytes(self) -> int:
        """Bytes this vector occupies in (simulated) device memory."""

    def clear(self) -> None:
        """Reset the stored content to the initial all-zero state.

        Unlike :meth:`write`, clearing is pure bookkeeping: it moves no
        simulated memory traffic (a GPU solver reuses the allocation
        across restarts without touching the old bits) and therefore
        records nothing in :attr:`traffic`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement clear()"
        )

    # -- tile interface (fused-kernel streaming) ----------------------------

    @property
    def tile_granularity(self) -> int:
        """Smallest element run the format can decode independently.

        Tile boundaries handed to :meth:`read_tile` should be multiples
        of this (FRSZ2 decodes whole blocks; dense formats any slice).
        """
        return 1

    def _check_tile(self, i0: int, i1: int) -> "tuple[int, int]":
        i0, i1 = int(i0), int(i1)
        if not 0 <= i0 <= i1 <= self.n:
            raise IndexError(
                f"tile [{i0}, {i1}) out of range for length-{self.n} vector"
            )
        return i0, i1

    def tile_stored_nbytes(self, i0: int, i1: int) -> int:
        """Stored bytes a ``[i0, i1)`` tile read moves (format-specific)."""
        i0, i1 = self._check_tile(i0, i1)
        if self.n == 0:
            return 0
        return (self.stored_nbytes() * (i1 - i0)) // self.n

    def _record_tile_read(self, i0: int, i1: int) -> None:
        nbytes = self.tile_stored_nbytes(i0, i1)
        self.traffic.bytes_read += nbytes
        self.traffic.tile_reads += 1
        if self.tracer.enabled:
            self.tracer.count("accessor.tile_reads")
            self.tracer.count("accessor.bytes_read", nbytes)

    def read_tile(self, i0: int, i1: int) -> np.ndarray:
        """Decode the element range ``[i0, i1)`` to float64.

        The generic fallback decodes the whole vector through
        :meth:`read` (and pays its full-read accounting — a format
        without random access cannot seek); formats with seekable
        storage override this with a partial decode billed via
        :meth:`_record_tile_read`.  Either way the returned values are
        bit-identical to ``self.read()[i0:i1]``.
        """
        i0, i1 = self._check_tile(i0, i1)
        return self.read()[i0:i1]

    def read_into(self, out: np.ndarray) -> np.ndarray:
        """Decode the full vector into a caller-owned buffer.

        Equivalent to ``out[:] = self.read()`` (and that is the generic
        fallback, so wrappers that intercept :meth:`read` — fault
        injection — keep working); formats with a bulk decode override
        this to skip the intermediate allocation and any decoded-block
        cache churn.
        """
        if out.shape != (self.n,) or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 array of shape ({self.n},)"
            )
        out[:] = self.read()
        return out

    # -- derived helpers ----------------------------------------------------

    @property
    def bits_per_value(self) -> float:
        """Average stored bits per value (storage-format footprint)."""
        return self.stored_nbytes() * 8 / self.n if self.n else 0.0

    def _check_write(self, values: np.ndarray) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(
                f"expected shape ({self.n},), got {values.shape}"
            )
        return values

    def set_tracer(self, tracer) -> None:
        """Attach an observe-layer tracer (subclasses forward as needed)."""
        self.tracer = tracer

    def _record_write(self) -> None:
        nbytes = self.stored_nbytes()
        self.traffic.bytes_written += nbytes
        self.traffic.writes += 1
        if self.tracer.enabled:
            self.tracer.count("accessor.writes")
            self.tracer.count("accessor.bytes_written", nbytes)

    def _record_read(self) -> None:
        nbytes = self.stored_nbytes()
        self.traffic.bytes_read += nbytes
        self.traffic.reads += 1
        if self.tracer.enabled:
            self.tracer.count("accessor.reads")
            self.tracer.count("accessor.bytes_read", nbytes)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} n={self.n}>"
