"""FRSZ2 storage accessor.

Decompression goes through the Accessor interface exactly as in the
paper ("the same interface is used for reading and decompressing data in
FRSZ2 while computing in double-precision"); compression is invoked on
the full vector because finding ``e_max`` needs every value of a block
(Section IV-A: "the compression must be performed on all BS elements
simultaneously").

On a GPU the decode rides for free inside the memory-bound kernels (the
"46 spare instructions" budget); in Python it is a real per-read cost.
The accessor therefore keeps an LRU cache of *decoded* blocks: repeated
reads of the same block — the Gram-Schmidt access pattern, where every
stored basis vector is re-read each Arnoldi step — skip the codec
entirely.  Decoding is deterministic, so cached reads are bit-identical
to uncached ones (asserted in the test suite); the cache is invalidated
on every write.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core import FRSZ2, Frsz2Compressed
from .base import VectorAccessor

__all__ = [
    "CacheStats",
    "Frsz2Accessor",
    "DEFAULT_CACHE_BLOCKS",
    "read_frsz2_tiles",
    "write_frsz2_batch",
]

#: default decoded-block cache capacity (blocks); 0 disables the cache
DEFAULT_CACHE_BLOCKS = 256


@dataclass
class CacheStats:
    """Hit/miss/eviction tallies of one accessor's decoded-block cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class Frsz2Accessor(VectorAccessor):
    """Krylov-vector storage in the FRSZ2 format.

    Parameters
    ----------
    n : int
        Vector length.
    bit_length : int, default 32
        ``l``, bits per stored value.  ``name`` follows the paper's
        labels: ``frsz2_32``, ``frsz2_21``, ``frsz2_16``.
    block_size : int, default 32
        ``BS``, values per block (paper default 32 = one GPU warp).
    rounding : bool, default False
        Round-to-nearest instead of the paper's truncation (ablation).
    cache_blocks : int, default DEFAULT_CACHE_BLOCKS
        Capacity of the decoded-block LRU cache, in blocks.  ``0``
        disables caching (every read re-decodes, the pre-cache
        behaviour).  Cached and uncached reads are bit-identical.
    backend : {"numpy", "jit"}, optional
        Codec kernel backend (forwarded to :class:`~repro.core.FRSZ2`).
        Bit-identical across backends, so mixed-backend accessors may
        share batched reads/writes freely.

    Attributes
    ----------
    cache : CacheStats
        Hit/miss/eviction counters; also mirrored into the attached
        :mod:`repro.observe` tracer as ``accessor.cache.hits`` /
        ``.misses`` / ``.evictions``.
    """

    def __init__(
        self,
        n: int,
        bit_length: int = 32,
        block_size: int = 32,
        rounding: bool = False,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(n)
        self.codec = FRSZ2(
            bit_length=bit_length,
            block_size=block_size,
            rounding=rounding,
            backend=backend,
        )
        self.name = f"frsz2_{bit_length}"
        self._compressed: Optional[Frsz2Compressed] = None
        if cache_blocks < 0:
            raise ValueError("cache_blocks must be non-negative")
        self.cache_blocks = int(cache_blocks)
        self.cache = CacheStats()
        #: block index -> decoded (read-only) float64 block, LRU order
        self._block_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to the accessor *and* its codec."""
        super().set_tracer(tracer)
        self.codec.tracer = tracer

    # -- cache plumbing ----------------------------------------------------

    def invalidate_cache(self) -> None:
        """Drop every cached decoded block.

        Called automatically on :meth:`write`; must be called manually
        after any out-of-band mutation of :attr:`compressed` (e.g. the
        fault injectors flipping stored bits), or reads may serve stale
        pre-mutation data.
        """
        if self._block_cache:
            self._block_cache.clear()
            self.cache.invalidations += 1

    def _cache_store(self, block: int, values: np.ndarray) -> None:
        """Insert a decoded block, evicting LRU entries over capacity."""
        if self.cache_blocks == 0:
            return
        values = values.copy()
        values.flags.writeable = False
        self._block_cache[block] = values
        self._block_cache.move_to_end(block)
        while len(self._block_cache) > self.cache_blocks:
            self._block_cache.popitem(last=False)
            self.cache.evictions += 1
            if self.tracer.enabled:
                self.tracer.count("accessor.cache.evictions")

    def _cache_lookup(self, block: int) -> Optional[np.ndarray]:
        """A cached decoded block (refreshing LRU order), or None."""
        cached = self._block_cache.get(block)
        if cached is None:
            self.cache.misses += 1
            if self.tracer.enabled:
                self.tracer.count("accessor.cache.misses")
            return None
        self._block_cache.move_to_end(block)
        self.cache.hits += 1
        if self.tracer.enabled:
            self.tracer.count("accessor.cache.hits")
        return cached

    # -- storage interface -------------------------------------------------

    def write(self, values: np.ndarray) -> None:
        """Compress and store the full vector (invalidates the cache)."""
        values = self._check_write(values)
        self._compressed = self.codec.compress(values)
        self.invalidate_cache()
        self._record_write()

    def read(self) -> np.ndarray:
        """Decompress the full vector.

        Returns
        -------
        ndarray, shape (n,), dtype float64
            Cached blocks are served from the decoded-block cache; the
            remaining blocks are decoded in one bulk
            :meth:`~repro.core.frsz2.FRSZ2.decompress_blocks` call and
            cached.  Bit-identical to a cache-off decompression.
        """
        if self._compressed is None:
            self._record_read()
            return np.zeros(self.n)
        self._record_read()
        comp = self._compressed
        nb = comp.layout.num_blocks
        if self.cache_blocks == 0 or nb > self.cache_blocks:
            # cache off, or the vector cannot fit: a full read would
            # evict every entry it just inserted (sequential-scan LRU
            # thrash), so bypass the cache entirely
            return self.codec.decompress(comp)
        bs = comp.layout.block_size
        out = np.empty(self.n, dtype=np.float64)
        missing: List[int] = []
        for block in range(nb):
            cached = self._cache_lookup(block)
            if cached is None:
                missing.append(block)
            else:
                out[block * bs:block * bs + cached.size] = cached
        if missing:
            for block, values in zip(
                missing, self.codec.decompress_blocks(comp, missing)
            ):
                out[block * bs:block * bs + values.size] = values
                self._cache_store(block, values)
        return out

    def read_block(self, block: int) -> np.ndarray:
        """Block-granular random access (paper Section IV-B).

        Parameters
        ----------
        block : int
            Block index in ``[0, num_blocks)``.

        Returns
        -------
        ndarray, dtype float64
            The decoded block — ``block_size`` values, fewer for a
            trailing partial block.  Served from the decoded-block cache
            when possible; bit-identical either way.
        """
        if self._compressed is None:
            raise RuntimeError("nothing stored yet")
        if self.cache_blocks == 0:
            return self.codec.decompress_block(self._compressed, block)
        cached = self._cache_lookup(block)
        if cached is not None:
            return cached.copy()
        values = self.codec.decompress_block(self._compressed, block)
        self._cache_store(block, values)
        return values

    def read_into(self, out: np.ndarray) -> np.ndarray:
        """Bulk-decode the full vector into ``out``.

        One vectorized codec pass, no intermediate allocation and no
        decoded-block cache traffic — a full sequential decode would
        only thrash the LRU (see :meth:`read`'s scan bypass).
        Bit-identical to :meth:`read`.
        """
        if out.shape != (self.n,) or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 array of shape ({self.n},)"
            )
        self._record_read()
        if self._compressed is None:
            out[:] = 0.0
            return out
        return self.codec.decompress(self._compressed, out=out)

    @property
    def tile_granularity(self) -> int:
        """FRSZ2 decodes whole blocks: tiles should align to ``BS``."""
        return self.codec.block_size

    def tile_stored_nbytes(self, i0: int, i1: int) -> int:
        i0, i1 = self._check_tile(i0, i1)
        if i0 == i1:
            return 0
        layout = self.codec.layout_for(self.n)
        bs = layout.block_size
        blocks = (i1 - 1) // bs - i0 // bs + 1
        # per-block stored bytes: value words + one int32 exponent
        return blocks * (layout.words_per_block * 4 + 4)

    def read_tile(self, i0: int, i1: int) -> np.ndarray:
        """Decode the blocks spanning ``[i0, i1)`` (paper Section IV-B).

        The fused kernels stream tiles sequentially, so decoded tiles
        bypass the LRU cache (caching a scan evicts everything useful);
        bit-identical to ``self.read()[i0:i1]``.
        """
        i0, i1 = self._check_tile(i0, i1)
        self._record_tile_read(i0, i1)
        if i0 == i1:
            return np.zeros(0)
        if self._compressed is None:
            return np.zeros(i1 - i0)
        comp = self._compressed
        bs = comp.layout.block_size
        b0, b1 = i0 // bs, (i1 - 1) // bs + 1
        values = np.concatenate(
            self.codec.decompress_blocks(comp, range(b0, b1))
        )
        return values[i0 - b0 * bs:i1 - b0 * bs]

    def clear(self) -> None:
        """Drop the stored payload and every cached decoded block."""
        self._compressed = None
        self.invalidate_cache()

    def stored_nbytes(self) -> int:
        return self.codec.layout_for(self.n).total_nbytes

    @property
    def compressed(self) -> Optional[Frsz2Compressed]:
        """The raw compressed representation (for inspection/tests).

        Mutating its arrays in place bypasses the accessor; call
        :meth:`invalidate_cache` afterwards.
        """
        return self._compressed


def read_frsz2_tiles(accessors, i0: int, i1: int, out: np.ndarray) -> bool:
    """Decode one tile across several FRSZ2 accessors in a single pass.

    The Python analog of the paper's fused warp decode: when every
    accessor is a plain :class:`Frsz2Accessor` over the same layout with
    a written payload, the tile's blocks of **all** vectors decode in one
    :meth:`~repro.core.frsz2.FRSZ2.decompress_blocks_batch` call and land
    in ``out[row, :i1 - i0]``.  Each accessor's tile read is billed
    individually, exactly like a per-accessor
    :meth:`~Frsz2Accessor.read_tile` loop — which is also the bitwise
    fallback this fast path is exchangeable with.

    Returns
    -------
    bool
        ``True`` if the batched decode ran; ``False`` when any accessor
        is ineligible (wrapped, unwritten, or layout mismatch) and the
        caller should fall back to per-accessor ``read_tile``.
    """
    accessors = list(accessors)
    if not accessors:
        return False
    for acc in accessors:
        if not isinstance(acc, Frsz2Accessor) or acc._compressed is None:
            return False
    first = accessors[0]._compressed.layout
    if any(acc._compressed.layout != first for acc in accessors[1:]):
        return False
    i0, i1 = accessors[0]._check_tile(i0, i1)
    if i0 == i1:
        return True
    codec = accessors[0].codec
    bs = first.block_size
    b0, b1 = i0 // bs, (i1 - 1) // bs + 1
    tiles = codec.decompress_blocks_batch(
        [acc._compressed for acc in accessors], range(b0, b1)
    )
    lo = i0 - b0 * bs
    # every accessor shares the layout, so the per-tile stored size is
    # identical: compute it once and apply the same accounting
    # _record_tile_read would, without recomputing it per accessor
    nbytes = accessors[0].tile_stored_nbytes(i0, i1)
    for row, (acc, values) in enumerate(zip(accessors, tiles)):
        traffic = acc.traffic
        traffic.bytes_read += nbytes
        traffic.tile_reads += 1
        if acc.tracer.enabled:
            acc.tracer.count("accessor.tile_reads")
            acc.tracer.count("accessor.bytes_read", nbytes)
        out[row, :i1 - i0] = values[lo:lo + (i1 - i0)]
    return True


def write_frsz2_batch(accessors, X: np.ndarray) -> bool:
    """Compress one column of ``X`` into each accessor in a single pass.

    The write-side counterpart of :func:`read_frsz2_tiles`: when every
    accessor is a plain :class:`Frsz2Accessor` with identical codec
    parameters, all columns encode in one
    :meth:`~repro.core.frsz2.FRSZ2.compress_batch` call (one vectorized
    exponent-reduce/shift/truncate pass instead of one per vector).
    Each accessor's write is billed individually and its decoded-block
    cache invalidated, exactly like a per-accessor
    :meth:`~Frsz2Accessor.write` loop — which is the bitwise-identical
    fallback this fast path is exchangeable with.

    Parameters
    ----------
    accessors : sequence of VectorAccessor
        Target accessors, one per column of ``X``.
    X : ndarray, shape (n, B), dtype float64
        Vectors to store; column ``c`` goes to ``accessors[c]``.

    Returns
    -------
    bool
        ``True`` if the batched encode ran; ``False`` when any accessor
        is ineligible (wrapped/subclassed, or codec mismatch) and the
        caller should fall back to per-accessor ``write``.

    Raises
    ------
    ValueError
        If any column contains NaN/Inf (from the codec) — the same
        error a per-accessor write loop would raise, with no accessor
        mutated (the whole batch is encoded before any store).
    """
    accessors = list(accessors)
    if not accessors:
        return False
    for acc in accessors:
        # exact type: a subclass may override write(), which the direct
        # payload store below would silently bypass
        if type(acc) is not Frsz2Accessor:
            return False
    c0 = accessors[0].codec
    n = accessors[0].n
    for acc in accessors[1:]:
        if (
            acc.n != n
            or acc.codec.bit_length != c0.bit_length
            or acc.codec.block_size != c0.block_size
            or acc.codec.rounding != c0.rounding
        ):
            return False
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape != (n, len(accessors)):
        raise ValueError(f"expected X of shape ({n}, {len(accessors)})")
    columns = [
        acc._check_write(X[:, c]) for c, acc in enumerate(accessors)
    ]
    compressed = c0.compress_batch(columns)
    for acc, comp in zip(accessors, compressed):
        acc._compressed = comp
        acc.invalidate_cache()
        acc._record_write()
    return True
