"""FRSZ2 storage accessor.

Decompression goes through the Accessor interface exactly as in the
paper ("the same interface is used for reading and decompressing data in
FRSZ2 while computing in double-precision"); compression is invoked on
the full vector because finding ``e_max`` needs every value of a block
(Section IV-A: "the compression must be performed on all BS elements
simultaneously").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import FRSZ2, Frsz2Compressed
from .base import VectorAccessor

__all__ = ["Frsz2Accessor"]


class Frsz2Accessor(VectorAccessor):
    """Krylov-vector storage in the FRSZ2 format.

    ``bit_length`` / ``block_size`` / ``rounding`` parameterize the codec
    (paper defaults BS=32, l=32).  ``name`` follows the paper's labels:
    ``frsz2_32``, ``frsz2_21``, ``frsz2_16``.
    """

    def __init__(
        self,
        n: int,
        bit_length: int = 32,
        block_size: int = 32,
        rounding: bool = False,
    ) -> None:
        super().__init__(n)
        self.codec = FRSZ2(bit_length=bit_length, block_size=block_size, rounding=rounding)
        self.name = f"frsz2_{bit_length}"
        self._compressed: Optional[Frsz2Compressed] = None

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to the accessor *and* its codec."""
        super().set_tracer(tracer)
        self.codec.tracer = tracer

    def write(self, values: np.ndarray) -> None:
        values = self._check_write(values)
        self._compressed = self.codec.compress(values)
        self._record_write()

    def read(self) -> np.ndarray:
        if self._compressed is None:
            self._record_read()
            return np.zeros(self.n)
        self._record_read()
        return self.codec.decompress(self._compressed)

    def read_block(self, block: int) -> np.ndarray:
        """Block-granular random access (paper Section IV-B)."""
        if self._compressed is None:
            raise RuntimeError("nothing stored yet")
        return self.codec.decompress_block(self._compressed, block)

    def stored_nbytes(self) -> int:
        return self.codec.layout_for(self.n).total_nbytes

    @property
    def compressed(self) -> Optional[Frsz2Compressed]:
        """The raw compressed representation (for inspection/tests)."""
        return self._compressed
