"""Round-trip compressor accessor — the LibPressio simulation of §V-D.

The paper does not implement SZ/SZ3/ZFP inside the Accessor; instead it
"simulate[s] the effect of other compression schemes on the CB-GMRES
convergence ... by compressing and immediately decompressing the Krylov
vectors through the LibPressio interface".  This accessor does exactly
that: on write, the vector passes through a generic compressor's round
trip and the lossy reconstruction is kept in float64; reads return it
unchanged.  ``stored_nbytes`` reports the *actual compressed size*, so
bits-per-value accounting matches the discussion in Section VI-A.
"""

from __future__ import annotations

import numpy as np

from ..compressors.base import Compressor
from .base import VectorAccessor

__all__ = ["RoundTripAccessor"]


class RoundTripAccessor(VectorAccessor):
    """Inject a generic lossy compressor's error into stored vectors."""

    def __init__(self, n: int, compressor: Compressor, name: str) -> None:
        super().__init__(n)
        self.compressor = compressor
        self.name = name
        self._data = np.zeros(n)
        self._stored_nbytes = n * 8  # nothing compressed yet

    def write(self, values: np.ndarray) -> None:
        values = self._check_write(values)
        if self.n == 0:
            self._record_write()
            return
        self._data, self._stored_nbytes = self.compressor.roundtrip_with_size(values)
        self._record_write()

    def read(self) -> np.ndarray:
        self._record_read()
        return self._data.copy()

    def read_tile(self, i0: int, i1: int) -> np.ndarray:
        # the lossy reconstruction is kept dense, so tiles slice freely;
        # tile bytes are pro-rated from the actual compressed size
        i0, i1 = self._check_tile(i0, i1)
        self._record_tile_read(i0, i1)
        return self._data[i0:i1].copy()

    def clear(self) -> None:
        self._data = np.zeros(self.n)
        self._stored_nbytes = self.n * 8

    def stored_nbytes(self) -> int:
        return self._stored_nbytes
