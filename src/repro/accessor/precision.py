"""Reduced-precision storage accessors: float64 / float32 / float16.

These reproduce the original CB-GMRES storage formats of [1]: values are
cast to the storage precision on write and promoted back to float64 on
read, while all arithmetic stays in double precision.  ``float64`` is the
identity format (the uncompressed baseline of every experiment).
"""

from __future__ import annotations

import numpy as np

from .base import VectorAccessor

__all__ = ["PrecisionAccessor", "Float64Accessor", "Float32Accessor", "Float16Accessor"]


class PrecisionAccessor(VectorAccessor):
    """Store in ``storage_dtype``, read back as float64."""

    storage_dtype = np.float64

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._data = np.zeros(n, dtype=self.storage_dtype)

    def write(self, values: np.ndarray) -> None:
        values = self._check_write(values)
        # NumPy casts with round-to-nearest-even, matching GPU converts.
        self._data = values.astype(self.storage_dtype)
        self._record_write()

    def read(self) -> np.ndarray:
        self._record_read()
        return self._data.astype(np.float64)

    def read_tile(self, i0: int, i1: int) -> np.ndarray:
        # dense storage seeks for free: decode only the requested range
        i0, i1 = self._check_tile(i0, i1)
        self._record_tile_read(i0, i1)
        return self._data[i0:i1].astype(np.float64)

    def clear(self) -> None:
        self._data = np.zeros(self.n, dtype=self.storage_dtype)

    def stored_nbytes(self) -> int:
        return self.n * np.dtype(self.storage_dtype).itemsize


class Float64Accessor(PrecisionAccessor):
    """Uncompressed double-precision storage (the GMRES baseline)."""

    name = "float64"
    storage_dtype = np.float64

    def read(self) -> np.ndarray:
        self._record_read()
        return self._data.copy()


class Float32Accessor(PrecisionAccessor):
    """IEEE single-precision storage (CB-GMRES float32 of [1]).

    Finite doubles beyond float32 range overflow to inf on cast; CB-GMRES
    never produces them (Krylov vectors are normalized), but we surface
    the event rather than silently propagating inf.
    """

    name = "float32"
    storage_dtype = np.float32

    def write(self, values: np.ndarray) -> None:
        values = self._check_write(values)
        with np.errstate(over="ignore"):
            data = values.astype(np.float32)
        if not np.all(np.isfinite(data[np.isfinite(values)])):
            raise OverflowError("value exceeds float32 range")
        self._data = data
        self._record_write()


class Float16Accessor(PrecisionAccessor):
    """IEEE half-precision storage (CB-GMRES float16 of [1]).

    Values beyond the ~6.5e4 half range saturate to the largest finite
    half instead of inf: this mirrors Ginkgo's saturating conversion and
    keeps the solver running (it then simply fails to converge, which is
    the behaviour Fig. 7 reports for PR02R and StocF-1465).
    """

    name = "float16"
    storage_dtype = np.float16

    def write(self, values: np.ndarray) -> None:
        values = self._check_write(values)
        with np.errstate(over="ignore"):
            data = values.astype(np.float16)
        over = np.isinf(data) & np.isfinite(values)
        if np.any(over):
            limit = np.float16(np.finfo(np.float16).max)
            data[over] = np.where(values[over] > 0, limit, -limit)
        self._data = data
        self._record_write()
