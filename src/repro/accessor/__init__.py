"""Ginkgo-style Accessor interface: storage format decoupled from the
float64 arithmetic format (paper refs [1], [9])."""

from .base import TrafficCounter, VectorAccessor
from .frsz2_accessor import (
    DEFAULT_CACHE_BLOCKS,
    CacheStats,
    Frsz2Accessor,
    read_frsz2_tiles,
    write_frsz2_batch,
)
from .precision import (
    Float16Accessor,
    Float32Accessor,
    Float64Accessor,
    PrecisionAccessor,
)
from .registry import accessor_factory, list_storage_formats, make_accessor
from .roundtrip import RoundTripAccessor

__all__ = [
    "TrafficCounter",
    "VectorAccessor",
    "PrecisionAccessor",
    "Float64Accessor",
    "Float32Accessor",
    "Float16Accessor",
    "Frsz2Accessor",
    "CacheStats",
    "DEFAULT_CACHE_BLOCKS",
    "RoundTripAccessor",
    "read_frsz2_tiles",
    "write_frsz2_batch",
    "make_accessor",
    "accessor_factory",
    "list_storage_formats",
]
