"""Storage-format registry: name -> accessor factory.

Experiments refer to Krylov-basis storage formats by the labels used in
the paper's plots: ``float64``, ``float32``, ``float16``, ``frsz2_16``,
``frsz2_21``, ``frsz2_32`` (native Accessor formats), and any Table II
compressor name (``sz3_08``, ``zfp_fr_32``, ...) which is mapped onto a
:class:`~repro.accessor.roundtrip.RoundTripAccessor`.
"""

from __future__ import annotations

import re
from typing import Callable, List

from ..compressors.pressio import EXTRA_CONFIGS, TABLE_II, make_compressor
from .base import VectorAccessor
from .frsz2_accessor import Frsz2Accessor
from .precision import Float16Accessor, Float32Accessor, Float64Accessor
from .roundtrip import RoundTripAccessor

__all__ = ["make_accessor", "accessor_factory", "list_storage_formats"]

_PRECISION = {
    "float64": Float64Accessor,
    "float32": Float32Accessor,
    "float16": Float16Accessor,
}

_FRSZ2_RE = re.compile(r"^frsz2_(\d+)$")


def list_storage_formats() -> List[str]:
    """All storage-format names usable for the Krylov basis."""
    return (
        sorted(_PRECISION)
        + ["frsz2_16", "frsz2_21", "frsz2_32"]
        + sorted(TABLE_II)
        + sorted(EXTRA_CONFIGS)
    )


def make_accessor(
    name: str, n: int, backend: "str | None" = None, **kwargs
) -> VectorAccessor:
    """Build a vector accessor for storage format ``name``.

    ``kwargs`` are forwarded to FRSZ2 accessors (``block_size``,
    ``rounding``) for ablation studies.  ``backend`` selects the codec
    kernel backend for FRSZ2 formats (bit-identical across backends)
    and is ignored by formats with no codec kernels.
    """
    if name in _PRECISION:
        return _PRECISION[name](n)
    m = _FRSZ2_RE.match(name)
    if m:
        return Frsz2Accessor(
            n, bit_length=int(m.group(1)), backend=backend, **kwargs
        )
    if name in TABLE_II or name in EXTRA_CONFIGS:
        return RoundTripAccessor(n, make_compressor(name), name)
    raise KeyError(
        f"unknown storage format {name!r}; available: "
        + ", ".join(list_storage_formats())
    )


def accessor_factory(
    name: str, backend: "str | None" = None, **kwargs
) -> Callable[[int], VectorAccessor]:
    """Return ``n -> accessor`` for a format name (validates eagerly)."""
    from ..jit import dispatch as _dispatch

    # resolve once so an unavailable-jit warning fires at factory build
    # time, not on every accessor the solver constructs
    backend = _dispatch.resolve_backend(backend)
    make_accessor(name, 0, backend=backend, **kwargs)  # fail fast on bad names
    return lambda n: make_accessor(name, n, backend=backend, **kwargs)
