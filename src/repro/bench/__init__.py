"""Benchmark harness: experiment drivers and plain-text report rendering
for every table and figure of the paper's evaluation section, plus the
traced performance bench behind ``python -m repro bench``."""

from .perf import (
    BENCH_PHASES,
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_MATRICES,
    DEFAULT_BENCH_STORAGES,
    Regression,
    compare_bench,
    load_bench,
    run_bench,
    run_bench_entry,
    validate_bench,
    write_bench,
)
from .experiments import (
    FIG7_FORMATS,
    convergence_histories,
    figure7_rows,
    figure8_rows,
    figure11_rows,
    format_sweep,
    krylov_histograms,
    krylov_vectors,
    matrix_exponent_histogram,
    solve_with_storage,
    table1_rows,
    table2_rows,
)
from .report import format_histogram, format_series, format_table

__all__ = [
    "BENCH_PHASES",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_MATRICES",
    "DEFAULT_BENCH_STORAGES",
    "Regression",
    "compare_bench",
    "load_bench",
    "run_bench",
    "run_bench_entry",
    "validate_bench",
    "write_bench",
    "FIG7_FORMATS",
    "convergence_histories",
    "figure7_rows",
    "figure8_rows",
    "figure11_rows",
    "format_sweep",
    "krylov_histograms",
    "krylov_vectors",
    "matrix_exponent_histogram",
    "solve_with_storage",
    "table1_rows",
    "table2_rows",
    "format_histogram",
    "format_series",
    "format_table",
]
