"""Experiment drivers regenerating every table and figure of the paper.

Each driver returns plain data structures; the benchmark files render
them with :mod:`repro.bench.report`.  The expensive storage-format sweep
(shared by Fig. 7, Fig. 8 and Fig. 11) is memoized per process.

The paper averages Fig. 8 / Fig. 11 over ten runs; our solves are fully
deterministic (synthetic matrices, fixed right-hand sides), so a single
run carries the same information.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ieee754 import biased_exponent, to_bits
from ..gpu.device import DeviceSpec, H100_PCIE
from ..gpu.timing import GmresTimingModel
from ..solvers.basis import KrylovBasis
from ..solvers.gmres import CbGmres, GmresResult
from ..solvers.orthogonal import cgs_orthogonalize
from ..solvers.problems import make_problem
from ..sparse.suite import SUITE, build_matrix, resolve_scale, suite_names

__all__ = [
    "FIG7_FORMATS",
    "table1_rows",
    "table2_rows",
    "solve_with_storage",
    "convergence_histories",
    "format_sweep",
    "figure7_rows",
    "figure8_rows",
    "figure11_rows",
    "krylov_vectors",
    "krylov_histograms",
    "matrix_exponent_histogram",
]

#: the storage formats of Figs. 7, 8 and 11
FIG7_FORMATS = ("float64", "float32", "float16", "frsz2_32")

_SWEEP_MAX_ITER = 8000
_SWEEP_STALL_RESTARTS = 10


def table1_rows(scale: Optional[str] = None) -> List[Tuple]:
    """Table I: per matrix, analog size/nnz, paper size/nnz, target RRN."""
    scale = resolve_scale(scale)
    rows = []
    for name in suite_names():
        spec = SUITE[name]
        a = build_matrix(name, scale)
        rows.append(
            (
                name,
                a.shape[0],
                a.nnz,
                spec.paper_size,
                spec.paper_nnz,
                spec.target_for(scale),
                spec.paper_target_rrn,
            )
        )
    return rows


def table2_rows() -> List[Tuple]:
    """Table II: compressor name, bound type, requested bound."""
    from ..compressors.pressio import TABLE_II

    return [
        (s.name, s.error_bound_type, s.error_bound)
        for s in TABLE_II.values()
    ]


def solve_with_storage(
    matrix: str,
    storage: str,
    scale: Optional[str] = None,
    max_iter: int = _SWEEP_MAX_ITER,
    target_rrn: Optional[float] = None,
) -> GmresResult:
    """One CB-GMRES solve of a suite problem with a given basis format."""
    p = make_problem(matrix, scale, target_rrn=target_rrn)
    solver = CbGmres(
        p.a, storage, max_iter=max_iter, stall_restarts=_SWEEP_STALL_RESTARTS
    )
    return solver.solve(p.b, p.target_rrn)


def convergence_histories(
    matrix: str,
    storages: Sequence[str],
    scale: Optional[str] = None,
    max_iter: int = _SWEEP_MAX_ITER,
) -> Dict[str, GmresResult]:
    """Residual-norm histories for Fig. 5 / Fig. 6 / Fig. 9."""
    return {
        s: solve_with_storage(matrix, s, scale=scale, max_iter=max_iter)
        for s in storages
    }


@lru_cache(maxsize=4)
def format_sweep(scale: str) -> "Dict[str, Dict[str, GmresResult]]":
    """The full suite x FIG7_FORMATS sweep behind Figs. 7, 8 and 11."""
    out: Dict[str, Dict[str, GmresResult]] = {}
    for name in suite_names():
        out[name] = {
            fmt: solve_with_storage(name, fmt, scale=scale) for fmt in FIG7_FORMATS
        }
    return out


def figure7_rows(scale: Optional[str] = None) -> List[Tuple]:
    """Fig. 7: target and achieved final RRN per matrix and format."""
    scale = resolve_scale(scale)
    sweep = format_sweep(scale)
    rows = []
    for name in suite_names():
        target = SUITE[name].target_for(scale)
        row = [name, target]
        for fmt in FIG7_FORMATS:
            r = sweep[name][fmt]
            row.append(r.final_rrn if r.converged else float("nan"))
        rows.append(tuple(row))
    return rows


def figure8_rows(scale: Optional[str] = None) -> List[Tuple]:
    """Fig. 8: iterations relative to float64 (0 = did not converge)."""
    scale = resolve_scale(scale)
    sweep = format_sweep(scale)
    rows = []
    for name in suite_names():
        base = sweep[name]["float64"].iterations
        row = [name, base]
        for fmt in FIG7_FORMATS:
            r = sweep[name][fmt]
            row.append(r.iterations / base if r.converged and base else 0.0)
        rows.append(tuple(row))
    return rows


@dataclass
class SpeedupSummary:
    """Fig. 11 headline averages."""

    per_matrix: List[Tuple]
    mean_speedup: Dict[str, float]
    mean_speedup_without_pr02r: Dict[str, float]


def figure11_rows(
    scale: Optional[str] = None, device: DeviceSpec = H100_PCIE
) -> SpeedupSummary:
    """Fig. 11: modeled end-to-end speedup over float64 per matrix.

    Bars for non-converged format/problem pairs are removed, and the
    text's headline averages (with and without PR02R) are computed the
    same way the paper reports them.
    """
    scale = resolve_scale(scale)
    sweep = format_sweep(scale)
    model = GmresTimingModel(device)
    per_matrix: List[Tuple] = []
    collected: Dict[str, List[float]] = {fmt: [] for fmt in FIG7_FORMATS}
    collected_no_pr: Dict[str, List[float]] = {fmt: [] for fmt in FIG7_FORMATS}
    for name in suite_names():
        base = sweep[name]["float64"]
        base_t = model.time_result(base).total_seconds
        row = [name]
        for fmt in FIG7_FORMATS:
            r = sweep[name][fmt]
            if r.converged:
                s = base_t / model.time_result(r).total_seconds
                row.append(s)
                collected[fmt].append(s)
                if name != "PR02R":
                    collected_no_pr[fmt].append(s)
            else:
                row.append(float("nan"))
        per_matrix.append(tuple(row))
    mean = {f: float(np.mean(v)) if v else float("nan") for f, v in collected.items()}
    mean_no_pr = {
        f: float(np.mean(v)) if v else float("nan")
        for f, v in collected_no_pr.items()
    }
    return SpeedupSummary(
        per_matrix=per_matrix,
        mean_speedup=mean,
        mean_speedup_without_pr02r=mean_no_pr,
    )


def krylov_vectors(
    matrix: str, iterations: Sequence[int], scale: Optional[str] = None
) -> Dict[int, np.ndarray]:
    """Krylov basis vectors v_j at the requested Arnoldi steps (Fig. 2).

    Runs the Arnoldi process in float64 on the suite problem and captures
    the normalized basis vectors the solver would compress.
    """
    p = make_problem(matrix, scale)
    n = p.a.n
    m = max(iterations) + 1
    basis = KrylovBasis(n, m + 1, "float64")
    r = p.b.copy()
    beta = float(np.linalg.norm(r))
    v = r / beta
    basis.write_vector(0, v)
    captured: Dict[int, np.ndarray] = {}
    if 0 in iterations:
        captured[0] = v.copy()
    for j in range(1, m + 1):
        w = p.a.matvec(v)
        res = cgs_orthogonalize(basis, j, w)
        if res.breakdown:
            break
        v = res.w / res.h_next
        basis.write_vector(j, v)
        if j in iterations:
            captured[j] = v.copy()
    return captured


def krylov_histograms(
    matrix: str = "atmosmodd",
    iterations: Sequence[int] = (0, 10),
    value_bins: int = 41,
    scale: Optional[str] = None,
):
    """Fig. 2: value and exponent histograms of Krylov vectors.

    Returns ``{iteration: (value_hist, value_edges, exp_values, exp_counts)}``.
    """
    vectors = krylov_vectors(matrix, iterations, scale)
    out = {}
    for j, v in vectors.items():
        hist, edges = np.histogram(v, bins=value_bins)
        exps = biased_exponent(to_bits(np.abs(v))).astype(np.int64) - 1023
        exps = exps[v != 0]
        values, counts = np.unique(exps, return_counts=True)
        out[j] = (hist, edges, values, counts)
    return out


def matrix_exponent_histogram(
    matrix: str = "PR02R", scale: Optional[str] = None, bin_width: int = 4
):
    """Fig. 10: base-2 exponent histogram of all matrix non-zeros."""
    a = build_matrix(matrix, scale)
    data = a.data[a.data != 0.0]
    exps = biased_exponent(to_bits(np.abs(data))).astype(np.int64) - 1023
    lo = int(exps.min()) // bin_width * bin_width
    hi = (int(exps.max()) // bin_width + 1) * bin_width
    edges = np.arange(lo, hi + bin_width, bin_width)
    hist, _ = np.histogram(exps, bins=edges)
    return edges[:-1], hist
